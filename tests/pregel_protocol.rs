//! Cross-crate tests of the distributed protocol (paper §3 / Figures 2–3):
//! the Pregel engine's deferred migration must deliver every message, agree
//! with the logical-level algorithm on quality, and keep its accounting
//! consistent under mutation churn.

use apg::apps::{components::CcLabel, ConnectedComponents, PageRank};
use apg::core::AdaptiveConfig;
use apg::graph::gen;
use apg::pregel::{Context, EngineBuilder, MutationBatch, VertexProgram};

/// Each vertex checks it receives exactly one message per neighbour per
/// superstep — the Figure 3 message-delivery guarantee — while the
/// background partitioner migrates aggressively.
struct Conservation;
impl VertexProgram for Conservation {
    type Value = u64;
    type Message = u8;
    fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
        if ctx.superstep() > 0 {
            assert_eq!(
                messages.len(),
                ctx.degree(),
                "vertex {} at {}",
                ctx.id(),
                ctx.superstep()
            );
        }
        *ctx.value_mut() += messages.len() as u64;
        ctx.send_to_neighbors(1);
    }
}

#[test]
fn deferred_migration_never_loses_messages() {
    let graph = gen::mesh3d(8, 8, 8);
    let mut engine = EngineBuilder::new(8)
        .seed(2)
        .adaptive(AdaptiveConfig::new(8).willingness(1.0))
        .build(&graph, Conservation);
    let reports = engine.run(25);
    let migrated: u64 = reports.iter().map(|r| r.migrations_completed).sum();
    assert!(migrated > 200, "churn too low to be meaningful: {migrated}");
    assert!(reports.iter().all(|r| r.messages_dropped == 0));
    engine.audit();
}

#[test]
fn engine_and_logical_partitioner_agree_on_quality() {
    use apg::core::AdaptivePartitioner;
    use apg::partition::InitialStrategy;

    let graph = gen::mesh3d(10, 10, 10);

    // Logical level (paper §2).
    let cfg = AdaptiveConfig::new(9).max_iterations(300);
    let mut logical = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 3);
    logical.run_to_convergence();

    // Distributed level (paper §3) with the same parameters.
    let mut engine = EngineBuilder::new(9)
        .seed(3)
        .adaptive(AdaptiveConfig::new(9))
        .cut_every(0)
        .build(&graph, Conservation);
    let mut quiet = 0;
    for _ in 0..300 {
        let r = engine.superstep();
        if r.migrations_started == 0 && r.migrations_completed == 0 {
            quiet += 1;
            if quiet >= 30 {
                break;
            }
        } else {
            quiet = 0;
        }
    }

    let lr = logical.cut_ratio();
    let er = engine.cut_ratio();
    assert!(
        (lr - er).abs() < 0.08,
        "logical ({lr}) and distributed ({er}) quality diverged"
    );
}

#[test]
fn applications_survive_continuous_churn() {
    // Run PageRank while the graph mutates and vertices migrate; ranks must
    // remain a distribution over the live population after re-running.
    let graph = gen::mesh3d(6, 6, 6);
    let mut engine = EngineBuilder::new(4)
        .seed(9)
        .adaptive(AdaptiveConfig::new(4))
        .build(&graph, PageRank::new(60));
    engine.run(10);

    let mut batch = MutationBatch::new();
    let a = batch.add_vertex(vec![0, 1, 5]);
    let b = batch.add_vertex(vec![2]);
    batch.connect_new(a, b);
    batch.remove_vertex(100);
    engine.apply_mutations(batch);
    engine.run_until_halt(80);
    engine.audit();

    let total: f64 = (0..engine.num_total_slots() as u32)
        .filter_map(|v| engine.vertex_value(v))
        .sum();
    assert!((total - 1.0).abs() < 0.05, "rank mass drifted: {total}");
}

#[test]
fn components_correct_under_migration_and_mutation() {
    let graph = gen::erdos_renyi(300, 0.01, 4);
    let mut engine = EngineBuilder::new(5)
        .seed(5)
        .adaptive(AdaptiveConfig::new(5))
        .build(&graph, ConnectedComponents::new());
    engine.run_until_halt(60);

    // Join everything into one component through a hub vertex.
    let mut batch = MutationBatch::new();
    let hub = batch.add_vertex((0..300).collect());
    assert_eq!(hub, 0);
    engine.apply_mutations(batch);
    engine.run_until_halt(60);

    for v in 0..300u32 {
        assert_eq!(
            engine.vertex_value(v),
            Some(&CcLabel(0)),
            "vertex {v} not merged"
        );
    }
    engine.audit();
}

/// Like [`Conservation`] but tolerant of topology changes (counts are not
/// asserted) — usable while mutations land between supersteps.
struct Gossip;
impl VertexProgram for Gossip {
    type Value = u64;
    type Message = u8;
    fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
        *ctx.value_mut() += messages.len() as u64;
        ctx.send_to_neighbors(1);
    }
}

#[test]
fn partition_sizes_respect_capacity_under_growth() {
    let graph = gen::mesh3d(6, 6, 6);
    let cfg = AdaptiveConfig::new(4).willingness(1.0);
    let mut engine = EngineBuilder::new(4)
        .seed(6)
        .adaptive(cfg)
        .build(&graph, Gossip);
    for round in 0..10 {
        let mut batch = MutationBatch::new();
        for i in 0..12u32 {
            batch.add_vertex(vec![(round * 12 + i) % 216]);
        }
        engine.apply_mutations(batch);
        let r = engine.superstep();
        let cap = ((engine.num_live_vertices() as f64 / 4.0).ceil() * 1.10).round() as usize + 1;
        for (w, &size) in r.partition_sizes.iter().enumerate() {
            assert!(size <= cap, "worker {w} holds {size} > cap {cap}");
        }
    }
    engine.audit();
}
