//! Property tests of the incremental-checkpoint codec: a delta-encoded
//! checkpoint applied to its base must reproduce the full snapshot
//! **byte-identically** — graph, partitioning and runner state — over
//! arbitrary `UpdateBatch` churn, at every parallelism, through the wire
//! format, and regardless of adjacency-pool layout (compaction is
//! observation-free, so it must be diff-free too).

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, CheckpointDelta, StreamingRunner};
use apg::graph::{DynGraph, Graph, GraphDiff, UpdateBatch};
use apg::partition::InitialStrategy;

/// Turns a fuzzed op-stream into `UpdateBatch`es of at most `chunk`
/// deltas (same shape as `proptest_invariants`): vertex births, edge
/// adds/removes, vertex removals, and new-vertex wiring, with ids kept
/// in a meaningful range.
fn batches_from_ops(ops: &[(u8, u32, u32)], base_slots: usize, chunk: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut batch = UpdateBatch::new();
    let mut slots = base_slots;
    for &(op, a, b) in ops {
        let range = (slots + batch.num_new_vertices()).max(1) as u32;
        match op {
            0 => {
                batch.add_vertex(vec![a % range]);
            }
            1 => batch.add_edge(a % range, b % range),
            2 => batch.remove_edge(a % range, b % range),
            3 => batch.remove_vertex(a % range),
            _ => {
                let n = batch.num_new_vertices();
                if n >= 2 {
                    batch.connect_new(a as usize % n, b as usize % n);
                }
            }
        }
        if batch.len() >= chunk {
            slots += batch.num_new_vertices();
            out.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        out.push(batch);
    }
    out
}

/// Drives a fresh runner over `batches`, snapshotting a base checkpoint
/// after `split` batches (clearing the changed set exactly as a durable
/// install does) and the current checkpoint at the end. Returns
/// `(base, current, changed-slots-since-base)`.
fn base_and_current(
    batches: &[UpdateBatch],
    split: usize,
    parallelism: usize,
    window: Option<usize>,
    record: bool,
    seed: u64,
) -> (
    apg::core::StreamCheckpoint,
    apg::core::StreamCheckpoint,
    Vec<usize>,
) {
    let graph = DynGraph::with_vertices(24);
    let cfg = AdaptiveConfig::new(3).parallelism(parallelism);
    let partitioner = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, seed);
    let mut runner = StreamingRunner::new(partitioner)
        .iterations_per_batch(2)
        .record_log(record);
    if let Some(w) = window {
        runner = runner.timeline_window(w);
    }
    for batch in &batches[..split] {
        runner.ingest(batch);
    }
    let base = runner.checkpoint();
    runner.partitioner_mut().clear_changed();
    for batch in &batches[split..] {
        runner.ingest(batch);
    }
    let current = runner.checkpoint();
    let changed = runner.partitioner().changed_slots();
    (base, current, changed)
}

/// The core property: delta-encode → wire round-trip → apply equals the
/// full snapshot, byte for byte.
fn assert_delta_equals_full(
    base: &apg::core::StreamCheckpoint,
    current: &apg::core::StreamCheckpoint,
    changed: &[usize],
) {
    let delta = CheckpointDelta::between(base, current, changed, 7, 0xfeed)
        .expect("append-only growth must be delta-encodable");
    let full_bytes = current.to_bytes();
    // In-memory apply.
    let applied = delta.apply(base).expect("delta applies to its base");
    assert_eq!(
        applied.to_bytes(),
        full_bytes,
        "applied delta diverged from the full snapshot"
    );
    // Through the wire format.
    let decoded = CheckpointDelta::from_bytes(&delta.to_bytes()).expect("delta bytes round-trip");
    assert_eq!(decoded.base_seq, 7);
    assert_eq!(decoded.base_digest, 0xfeed);
    let applied = decoded.apply(base).expect("decoded delta applies");
    assert_eq!(
        applied.to_bytes(),
        full_bytes,
        "wire-round-tripped delta diverged from the full snapshot"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed churn, fuzzed split point, bounded and unbounded timeline
    /// windows, with and without log recording: the delta always
    /// reproduces the full snapshot byte-identically.
    #[test]
    fn delta_equals_full_over_fuzzed_churn(
        ops in proptest::collection::vec((0u8..5, 0u32..96, 0u32..96), 4..80),
        split_frac in 0usize..100,
        window in 0usize..5, // 0 = unbounded
        record in 0u8..2,
        seed in 0u64..500,
    ) {
        let batches = batches_from_ops(&ops, 24, 6);
        if batches.is_empty() {
            return;
        }
        let split = 1 + split_frac * (batches.len() - 1) / 100;
        let window = if window == 0 { None } else { Some(window) };
        let (base, current, changed) =
            base_and_current(&batches, split, 1, window, record == 1, seed);
        assert_delta_equals_full(&base, &current, &changed);
    }

    /// The same property at parallelism 1, 2 and 8 — the changed-set
    /// discipline must hold under the sharded apply path too.
    #[test]
    fn delta_equals_full_at_all_parallelism(
        ops in proptest::collection::vec((0u8..5, 0u32..96, 0u32..96), 8..48),
        seed in 0u64..200,
    ) {
        let batches = batches_from_ops(&ops, 24, 5);
        if batches.len() < 2 {
            return;
        }
        let split = batches.len() / 2;
        for parallelism in [1usize, 2, 8] {
            let (base, current, changed) =
                base_and_current(&batches, split, parallelism, None, false, seed);
            assert_delta_equals_full(&base, &current, &changed);
        }
    }

    /// `GraphDiff` is layout-blind: interleaving `compact_adjacency`
    /// anywhere around the diff — on the base, the current graph, or the
    /// copy being patched — never changes what `between` produces or what
    /// `apply_to` reconstructs.
    #[test]
    fn graph_diff_survives_compaction_interleavings(
        ops in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 4..60),
        compact_mask in 0u8..8,
    ) {
        let (compact_base, compact_current, compact_target) =
            (compact_mask & 1 != 0, compact_mask & 2 != 0, compact_mask & 4 != 0);
        let batches = batches_from_ops(&ops, 16, 8);
        let mut base = DynGraph::with_vertices(16);
        for batch in batches.iter().take(batches.len() / 2) {
            batch.apply(&mut base);
        }
        let mut current = base.clone();
        for batch in batches.iter().skip(batches.len() / 2) {
            batch.apply(&mut current);
        }
        if compact_base {
            base.compact_adjacency();
        }
        if compact_current {
            current.compact_adjacency();
        }
        let candidates: Vec<usize> = (0..base.num_vertices()).collect();
        let diff = GraphDiff::between(&base, &current, &candidates);
        // The fragmented and compacted base must yield the same diff.
        let mut fragmented = base.clone();
        fragmented.compact_adjacency();
        prop_assert_eq!(&GraphDiff::between(&fragmented, &current, &candidates), &diff);
        let mut target = base.clone();
        if compact_target {
            target.compact_adjacency();
        }
        diff.apply_to(&mut target).expect("diff applies to its base");
        prop_assert_eq!(&target, &current);
    }

    /// Tombstones: removed vertices stay encoded as dead slots, their ids
    /// are never reused by later births, and a diff that tries to
    /// resurrect one is rejected with a typed error.
    #[test]
    fn tombstones_round_trip_and_cannot_be_reused(
        kill_raw in proptest::collection::vec(0u32..16, 1..6),
        births in 1usize..5,
    ) {
        let kill: std::collections::BTreeSet<u32> = kill_raw.into_iter().collect();
        let mut base = DynGraph::with_vertices(16);
        for v in 0..15u32 {
            base.add_edge(v, v + 1);
        }
        let mut current = base.clone();
        for &v in &kill {
            current.remove_vertex(v);
        }
        let target = (0..16u32).find(|v| !kill.contains(v)).expect("a survivor");
        for _ in 0..births {
            let v = current.add_vertex();
            prop_assert!(v as usize >= 16, "ids are never reused");
            current.add_edge(v, target);
        }
        let candidates: Vec<usize> = (0..16).collect();
        let diff = GraphDiff::between(&base, &current, &candidates);
        let mut replayed = base.clone();
        diff.apply_to(&mut replayed).expect("tombstone diff applies");
        prop_assert_eq!(&replayed, &current);
        // Resurrecting a tombstone is a typed error, not a panic.
        let victim = *kill.iter().next().unwrap() as usize;
        let mut forged = diff.clone();
        for entry in &mut forged.changed {
            if entry.slot == victim {
                entry.alive = true;
            }
        }
        let mut scratch = base.clone();
        prop_assert!(forged.apply_to(&mut scratch).is_err());
        prop_assert_eq!(&scratch, &base, "rejected diff must leave the base untouched");
    }
}

/// The empty delta: nothing changed between base and current. The diff is
/// empty, the delta still round-trips, and applying it is the identity.
#[test]
fn empty_delta_is_identity() {
    let ops: Vec<(u8, u32, u32)> = (0..12).map(|i| (1u8, i, i + 3)).collect();
    let batches = batches_from_ops(&ops, 24, 4);
    let split = batches.len();
    let (base, current, changed) = base_and_current(&batches, split, 1, None, false, 11);
    assert!(changed.is_empty(), "no mutations after the base");
    let delta = CheckpointDelta::between(&base, &current, &changed, 1, 2).expect("empty delta");
    assert!(delta.graph.is_empty());
    assert!(delta.labels.is_empty());
    assert_delta_equals_full(&base, &current, &changed);
}

/// A delta applied to the wrong base is a typed error, never a panic or a
/// silently wrong checkpoint.
#[test]
fn delta_rejects_the_wrong_base() {
    let ops: Vec<(u8, u32, u32)> = (0..40).map(|i: u32| ((i % 4) as u8, i, i * 7)).collect();
    let batches = batches_from_ops(&ops, 24, 4);
    let split = batches.len() / 2;
    assert!(split >= 2, "need room for a one-batch-earlier wrong base");
    let (base, current, changed) = base_and_current(&batches, split, 1, None, false, 3);
    let delta = CheckpointDelta::between(&base, &current, &changed, 1, 2).expect("delta");
    // A base one batch short of the real one: its timeline cannot chain
    // densely into the delta's suffix, so validation must fire.
    let (wrong_base, _, _) = base_and_current(&batches, split - 1, 1, None, false, 3);
    assert!(delta.apply(&wrong_base).is_err());
}
