//! Crash/resume determinism: a streaming run killed mid-stream and
//! restarted from `(snapshot, compacted log tail)` must reproduce the
//! uninterrupted run's [`TimelineStats`] timeline **exactly** (`wall_ms`
//! aside) — for each of the four `StreamSource` families, at parallelism
//! 1, 2 and 8.
//!
//! The interrupted run exercises the whole durable path: checkpoint at one
//! batch boundary, write-ahead the following batches into the tail,
//! compact part of the tail into a fresh snapshot, serialise the
//! checkpoint to bytes, drop every live object ("the crash"), decode,
//! fast-forward a freshly reconstructed source to the cursor, resume, and
//! finish the stream.

use apg::core::{AdaptiveConfig, AdaptivePartitioner, StreamCheckpoint, StreamingRunner};
use apg::graph::{gen, DynGraph};
use apg::partition::InitialStrategy;
use apg::streams::{
    CdrConfig, CdrStream, ForestFireConfig, ForestFireSource, PowerLawGrowth, RestartableSource,
    TwitterConfig, TwitterStream,
};

const SEED: u64 = 41;

fn runner(graph: &DynGraph, parallelism: usize) -> StreamingRunner {
    let cfg = AdaptiveConfig::new(6).parallelism(parallelism);
    StreamingRunner::new(AdaptivePartitioner::with_strategy(
        graph,
        InitialStrategy::Hash,
        &cfg,
        SEED,
    ))
    .iterations_per_batch(3)
    .record_log(true)
}

/// Runs `total` batches uninterrupted; then reruns with a kill at
/// `snapshot_at` + `crash_at`, resumes from decoded bytes, and asserts the
/// two runs are indistinguishable.
fn check_kill_and_resume<S, F>(
    name: &str,
    graph: &DynGraph,
    make_source: F,
    parallelism: usize,
    total: usize,
    snapshot_at: usize,
    crash_at: usize,
) where
    S: RestartableSource,
    F: Fn() -> S,
{
    assert!(snapshot_at < crash_at && crash_at < total);

    // The uninterrupted reference run.
    let mut reference = runner(graph, parallelism);
    let mut source = make_source();
    assert_eq!(reference.drive(&mut source, total), total);

    // The interrupted run: snapshot early, write-ahead until the crash.
    let bytes = {
        let mut r = runner(graph, parallelism);
        let mut s = make_source();
        assert_eq!(r.drive(&mut s, snapshot_at), snapshot_at);
        let mut ckpt = r.checkpoint();
        for _ in snapshot_at..crash_at {
            let batch = apg::streams::StreamSource::next_batch(&mut s)
                .expect("stream ended before the crash point");
            r.ingest(&batch);
            ckpt.append(batch);
        }
        assert_eq!(ckpt.cursor(), s.cursor(), "cursor must track the source");
        // Fold part of the write-ahead tail into the snapshot: resume goes
        // through a genuinely compacted checkpoint, not a fresh one.
        ckpt.compact((crash_at - snapshot_at) / 2);
        ckpt.to_bytes()
        // r, s, ckpt drop here: the crash.
    };

    // Recovery: decode, rebuild the source, resume, finish the stream.
    let ckpt = StreamCheckpoint::from_bytes(&bytes)
        .unwrap_or_else(|e| panic!("{name}: checkpoint failed to decode: {e}"));
    let mut s = make_source();
    s.fast_forward(ckpt.cursor());
    let mut resumed = StreamingRunner::resume(ckpt);
    assert_eq!(resumed.timeline().len(), crash_at);
    assert_eq!(resumed.drive(&mut s, total - crash_at), total - crash_at);

    // Byte-identical observables (TimelineStats equality ignores wall_ms
    // only; the projection pins every deterministic field literally).
    assert_eq!(
        resumed.timeline(),
        reference.timeline(),
        "{name}@{parallelism}: timeline diverged after resume"
    );
    let project = |r: &StreamingRunner| -> String {
        r.timeline()
            .iter()
            .map(|t| format!("{:?}", t.deterministic_fields()))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(project(&resumed), project(&reference));
    assert_eq!(
        resumed.partitioner().graph(),
        reference.partitioner().graph(),
        "{name}@{parallelism}: graph diverged"
    );
    assert_eq!(
        resumed.partitioner().partitioning(),
        reference.partitioner().partitioning(),
        "{name}@{parallelism}: assignment diverged"
    );
    assert_eq!(
        resumed.partitioner().cut_edges(),
        reference.partitioner().cut_edges()
    );
    assert_eq!(resumed.log(), reference.log(), "replay logs diverged");
    resumed.partitioner().audit();

    // The run must have been busy enough to prove something.
    let migrations: usize = reference.timeline().iter().map(|t| t.migrations).sum();
    assert!(migrations > 0, "{name}: too quiet to prove anything");
}

#[test]
fn cdr_stream_survives_kill_and_resume() {
    let config = CdrConfig {
        initial_subscribers: 3_000,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(config.initial_subscribers);
    for parallelism in [1usize, 2, 8] {
        check_kill_and_resume(
            "cdr",
            &graph,
            || CdrStream::new(config, SEED),
            parallelism,
            16,
            5,
            11,
        );
    }
}

#[test]
fn twitter_stream_survives_kill_and_resume() {
    let config = TwitterConfig {
        initial_users: 2_000,
        ..TwitterConfig::default()
    };
    let graph = DynGraph::with_vertices(config.initial_users);
    for parallelism in [1usize, 2, 8] {
        check_kill_and_resume(
            "twitter",
            &graph,
            || TwitterStream::new(config, SEED).with_clock(17.0, 600.0),
            parallelism,
            9,
            3,
            6,
        );
    }
}

#[test]
fn forest_fire_burst_survives_kill_and_resume() {
    let base = DynGraph::from(&gen::holme_kim(4_000, 5, 0.1, 9));
    let cfg = ForestFireConfig::burst(400, SEED);
    for parallelism in [1usize, 2, 8] {
        check_kill_and_resume(
            "forest-fire",
            &base,
            || ForestFireSource::new(&base, &cfg, 50),
            parallelism,
            8,
            2,
            5,
        );
    }
}

#[test]
fn power_law_growth_survives_kill_and_resume() {
    let base = DynGraph::from(&gen::holme_kim(3_000, 5, 0.1, 9));
    for parallelism in [1usize, 2, 8] {
        check_kill_and_resume(
            "powerlaw-growth",
            &base,
            || PowerLawGrowth::new(&base, 4, 150, SEED),
            parallelism,
            8,
            3,
            6,
        );
    }
}

/// The checkpoint file is the *only* carrier of state: resuming it in a
/// fresh "process" (everything reconstructed from bytes and constructor
/// arguments) still matches — and compaction depth is immaterial.
#[test]
fn compaction_depth_does_not_change_recovery() {
    let config = CdrConfig {
        initial_subscribers: 2_000,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(config.initial_subscribers);

    let base_ckpt = {
        let mut r = runner(&graph, 2);
        let mut s = CdrStream::new(config, SEED);
        r.drive(&mut s, 4);
        let mut ckpt = r.checkpoint();
        for _ in 0..6 {
            let batch = apg::streams::StreamSource::next_batch(&mut s).unwrap();
            r.ingest(&batch);
            ckpt.append(batch);
        }
        ckpt
    };

    let mut outcomes = Vec::new();
    for depth in [0usize, 2, 6] {
        let mut ckpt = StreamCheckpoint::from_bytes(&base_ckpt.to_bytes()).unwrap();
        ckpt.compact(depth);
        assert_eq!(ckpt.cursor(), base_ckpt.cursor());
        let mut r = StreamingRunner::resume(ckpt);
        let mut s = CdrStream::new(config, SEED);
        s.fast_forward(base_ckpt.cursor());
        r.drive(&mut s, 3);
        outcomes.push((
            r.timeline().to_vec(),
            r.partitioner().cut_edges(),
            r.partitioner().partitioning().clone(),
        ));
    }
    assert_eq!(outcomes[0], outcomes[1]);
    assert_eq!(outcomes[0], outcomes[2]);
}
