//! Property-based tests of the core invariants, over randomly generated
//! graphs, configurations and mutation sequences.

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, QuotaRule, StreamingRunner};
use apg::graph::{gen, CsrGraph, DeltaLog, DynGraph, Graph, UpdateBatch};
use apg::partition::{cut_edges, CapacityModel, InitialStrategy, Partitioning};

/// Turns a fuzzed op-stream into `UpdateBatch`es of at most `chunk` deltas,
/// tracking the slot count a consumer graph would have so generated ids
/// stay in a meaningful range (dangling ids are still legal — they reject).
fn batches_from_ops(ops: &[(u8, u32, u32)], base_slots: usize, chunk: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut batch = UpdateBatch::new();
    let mut slots = base_slots;
    for &(op, a, b) in ops {
        let range = (slots + batch.num_new_vertices()).max(1) as u32;
        match op {
            0 => {
                batch.add_vertex(vec![a % range]);
            }
            1 => batch.add_edge(a % range, b % range),
            2 => batch.remove_edge(a % range, b % range),
            3 => batch.remove_vertex(a % range),
            _ => {
                let n = batch.num_new_vertices();
                if n >= 2 {
                    batch.connect_new(a as usize % n, b as usize % n);
                }
            }
        }
        if batch.len() >= chunk {
            slots += batch.num_new_vertices();
            out.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        out.push(batch);
    }
    out
}

/// Random simple graph as an edge list over `n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 4)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR construction produces a simple symmetric graph.
    #[test]
    fn csr_is_simple_and_symmetric(g in arb_graph(60)) {
        let mut seen_arcs = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
            prop_assert!(!nbrs.contains(&v), "no self loops");
            for &w in nbrs {
                prop_assert!(g.neighbors(w).contains(&v), "symmetric");
            }
            seen_arcs += nbrs.len();
        }
        prop_assert_eq!(seen_arcs, 2 * g.num_edges());
    }

    /// Every initial strategy yields a complete, in-range assignment, and
    /// the streaming strategies respect capacities.
    #[test]
    fn initial_strategies_are_well_formed(g in arb_graph(60), seed in 0u64..1000) {
        let caps = CapacityModel::vertex_balanced(g.num_vertices(), 5, 1.10);
        for strategy in InitialStrategy::ALL {
            let p = strategy.assign(&g, &caps, seed);
            prop_assert_eq!(p.num_vertices(), g.num_vertices());
            let total: usize = p.sizes().iter().sum();
            prop_assert_eq!(total, g.num_vertices());
            if matches!(strategy, InitialStrategy::DeterministicGreedy | InitialStrategy::MinNeighbors) {
                for part in 0..5u16 {
                    prop_assert!(p.size(part) <= caps.capacity(part));
                }
            }
        }
    }

    /// After any number of iterations, the partitioner's incremental
    /// accounting (cut edges, sizes, degree mass) matches a recount, and
    /// capacities hold.
    #[test]
    fn partitioner_invariants_hold(
        g in arb_graph(50),
        iters in 0usize..40,
        s in 0.1f64..1.0,
        seed in 0u64..500,
    ) {
        let cfg = AdaptiveConfig::new(4).willingness(s);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed);
        p.run_for(iters);
        p.audit(); // cut + sizes + degree mass
        prop_assert_eq!(p.cut_edges(), cut_edges(p.graph(), p.partitioning()));
    }

    /// Arbitrary interleavings of mutations and iterations never corrupt
    /// the accounting.
    #[test]
    fn mutations_preserve_invariants(
        ops in proptest::collection::vec(0u8..6, 1..60),
        seed in 0u64..500,
    ) {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(3);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, seed);
        let mut rng_state = seed;
        let mut next = move |m: usize| {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng_state >> 33) as usize) % m
        };
        for op in ops {
            let slots = p.graph().num_vertices() as u32;
            match op {
                0 => { p.iterate(); }
                1 => { p.add_vertex_with_edges(&[next(slots as usize) as u32]); }
                2 => { p.add_edge(next(slots as usize) as u32, next(slots as usize) as u32); }
                3 => { p.remove_edge(next(slots as usize) as u32, next(slots as usize) as u32); }
                4 => { p.remove_vertex(next(slots as usize) as u32); }
                _ => { p.run_for(2); }
            }
            // The graph must never lose its last vertex for placement to work.
            if p.graph().num_live_vertices() == 0 {
                p.add_vertex_with_edges(&[]);
            }
        }
        p.audit();
    }

    /// The quota rule really is worst-case safe: admitted migrations can
    /// never overflow any destination, whatever the demand pattern.
    #[test]
    fn quota_admissions_never_overflow(
        remaining in proptest::collection::vec(0usize..50, 2..8),
        demands in proptest::collection::vec((0u16..8, 0u16..8), 0..300),
    ) {
        use apg::core::QuotaTable;
        let k = remaining.len() as u16;
        let mut q = QuotaTable::new(QuotaRule::PerSourceSplit, &remaining);
        let mut admitted = vec![0usize; k as usize];
        for (from, to) in demands {
            let (from, to) = (from % k, to % k);
            if from != to && q.try_consume(from, to) {
                admitted[to as usize] += 1;
            }
        }
        for (to, &count) in admitted.iter().enumerate() {
            prop_assert!(count <= remaining[to], "destination {to} overflowed");
        }
    }

    /// METIS-style partitioning covers every vertex with a valid id and
    /// respects its imbalance bound (plus rounding slack on tiny graphs).
    #[test]
    fn metis_output_is_well_formed(g in arb_graph(40), k in 2u16..6) {
        let p = apg::metis::partition(&g, k, 1.10, 7);
        prop_assert_eq!(p.num_vertices(), g.num_vertices());
        let total: usize = p.sizes().iter().sum();
        prop_assert_eq!(total, g.num_vertices());
        let bound = ((g.num_vertices() as f64 / k as f64) * 1.10).ceil() as usize + 2;
        for part in 0..k {
            prop_assert!(p.size(part) <= bound, "partition {part} holds {}", p.size(part));
        }
    }

    /// DynGraph mutations keep adjacency sorted, symmetric and tombstone-
    /// consistent under arbitrary operation sequences.
    #[test]
    fn dyngraph_consistency(ops in proptest::collection::vec((0u8..4, 0u32..30, 0u32..30), 0..200)) {
        let mut g = DynGraph::with_vertices(10);
        for (op, a, b) in ops {
            match op {
                0 => { g.add_vertex(); }
                1 => { g.add_edge(a % g.num_vertices().max(1) as u32, b % g.num_vertices().max(1) as u32); }
                2 => { g.remove_edge(a % g.num_vertices().max(1) as u32, b % g.num_vertices().max(1) as u32); }
                _ => { g.remove_vertex(a % g.num_vertices().max(1) as u32); }
            }
        }
        let mut arcs = 0usize;
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            for &w in nbrs {
                prop_assert!(g.is_vertex(w), "edge to tombstone {w}");
                prop_assert!(g.neighbors(w).contains(&v));
            }
            arcs += nbrs.len();
        }
        prop_assert_eq!(arcs, 2 * g.num_edges());
    }

    /// Replaying a recorded delta log onto a fresh graph with the same
    /// initial population reproduces an identical graph — the delta
    /// model's replay contract.
    #[test]
    fn delta_log_replay_reproduces_graph(
        ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 1..150),
        base in 2usize..12,
    ) {
        let mut live = DynGraph::with_vertices(base);
        let mut log = DeltaLog::new();
        for batch in batches_from_ops(&ops, base, 13) {
            batch.apply(&mut live);
            log.record(batch);
        }
        let mut fresh = DynGraph::with_vertices(base);
        let replay_report = log.replay(&mut fresh);
        prop_assert_eq!(&fresh, &live, "replayed graph diverged");
        prop_assert_eq!(replay_report.new_vertices.len() + base, live.num_vertices());
    }

    /// The partitioner's `apply_batch` is the same function as
    /// `UpdateBatch::apply` on a bare graph (identical graph and report),
    /// and the incrementally-maintained cut equals a `cut_edges` recount
    /// after every batch of a streaming run.
    #[test]
    fn streaming_ingestion_keeps_cut_exact(
        ops in proptest::collection::vec((0u8..5, 0u32..60, 0u32..60), 1..100),
        seed in 0u64..300,
    ) {
        let g = gen::mesh3d(3, 3, 3);
        let cfg = AdaptiveConfig::new(3);
        let mut runner = StreamingRunner::new(
            AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, seed),
        )
        .iterations_per_batch(1);
        let mut plain = DynGraph::from(&g);
        for batch in batches_from_ops(&ops, plain.num_vertices(), 9) {
            let plain_report = batch.apply(&mut plain);
            let stats = runner.ingest(&batch);
            prop_assert_eq!(stats.vertices_added, plain_report.new_vertices.len());
            prop_assert_eq!(stats.vertices_removed, plain_report.vertices_removed);
            prop_assert_eq!(stats.edges_added, plain_report.edges_added);
            prop_assert_eq!(stats.edges_removed, plain_report.edges_removed);
            prop_assert_eq!(runner.partitioner().graph(), &plain, "mutation paths drifted");
            prop_assert_eq!(
                runner.partitioner().cut_edges(),
                cut_edges(runner.partitioner().graph(), runner.partitioner().partitioning()),
                "incremental cut drifted from recount"
            );
            runner.partitioner().audit();
        }
    }

    /// Cut ratio is invariant under partition relabelling.
    #[test]
    fn cut_invariant_under_relabel(g in arb_graph(40), seed in 0u64..100) {
        let caps = CapacityModel::vertex_balanced(g.num_vertices(), 4, 1.5);
        let p = InitialStrategy::Random.assign(&g, &caps, seed);
        // Swap labels 0 <-> 3.
        let relabeled: Vec<u16> = p.as_slice().iter().map(|&x| match x {
            0 => 3,
            3 => 0,
            other => other,
        }).collect();
        let q = Partitioning::from_assignment(relabeled, 4);
        prop_assert_eq!(cut_edges(&g, &p), cut_edges(&g, &q));
    }
}

/// Engine-level property: arbitrary interleavings of supersteps and
/// mutation batches keep the engine's accounting consistent and deliver
/// messages only to live vertices.
mod engine_props {
    use super::*;
    use apg::pregel::{Context, EngineBuilder, MutationBatch, VertexProgram};

    struct Gossip;
    impl VertexProgram for Gossip {
        type Value = u64;
        type Message = u8;
        fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
            *ctx.value_mut() += messages.len() as u64;
            ctx.send_to_neighbors(1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn engine_survives_random_op_sequences(
            ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 1..40),
            seed in 0u64..200,
        ) {
            let g = gen::mesh3d(3, 3, 3);
            let mut e = EngineBuilder::new(3)
                .seed(seed)
                .adaptive(AdaptiveConfig::new(3))
                .build(&g, Gossip);
            for (op, a, b) in ops {
                let slots = e.num_total_slots() as u32;
                let mut batch = MutationBatch::new();
                match op {
                    0 => { e.superstep(); }
                    1 => {
                        batch.add_vertex(vec![a % slots]);
                        e.apply_mutations(batch);
                    }
                    2 => {
                        batch.add_edge(a % slots, b % slots);
                        e.apply_mutations(batch);
                    }
                    3 => {
                        batch.remove_edge(a % slots, b % slots);
                        e.apply_mutations(batch);
                    }
                    _ => {
                        // Never remove the last vertex: placement of later
                        // additions needs a live population.
                        if e.num_live_vertices() > 1 {
                            batch.remove_vertex(a % slots);
                            e.apply_mutations(batch);
                        }
                    }
                }
            }
            e.superstep();
            e.audit();
        }
    }
}
