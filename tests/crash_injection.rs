//! Crash-injection harness for the file-backed durability layer.
//!
//! Simulates killing the checkpoint writer at arbitrary byte offsets —
//! truncation (the write never finished), torn frames, single-bit flips —
//! across a sweep of offsets in every on-disk artefact, and proves the
//! recovery contract: **every** outcome is either
//!
//! * full recovery to the last durable checkpoint, after which finishing
//!   the stream reproduces the uninterrupted run's timeline, graph and
//!   assignment exactly, or
//! * a typed, recoverable [`StoreError`] / [`DecodeError`] —
//!
//! never a panic (every recovery runs under `catch_unwind`) and never
//! silent divergence (every successful recovery is driven to the end of
//! the stream and compared against the uninterrupted reference).
//!
//! The same binary carries the decoder-totality property tests: random
//! byte flips and truncations over the golden fixtures must decode to a
//! typed error or to a value that re-encodes byte-identically, without
//! panicking and without over-allocating (a `#[global_allocator]` wrapper
//! asserts the peak-allocation bound a corrupt length field might try to
//! break).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use apg::core::{
    fold_timeline_digest, AdaptiveConfig, AdaptivePartitioner, CheckpointStore, StreamCheckpoint,
    StreamingRunner, TimelineStats, TIMELINE_DIGEST_SEED,
};
use apg::graph::{DeltaLog, DynGraph, UpdateBatch};
use apg::partition::{InitialStrategy, Partitioning};
use apg::persist::store::{crc32, StoreConfig, StoreError, MAGIC_STORE_SNAPSHOT};
use apg::persist::{format, Decode, DecodeError, Encode};
use apg::streams::{CdrConfig, CdrStream, RestartableSource, SourceCursor, StreamSource};

// ---------------------------------------------------------------------------
// Peak-allocation tracking: a corrupt varint must never force a huge
// allocation. The bound is generous (other tests in this binary run
// concurrently and share the counters) but orders of magnitude below the
// multi-gigabyte `Vec::with_capacity` an unclamped decoded length would
// attempt.

struct PeakTracking;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

fn note_alloc(size: usize) {
    let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Resets the peak to the current live count and returns the baseline.
fn reset_peak() -> usize {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(live, Ordering::Relaxed);
    live
}

/// Bytes the peak rose above `baseline` since [`reset_peak`].
fn peak_above(baseline: usize) -> usize {
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(baseline)
}

/// Decoding a few-hundred-byte artefact must stay far below this, even
/// with concurrent test threads allocating into the shared counters.
const DECODE_PEAK_BOUND: usize = 64 << 20;

// ---------------------------------------------------------------------------
// The streamed workload: a CDR stream over a fixed subscriber population,
// deterministic at every parallelism level.

const SEED: u64 = 23;
const SUBSCRIBERS: usize = 500;
const TOTAL: usize = 10;
/// First snapshot boundary.
const SNAP_AT: usize = 3;
/// Second snapshot boundary (the install whose interruption is injected).
const SNAP2_AT: usize = 7;

fn cdr_config() -> CdrConfig {
    CdrConfig {
        initial_subscribers: SUBSCRIBERS,
        ..CdrConfig::default()
    }
}

fn cdr() -> CdrStream {
    CdrStream::new(cdr_config(), SEED)
}

fn runner() -> StreamingRunner {
    let graph = DynGraph::with_vertices(SUBSCRIBERS);
    let cfg = AdaptiveConfig::new(4).parallelism(2);
    StreamingRunner::new(AdaptivePartitioner::with_strategy(
        &graph,
        InitialStrategy::Hash,
        &cfg,
        SEED,
    ))
    .iterations_per_batch(2)
}

/// Small rotation threshold so the write-ahead tail spans several
/// segments and the sweeps exercise sealed-segment handling.
fn store_config() -> StoreConfig {
    StoreConfig {
        segment_rotate_bytes: 512,
        fsync: true,
        ..StoreConfig::default()
    }
}

/// [`store_config`] with `max_chain_len: 0`: every install rebases, i.e.
/// writes a full snapshot. The classic install-interruption sweep below
/// was written around the root-flip commit point and keeps using this;
/// the delta-chain sweeps further down build their own chained stages.
fn full_only_config() -> StoreConfig {
    StoreConfig {
        max_chain_len: 0,
        ..store_config()
    }
}

/// Everything deterministic a finished run exposes. `Vec<TimelineStats>`
/// equality already ignores `wall_ms`.
#[derive(Debug, PartialEq)]
struct Outcome {
    timeline: Vec<TimelineStats>,
    digest: u64,
    batches_ingested: usize,
    cut: usize,
    graph: DynGraph,
    partitioning: Partitioning,
}

fn outcome_of(r: &StreamingRunner) -> Outcome {
    Outcome {
        timeline: r.timeline().to_vec(),
        digest: r.timeline_digest(),
        batches_ingested: r.batches_ingested(),
        cut: r.partitioner().cut_edges(),
        graph: r.partitioner().graph().clone(),
        partitioning: r.partitioner().partitioning().clone(),
    }
}

/// The uninterrupted reference run.
fn reference_outcome() -> Outcome {
    let mut r = runner();
    let mut s = cdr();
    assert_eq!(r.drive(&mut s, TOTAL), TOTAL);
    outcome_of(&r)
}

// ---------------------------------------------------------------------------
// Scratch directories and directory-level injection plumbing.

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("apg-crash-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).unwrap();
    for entry in fs::read_dir(src).unwrap().flatten() {
        fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn file_names(dir: &Path) -> Vec<String> {
    let mut names: Vec<String> = fs::read_dir(dir)
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

/// Segment files in sequence order — the order the writer filled them.
fn segment_files(dir: &Path) -> Vec<String> {
    let mut segs: Vec<(u64, String)> = file_names(dir)
        .into_iter()
        .filter_map(|name| {
            let seq: u64 = name
                .strip_prefix("seg-")?
                .strip_suffix(".bin")?
                .parse()
                .ok()?;
            Some((seq, name))
        })
        .collect();
    segs.sort();
    segs.into_iter().map(|(_, name)| name).collect()
}

/// Writes the full durable history into `stages/…`, copying the directory
/// at each durable milestone:
///
/// * `pre-install2`  — root = snapshot@SNAP_AT, 4-batch write-ahead tail;
/// * `post-install2` — root = snapshot@SNAP2_AT, empty tail;
/// * `final`         — root = snapshot@SNAP2_AT, 3-batch tail (clean end).
fn build_stages(stages: &Path) -> (PathBuf, PathBuf, PathBuf) {
    let live = stages.join("live");
    let pre2 = stages.join("pre-install2");
    let post2 = stages.join("post-install2");
    let done = stages.join("final");

    let (mut store, rec) = CheckpointStore::open(&live, full_only_config()).unwrap();
    assert!(
        rec.checkpoint.is_none(),
        "fresh directory must recover empty"
    );
    let mut r = runner();
    let mut s = cdr();
    assert_eq!(r.drive(&mut s, SNAP_AT), SNAP_AT);
    store.install(&mut r).unwrap();
    for _ in SNAP_AT..SNAP2_AT {
        let batch = s.next_batch().unwrap();
        r.ingest(&batch);
        store.append(&batch).unwrap();
    }
    copy_dir(&live, &pre2);
    let report = store.install(&mut r).unwrap();
    assert!(
        !report.incremental,
        "full-only config must never chain a delta"
    );
    copy_dir(&live, &post2);
    for _ in SNAP2_AT..TOTAL {
        let batch = s.next_batch().unwrap();
        r.ingest(&batch);
        store.append(&batch).unwrap();
    }
    copy_dir(&live, &done);

    // The sweeps need a multi-segment tail to mean anything.
    assert!(
        segment_files(&pre2).len() >= 2,
        "rotation threshold too large: the pre-install tail fits one segment"
    );
    (pre2, post2, done)
}

/// Recovers whatever is durable in `dir`, resumes it, finishes the stream,
/// and returns `(batches recovered, final outcome)`.
fn recover_and_finish(dir: &Path) -> Result<(usize, Outcome), StoreError> {
    let (_store, rec) = CheckpointStore::open(dir, store_config())?;
    let ckpt = rec
        .checkpoint
        .ok_or(StoreError::Corrupt("no durable snapshot to recover"))?;
    let mut r = StreamingRunner::resume(ckpt);
    let recovered = r.batches_ingested();
    assert!(recovered <= TOTAL, "recovered past the end of the stream");
    let mut s = cdr();
    s.fast_forward(SourceCursor::at(recovered as u64));
    assert_eq!(r.drive(&mut s, TOTAL - recovered), TOTAL - recovered);
    Ok((recovered, outcome_of(&r)))
}

/// [`recover_and_finish`] under `catch_unwind`: a panic anywhere in the
/// recovery path fails the sweep with the injection context attached.
fn recover_no_panic(dir: &Path, context: &str) -> Result<(usize, Outcome), StoreError> {
    match catch_unwind(AssertUnwindSafe(|| recover_and_finish(dir))) {
        Ok(result) => result,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("recovery PANICKED under injection [{context}]: {msg}");
        }
    }
}

/// Byte offsets worth attacking in a frame file: every header byte, every
/// frame boundary ± 1, and a stride over the rest.
fn sweep_offsets(bytes: &[u8]) -> Vec<usize> {
    let len = bytes.len();
    let mut offsets: Vec<usize> = (0..len.min(8)).collect();
    // Frame boundaries, parsed from the length prefixes (frames are
    // `[len u32][crc u32][seq u64][payload]` after the 6-byte header).
    let mut pos = 6usize;
    while pos + 16 <= len {
        let frame_len =
            u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let next = pos.saturating_add(16).saturating_add(frame_len);
        for off in [pos.saturating_sub(1), pos, pos + 1, next.saturating_sub(1)] {
            if off < len {
                offsets.push(off);
            }
        }
        if next <= pos || next > len {
            break;
        }
        pos = next;
    }
    let stride = (len / 48).max(1);
    offsets.extend((0..len).step_by(stride));
    if len > 0 {
        offsets.push(len - 1);
    }
    offsets.sort_unstable();
    offsets.dedup();
    offsets
}

// ---------------------------------------------------------------------------
// Sweep 1: the writer is killed mid-append at an arbitrary byte offset.
// Everything after the kill point was never written, so recovery must
// ALWAYS succeed, landing on the durable prefix, and finishing the stream
// must reproduce the uninterrupted run exactly.

#[test]
fn kill_at_any_tail_offset_recovers_the_durable_prefix() {
    let stages = Scratch::new("kill-stages");
    let (pre2, _, _) = build_stages(&stages.0);
    let reference = reference_outcome();
    let work = Scratch::new("kill-work");

    let segments = segment_files(&pre2);
    let mut recovered_counts = std::collections::BTreeSet::new();
    let mut injections = 0usize;
    for (i, segment) in segments.iter().enumerate() {
        let pristine = fs::read(pre2.join(segment)).unwrap();
        for &cut in sweep_offsets(&pristine)
            .iter()
            .chain([pristine.len()].iter())
        {
            // A kill at byte `cut` of segment `i`: later segments were
            // never created, this one stops at the cut.
            copy_dir(&pre2, &work.0);
            for later in &segments[i + 1..] {
                fs::remove_file(work.0.join(later)).unwrap();
            }
            fs::write(work.0.join(segment), &pristine[..cut]).unwrap();

            let context = format!("truncate {segment} at {cut}");
            let (recovered, outcome) = recover_no_panic(&work.0, &context)
                .unwrap_or_else(|e| panic!("kill must always recover [{context}]: {e}"));
            assert!(
                (SNAP_AT..=SNAP2_AT).contains(&recovered),
                "[{context}] recovered {recovered} batches, outside the durable range"
            );
            assert_eq!(
                outcome, reference,
                "[{context}] diverged from the uninterrupted run"
            );
            recovered_counts.insert(recovered);
            injections += 1;
        }
    }
    assert!(
        recovered_counts.len() >= 3,
        "sweep too coarse: only recovery points {recovered_counts:?} were exercised"
    );
    assert!(injections >= 40, "sweep too small: {injections} injections");
}

// ---------------------------------------------------------------------------
// Sweep 2: a single flipped bit anywhere on disk. The outcome must be
// either a typed error (damaged durable artefact detected) or full
// recovery that still matches the uninterrupted run — never a panic,
// never a silently wrong timeline.

#[test]
fn bit_flips_anywhere_are_typed_errors_or_exact_recovery() {
    let stages = Scratch::new("flip-stages");
    let (_, _, done) = build_stages(&stages.0);
    let reference = reference_outcome();
    let work = Scratch::new("flip-work");

    let mut recoveries = 0usize;
    let mut typed_errors = 0usize;
    for name in file_names(&done) {
        let pristine = fs::read(done.join(&name)).unwrap();
        for &off in &sweep_offsets(&pristine) {
            for mask in [0x01u8, 0x80] {
                let mut damaged = pristine.clone();
                damaged[off] ^= mask;
                copy_dir(&done, &work.0);
                fs::write(work.0.join(&name), &damaged).unwrap();

                let context = format!("flip {name}[{off}] ^ {mask:#04x}");
                match recover_no_panic(&work.0, &context) {
                    Ok((_, outcome)) => {
                        assert_eq!(
                            outcome, reference,
                            "[{context}] recovered but diverged — silent corruption"
                        );
                        recoveries += 1;
                    }
                    Err(StoreError::Io { .. }) => {
                        panic!("[{context}] flipped bits must never surface as I/O errors")
                    }
                    Err(_) => typed_errors += 1,
                }
            }
        }
    }
    // Both arms of the contract must actually have been exercised.
    assert!(recoveries > 0, "no flip recovered — sweep proves nothing");
    assert!(typed_errors > 0, "no flip errored — sweep proves nothing");
}

// ---------------------------------------------------------------------------
// Sweep 3: the writer dies *inside* install_snapshot. Until the manifest
// rename lands, the old root must recover; after it, the new one.

#[test]
fn interrupted_snapshot_install_preserves_a_consistent_root() {
    let stages = Scratch::new("install-stages");
    let (pre2, post2, _) = build_stages(&stages.0);
    let reference = reference_outcome();
    let work = Scratch::new("install-work");

    // The artefacts the second install writes, taken from the completed
    // image: the new snapshot file, the fresh segment, the flipped
    // manifest.
    let new_snapshot = file_names(&post2)
        .into_iter()
        .find(|n| n.starts_with("snap-") && !pre2.join(n).exists())
        .expect("install2 wrote a new snapshot");
    let fresh_segment = segment_files(&post2)
        .into_iter()
        .find(|n| !pre2.join(n).exists())
        .expect("install2 opened a fresh segment");
    let snap_bytes = fs::read(post2.join(&new_snapshot)).unwrap();
    let manifest_bytes = fs::read(post2.join("MANIFEST")).unwrap();

    // Kill mid-snapshot-write: partial snap file, manifest not flipped.
    // The old root must recover at every cut, including cut == len (the
    // snapshot fully written but never named).
    for &cut in sweep_offsets(&snap_bytes)
        .iter()
        .chain([snap_bytes.len()].iter())
    {
        copy_dir(&pre2, &work.0);
        fs::write(work.0.join(&new_snapshot), &snap_bytes[..cut]).unwrap();
        let context = format!("install killed at snap byte {cut}");
        let (recovered, outcome) = recover_no_panic(&work.0, &context)
            .unwrap_or_else(|e| panic!("[{context}] old root must recover: {e}"));
        assert_eq!(recovered, SNAP2_AT, "[{context}]");
        assert_eq!(outcome, reference, "[{context}]");
    }

    // Kill after the fresh segment was created, and again after the new
    // manifest was written to its temp name — but before the rename: the
    // pointer flip is the only commit point.
    for with_tmp_manifest in [false, true] {
        copy_dir(&pre2, &work.0);
        fs::write(work.0.join(&new_snapshot), &snap_bytes).unwrap();
        fs::copy(post2.join(&fresh_segment), work.0.join(&fresh_segment)).unwrap();
        if with_tmp_manifest {
            fs::write(work.0.join("MANIFEST.tmp"), &manifest_bytes).unwrap();
        }
        let context = format!("install killed before rename (tmp={with_tmp_manifest})");
        let (recovered, outcome) = recover_no_panic(&work.0, &context)
            .unwrap_or_else(|e| panic!("[{context}] old root must recover: {e}"));
        assert_eq!(recovered, SNAP2_AT, "[{context}]");
        assert_eq!(outcome, reference, "[{context}]");
    }

    // And the completed install recovers the new root.
    copy_dir(&post2, &work.0);
    let (recovered, outcome) = recover_no_panic(&work.0, "completed install").unwrap();
    assert_eq!(recovered, SNAP2_AT);
    assert_eq!(outcome, reference);
}

/// A store-level frame can be intact while its *payload* violates the
/// checkpoint codec: that must surface as the typed `Decode` arm, the
/// recoverable signal that a foreign or hand-edited file was planted.
#[test]
fn valid_frame_with_garbage_payload_is_a_typed_decode_error() {
    let stages = Scratch::new("garbage-stages");
    let (_, _, done) = build_stages(&stages.0);
    let work = Scratch::new("garbage-work");
    copy_dir(&done, &work.0);

    let snapshot = file_names(&work.0)
        .into_iter()
        .rfind(|n| n.starts_with("snap-"))
        .unwrap();
    // A perfectly framed snapshot file whose payload is noise.
    let payload = b"not a checkpoint at all";
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC_STORE_SNAPSHOT);
    bytes.extend_from_slice(&format::VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let mut body = 0u64.to_le_bytes().to_vec();
    body.extend_from_slice(payload);
    bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    bytes.extend_from_slice(&body);
    fs::write(work.0.join(&snapshot), &bytes).unwrap();

    match CheckpointStore::open(&work.0, store_config()) {
        Err(StoreError::Decode(_)) => {}
        other => panic!("garbage payload must be StoreError::Decode, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Delta-chain sweeps: the same crash discipline over chained incremental
// installs. A light-churn workload (a handful of edge flips per batch on a
// fixed vertex set) keeps every non-first install genuinely incremental —
// the store only chains a delta when it beats the full snapshot on size —
// and keeps the live edge set O(1), which the footprint test below needs.

const CHAIN_VERTICES: usize = 400;
const CHAIN_TOTAL: usize = 8;

/// The edges batch `i` inserts: six disjoint `(a, a+1)` pairs inside a
/// block that cycles mod 3 so consecutive batches never touch the same
/// slots.
fn chain_edges(i: usize) -> Vec<(u32, u32)> {
    let block = (i % 3) as u32 * 130;
    (0..6u32)
        .map(|k| {
            let a = block + (i as u32 * 7 + k * 11) % 120;
            (a, a + 1)
        })
        .collect()
}

/// Batch `i` of the light-churn schedule: insert this batch's block,
/// remove the block inserted two batches ago (still untouched since —
/// the blocks are disjoint across any three consecutive batches).
fn chain_batch(i: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for (u, v) in chain_edges(i) {
        batch.add_edge(u, v);
    }
    if i >= 2 {
        for (u, v) in chain_edges(i - 2) {
            batch.remove_edge(u, v);
        }
    }
    batch
}

fn chain_runner() -> StreamingRunner {
    let graph = DynGraph::with_vertices(CHAIN_VERTICES);
    let cfg = AdaptiveConfig::new(4).parallelism(2);
    StreamingRunner::new(AdaptivePartitioner::with_strategy(
        &graph,
        InitialStrategy::Hash,
        &cfg,
        SEED,
    ))
    .iterations_per_batch(2)
}

/// The uninterrupted reference over the light-churn schedule.
fn chain_reference() -> Outcome {
    let mut r = chain_runner();
    for i in 0..CHAIN_TOTAL {
        r.ingest(&chain_batch(i));
    }
    outcome_of(&r)
}

/// Builds a two-link delta chain with durable milestones:
///
/// * `pre-top` — root = delta@4 (one link), batches 4.. not yet appended;
/// * `final`   — root = delta@6 (two links), 2-batch write-ahead tail.
fn build_chain_stages(stages: &Path) -> (PathBuf, PathBuf) {
    let live = stages.join("live");
    let pre_top = stages.join("pre-top");
    let done = stages.join("final");

    let (mut store, rec) = CheckpointStore::open(&live, store_config()).unwrap();
    assert!(rec.checkpoint.is_none(), "fresh directory recovers empty");
    let mut r = chain_runner();
    let drive = |r: &mut StreamingRunner, store: &mut CheckpointStore, from: usize, to: usize| {
        for i in from..to {
            let batch = chain_batch(i);
            r.ingest(&batch);
            store.append(&batch).unwrap();
        }
    };
    drive(&mut r, &mut store, 0, 2);
    let report = store.install(&mut r).unwrap();
    assert!(!report.incremental, "the first install is the chain base");
    drive(&mut r, &mut store, 2, 4);
    let report = store.install(&mut r).unwrap();
    assert!(report.incremental, "light churn must chain a delta");
    assert_eq!(store.store().chain_len(), 1);
    copy_dir(&live, &pre_top);
    drive(&mut r, &mut store, 4, 6);
    let report = store.install(&mut r).unwrap();
    assert!(report.incremental, "light churn must chain a second delta");
    assert_eq!(store.store().chain_len(), 2);
    drive(&mut r, &mut store, 6, CHAIN_TOTAL);
    copy_dir(&live, &done);
    (pre_top, done)
}

/// Recovers `dir`, replays the rest of the light-churn schedule, and
/// returns `(batches recovered, final outcome)`.
fn recover_chain_and_finish(dir: &Path) -> Result<(usize, Outcome), StoreError> {
    let (_store, rec) = CheckpointStore::open(dir, store_config())?;
    let ckpt = rec
        .checkpoint
        .ok_or(StoreError::Corrupt("no durable snapshot to recover"))?;
    let mut r = StreamingRunner::resume(ckpt);
    let recovered = r.batches_ingested();
    assert!(recovered <= CHAIN_TOTAL, "recovered past the stream's end");
    for i in recovered..CHAIN_TOTAL {
        r.ingest(&chain_batch(i));
    }
    Ok((recovered, outcome_of(&r)))
}

/// Runs `f` under `catch_unwind`, failing with the injection context on
/// panic.
fn no_panic<T>(context: &str, f: impl FnOnce() -> T) -> T {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => v,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            panic!("recovery PANICKED under injection [{context}]: {msg}");
        }
    }
}

/// Every single-bit flip and every truncation of every byte of both chain
/// links: recovery is a typed error or an exact match of the reference —
/// never a panic, never silent divergence.
#[test]
fn chain_link_corruption_is_typed_or_exact_recovery() {
    let stages = Scratch::new("chain-flip-stages");
    let (_, done) = build_chain_stages(&stages.0);
    let reference = chain_reference();
    let work = Scratch::new("chain-flip-work");

    let links: Vec<String> = file_names(&done)
        .into_iter()
        .filter(|n| n.starts_with("dsnap-"))
        .collect();
    assert_eq!(links.len(), 2, "stage must hold a two-link chain");
    let mut typed_errors = 0usize;
    for name in &links {
        let pristine = fs::read(done.join(name)).unwrap();
        for off in 0..pristine.len() {
            for damage in ["flip", "truncate"] {
                let bytes = if damage == "flip" {
                    let mut b = pristine.clone();
                    b[off] ^= 0x01;
                    b
                } else {
                    pristine[..off].to_vec()
                };
                copy_dir(&done, &work.0);
                fs::write(work.0.join(name), &bytes).unwrap();
                let context = format!("{damage} {name} at {off}");
                match no_panic(&context, || recover_chain_and_finish(&work.0)) {
                    Ok((_, outcome)) => assert_eq!(
                        outcome, reference,
                        "[{context}] recovered but diverged — silent corruption"
                    ),
                    Err(StoreError::Io { .. }) => {
                        panic!("[{context}] damage must never surface as I/O errors")
                    }
                    Err(_) => typed_errors += 1,
                }
            }
        }
    }
    assert!(typed_errors > 0, "no damage errored — sweep proves nothing");
}

/// The writer dies between writing a new chain link and flipping the
/// manifest — including every partial write of the link file. The
/// un-named link is invisible: recovery lands exactly on the previous
/// root (the last intact chain prefix) and finishing the stream matches
/// the uninterrupted run.
#[test]
fn kill_between_chain_append_and_manifest_flip_recovers_the_prefix() {
    let stages = Scratch::new("chain-kill-stages");
    let (pre_top, done) = build_chain_stages(&stages.0);
    let reference = chain_reference();
    let work = Scratch::new("chain-kill-work");

    let top = file_names(&done)
        .into_iter()
        .filter(|n| n.starts_with("dsnap-"))
        .rfind(|n| !pre_top.join(n).exists())
        .expect("the second install wrote a new chain link");
    let top_bytes = fs::read(done.join(&top)).unwrap();

    for cut in (0..=top_bytes.len()).rev() {
        copy_dir(&pre_top, &work.0);
        fs::write(work.0.join(&top), &top_bytes[..cut]).unwrap();
        let context = format!("chain link written to byte {cut}, manifest not flipped");
        let (recovered, outcome) = no_panic(&context, || recover_chain_and_finish(&work.0))
            .unwrap_or_else(|e| panic!("[{context}] the prefix root must recover: {e}"));
        assert_eq!(recovered, 4, "[{context}] must land on the intact prefix");
        assert_eq!(outcome, reference, "[{context}] diverged");
    }
}

// ---------------------------------------------------------------------------
// The bounded timeline window: resume must reposition the source from the
// explicit batches_ingested counter, not from the retained suffix length.

#[test]
fn bounded_window_resume_repositions_by_batches_ingested() {
    const WINDOW: usize = 3;
    const CKPT_AT: usize = 6;
    const _: () = assert!(WINDOW < CKPT_AT && CKPT_AT < TOTAL);

    // Unbounded and windowed uninterrupted references.
    let mut full = runner();
    assert_eq!(full.drive(&mut cdr(), TOTAL), TOTAL);
    let mut windowed = runner().timeline_window(WINDOW);
    assert_eq!(windowed.drive(&mut cdr(), TOTAL), TOTAL);

    // The interrupted windowed run: checkpoint once eviction has begun.
    let bytes = {
        let mut r = runner().timeline_window(WINDOW);
        let mut s = cdr();
        assert_eq!(r.drive(&mut s, CKPT_AT), CKPT_AT);
        let ckpt = r.checkpoint();
        assert_eq!(ckpt.timeline.len(), WINDOW, "suffix must be window-sized");
        assert_eq!(ckpt.batches_ingested, CKPT_AT);
        // The satellite bugfix pin: with timeline.len() == 3 and a stream
        // position of 6, a cursor derived from the suffix length would
        // silently rewind the source by three batches.
        assert_eq!(ckpt.cursor(), SourceCursor::at(CKPT_AT as u64));
        assert_eq!(ckpt.cursor(), s.cursor(), "cursor must track the source");
        ckpt.to_bytes()
    };

    let ckpt = StreamCheckpoint::from_bytes(&bytes).unwrap();
    let mut s = cdr();
    s.fast_forward(ckpt.cursor());
    let mut resumed = StreamingRunner::resume(ckpt);
    assert_eq!(resumed.drive(&mut s, TOTAL - CKPT_AT), TOTAL - CKPT_AT);

    // Indistinguishable from the uninterrupted windowed run...
    assert_eq!(resumed.timeline(), windowed.timeline());
    assert_eq!(resumed.timeline_digest(), windowed.timeline_digest());
    assert_eq!(resumed.batches_ingested(), TOTAL);
    assert_eq!(resumed.timeline_evicted(), TOTAL - WINDOW);
    // ...and from the unbounded run wherever they can be compared: same
    // final graph/assignment, the retained suffix is literally the full
    // run's last WINDOW entries, and the digest replays the evicted
    // prefix entry for entry.
    assert_eq!(resumed.partitioner().graph(), full.partitioner().graph());
    assert_eq!(
        resumed.partitioner().partitioning(),
        full.partitioner().partitioning()
    );
    assert_eq!(resumed.timeline(), &full.timeline()[TOTAL - WINDOW..]);
    let mut digest = TIMELINE_DIGEST_SEED;
    for stats in &full.timeline()[..TOTAL - WINDOW] {
        digest = fold_timeline_digest(digest, stats);
    }
    assert_eq!(resumed.timeline_digest(), digest);
}

/// The windowed checkpoint's timeline contribution is O(window), not
/// O(stream). The graph itself legitimately grows with the stream, so the
/// assertion compares windowed against unbounded checkpoints *at the same
/// stream position* — graph and partitioner bytes cancel exactly (the
/// window changes nothing about ingestion), leaving only timeline bytes.
#[test]
fn windowed_checkpoint_size_is_flat_in_stream_length() {
    let size_after = |window: usize, batches: usize| -> usize {
        let mut r = runner().timeline_window(window);
        assert_eq!(r.drive(&mut cdr(), batches), batches);
        r.checkpoint().to_bytes().len()
    };
    let win_short = size_after(2, 4);
    let win_long = size_after(2, 9);
    let unb_short = size_after(usize::MAX, 4);
    let unb_long = size_after(usize::MAX, 9);

    // The window never makes the artefact bigger...
    assert!(win_short < unb_short, "{win_short} vs {unb_short}");
    assert!(win_long < unb_long, "{win_long} vs {unb_long}");
    // ...the unbounded gap widens with every evicted entry (2 evicted at
    // batch 4, 7 at batch 9)...
    let gap_short = unb_short - win_short;
    let gap_long = unb_long - win_long;
    assert!(
        gap_long > gap_short,
        "timeline eviction saved nothing extra: gap {gap_short} -> {gap_long}"
    );
    // ...and per-batch growth of the windowed artefact is strictly below
    // the unbounded one: the timeline term has dropped out of the slope.
    assert!(
        win_long - win_short < unb_long - unb_short,
        "windowed checkpoint grew as fast as the unbounded one: \
         {win_short}->{win_long} vs {unb_short}->{unb_long}"
    );

    // The *durable* footprint is O(window + chain), too. Installing on
    // every batch of the steady-state light-churn schedule (the live edge
    // set is O(1) by construction) and comparing live bytes at the same
    // chain phase — `max_chain_len` installs apart, so both sides hold an
    // equally long chain — tripling the stream must leave live bytes
    // essentially flat. An O(stream) store would show a 2.5x ratio here;
    // rebase + GC keep it near 1x, and 2x is the generous failure line.
    let live_after = |total: usize| -> u64 {
        let scratch = Scratch::new(&format!("flat-live-{total}"));
        let (mut store, _) = CheckpointStore::open(&scratch.0, store_config()).unwrap();
        let mut r = chain_runner().timeline_window(2);
        let mut incremental = 0usize;
        for i in 0..total {
            let batch = chain_batch(i);
            r.ingest(&batch);
            store.append(&batch).unwrap();
            if store.install(&mut r).unwrap().incremental {
                incremental += 1;
            }
            assert!(store.store().chain_len() <= store_config().max_chain_len);
        }
        assert!(
            incremental * 2 > total,
            "light churn must chain deltas: {incremental}/{total} incremental"
        );
        store.store().live_bytes()
    };
    let phase = store_config().max_chain_len + 1;
    let live_short = live_after(12);
    let live_long = live_after(12 + 2 * phase);
    assert!(
        live_long < 2 * live_short,
        "durable footprint grew with the stream: {live_short} -> {live_long}"
    );
}

// ---------------------------------------------------------------------------
// Decoder totality over the golden fixtures: every single-byte corruption
// and truncation of every fixture must decode to a typed error or to a
// value that re-encodes canonically — never a panic, never a blow-up in
// allocated memory.

fn fixture_bytes(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read(&path).unwrap_or_else(|e| panic!("missing golden fixture {path:?}: {e}"))
}

/// Decodes `bytes` as fixture kind `which`, asserting totality: no panic
/// (proptest/the test harness catches those), bounded peak allocation,
/// and canonical re-encoding on success. Returns whether it decoded.
fn assert_total_decode(which: usize, bytes: &[u8], context: &str) -> bool {
    let baseline = reset_peak();
    let reencoded: Option<Vec<u8>> = match which {
        0 => DynGraph::from_snapshot_bytes(bytes)
            .ok()
            .map(|g| g.to_snapshot_bytes()),
        1 => DeltaLog::from_segment_bytes(bytes)
            .ok()
            .map(|l| l.to_segment_bytes()),
        _ => StreamCheckpoint::from_bytes(bytes)
            .ok()
            .map(|c| c.to_bytes()),
    };
    let peak = peak_above(baseline);
    assert!(
        peak < DECODE_PEAK_BOUND,
        "[{context}] decode allocated {peak} bytes from a {}-byte input",
        bytes.len()
    );
    match reencoded {
        None => false,
        Some(out) => {
            assert_eq!(
                out, bytes,
                "[{context}] decoded value does not re-encode canonically"
            );
            true
        }
    }
}

const FIXTURES: [&str; 3] = ["graph_v4.apgg", "log_v4.apgl", "checkpoint_v4.apgc"];

/// Exhaustive single-byte corruption: every offset, three masks, every
/// fixture, decoded by every decoder (cross-decoding covers the
/// wrong-magic paths).
#[test]
fn decoder_survives_every_single_byte_corruption() {
    for name in FIXTURES {
        let golden = fixture_bytes(name);
        for off in 0..golden.len() {
            for mask in [0x01u8, 0x80, 0xff] {
                let mut bytes = golden.clone();
                bytes[off] ^= mask;
                for which in 0..3 {
                    assert_total_decode(which, &bytes, &format!("{name}[{off}]^{mask:#04x}"));
                }
            }
        }
        // Every truncation, too.
        for cut in 0..golden.len() {
            for which in 0..3 {
                assert!(
                    !assert_total_decode(which, &golden[..cut], &format!("{name}[..{cut}]")),
                    "a strict prefix of {name} decoded successfully"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Random multi-byte corruption + truncation stacks on the fixtures:
    /// still total, still canonical, still allocation-bounded.
    #[test]
    fn decoder_totality_under_fuzzed_corruption(
        which in 0usize..3,
        flips in proptest::collection::vec((0usize..4096, 1u8..255), 1..6),
        cut in 0usize..4096,
        truncate in 0u8..2,
    ) {
        let golden = fixture_bytes(FIXTURES[which]);
        let mut bytes = golden.clone();
        for &(off, mask) in &flips {
            let at = off % bytes.len();
            bytes[at] ^= mask;
        }
        if truncate == 1 {
            let keep = cut % (bytes.len() + 1);
            bytes.truncate(keep);
        }
        let mutated = bytes != golden;
        for decoder in 0..3 {
            let decoded = assert_total_decode(
                decoder,
                &bytes,
                &format!("fuzz {} flips={flips:?}", FIXTURES[which]),
            );
            // An actually-mutated artefact may still decode (a flip in a
            // don't-care f64 bit pattern, say) — canonical re-encoding was
            // already asserted. But the untouched golden bytes MUST decode
            // under their own decoder.
            if !mutated && decoder == which {
                prop_assert!(decoded, "pristine fixture failed to decode");
            }
        }
    }

    /// A corrupt length varint must fail fast, not allocate: plant a
    /// maximal varint where a sequence length lives and decode.
    #[test]
    fn huge_claimed_lengths_never_allocate(
        which in 0usize..3,
        off in 0usize..4096,
    ) {
        let mut bytes = fixture_bytes(FIXTURES[which]);
        // A 10-byte varint encoding u64::MAX, spliced mid-payload (past
        // the 6-byte header) — wherever it lands, decode must reject it
        // without reserving u64::MAX elements.
        let at = 6 + off % (bytes.len() - 6);
        let huge = [0xffu8, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        let tail: Vec<u8> = bytes.split_off(at);
        bytes.extend_from_slice(&huge);
        bytes.extend_from_slice(&tail);
        for decoder in 0..3 {
            assert_total_decode(decoder, &bytes, &format!("huge varint at {at}"));
        }
    }
}

/// Typed-error taxonomy: the whole decode surface returns `DecodeError`
/// variants, and the store wraps them — no `unwrap` escape hatch survives
/// the recovery path.
#[test]
fn corruption_errors_are_typed_and_displayable() {
    let golden = fixture_bytes("checkpoint_v4.apgc");
    let mut wrong_version = golden.clone();
    wrong_version[4..6].copy_from_slice(&(format::VERSION + 7).to_le_bytes());
    let errors = [
        StreamCheckpoint::from_bytes(&golden[..golden.len() - 1]).unwrap_err(),
        StreamCheckpoint::from_bytes(&wrong_version).unwrap_err(),
        StreamCheckpoint::from_bytes(b"").unwrap_err(),
    ];
    for err in errors {
        assert!(
            matches!(
                err,
                DecodeError::UnexpectedEof { .. }
                    | DecodeError::Corrupt(_)
                    | DecodeError::BadMagic { .. }
                    | DecodeError::UnsupportedVersion { .. }
                    | DecodeError::TrailingBytes { .. }
            ),
            "unexpected error shape: {err:?}"
        );
        assert!(!err.to_string().is_empty());
    }
}

/// The `UpdateBatch` payloads inside write-ahead frames decode totally
/// too (they cross the store boundary on recovery).
#[test]
fn tail_batch_payloads_decode_totally() {
    let mut batch = UpdateBatch::new();
    let a = batch.add_vertex(vec![1, 2]);
    let b = batch.add_vertex(vec![]);
    batch.connect_new(a, b);
    batch.add_edge(0, 9);
    batch.remove_vertex(3);
    let golden = batch.to_bytes();
    for off in 0..golden.len() {
        for mask in [0x01u8, 0x80, 0xff] {
            let mut bytes = golden.clone();
            bytes[off] ^= mask;
            let baseline = reset_peak();
            if let Ok(decoded) = UpdateBatch::from_bytes(&bytes) {
                assert_eq!(decoded.to_bytes(), bytes, "batch re-encode not canonical");
            }
            let peak = peak_above(baseline);
            assert!(peak < DECODE_PEAK_BOUND, "batch decode allocated {peak}");
        }
    }
}
