//! Correctness and determinism of the partition-aware serving layer.
//!
//! Two contracts:
//!
//! 1. **Traversal correctness** — `Query::KHop` answered by the router is
//!    equivalent to a brute-force BFS over the same snapshot: the same
//!    vertex set, and hop/locality accounting that re-derives from the
//!    assignment. Pinned by proptest over random graphs with interleaved
//!    `UpdateBatch` churn, so the equivalence holds mid-stream, not just on
//!    pristine graphs.
//! 2. **Serve-timeline determinism** — a streaming run with an interleaved
//!    serve phase produces a byte-identical `ServeStats` timeline at
//!    `parallelism` = 1, 2 and 8 (same pinning style as
//!    `streaming_determinism.rs`).

use std::collections::BTreeSet;

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
use apg::graph::{DynGraph, Graph, UpdateBatch, VertexId};
use apg::partition::InitialStrategy;
use apg::prelude::{Query, QueryMix, QueryRouter, QueryWorkload, ServeStats};
use apg::streams::{CdrConfig, CdrStream};

/// Reference implementation: plain BFS to depth `k`, no shared code with
/// the router's traversal beyond the graph API.
fn brute_force_khop(g: &DynGraph, anchor: VertexId, k: usize) -> BTreeSet<VertexId> {
    let mut reached = BTreeSet::new();
    if !g.is_vertex(anchor) {
        return reached;
    }
    let mut frontier = vec![anchor];
    let mut seen: BTreeSet<VertexId> = [anchor].into();
    for _ in 0..k {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in g.neighbors(v) {
                if seen.insert(w) {
                    reached.insert(w);
                    next.push(w);
                }
            }
        }
        frontier = next;
    }
    reached
}

/// Turns a fuzzed op-stream into `UpdateBatch`es of at most `chunk` deltas
/// (same scheme as `proptest_invariants.rs`).
fn batches_from_ops(ops: &[(u8, u32, u32)], base_slots: usize, chunk: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut batch = UpdateBatch::new();
    let mut slots = base_slots;
    for &(op, a, b) in ops {
        let range = (slots + batch.num_new_vertices()).max(1) as u32;
        match op {
            0 => {
                batch.add_vertex(vec![a % range]);
            }
            1 => batch.add_edge(a % range, b % range),
            2 => batch.remove_edge(a % range, b % range),
            3 => batch.remove_vertex(a % range),
            _ => {
                let n = batch.num_new_vertices();
                if n >= 2 {
                    batch.connect_new(a as usize % n, b as usize % n);
                }
            }
        }
        if batch.len() >= chunk {
            slots += batch.num_new_vertices();
            out.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        out.push(batch);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After every churn batch, `KHop` answered by the router equals a
    /// brute-force BFS on the same snapshot — same vertex set, hop count =
    /// set size, and local hops re-derived from the assignment.
    #[test]
    fn khop_matches_brute_force_bfs_under_churn(
        n in 4usize..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
        ops in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 0..80),
        k in 0usize..5,
        seed in 0u64..500,
    ) {
        let mut graph = DynGraph::with_vertices(n);
        for &(u, v) in &edges {
            if (u as usize) < n && (v as usize) < n {
                graph.add_edge(u, v);
            }
        }
        let config = AdaptiveConfig::builder(3).parallelism(1).build().unwrap();
        let mut partitioner =
            AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, seed);

        for batch in batches_from_ops(&ops, n, 16) {
            partitioner.apply_batch(&batch);
            partitioner.iterate();
            let g = partitioner.graph();
            let p = partitioner.partitioning();
            let router = QueryRouter::new(g, p);
            for anchor in g.vertices().take(12) {
                let reference = brute_force_khop(g, anchor, k);
                let reached: BTreeSet<VertexId> =
                    router.k_hop_vertices(anchor, k).into_iter().collect();
                prop_assert_eq!(&reached, &reference, "anchor {} depth {}", anchor, k);

                let outcome = router.answer(&Query::KHop { anchor, k });
                prop_assert!(outcome.found);
                prop_assert_eq!(outcome.result_size, reference.len());
                prop_assert_eq!(outcome.hops, reference.len());
                let home = p.partition_of(anchor);
                let local = reference
                    .iter()
                    .filter(|&&v| p.partition_of(v) == home)
                    .count();
                prop_assert_eq!(outcome.local_hops, local);
            }
        }
    }

    /// `Neighborhood` is exactly `KHop { k: 1 }` — both results and
    /// accounting — on any churned snapshot.
    #[test]
    fn neighborhood_is_one_hop(
        n in 4usize..32,
        edges in proptest::collection::vec((0u32..32, 0u32..32), 1..80),
        seed in 0u64..500,
    ) {
        let mut graph = DynGraph::with_vertices(n);
        for &(u, v) in &edges {
            if (u as usize) < n && (v as usize) < n {
                graph.add_edge(u, v);
            }
        }
        let config = AdaptiveConfig::builder(4).parallelism(1).build().unwrap();
        let partitioner =
            AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, seed);
        let router = QueryRouter::new(partitioner.graph(), partitioner.partitioning());
        for anchor in partitioner.graph().vertices() {
            prop_assert_eq!(
                router.answer(&Query::Neighborhood(anchor)),
                router.answer(&Query::KHop { anchor, k: 1 })
            );
        }
    }
}

/// One streaming run with an interleaved serve phase; returns the serve
/// timeline.
fn serve_timeline(parallelism: usize, mix: QueryMix) -> Vec<ServeStats> {
    const SEED: u64 = 31;
    let config = CdrConfig {
        initial_subscribers: 3_000,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(config.initial_subscribers);
    let cfg = AdaptiveConfig::new(8).parallelism(parallelism);
    let mut runner = StreamingRunner::new(AdaptivePartitioner::with_strategy(
        &graph,
        InitialStrategy::Hash,
        &cfg,
        SEED,
    ))
    .iterations_per_batch(3)
    .serve_workload(QueryWorkload::new(mix, 96, SEED ^ 0xBEEF).khop_depth(3));
    runner.drive(&mut CdrStream::new(config, SEED), 12);
    runner.serve_timeline().to_vec()
}

/// The serve timeline is byte-identical at parallelism 1, 2 and 8, for
/// every query mix — and the projection check pins every deterministic
/// field, not just `ServeStats` equality.
#[test]
fn serve_timeline_is_parallelism_invariant() {
    for mix in [
        QueryMix::Uniform,
        QueryMix::DegreeBiased,
        QueryMix::CommunityBiased,
    ] {
        let sequential = serve_timeline(1, mix);
        assert_eq!(sequential.len(), 12);
        for parallelism in [2, 8] {
            let parallel = serve_timeline(parallelism, mix);
            assert_eq!(sequential, parallel, "{mix:?} at parallelism {parallelism}");
            for (a, b) in sequential.iter().zip(&parallel) {
                assert_eq!(
                    a.deterministic_fields(),
                    b.deterministic_fields(),
                    "{mix:?} round {} fields drifted",
                    a.round
                );
            }
        }
        let hops: usize = sequential.iter().map(|s| s.hops).sum();
        assert!(hops > 0, "{mix:?} scenario too quiet to prove anything");
    }
}
