//! Property tests pinning the active-set sweep's exactness contract:
//! visiting only active vertices must produce **exactly** the history an
//! exhaustive every-live-vertex sweep produces, for any graph, seed,
//! willingness and interleaved mutation schedule — because randomness is
//! keyed per `(seed, vertex, iteration)` and skipped vertices provably
//! decide *Stay*.
//!
//! The exhaustive reference runs through the same code path with the
//! `#[doc(hidden)]` [`AdaptiveConfig::sweep_exhaustive`] knob, so the two
//! modes differ only in which slots the decision phase visits.

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, IterationStats};
use apg::graph::{gen, CsrGraph, Graph};
use apg::partition::InitialStrategy;

/// Random simple graph as an edge list over `n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 4)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

/// Runs the scripted scenario — iteration blocks interleaved with a fuzzed
/// mutation stream — in one sweep mode; returns everything observable.
fn run_scenario(
    graph: &CsrGraph,
    ops: &[(u8, u32, u32)],
    k: u16,
    s: f64,
    seed: u64,
    exhaustive: bool,
) -> (Vec<IterationStats>, Vec<u16>, usize) {
    let cfg = AdaptiveConfig::new(k)
        .willingness(s)
        .parallelism(2)
        .sweep_exhaustive(exhaustive);
    let mut p = AdaptivePartitioner::with_strategy(graph, InitialStrategy::Hash, &cfg, seed);
    let mut history = p.run_for(3);
    for chunk in ops.chunks(3) {
        for &(op, a, b) in chunk {
            let range = p.graph().num_vertices().max(1) as u32;
            match op % 4 {
                0 => {
                    p.add_vertex_with_edges(&[a % range, b % range]);
                }
                1 => {
                    p.add_edge(a % range, b % range);
                }
                2 => {
                    p.remove_edge(a % range, b % range);
                }
                _ => {
                    p.remove_vertex(a % range);
                }
            }
        }
        history.extend(p.run_for(2));
    }
    history.extend(p.run_for(3));
    p.audit();
    (history, p.partitioning().as_slice().to_vec(), p.cut_edges())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Active-set sweep ≡ exhaustive sweep: identical `IterationStats`
    /// histories, final assignments and cut counts under interleaved
    /// mutations, for any seed and willingness.
    #[test]
    fn active_sweep_equals_exhaustive_sweep(
        g in arb_graph(48),
        ops in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 0..24),
        seed in 0u64..1000,
        s_percent in 10u32..101,
    ) {
        let s = s_percent as f64 / 100.0;
        let active = run_scenario(&g, &ops, 4, s, seed, false);
        let exhaustive = run_scenario(&g, &ops, 4, s, seed, true);
        prop_assert_eq!(&active.0, &exhaustive.0, "histories diverged");
        prop_assert_eq!(&active.1, &exhaustive.1, "assignments diverged");
        prop_assert_eq!(active.2, exhaustive.2, "cut counts diverged");
    }

    /// The active-set invariant holds at every observation point, not just
    /// at the end: every *inactive* vertex provably decides Stay — no
    /// partition outweighs its current one among its neighbours
    /// (`audit()` checks exactly this, plus the set's own accounting).
    #[test]
    fn active_set_invariant_holds_under_churn(
        g in arb_graph(40),
        ops in proptest::collection::vec((0u8..5, 0u32..64, 0u32..64), 0..20),
        seed in 0u64..1000,
    ) {
        let cfg = AdaptiveConfig::new(3).willingness(0.6).parallelism(2);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed);
        p.audit();
        for &(op, a, b) in &ops {
            let range = p.graph().num_vertices().max(1) as u32;
            match op % 4 {
                0 => {
                    p.add_vertex_with_edges(&[a % range, b % range]);
                }
                1 => {
                    p.add_edge(a % range, b % range);
                }
                2 => {
                    p.remove_edge(a % range, b % range);
                }
                _ => {
                    p.remove_vertex(a % range);
                }
            }
            p.audit();
            p.iterate();
            p.audit();
        }
    }

    /// Once quiet, the sweep's work tracks the boundary, not the graph:
    /// a converged mesh keeps iterating without visiting interior
    /// vertices, and the visited count equals the active set.
    #[test]
    fn quiet_iterations_visit_only_the_active_set(seed in 0u64..200) {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(4).max_iterations(400);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed);
        p.run_to_convergence();
        let live = p.graph().num_live_vertices();
        for _ in 0..3 {
            let before = p.num_active_vertices();
            let (_, profile) = p.iterate_profiled();
            prop_assert_eq!(profile.active_before, before);
            prop_assert!(profile.visited <= before);
            prop_assert!(profile.visited < live, "quiet sweep still O(|V|)");
        }
        p.audit();
    }
}
