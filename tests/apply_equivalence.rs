//! Property tests pinning the parallel apply's equivalence contract: the
//! sharded apply phase (fan migrants over a `ShardPlan`, merge per-shard
//! outcomes in shard order) must produce **exactly** the state the serial
//! `apply_move` loop produces — same `IterationStats` history, same
//! assignment, same incremental cut, same degree-mass vector, same active
//! set — for any graph, seed, willingness, parallelism and interleaved
//! `UpdateBatch` churn. The migration set is fixed before the apply phase
//! and each vertex moves at most once, which is what makes the fan-out
//! exact rather than approximate.
//!
//! The serial reference runs through the same code path with the
//! `#[doc(hidden)]` [`AdaptiveConfig::apply_serial`] knob, so the two modes
//! differ only in how the pending migration set is committed.
//!
//! The same file pins the adaptive iteration budget: skipping provably
//! no-op iterations (empty active set, default `drain_floor` of zero) must
//! never change the recorded `TimelineStats` relative to a fixed budget.

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, IterationStats, StreamingRunner};
use apg::graph::{gen, CsrGraph, Graph, UpdateBatch};
use apg::partition::InitialStrategy;
use apg::streams::{CdrConfig, CdrStream, PowerLawGrowth};

/// Random simple graph as an edge list over `n` vertices.
fn arb_graph(max_n: usize) -> impl Strategy<Value = CsrGraph> {
    (2usize..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..n * 4)
            .prop_map(move |edges| CsrGraph::from_edges(n, &edges))
    })
}

/// Everything the apply phase can influence.
#[derive(Debug, Clone, PartialEq)]
struct Observed {
    history: Vec<IterationStats>,
    assignment: Vec<u16>,
    cut: usize,
    degree_mass: Vec<usize>,
    active: Vec<u32>,
}

/// Builds one fuzzed churn batch. `apply_batch` routes through the
/// tolerant mutators (unknown endpoints and duplicate edges are ignored),
/// so arbitrary op tuples are safe.
fn churn_batch(ops: &[(u8, u32, u32)], range: u32) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for &(op, a, b) in ops {
        let (a, b) = (a % range, b % range);
        match op % 4 {
            0 => {
                let v = batch.add_vertex(vec![a, b]);
                if op % 8 >= 4 {
                    let w = batch.add_vertex(vec![]);
                    batch.connect_new(v, w);
                }
            }
            1 => batch.add_edge(a, b),
            2 => batch.remove_edge(a, b),
            _ => batch.remove_vertex(a),
        }
    }
    batch
}

/// Runs iteration blocks interleaved with `UpdateBatch` churn in one apply
/// mode at one parallelism; returns everything observable.
fn run_scenario(
    graph: &CsrGraph,
    ops: &[(u8, u32, u32)],
    parallelism: usize,
    s: f64,
    seed: u64,
    serial_apply: bool,
) -> Observed {
    let cfg = AdaptiveConfig::new(4)
        .willingness(s)
        .parallelism(parallelism)
        .apply_serial(serial_apply);
    let mut p = AdaptivePartitioner::with_strategy(graph, InitialStrategy::Hash, &cfg, seed);
    let mut history = p.run_for(3);
    for chunk in ops.chunks(3) {
        let range = p.graph().num_vertices().max(1) as u32;
        p.apply_batch(&churn_batch(chunk, range));
        history.extend(p.run_for(2));
    }
    history.extend(p.run_for(3));
    p.audit();
    let active = (0..p.graph().num_vertices() as u32)
        .filter(|&v| p.is_active(v))
        .collect();
    Observed {
        history,
        assignment: p.partitioning().as_slice().to_vec(),
        cut: p.cut_edges(),
        degree_mass: p.degree_mass().to_vec(),
        active,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded apply ≡ serial apply at parallelism 1, 2 and 8: identical
    /// histories (including `max_partition`, the live-size peak), final
    /// assignments, cut counts, degree-mass vectors and active sets under
    /// interleaved `UpdateBatch` churn.
    #[test]
    fn parallel_apply_equals_serial_apply(
        g in arb_graph(48),
        ops in proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 0..24),
        seed in 0u64..1000,
        s_percent in 10u32..101,
    ) {
        let s = s_percent as f64 / 100.0;
        let reference = run_scenario(&g, &ops, 1, s, seed, true);
        for parallelism in [1usize, 2, 8] {
            let sharded = run_scenario(&g, &ops, parallelism, s, seed, false);
            prop_assert_eq!(&sharded.history, &reference.history,
                "histories diverged at parallelism {}", parallelism);
            prop_assert_eq!(&sharded.assignment, &reference.assignment,
                "assignments diverged at parallelism {}", parallelism);
            prop_assert_eq!(sharded.cut, reference.cut,
                "cut counts diverged at parallelism {}", parallelism);
            prop_assert_eq!(&sharded.degree_mass, &reference.degree_mass,
                "degree masses diverged at parallelism {}", parallelism);
            prop_assert_eq!(&sharded.active, &reference.active,
                "active sets diverged at parallelism {}", parallelism);
        }
    }

    /// The adaptive budget records exactly the fixed budget's timeline on
    /// growth streams, whether or not any iterations were skippable: with
    /// the default `drain_floor` of zero, only provably no-op iterations
    /// are skipped, and the skipped iterations are still charged to the
    /// budget and the RNG iteration counter.
    #[test]
    fn adaptive_budget_never_changes_the_timeline(seed in 0u64..200) {
        let base = apg::graph::DynGraph::from(&gen::mesh3d(4, 4, 3));
        let run = |fixed: bool| {
            let cfg = AdaptiveConfig::new(3).budget_fixed(fixed);
            let p = AdaptivePartitioner::with_strategy(
                &base, InitialStrategy::Hash, &cfg, seed,
            );
            let mut r = StreamingRunner::new(p).iterations_per_batch(12);
            let mut source = PowerLawGrowth::new(&base, 2, 5, seed ^ 0xAB);
            r.drive(&mut source, 6);
            r
        };
        let adaptive = run(false);
        let fixed = run(true);
        prop_assert_eq!(fixed.iterations_skipped(), 0);
        prop_assert_eq!(adaptive.timeline(), fixed.timeline());
        prop_assert_eq!(
            adaptive.partitioner().iteration(),
            fixed.partitioner().iteration()
        );
        prop_assert_eq!(
            adaptive.partitioner().partitioning(),
            fixed.partitioner().partitioning()
        );
        adaptive.partitioner().audit();
    }
}

/// A converged stream where the adaptive budget provably skips: the
/// regression pin for the "identical timelines, less work" claim (the
/// seed/scale pair is chosen so the active set fully drains mid-batch).
#[test]
fn adaptive_budget_skips_on_a_converged_stream() {
    let config = CdrConfig {
        initial_subscribers: 300,
        ..CdrConfig::default()
    };
    let graph = apg::graph::DynGraph::with_vertices(config.initial_subscribers);
    let run = |fixed: bool| {
        let cfg = AdaptiveConfig::new(2).willingness(1.0).budget_fixed(fixed);
        let p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 7);
        let mut r = StreamingRunner::new(p).iterations_per_batch(25);
        let mut stream = CdrStream::new(config, 7);
        r.drive(&mut stream, 8);
        r
    };
    let adaptive = run(false);
    let fixed = run(true);
    assert!(
        adaptive.iterations_skipped() > 0,
        "budget never drained — scenario no longer converges"
    );
    assert_eq!(adaptive.timeline(), fixed.timeline());
    assert_eq!(
        adaptive.partitioner().partitioning(),
        fixed.partitioner().partitioning()
    );
}

/// A non-zero `drain_floor` trades exactness for earlier stops; the run
/// must still be self-consistent (audit) even though its timeline may
/// legitimately differ from the fixed-budget one.
#[test]
fn drain_floor_runs_stay_consistent() {
    let base = apg::graph::DynGraph::from(&gen::mesh3d(5, 5, 4));
    let cfg = AdaptiveConfig::new(3).drain_floor(0.05);
    let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 13);
    let mut r = StreamingRunner::new(p).iterations_per_batch(10);
    let mut source = PowerLawGrowth::new(&base, 2, 6, 13);
    r.drive(&mut source, 5);
    r.partitioner().audit();
    assert_eq!(r.timeline().len(), 5);
}
