//! Property tests for the persistence layer: encode→decode round trips
//! over fuzzed graphs/batches/partitioner state, compaction-equals-replay,
//! the tombstone/extend edge cases persistence depends on — and a
//! demonstration that a broken codec round trip **shrinks** to a minimal
//! counterexample under the vendored proptest's minimiser.

use proptest::prelude::*;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, PartitionerState, StreamingRunner};
use apg::graph::{DeltaLog, DynGraph, Graph, UpdateBatch};
use apg::partition::{cut_edges, InitialStrategy};
use apg::persist::{Decode, Encode};
use apg::pregel::MutationBatch;

/// Turns a fuzzed op-stream into one `UpdateBatch`, tracking the slot
/// count a consumer graph would have (dangling ids are legal — they
/// reject at apply time).
fn batch_from_ops(ops: &[(u8, u32, u32)], base_slots: usize) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for &(op, a, b) in ops {
        let range = (base_slots + batch.num_new_vertices()).max(1) as u32;
        match op {
            0 => {
                batch.add_vertex(vec![a % range]);
            }
            1 => batch.add_edge(a % range, b % range),
            2 => batch.remove_edge(a % range, b % range),
            3 => batch.remove_vertex(a % range),
            _ => {
                let n = batch.num_new_vertices();
                if n >= 2 {
                    batch.connect_new(a as usize % n, b as usize % n);
                }
            }
        }
    }
    batch
}

/// Chunks a fuzzed op-stream into batches of at most `chunk` deltas.
fn batches_from_ops(ops: &[(u8, u32, u32)], base_slots: usize, chunk: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut slots = base_slots;
    for piece in ops.chunks(chunk) {
        let batch = batch_from_ops(piece, slots);
        slots += batch.num_new_vertices();
        out.push(batch);
    }
    out
}

/// A dynamic graph with organic tombstones, grown from a fuzzed op-stream.
fn graph_from_ops(ops: &[(u8, u32, u32)], base: usize) -> DynGraph {
    let mut g = DynGraph::with_vertices(base);
    for &(op, a, b) in ops {
        let range = g.num_vertices().max(1) as u32;
        match op {
            0 => {
                g.add_vertex();
            }
            1 => {
                g.add_edge(a % range, b % range);
            }
            2 => {
                g.remove_edge(a % range, b % range);
            }
            _ => {
                g.remove_vertex(a % range);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DynGraph snapshots round-trip exactly — tombstones, dense ids,
    /// edge counts and all — through both the raw codec and the framed
    /// container.
    #[test]
    fn graph_snapshot_round_trips(
        ops in proptest::collection::vec((0u8..4, 0u32..40, 0u32..40), 0..120),
        base in 1usize..12,
    ) {
        let g = graph_from_ops(&ops, base);
        let back = DynGraph::from_bytes(&g.to_bytes()).unwrap();
        prop_assert_eq!(&back, &g);
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.num_live_vertices(), g.num_live_vertices());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        let framed = DynGraph::from_snapshot_bytes(&g.to_snapshot_bytes()).unwrap();
        prop_assert_eq!(&framed, &g);
    }

    /// Restored graphs keep allocating ids densely: the next vertex id
    /// after a snapshot/restore equals the next id on the original, and
    /// tombstoned slots stay dead (never reused) on both sides.
    #[test]
    fn tombstone_slots_survive_restore(
        ops in proptest::collection::vec((0u8..4, 0u32..30, 0u32..30), 0..80),
        base in 1usize..10,
    ) {
        let mut original = graph_from_ops(&ops, base);
        let mut restored = DynGraph::from_bytes(&original.to_bytes()).unwrap();
        for v in 0..original.num_vertices() as u32 {
            prop_assert_eq!(restored.is_vertex(v), original.is_vertex(v));
            if !original.is_vertex(v) {
                // A tombstone is permanently dead on the restored side too.
                prop_assert!(!restored.remove_vertex(v));
                prop_assert!(!restored.add_edge(v, v.wrapping_add(1) % original.num_vertices().max(1) as u32));
            }
        }
        prop_assert_eq!(restored.add_vertex(), original.add_vertex());
    }

    /// UpdateBatch and DeltaLog round-trip, and a decoded log replays to
    /// the same graph as the original.
    #[test]
    fn batches_and_logs_round_trip(
        ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 0..150),
        base in 1usize..12,
    ) {
        let mut log = DeltaLog::new();
        for batch in batches_from_ops(&ops, base, 11) {
            prop_assert_eq!(&UpdateBatch::from_bytes(&batch.to_bytes()).unwrap(), &batch);
            log.record(batch);
        }
        let decoded = DeltaLog::from_segment_bytes(&log.to_segment_bytes()).unwrap();
        prop_assert_eq!(&decoded, &log);
        let mut a = DynGraph::with_vertices(base);
        let mut b = a.clone();
        let ra = log.replay(&mut a);
        let rb = decoded.replay(&mut b);
        prop_assert_eq!(a, b);
        prop_assert_eq!(ra, rb);
    }

    /// `UpdateBatch::extend` (the path `MutationBatch::extend` wraps)
    /// offsets appended placeholders so that applying `a.extend(b)` equals
    /// applying `a` then `b` — the contract checkpoint tails rely on when
    /// segments get merged.
    #[test]
    fn extend_equals_sequential_application(
        ops_a in proptest::collection::vec((0u8..5, 0u32..30, 0u32..30), 0..40),
        ops_b in proptest::collection::vec((0u8..5, 0u32..30, 0u32..30), 0..40),
        base in 1usize..10,
    ) {
        let a = batch_from_ops(&ops_a, base);
        let b = batch_from_ops(&ops_b, base + a.num_new_vertices());

        let mut sequential = DynGraph::with_vertices(base);
        let report_a = a.apply(&mut sequential);
        let report_b = b.apply(&mut sequential);

        let mut merged_batch = a.clone();
        merged_batch.extend(b.clone());
        // Mirror through the pregel wrapper so its extend stays pinned too.
        let mut mutation: MutationBatch = a.into();
        mutation.extend(b.into());
        prop_assert_eq!(mutation.as_update_batch(), &merged_batch);

        let mut merged = DynGraph::with_vertices(base);
        let report = merged_batch.apply(&mut merged);
        prop_assert_eq!(merged, sequential, "extend diverged from sequential apply");
        prop_assert_eq!(
            report.new_vertices.len(),
            report_a.new_vertices.len() + report_b.new_vertices.len()
        );
        prop_assert_eq!(report.edges_added, report_a.edges_added + report_b.edges_added);
        prop_assert_eq!(report.rejected, report_a.rejected + report_b.rejected);
    }

    /// Partitioner state round-trips through the codec, and the restored
    /// partitioner's *future* is identical: accounting matches a recount
    /// and the next iterations reproduce the original's.
    #[test]
    fn partitioner_state_round_trips(
        ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 0..60),
        warmup in 0usize..12,
        seed in 0u64..200,
    ) {
        let g = apg::graph::gen::mesh3d(3, 3, 3);
        let cfg = AdaptiveConfig::new(3).parallelism(1);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed);
        for batch in batches_from_ops(&ops, p.graph().num_vertices(), 7) {
            p.apply_batch(&batch);
        }
        p.run_for(warmup);

        let state = PartitionerState::from_bytes(&p.snapshot_state().to_bytes()).unwrap();
        let mut restored = AdaptivePartitioner::restore(state);
        prop_assert_eq!(restored.graph(), p.graph());
        prop_assert_eq!(restored.partitioning(), p.partitioning());
        prop_assert_eq!(restored.cut_edges(), p.cut_edges());
        prop_assert_eq!(restored.iteration(), p.iteration());
        prop_assert_eq!(restored.quiet_streak(), p.quiet_streak());
        prop_assert_eq!(
            restored.cut_edges(),
            cut_edges(restored.graph(), restored.partitioning())
        );
        restored.audit();
        // Same future: the RNG streams are keyed by (seed, shard,
        // iteration), all restored.
        prop_assert_eq!(restored.run_for(3), p.run_for(3));
        prop_assert_eq!(restored.partitioning(), p.partitioning());
    }

    /// Compacting any prefix of a checkpoint's tail yields a checkpoint
    /// whose resumed runner equals the full-replay one — compaction then
    /// replay is exactly full-log replay.
    #[test]
    fn compaction_then_replay_equals_full_replay(
        ops in proptest::collection::vec((0u8..5, 0u32..50, 0u32..50), 1..120),
        keep in 0usize..20,
        seed in 0u64..100,
    ) {
        let g = apg::graph::gen::mesh3d(3, 3, 3);
        let cfg = AdaptiveConfig::new(3).parallelism(1);
        let mut runner = StreamingRunner::new(
            AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed),
        )
        .iterations_per_batch(1)
        .record_log(true);

        let mut ckpt = runner.checkpoint();
        for batch in batches_from_ops(&ops, g.num_vertices(), 9) {
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let full = ckpt.clone();
        let depth = keep % (ckpt.tail.len() + 1);
        ckpt.compact(depth);
        prop_assert_eq!(ckpt.tail.len(), full.tail.len() - depth);
        prop_assert_eq!(ckpt.cursor(), full.cursor());

        let a = StreamingRunner::resume(full);
        let b = StreamingRunner::resume(ckpt);
        prop_assert_eq!(a.timeline(), b.timeline());
        prop_assert_eq!(a.partitioner().graph(), b.partitioner().graph());
        prop_assert_eq!(a.partitioner().partitioning(), b.partitioner().partitioning());
        prop_assert_eq!(a.partitioner().cut_edges(), b.partitioner().cut_edges());
        prop_assert_eq!(a.log(), b.log());
        // And both match the runner that never went through bytes at all.
        prop_assert_eq!(a.timeline(), runner.timeline());
        prop_assert_eq!(a.partitioner().graph(), runner.partitioner().graph());
    }
}

/// The `test` headline: a *deliberately broken* codec round trip must
/// shrink to a minimal counterexample.
///
/// The injected bug drops tombstone information on encode (a classic
/// snapshot mistake: persisting only live vertices). Round-trip equality
/// then fails exactly on graphs containing at least one tombstone, and the
/// minimiser must walk a large random failing op-sequence down to the
/// smallest witness: a single `remove_vertex` op — one tombstone, zero
/// edges.
mod broken_codec_shrinks {
    use super::*;
    use proptest::{shrink_failure, Strategy, ValueTree};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// The bug: serialise the graph pretending every slot is alive.
    fn buggy_round_trip(g: &DynGraph) -> DynGraph {
        let all_alive = {
            let mut clone = DynGraph::with_vertices(g.num_vertices());
            for v in g.vertices() {
                for &w in g.neighbors(v) {
                    if w > v {
                        clone.add_edge(v, w);
                    }
                }
            }
            clone
        };
        DynGraph::from_bytes(&all_alive.to_bytes()).expect("bytes are self-consistent")
    }

    #[test]
    fn broken_round_trip_shrinks_to_one_tombstone() {
        let strategy = proptest::collection::vec((0u8..4, 0u32..30, 0u32..30), 0..100)
            .prop_map(|ops| graph_from_ops(&ops, 4));
        let fails = |g: &DynGraph| buggy_round_trip(g) != *g;

        // Find a failing case (most op-sequences of this size tombstone
        // something), then let the minimiser loose on it.
        let mut rng = StdRng::seed_from_u64(99);
        let mut found = None;
        for _ in 0..200 {
            let mut tree = strategy.new_tree(&mut rng);
            if fails(&tree.current()) {
                let original = tree.current();
                let (minimal, steps) = shrink_failure(&mut tree, 4096, |g| fails(g));
                found = Some((original, minimal, steps));
                break;
            }
        }
        let (original, minimal, steps) = found.expect("no failing case in 200 draws");

        // Still a counterexample...
        assert!(fails(&minimal));
        // ...but minimal: one tombstone, nothing else of substance.
        let tombstones = minimal.num_vertices() - minimal.num_live_vertices();
        assert_eq!(
            tombstones, 1,
            "minimiser left {tombstones} tombstones in {minimal:?}"
        );
        assert_eq!(
            minimal.num_edges(),
            0,
            "minimiser left edges in {minimal:?}"
        );
        assert_eq!(
            minimal.num_vertices(),
            4,
            "base population (strategy minimum) only"
        );
        // And the search genuinely worked for it: the original failing
        // graph was bigger than the witness.
        assert!(steps > 0, "shrinking never ran");
        assert!(
            original.num_vertices() > minimal.num_vertices()
                || original.num_edges() > 0
                || (original.num_vertices() - original.num_live_vertices()) > 1,
            "original {original:?} was already minimal — fuzz harder"
        );
    }

    /// Control: the *fixed* codec survives the same property unshrunk —
    /// there is simply no failing case to minimise.
    #[test]
    fn fixed_codec_has_no_counterexample_to_shrink() {
        let strategy = proptest::collection::vec((0u8..4, 0u32..30, 0u32..30), 0..100)
            .prop_map(|ops| graph_from_ops(&ops, 4));
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let tree = strategy.new_tree(&mut rng);
            let g = tree.current();
            assert_eq!(DynGraph::from_bytes(&g.to_bytes()).unwrap(), g);
        }
    }
}
