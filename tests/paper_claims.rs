//! Integration tests asserting the paper's *qualitative* claims, one per
//! figure — the same checks EXPERIMENTS.md reports at full scale, here at
//! test-friendly sizes.

use apg::core::{AdaptiveConfig, AdaptivePartitioner};
use apg::graph::{gen, Graph};
use apg::partition::{cut_ratio, vertex_imbalance, InitialStrategy};

fn converge(
    graph: &apg::graph::CsrGraph,
    strategy: InitialStrategy,
    s: f64,
    seed: u64,
) -> apg::core::ConvergenceReport {
    let cfg = AdaptiveConfig::new(9).willingness(s).max_iterations(600);
    let mut p = AdaptivePartitioner::with_strategy(graph, strategy, &cfg, seed);
    p.run_to_convergence()
}

/// Figure 1: the cut ratio is insensitive to `s`, but convergence time is
/// worst at the extremes (slow at s→0, non-convergent chasing at s = 1).
#[test]
fn fig1_willingness_shapes_convergence_not_quality() {
    let graph = gen::mesh3d(12, 12, 12);
    let low = converge(&graph, InitialStrategy::Hash, 0.1, 1);
    let mid = converge(&graph, InitialStrategy::Hash, 0.5, 1);
    let one = converge(&graph, InitialStrategy::Hash, 1.0, 1);

    // Quality: no meaningful difference across s (paper: "no statistical
    // difference in the number of cuts").
    let cuts = [
        low.final_cut_ratio(),
        mid.final_cut_ratio(),
        one.final_cut_ratio(),
    ];
    let spread = cuts.iter().cloned().fold(f64::MIN, f64::max)
        - cuts.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.08, "cut ratios vary too much across s: {cuts:?}");

    // Convergence: s = 0.1 is much slower than s = 0.5; s = 1.0 chases
    // forever.
    assert!(
        low.convergence_time() > 2 * mid.convergence_time(),
        "low s should converge slowly: {} vs {}",
        low.convergence_time(),
        mid.convergence_time()
    );
    assert!(
        !one.converged(),
        "s = 1.0 must not converge (neighbour chasing)"
    );
}

/// Figure 4: the iterative algorithm improves HSH/RND/MNN substantially
/// (0.2–0.4 cut-ratio drop in the paper) and DGR only slightly; METIS
/// remains the lower bound on meshes.
#[test]
fn fig4_initial_strategies_converge_to_similar_quality() {
    let graph = gen::mesh3d(12, 12, 12);
    let mut finals = Vec::new();
    for strategy in InitialStrategy::ALL {
        let cfg = AdaptiveConfig::new(9).max_iterations(600);
        let mut p = AdaptivePartitioner::with_strategy(&graph, strategy, &cfg, 5);
        let initial = p.cut_ratio();
        let report = p.run_to_convergence();
        let improvement = initial - report.final_cut_ratio();
        match strategy {
            InitialStrategy::DeterministicGreedy => assert!(
                improvement < 0.2,
                "DGR should improve only slightly, got {improvement}"
            ),
            _ => assert!(
                improvement > 0.2,
                "{strategy} should improve by > 0.2, got {improvement}"
            ),
        }
        finals.push(report.final_cut_ratio());
    }
    // All strategies land in the same quality band (Figure 5's point).
    let spread = finals.iter().cloned().fold(f64::MIN, f64::max)
        - finals.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 0.1, "final cuts spread too wide: {finals:?}");

    // METIS (global knowledge) still wins on meshes.
    let metis = apg::metis::partition(&graph, 9, 1.10, 5);
    let metis_cut = cut_ratio(&graph, &metis);
    assert!(
        metis_cut < finals.iter().cloned().fold(f64::MAX, f64::min),
        "METIS {metis_cut} should beat the decentralised heuristic on meshes"
    );
}

/// Figure 5: FEM graphs partition better than dense power-law graphs.
#[test]
fn fig5_fem_beats_powerlaw_quality() {
    let mesh = gen::mesh3d(10, 10, 10);
    let plc = gen::holme_kim(1000, 10, 0.1, 2);
    let mesh_cut = converge(&mesh, InitialStrategy::Hash, 0.5, 3).final_cut_ratio();
    let plc_cut = converge(&plc, InitialStrategy::Hash, 0.5, 3).final_cut_ratio();
    assert!(
        mesh_cut + 0.15 < plc_cut,
        "mesh ({mesh_cut}) should partition much better than dense power law ({plc_cut})"
    );
}

/// Figure 6: convergence time grows slowly (the paper reports O(log N) for
/// meshes), and the cut ratio does not degrade with size.
#[test]
fn fig6_convergence_grows_sublinearly() {
    let small = gen::mesh3d(10, 10, 10); // 1 000
    let large = gen::mesh3d(30, 30, 30); // 27 000
    let t_small = converge(&small, InitialStrategy::Hash, 0.5, 7).convergence_time() as f64;
    let t_large = converge(&large, InitialStrategy::Hash, 0.5, 7).convergence_time() as f64;
    // 27x the vertices must cost far less than 27x the iterations.
    assert!(
        t_large < t_small * 6.0,
        "convergence time grew too fast: {t_small} -> {t_large}"
    );

    let c_small = converge(&small, InitialStrategy::Hash, 0.5, 8).final_cut_ratio();
    let c_large = converge(&large, InitialStrategy::Hash, 0.5, 8).final_cut_ratio();
    assert!(
        c_large < c_small + 0.05,
        "cut ratio degraded with size: {c_small} -> {c_large}"
    );
}

/// Figure 7's headline: ~50% cut reduction from hash on the heart mesh,
/// with balance maintained throughout.
#[test]
fn fig7_cut_halves_with_bounded_imbalance() {
    let graph = gen::mesh3d(14, 14, 14);
    let cfg = AdaptiveConfig::new(9).max_iterations(400);
    let mut p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 11);
    let initial = p.cut_ratio();
    p.run_to_convergence();
    assert!(
        p.cut_ratio() < 0.55 * initial,
        "expected ~50% cut reduction: {initial} -> {}",
        p.cut_ratio()
    );
    assert!(vertex_imbalance(p.partitioning()) <= 1.11);
}

/// The dynamic absorption claim (Figure 7b): a +10% forest-fire burst
/// raises the cut, then the heuristic absorbs the peak.
#[test]
fn fig7b_burst_is_absorbed() {
    let graph = gen::mesh3d(12, 12, 12);
    let cfg = AdaptiveConfig::new(9).max_iterations(400);
    let mut p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 13);
    p.run_to_convergence();
    let settled = p.cut_edges();

    // Inject the burst through the partitioner's mutation API.
    let mut shadow = p.graph().clone();
    let before_slots = shadow.num_vertices();
    let new_ids = apg::streams::forest_fire_burst(&mut shadow, 17);
    for &v in &new_ids {
        let nbrs: Vec<u32> = shadow
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| (w as usize) < before_slots || w < v)
            .collect();
        p.add_vertex_with_edges(&nbrs);
    }
    let spiked = p.cut_edges();
    assert!(
        spiked > settled,
        "burst must raise the cut: {settled} -> {spiked}"
    );

    p.run_to_convergence();
    let absorbed = p.cut_edges();
    assert!(
        (absorbed as f64) < settled as f64 * 1.25,
        "peak not absorbed: settled {settled}, spiked {spiked}, absorbed {absorbed}"
    );
    p.audit();
}
