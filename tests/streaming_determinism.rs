//! Determinism regression for the streaming ingestion layer: for a fixed
//! seed, the per-batch [`TimelineStats`] timeline must be identical at
//! `parallelism` = 1, 2 and 8 for every stream source — CDR weeks, Twitter
//! windows, a chunked forest-fire burst, and power-law growth.
//!
//! This extends PR 2's contract to the streaming path: delta application
//! and the quota merge are single-threaded and ordered, the decision sweep
//! is sharded by data (never by thread), so the thread count trades
//! wall-clock only. `TimelineStats` equality deliberately ignores
//! `wall_ms`; the projection check below pins every deterministic field
//! byte-for-byte.

use apg::core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner, TimelineStats};
use apg::exec::ShardPlan;
use apg::graph::{gen, DynGraph};
use apg::partition::InitialStrategy;
use apg::streams::{
    CdrConfig, CdrStream, ForestFireConfig, ForestFireSource, PowerLawGrowth, TwitterConfig,
    TwitterStream,
};

const SEED: u64 = 23;

fn runner(graph: &DynGraph, parallelism: usize) -> StreamingRunner {
    let cfg = AdaptiveConfig::new(8).parallelism(parallelism);
    StreamingRunner::new(AdaptivePartitioner::with_strategy(
        graph,
        InitialStrategy::Hash,
        &cfg,
        SEED,
    ))
    .iterations_per_batch(3)
}

/// Runs all four sources at the given parallelism; returns the
/// concatenated timelines, tagged by scenario.
fn run_all(parallelism: usize) -> Vec<(&'static str, Vec<TimelineStats>)> {
    let mut out = Vec::new();

    // CDR churn, 1.5 weeks of call batches.
    let cdr_config = CdrConfig {
        initial_subscribers: 12_000,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(cdr_config.initial_subscribers);
    let mut r = runner(&graph, parallelism);
    r.drive(&mut CdrStream::new(cdr_config, SEED), 21);
    out.push(("cdr", r.timeline().to_vec()));

    // Twitter mentions, ten 10-minute windows from mid-morning.
    let tw_config = TwitterConfig {
        initial_users: 6_000,
        ..TwitterConfig::default()
    };
    let graph = DynGraph::with_vertices(tw_config.initial_users);
    let mut r = runner(&graph, parallelism);
    r.drive(
        &mut TwitterStream::new(tw_config, SEED).with_clock(10.0, 600.0),
        10,
    );
    out.push(("twitter", r.timeline().to_vec()));

    // Forest-fire burst over a power-law base, chunked into 8 batches.
    let base = DynGraph::from(&gen::holme_kim(16_000, 6, 0.1, 9));
    let cfg = ForestFireConfig::burst(1_600, SEED);
    let mut r = runner(&base, parallelism);
    r.drive(&mut ForestFireSource::new(&base, &cfg, 200), usize::MAX);
    out.push(("forest-fire", r.timeline().to_vec()));

    // Open-ended preferential-attachment growth.
    let mut r = runner(&base, parallelism);
    r.drive(&mut PowerLawGrowth::new(&base, 5, 400, SEED), 6);
    out.push(("powerlaw-growth", r.timeline().to_vec()));

    out
}

#[test]
fn timelines_are_identical_across_parallelism_1_2_8() {
    // Guard: the graphs must span several shards, otherwise parallelism
    // never actually fans out and the test proves nothing.
    assert!(
        ShardPlan::with_default_size(12_000).num_shards() >= 2,
        "test graphs no longer span multiple shards"
    );

    let baseline = run_all(1);
    for parallelism in [2usize, 8] {
        let run = run_all(parallelism);
        for ((name, base_tl), (_, run_tl)) in baseline.iter().zip(&run) {
            assert_eq!(
                base_tl, run_tl,
                "{name} timeline diverged at parallelism {parallelism}"
            );
            // Byte-identical, literally: every deterministic field, in
            // order, in serialised form.
            let project = |tl: &[TimelineStats]| -> String {
                tl.iter()
                    .map(|s| format!("{:?}", s.deterministic_fields()))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            assert_eq!(
                project(base_tl),
                project(run_tl),
                "{name} projection diverged at parallelism {parallelism}"
            );
        }
    }

    // The scenarios must exercise real work: every source mutated the
    // graph and the partitioner actually migrated vertices.
    for (name, timeline) in &baseline {
        let deltas: usize = timeline.iter().map(|s| s.deltas).sum();
        let migrations: usize = timeline.iter().map(|s| s.migrations).sum();
        assert!(deltas > 0, "{name} ingested nothing");
        assert!(migrations > 0, "{name} too quiet to prove anything");
    }
}

/// The quality the heuristic reaches through a streaming run must also be
/// independent of the thread count, not just the bookkeeping.
#[test]
fn streaming_quality_is_parallelism_independent() {
    let run = |parallelism: usize| {
        let config = CdrConfig {
            initial_subscribers: 9_000,
            ..CdrConfig::default()
        };
        let graph = DynGraph::with_vertices(config.initial_subscribers);
        let mut r = runner(&graph, parallelism);
        r.drive(&mut CdrStream::new(config, 31), 14);
        let p = r.into_partitioner();
        (p.cut_edges(), p.partitioning().sizes().to_vec())
    };
    assert_eq!(run(1), run(5));
}
