//! Workspace smoke test: the `apg::prelude` quickstart from the facade
//! rustdoc (src/lib.rs) must run end-to-end, exercising the re-export chain
//! graph → partition → core that every downstream consumer starts from.
//! Kept in sync with the rustdoc example, which also runs as a doctest.

use apg::prelude::*;

#[test]
fn prelude_quickstart_runs_end_to_end() {
    // The paper's 64kcube dataset at reduced scale, 9 partitions, defaults
    // from the paper (s = 0.5, capacity = 110% of balanced load).
    let graph = apg::graph::gen::mesh3d(20, 20, 20);
    let config = AdaptiveConfig::new(9);
    let mut partitioner =
        AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, 42);
    let report = partitioner.run_to_convergence();
    assert!(report.final_cut_ratio() < report.initial_cut_ratio());
}

#[test]
fn prelude_covers_the_cross_crate_surface() {
    let graph = apg::graph::gen::mesh3d(6, 6, 6);

    // partition: metrics over an initial assignment.
    let caps = apg::partition::CapacityModel::vertex_balanced(graph.num_vertices(), 4, 1.10);
    let assignment = InitialStrategy::Hash.assign(&graph, &caps, 7);
    assert_eq!(assignment.num_vertices(), graph.num_vertices());
    assert!(cut_ratio(&graph, &assignment) > 0.0);
    assert_eq!(
        cut_edges(&graph, &assignment) as f64 / graph.num_edges() as f64,
        cut_ratio(&graph, &assignment)
    );

    // pregel: the engine builder path from the prelude.
    struct Noop;
    impl VertexProgram for Noop {
        type Value = u32;
        type Message = u8;
        fn compute(&self, ctx: &mut Context<'_, '_, u32, u8>, messages: &[u8]) {
            *ctx.value_mut() += messages.len() as u32;
        }
    }
    let mut engine = EngineBuilder::new(4)
        .seed(1)
        .adaptive(AdaptiveConfig::new(4))
        .build(&graph, Noop);
    engine.superstep();
    engine.apply_mutations(MutationBatch::new());
    engine.audit();
}
