//! Layout-equivalence regression suite: the slab-backed `DynGraph`
//! adjacency must behave exactly like the boxed `Vec<Vec<_>>` layout it
//! replaced, under arbitrary batched churn — tombstones, re-additions and
//! forced compaction included. The slab is a memory layout, not a graph
//! semantics change and not a wire-format change, so this file also pins
//! the persisted format version.

use proptest::prelude::*;

use apg::graph::delta::DeltaTarget;
use apg::graph::{gen, CsrGraph, DynGraph, Graph, UpdateBatch, VertexId};

/// The pre-slab adjacency layout — one heap allocation per vertex — kept
/// as an executable reference model of `DynGraph`'s mutation semantics.
#[derive(Debug, Default)]
struct BoxedGraph {
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    num_edges: usize,
}

impl BoxedGraph {
    fn with_vertices(n: usize) -> Self {
        BoxedGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            num_edges: 0,
        }
    }

    fn is_live(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    fn insert_sorted(list: &mut Vec<VertexId>, w: VertexId) -> bool {
        match list.binary_search(&w) {
            Ok(_) => false,
            Err(i) => {
                list.insert(i, w);
                true
            }
        }
    }

    fn remove_sorted(list: &mut Vec<VertexId>, w: VertexId) -> bool {
        match list.binary_search(&w) {
            Ok(i) => {
                list.remove(i);
                true
            }
            Err(_) => false,
        }
    }
}

impl DeltaTarget for BoxedGraph {
    fn delta_add_vertex(&mut self) -> VertexId {
        let id = self.adj.len() as VertexId;
        self.adj.push(Vec::new());
        self.alive.push(true);
        id
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        if !Self::insert_sorted(&mut self.adj[u as usize], v) {
            return false;
        }
        Self::insert_sorted(&mut self.adj[v as usize], u);
        self.num_edges += 1;
        true
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        if !Self::remove_sorted(&mut self.adj[u as usize], v) {
            return false;
        }
        Self::remove_sorted(&mut self.adj[v as usize], u);
        self.num_edges -= 1;
        true
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.is_live(v) {
            return None;
        }
        let nbrs = std::mem::take(&mut self.adj[v as usize]);
        for &w in &nbrs {
            Self::remove_sorted(&mut self.adj[w as usize], v);
        }
        self.num_edges -= nbrs.len();
        self.alive[v as usize] = false;
        Some(nbrs.len())
    }
}

/// Asserts the slab graph and the boxed reference agree slot-for-slot.
fn assert_same(slab: &DynGraph, boxed: &BoxedGraph) {
    assert_eq!(slab.num_vertices(), boxed.adj.len());
    assert_eq!(slab.num_edges(), boxed.num_edges);
    for v in 0..boxed.adj.len() as VertexId {
        assert_eq!(slab.is_vertex(v), boxed.is_live(v), "liveness at slot {v}");
        assert_eq!(
            slab.neighbors(v),
            boxed.adj[v as usize].as_slice(),
            "adjacency at slot {v}"
        );
    }
}

/// Turns a fuzzed op-stream into `UpdateBatch`es of at most `chunk` deltas
/// (same idiom as `proptest_invariants.rs`).
fn batches_from_ops(ops: &[(u8, u32, u32)], base_slots: usize, chunk: usize) -> Vec<UpdateBatch> {
    let mut out = Vec::new();
    let mut batch = UpdateBatch::new();
    let mut slots = base_slots;
    for &(op, a, b) in ops {
        let range = (slots + batch.num_new_vertices()).max(1) as u32;
        match op {
            0 => {
                batch.add_vertex(vec![a % range]);
            }
            1 => batch.add_edge(a % range, b % range),
            2 => batch.remove_edge(a % range, b % range),
            3 => batch.remove_vertex(a % range),
            _ => {
                let n = batch.num_new_vertices();
                if n >= 2 {
                    batch.connect_new(a as usize % n, b as usize % n);
                }
            }
        }
        if batch.len() >= chunk {
            slots += batch.num_new_vertices();
            out.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        out.push(batch);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Batched churn — vertex/edge adds, removals into tombstones, edges
    /// into freed slots — produces the same graph and the same
    /// `ApplyReport` in both layouts, with forced slab compaction
    /// interleaved mid-sequence so relocation/garbage-reclaim paths are
    /// exercised, not just the append path.
    #[test]
    fn slab_graph_matches_boxed_reference(
        ops in proptest::collection::vec((0u8..5, 0u32..48, 0u32..48), 1..220),
        base in 1usize..12,
        compact_every in 1usize..4,
    ) {
        let mut slab = DynGraph::with_vertices(base);
        let mut boxed = BoxedGraph::with_vertices(base);
        for (i, batch) in batches_from_ops(&ops, base, 11).into_iter().enumerate() {
            let slab_report = batch.apply(&mut slab);
            let boxed_report = batch.apply_to(&mut boxed);
            prop_assert_eq!(&slab_report, &boxed_report, "reports diverged at batch {}", i);
            if i % compact_every == 0 {
                slab.compact_adjacency();
            }
            assert_same(&slab, &boxed);
        }
    }

    /// `compact_adjacency` is observation-free: logical equality (`==`),
    /// every neighbour slice and the edge/vertex counts are unchanged by a
    /// forced compaction at any point in a mutation history.
    #[test]
    fn compaction_is_unobservable(
        ops in proptest::collection::vec((0u8..5, 0u32..40, 0u32..40), 1..120),
        base in 1usize..10,
    ) {
        let mut compacted = DynGraph::with_vertices(base);
        let mut untouched = DynGraph::with_vertices(base);
        for batch in batches_from_ops(&ops, base, 7) {
            batch.apply(&mut compacted);
            batch.apply(&mut untouched);
            compacted.compact_adjacency();
            prop_assert_eq!(&compacted, &untouched, "compaction changed the logical graph");
        }
    }
}

/// The degree-prepass CSR import produces exactly the CSR's adjacency and
/// round-trips back to an identical CSR.
#[test]
fn csr_round_trip_preserves_adjacency() {
    let csr = gen::holme_kim(2_000, 6, 0.2, 9);
    let dyn_graph = DynGraph::from(&csr);
    assert_eq!(dyn_graph.num_vertices(), csr.num_vertices());
    assert_eq!(dyn_graph.num_edges(), csr.num_edges());
    for v in 0..csr.num_vertices() as VertexId {
        assert_eq!(dyn_graph.neighbors(v), csr.neighbors(v));
    }
    assert_eq!(dyn_graph.to_csr(), csr);
}

/// A scale-free burst followed by a deletion wave matches the boxed
/// reference even when the slab has relocated and compacted heavily —
/// the deterministic, larger-scale cousin of the proptest above.
#[test]
fn burst_and_deletion_wave_match_reference() {
    let csr: CsrGraph = gen::holme_kim(5_000, 8, 0.1, 31);
    let n = csr.num_vertices();
    let mut slab = DynGraph::from(&csr);
    let mut boxed = BoxedGraph::with_vertices(n);
    let mut seed_batch = UpdateBatch::new();
    for v in 0..n as VertexId {
        for &w in csr.neighbors(v) {
            if w > v {
                seed_batch.add_edge(v, w);
            }
        }
    }
    seed_batch.apply_to(&mut boxed);

    let mut churn = UpdateBatch::new();
    for v in (0..n as VertexId).step_by(3) {
        churn.remove_vertex(v);
    }
    for v in (1..n as VertexId).step_by(5) {
        if let Some(&w) = csr.neighbors(v).first() {
            churn.remove_edge(v, w);
        }
    }
    let a = churn.add_vertex(vec![1, 4]);
    let b = churn.add_vertex(vec![7]);
    churn.connect_new(a, b);
    let slab_report = churn.apply(&mut slab);
    let boxed_report = churn.apply_to(&mut boxed);
    assert_eq!(slab_report, boxed_report);
    slab.compact_adjacency();
    assert_same(&slab, &boxed);
}

/// The slab rework is layout-only: the persisted snapshot format must not
/// move as a side effect of an in-memory layout change. Bumping this
/// constant requires re-blessing the golden fixtures (see
/// `persist_fixtures.rs`) — v4 is the incremental-snapshot format
/// (delta-encoded checkpoints + chained delta-snapshot files; an
/// *intentional* bump, re-blessed with it).
#[test]
fn wire_format_version_unchanged() {
    assert_eq!(apg::persist::format::VERSION, 4);
}
