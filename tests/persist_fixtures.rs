//! Golden-fixture pins for the persistence formats.
//!
//! Small canonical artefacts — a graph snapshot, a delta-log segment, a
//! full stream checkpoint — are committed under `tests/fixtures/`. Each
//! test (a) re-encodes the canonical in-memory value and requires **byte
//! equality** with the committed file, and (b) decodes the committed file
//! and requires value equality — so the wire format cannot drift in either
//! direction without this suite failing. Header handling (wrong magic,
//! future version, truncation, trailing bytes) is pinned against the same
//! files.
//!
//! Regenerating after an *intentional* format change (which must bump
//! `apg::persist::format::VERSION`):
//!
//! ```text
//! APG_BLESS=1 cargo test --test persist_fixtures
//! ```
//!
//! then commit the rewritten fixtures alongside the version bump.

use std::path::PathBuf;

use apg::core::{AdaptiveConfig, AdaptivePartitioner, StreamCheckpoint, StreamingRunner};
use apg::graph::{DeltaLog, DynGraph, Graph, UpdateBatch};
use apg::partition::InitialStrategy;
use apg::persist::format::{MAGIC_CHECKPOINT, MAGIC_GRAPH, MAGIC_LOG, VERSION};
use apg::persist::DecodeError;
use apg::streams::{PowerLawGrowth, StreamSource};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Loads a fixture, regenerating it first when `APG_BLESS=1`.
fn fixture(name: &str, canonical_bytes: &[u8]) -> Vec<u8> {
    let path = fixture_path(name);
    if std::env::var_os("APG_BLESS").is_some_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, canonical_bytes).unwrap();
    }
    std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {path:?} ({e}); run with APG_BLESS=1 to \
             regenerate after an intentional format change"
        )
    })
}

/// The canonical graph: 6 slots, 4 edges, one tombstone (vertex 2, which
/// had an edge before it died).
fn canonical_graph() -> DynGraph {
    let mut g = DynGraph::with_vertices(6);
    g.add_edge(0, 1);
    g.add_edge(0, 2);
    g.add_edge(1, 4);
    g.add_edge(3, 5);
    g.add_edge(4, 5);
    g.remove_vertex(2);
    g
}

/// The canonical log: two batches covering every delta variant.
fn canonical_log() -> DeltaLog {
    let mut log = DeltaLog::new();
    let mut b1 = UpdateBatch::new();
    let a = b1.add_vertex(vec![0, 3]);
    let b = b1.add_vertex(vec![]);
    b1.connect_new(a, b);
    b1.add_edge(1, 4);
    log.record(b1);
    let mut b2 = UpdateBatch::new();
    b2.remove_edge(0, 1);
    b2.remove_vertex(5);
    log.record(b2);
    log
}

/// The canonical checkpoint: a tiny deterministic power-law run (fixed
/// seed, parallelism 1 so the encoded config is machine-independent) with
/// one write-ahead tail batch, `wall_ms` normalised — the timeline's only
/// nondeterministic field, zeroed so the fixture is byte-stable.
fn canonical_checkpoint() -> StreamCheckpoint {
    let base = DynGraph::with_vertices(24);
    let cfg = AdaptiveConfig::new(2).parallelism(1);
    let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 7);
    let mut runner = StreamingRunner::new(p)
        .iterations_per_batch(2)
        .record_log(true);
    let mut source = PowerLawGrowth::new(&base, 2, 6, 7);
    runner.drive(&mut source, 2);
    let mut ckpt = runner.checkpoint();
    let batch = source.next_batch().unwrap();
    runner.ingest(&batch);
    ckpt.append(batch);
    for stats in &mut ckpt.timeline {
        stats.wall_ms = 0.0;
    }
    ckpt
}

#[test]
fn graph_fixture_is_pinned() {
    let g = canonical_graph();
    let bytes = g.to_snapshot_bytes();
    let golden = fixture("graph_v4.apgg", &bytes);
    assert_eq!(
        bytes, golden,
        "graph snapshot encoding drifted from the committed fixture; if \
         intentional, bump format::VERSION and re-bless"
    );
    let decoded = DynGraph::from_snapshot_bytes(&golden).unwrap();
    assert_eq!(decoded, g);
    assert_eq!(decoded.num_vertices(), 6);
    assert_eq!(decoded.num_live_vertices(), 5);
    assert!(!decoded.is_vertex(2), "tombstone lost");
}

#[test]
fn log_fixture_is_pinned() {
    let log = canonical_log();
    let bytes = log.to_segment_bytes();
    let golden = fixture("log_v4.apgl", &bytes);
    assert_eq!(
        bytes, golden,
        "delta-log encoding drifted from the committed fixture; if \
         intentional, bump format::VERSION and re-bless"
    );
    let decoded = DeltaLog::from_segment_bytes(&golden).unwrap();
    assert_eq!(decoded, log);
    // Replays land identically on a fresh population.
    let mut a = DynGraph::with_vertices(6);
    let mut b = DynGraph::with_vertices(6);
    log.replay(&mut a);
    decoded.replay(&mut b);
    assert_eq!(a, b);
}

#[test]
fn checkpoint_fixture_is_pinned() {
    let ckpt = canonical_checkpoint();
    let bytes = ckpt.to_bytes();
    let golden = fixture("checkpoint_v4.apgc", &bytes);
    assert_eq!(
        bytes, golden,
        "checkpoint encoding drifted from the committed fixture; if \
         intentional, bump format::VERSION and re-bless"
    );
    let decoded = StreamCheckpoint::from_bytes(&golden).unwrap();
    assert_eq!(decoded, ckpt);
    // The decoded fixture is a *working* checkpoint, not just bytes.
    let resumed = StreamingRunner::resume(decoded);
    assert_eq!(resumed.timeline().len(), 3);
    resumed.partitioner().audit();
}

#[test]
fn fixtures_reject_wrong_magic() {
    let graph = fixture("graph_v4.apgg", &canonical_graph().to_snapshot_bytes());
    // A graph file is not a log, a log is not a checkpoint, and so on.
    assert!(matches!(
        DeltaLog::from_segment_bytes(&graph).unwrap_err(),
        DecodeError::BadMagic {
            expected: MAGIC_LOG,
            found: MAGIC_GRAPH
        }
    ));
    assert!(matches!(
        StreamCheckpoint::from_bytes(&graph).unwrap_err(),
        DecodeError::BadMagic {
            expected: MAGIC_CHECKPOINT,
            found: MAGIC_GRAPH
        }
    ));
    // Garbage magic.
    let mut scribbled = graph.clone();
    scribbled[..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        DynGraph::from_snapshot_bytes(&scribbled).unwrap_err(),
        DecodeError::BadMagic { found, .. } if &found == b"NOPE"
    ));
}

#[test]
fn fixtures_reject_future_and_zero_versions() {
    for (name, canonical) in [
        ("graph_v4.apgg", canonical_graph().to_snapshot_bytes()),
        ("log_v4.apgl", canonical_log().to_segment_bytes()),
        ("checkpoint_v4.apgc", canonical_checkpoint().to_bytes()),
    ] {
        let golden = fixture(name, &canonical);
        let mut future = golden.clone();
        future[4..6].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let err = match name {
            "graph_v4.apgg" => DynGraph::from_snapshot_bytes(&future).unwrap_err(),
            "log_v4.apgl" => DeltaLog::from_segment_bytes(&future).unwrap_err(),
            _ => StreamCheckpoint::from_bytes(&future).unwrap_err(),
        };
        assert_eq!(
            err,
            DecodeError::UnsupportedVersion {
                found: VERSION + 1,
                supported: VERSION
            },
            "{name}"
        );

        let mut zero = golden.clone();
        zero[4..6].copy_from_slice(&0u16.to_le_bytes());
        let err = match name {
            "graph_v4.apgg" => DynGraph::from_snapshot_bytes(&zero).unwrap_err(),
            "log_v4.apgl" => DeltaLog::from_segment_bytes(&zero).unwrap_err(),
            _ => StreamCheckpoint::from_bytes(&zero).unwrap_err(),
        };
        assert!(
            matches!(err, DecodeError::UnsupportedVersion { found: 0, .. }),
            "{name}"
        );

        // Stale formats are rejected too: the payload decoders are not
        // version-aware, so v1 bytes must not be fed to v2 decoders.
        let mut stale = golden.clone();
        stale[4..6].copy_from_slice(&(VERSION - 1).to_le_bytes());
        let err = match name {
            "graph_v4.apgg" => DynGraph::from_snapshot_bytes(&stale).unwrap_err(),
            "log_v4.apgl" => DeltaLog::from_segment_bytes(&stale).unwrap_err(),
            _ => StreamCheckpoint::from_bytes(&stale).unwrap_err(),
        };
        assert_eq!(
            err,
            DecodeError::UnsupportedVersion {
                found: VERSION - 1,
                supported: VERSION
            },
            "{name}"
        );
    }
}

/// The previous-generation fixtures stay committed verbatim: a v4 build
/// must refuse real v3 bytes with a typed version error (the payload
/// decoders are not version-aware — v3 had no delta-snapshot chaining —
/// so feeding them stale bytes would misparse, not fail cleanly).
#[test]
fn stale_v3_fixtures_are_rejected() {
    for (name, found) in [
        ("graph_v3.apgg", 3u16),
        ("log_v3.apgl", 3),
        ("checkpoint_v3.apgc", 3),
    ] {
        let stale = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("stale fixture {name} must stay committed: {e}"));
        assert_eq!(u16::from_le_bytes([stale[4], stale[5]]), found, "{name}");
        let err = match name {
            "graph_v3.apgg" => DynGraph::from_snapshot_bytes(&stale).unwrap_err(),
            "log_v3.apgl" => DeltaLog::from_segment_bytes(&stale).unwrap_err(),
            _ => StreamCheckpoint::from_bytes(&stale).unwrap_err(),
        };
        assert_eq!(
            err,
            DecodeError::UnsupportedVersion {
                found,
                supported: VERSION
            },
            "{name}"
        );
    }
}

#[test]
fn fixtures_reject_truncation_at_every_boundary() {
    let golden = fixture("checkpoint_v4.apgc", &canonical_checkpoint().to_bytes());
    // Every prefix must fail loudly — EOF or a corruption diagnosis, never
    // a panic and never a silently-partial value.
    for cut in 0..golden.len() {
        let err = StreamCheckpoint::from_bytes(&golden[..cut])
            .expect_err("a truncated checkpoint decoded successfully");
        assert!(
            matches!(
                err,
                DecodeError::UnexpectedEof { .. }
                    | DecodeError::Corrupt(_)
                    | DecodeError::BadMagic { .. }
                    | DecodeError::UnsupportedVersion { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
    // Trailing garbage is equally fatal.
    let mut padded = golden.clone();
    padded.push(0);
    assert_eq!(
        StreamCheckpoint::from_bytes(&padded).unwrap_err(),
        DecodeError::TrailingBytes { remaining: 1 }
    );
}
