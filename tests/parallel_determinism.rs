//! Determinism regression: for a fixed seed, the adaptive partitioner's
//! full [`IterationStats`] history must be byte-identical at `parallelism`
//! = 1, 2 and 8, on a power-law graph with interleaved mutations.
//!
//! This is the contract the `apg-exec` layer exists to uphold: shard plans
//! and RNG streams are keyed by data and shard index, never by thread, so
//! the thread count trades wall-clock only.

use apg::core::{AdaptiveConfig, AdaptivePartitioner, IterationStats};
use apg::exec::ShardPlan;
use apg::graph::{Graph, VertexId};
use apg::partition::{InitialStrategy, PartitionId};

const SEED: u64 = 21;
const VERTICES: usize = 20_000;

/// Runs the scripted scenario — power-law refinement with vertex/edge
/// insertions and removals interleaved between iteration blocks — and
/// returns everything observable about the run.
fn run_scenario(parallelism: usize) -> (Vec<IterationStats>, Vec<PartitionId>, usize) {
    let g = apg::graph::gen::holme_kim(VERTICES, 6, 0.1, 9);
    let cfg = AdaptiveConfig::new(8)
        .willingness(0.5)
        .parallelism(parallelism);
    let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, SEED);

    let mut history = p.run_for(6);
    // Interleave scripted mutations with iteration blocks (the paper's
    // dynamic scenarios, deterministic so every run sees the same stream).
    for round in 0u32..3 {
        let anchor = 17 * (round + 1);
        let v = p.add_vertex_with_edges(&[anchor, anchor + 7, anchor + 13, anchor + 29]);
        p.add_edge(v, anchor + 41);
        p.remove_edge(anchor, anchor + 1);
        p.remove_vertex(500 * (round + 1));
        history.extend(p.run_for(4));
    }
    p.audit();
    (history, p.partitioning().as_slice().to_vec(), p.cut_edges())
}

#[test]
fn history_is_byte_identical_across_parallelism_1_2_8() {
    // Guard: the graph must span several shards, otherwise parallelism
    // never actually fans out and the test proves nothing.
    assert!(
        ShardPlan::with_default_size(VERTICES).num_shards() >= 4,
        "test graph no longer spans multiple shards"
    );

    let baseline = run_scenario(1);
    for parallelism in [2usize, 8] {
        let run = run_scenario(parallelism);
        assert_eq!(
            baseline.0, run.0,
            "IterationStats history diverged at parallelism {parallelism}"
        );
        // Byte-identical, literally: compare the serialised form too.
        assert_eq!(
            format!("{:?}", baseline.0),
            format!("{:?}", run.0),
            "debug serialisation diverged at parallelism {parallelism}"
        );
        assert_eq!(
            baseline.1, run.1,
            "final assignment diverged at parallelism {parallelism}"
        );
        assert_eq!(
            baseline.2, run.2,
            "cut count diverged at parallelism {parallelism}"
        );
    }

    // The scenario must exercise real work: migrations happened and the
    // mutations changed the population.
    let migrations: usize = baseline.0.iter().map(|s| s.migrations).sum();
    assert!(migrations > 100, "scenario too quiet: {migrations}");
    let last = baseline.0.last().unwrap();
    assert_eq!(last.live_vertices, VERTICES + 3 - 3);
}

/// The knob must also not alter what the heuristic achieves: same final
/// quality regardless of how many threads computed it.
#[test]
fn quality_is_parallelism_independent() {
    let g = apg::graph::gen::holme_kim(8_192, 4, 0.1, 3);
    let run = |parallelism: usize| {
        let cfg = AdaptiveConfig::new(4).parallelism(parallelism);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 11);
        p.run_for(20);
        (p.cut_ratio(), p.partitioning().sizes().to_vec())
    };
    assert_eq!(run(1), run(5));
}

/// Tombstone handling inside shards: removed vertices must be skipped
/// identically whether their shard runs alone or among eight.
#[test]
fn tombstone_heavy_graph_stays_deterministic() {
    let run = |parallelism: usize| {
        let g = apg::graph::gen::holme_kim(12_000, 5, 0.1, 4);
        let cfg = AdaptiveConfig::new(6).parallelism(parallelism);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 13);
        // Kill every 10th vertex, creating tombstones across every shard.
        for v in (0..12_000u32).step_by(10) {
            p.remove_vertex(v as VertexId);
        }
        let history = p.run_for(8);
        p.audit();
        assert_eq!(p.graph().num_live_vertices(), 12_000 - 1_200);
        history
    };
    assert_eq!(run(1), run(8));
}
