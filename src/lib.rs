//! # apg — Adaptive Partitioning for large-scale dynamic Graphs
//!
//! Facade crate re-exporting the whole workspace: a Rust reproduction of
//! Vaquero, Cuadrado, Martella & Logothetis, *Adaptive Partitioning for
//! Large-Scale Dynamic Graphs* (ICDCS 2014).
//!
//! The paper's contribution is a decentralised, iterative,
//! capacity-constrained greedy vertex-migration heuristic that keeps the
//! partitioning of a continuously-changing graph close to optimal while
//! relying on local, per-vertex information only. This workspace provides:
//!
//! * [`graph`] — graph substrate: CSR + dynamic graphs, generators, datasets.
//! * [`partition`] — partition state, metrics and the four initial
//!   strategies the paper compares (HSH, RND, DGR, MNN).
//! * [`metis`] — a multilevel k-way partitioner standing in for METIS.
//! * [`core`] — the adaptive iterative vertex-migration heuristic itself.
//! * [`exec`] — the sharded parallel execution layer (shard plans,
//!   deterministic RNG streams, scoped-thread fan-out) both the logical
//!   partitioner and the Pregel engine run on.
//! * [`pregel`] — a Pregel-like BSP engine with the paper's partitioning
//!   API extension (deferred migration, capacity messaging), plus the cost
//!   model and fault injection used in the evaluation.
//! * [`apps`] — vertex programs: PageRank, TunkRank, maximal cliques,
//!   cardiac-FEM kernel.
//! * [`streams`] — dynamic workloads: Twitter mention stream, CDR churn,
//!   forest-fire bursts.
//! * [`persist`] — the durable-state layer: a versioned binary codec and
//!   framed snapshot/log/checkpoint formats behind `apg-core`'s
//!   checkpoint/resume API (restartable streams).
//! * [`serve`] — the partition-aware query serving layer: a router
//!   answering vertex/neighborhood/k-hop queries against the live
//!   partitioned graph between streaming batches, accounting every
//!   traversal hop as local or remote to the anchor's partition.
//! * [`mod@bench`] — the experiment drivers behind the `fig1`…`fig9`, `table1`,
//!   `ablation`, `serve` and `all` binaries regenerating the paper's
//!   evaluation.
//!
//! # Quickstart
//!
//! ```
//! use apg::prelude::*;
//!
//! // The paper's 64kcube dataset, 9 partitions, defaults from the paper
//! // (s = 0.5, capacity = 110% of balanced load).
//! let graph = apg::graph::gen::mesh3d(20, 20, 20);
//! let config = AdaptiveConfig::new(9);
//! let mut partitioner =
//!     AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, 42);
//! let report = partitioner.run_to_convergence();
//! assert!(report.final_cut_ratio() < report.initial_cut_ratio());
//! ```

pub use apg_apps as apps;
pub use apg_bench as bench;
pub use apg_core as core;
pub use apg_exec as exec;
pub use apg_graph as graph;
pub use apg_metis as metis;
pub use apg_partition as partition;
pub use apg_persist as persist;
pub use apg_pregel as pregel;
pub use apg_serve as serve;
pub use apg_streams as streams;

/// Most-used items in one import — **the blessed import path**.
///
/// Re-exports are grouped by layer, bottom-up: substrate → partition state
/// → heuristic → streaming → serving → engine. Anything importable both
/// from here and from a root-level alias should be imported from here; the
/// root aliases are deprecated.
pub mod prelude {
    // ── Graph substrate ────────────────────────────────────────────────
    /// Static (CSR) and dynamic graphs, mutations, and the delta model.
    pub use apg_graph::{
        ApplyReport, CsrGraph, DeltaLog, DynGraph, Graph, GraphDelta, UpdateBatch, VertexId,
    };

    // ── Partition state & metrics ──────────────────────────────────────
    /// Assignments, cut metrics, and the paper's four initial strategies.
    pub use apg_partition::{cut_edges, cut_ratio, InitialStrategy, PartitionId, Partitioning};

    // ── The adaptive heuristic ─────────────────────────────────────────
    /// Configuration (validating builder + typed error) and the iterative
    /// vertex-migration partitioner.
    pub use apg_core::{
        AdaptiveConfig, AdaptiveConfigBuilder, AdaptivePartitioner, ConfigError, ConvergenceReport,
    };

    // ── Streaming ingestion & durability ───────────────────────────────
    /// Batched churn driving the partitioner, plus checkpoint/resume.
    pub use apg_core::{StreamCheckpoint, StreamingRunner, TimelineStats};
    pub use apg_streams::{RestartableSource, SourceCursor, StreamSource};

    // ── Query serving ──────────────────────────────────────────────────
    /// The partition-aware serving layer: deterministic workloads routed
    /// to each anchor's owning partition, with local/remote hop accounting.
    pub use apg_serve::{Query, QueryMix, QueryRouter, QueryWorkload, ServeStats};

    // ── Pregel-like engine ─────────────────────────────────────────────
    /// The BSP engine with the paper's partitioning API extension.
    pub use apg_pregel::{Context, CostModel, Engine, EngineBuilder, MutationBatch, VertexProgram};
}

// Historical root-level aliases. Each duplicates a `prelude` item; they are
// kept so `apg::AdaptiveConfig`-style paths keep compiling, but the prelude
// is the one blessed import path.
#[deprecated(note = "import from `apg::prelude` instead")]
pub use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
#[deprecated(note = "import from `apg::prelude` instead")]
pub use apg_graph::DynGraph;
#[deprecated(note = "import from `apg::prelude` instead")]
pub use apg_partition::Partitioning;
