//! The paper's mobile-network scenario (Figure 9), miniaturised: maximal
//! cliques over a fortnight of call-detail records with weekly churn, on
//! adaptive vs static clusters.
//!
//! ```text
//! cargo run --release --example cdr_cliques
//! ```

use apg::apps::{maxclique::global_max_clique, MaxClique};
use apg::core::AdaptiveConfig;
use apg::graph::DynGraph;
use apg::pregel::{CostModel, Engine, EngineBuilder, MutationBatch};
use apg::streams::{CdrConfig, CdrStream};

fn clique_round(engine: &mut Engine<MaxClique>) -> f64 {
    engine.wake_all();
    engine.run(2).iter().map(|r| r.sim_time).sum()
}

fn main() {
    let config = CdrConfig {
        initial_subscribers: 2500,
        ..CdrConfig::default()
    };
    let mut stream = CdrStream::new(config, 11);
    let initial = DynGraph::with_vertices(config.initial_subscribers);

    let mut dynamic = EngineBuilder::new(5)
        .seed(11)
        .cost_model(CostModel::lan_10gbe())
        .adaptive(AdaptiveConfig::new(5))
        .cut_every(0)
        .build(&initial, MaxClique::new());
    let mut fixed = EngineBuilder::new(5)
        .seed(11)
        .cost_model(CostModel::lan_10gbe())
        .cut_every(0)
        .build(&initial, MaxClique::new());

    for week in 1..=2 {
        let events = stream.week();
        let mut joiners = MutationBatch::new();
        for _ in &events.joined {
            joiners.add_vertex(Vec::new());
        }
        dynamic.apply_mutations(joiners.clone());
        fixed.apply_mutations(joiners);

        let mut dyn_time = 0.0;
        let mut fix_time = 0.0;
        for batch in &events.batches {
            let mut m = MutationBatch::new();
            for &(a, b) in batch {
                m.add_edge(a as u32, b as u32);
            }
            dynamic.apply_mutations(m.clone());
            fixed.apply_mutations(m);
            dyn_time += clique_round(&mut dynamic);
            fix_time += clique_round(&mut fixed);
        }

        let mut leavers = MutationBatch::new();
        for &s in &events.departed {
            leavers.remove_vertex(s as u32);
        }
        dynamic.apply_mutations(leavers.clone());
        fixed.apply_mutations(leavers);

        println!(
            "week {week}: +{} subscribers, -{} departed, {} calls",
            events.joined.len(),
            events.departed.len(),
            events.total_calls()
        );
        println!(
            "  cut ratio  dynamic {:.3} vs static {:.3}",
            dynamic.cut_ratio(),
            fixed.cut_ratio()
        );
        println!(
            "  round time dynamic {:.0} vs static {:.0}  ({:.0}% of static)",
            dyn_time,
            fix_time,
            100.0 * dyn_time / fix_time
        );
        println!("  largest clique observed: {}", global_max_clique(&dynamic));
    }
}
