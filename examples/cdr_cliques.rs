//! The paper's mobile-network scenario (Figure 9), miniaturised: maximal
//! cliques over a fortnight of call-detail records with weekly churn, on
//! adaptive vs static clusters.
//!
//! Ingestion goes through the canonical path: the CDR generator is a
//! `StreamSource` emitting one `UpdateBatch` per buffered call batch
//! (joiners open each week, departures close it), and both engines consume
//! the same batches via `MutationBatch::from` — no hand-rolled mutation
//! loops.
//!
//! ```text
//! cargo run --release --example cdr_cliques
//! ```

use apg::apps::{maxclique::global_max_clique, MaxClique};
use apg::core::AdaptiveConfig;
use apg::graph::DynGraph;
use apg::pregel::{CostModel, Engine, EngineBuilder, MutationBatch};
use apg::streams::{CdrConfig, CdrStream, StreamSource};

fn clique_round(engine: &mut Engine<MaxClique>) -> f64 {
    engine.wake_all();
    engine.run(2).iter().map(|r| r.sim_time).sum()
}

fn main() {
    let config = CdrConfig {
        initial_subscribers: 2500,
        ..CdrConfig::default()
    };
    let mut stream = CdrStream::new(config, 11);
    let initial = DynGraph::with_vertices(config.initial_subscribers);

    let mut dynamic = EngineBuilder::new(5)
        .seed(11)
        .cost_model(CostModel::lan_10gbe())
        .adaptive(AdaptiveConfig::new(5))
        .cut_every(0)
        .build(&initial, MaxClique::new());
    let mut fixed = EngineBuilder::new(5)
        .seed(11)
        .cost_model(CostModel::lan_10gbe())
        .cut_every(0)
        .build(&initial, MaxClique::new());

    for week in 1..=2 {
        let (mut joined, mut departed, mut calls) = (0usize, 0usize, 0usize);
        let mut dyn_time = 0.0;
        let mut fix_time = 0.0;
        // One pull per buffered call batch; topology freezes during each
        // clique round (the paper's batching discipline).
        for _ in 0..config.batches_per_week {
            let batch = stream.next_batch().expect("CDR stream is open-ended");
            joined += batch.num_new_vertices();
            departed += batch.num_vertex_removals();
            calls += batch.num_edge_additions();

            let mutation = MutationBatch::from(batch);
            dynamic.apply_mutations(mutation.clone());
            fixed.apply_mutations(mutation);
            dyn_time += clique_round(&mut dynamic);
            fix_time += clique_round(&mut fixed);
        }

        println!("week {week}: +{joined} subscribers, -{departed} departed, {calls} calls");
        println!(
            "  cut ratio  dynamic {:.3} vs static {:.3}",
            dynamic.cut_ratio(),
            fixed.cut_ratio()
        );
        println!(
            "  round time dynamic {:.0} vs static {:.0}  ({:.0}% of static)",
            dyn_time,
            fix_time,
            100.0 * dyn_time / fix_time
        );
        println!("  largest clique observed: {}", global_max_clique(&dynamic));
    }
}
