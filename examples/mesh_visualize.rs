//! Reproduction of the paper's Video 1: a 2-D slice of a 3-D mesh rendered
//! while the iterative algorithm pulls neighbouring vertices into the same
//! partition. Each character cell is a mesh vertex; each glyph/colour a
//! partition. Also writes PPM frames (`mesh_frame_*.ppm`) for real colour.
//!
//! ```text
//! cargo run --release --example mesh_visualize
//! ```

use apg::core::{AdaptiveConfig, AdaptivePartitioner};
use apg::graph::gen;
use apg::partition::{InitialStrategy, Partitioning};

const SIDE: usize = 40;
const SLICE_Z: usize = 0;

fn render(partitioning: &Partitioning) -> String {
    // Palette: one glyph per partition, doubled for squarer pixels.
    const GLYPHS: [char; 9] = ['.', '#', 'o', '+', '@', '*', '=', '%', '~'];
    let mut out = String::new();
    for x in 0..SIDE {
        for y in 0..SIDE {
            let v = ((x * SIDE + y) * SIDE + SLICE_Z) as u32;
            let p = partitioning.partition_of(v) as usize;
            out.push(GLYPHS[p % GLYPHS.len()]);
            out.push(GLYPHS[p % GLYPHS.len()]);
        }
        out.push('\n');
    }
    out
}

/// Writes the slice as a PPM image, one pixel per vertex.
fn write_ppm(partitioning: &Partitioning, path: &str) -> std::io::Result<()> {
    use std::io::Write;
    const PALETTE: [(u8, u8, u8); 9] = [
        (230, 25, 75),
        (60, 180, 75),
        (255, 225, 25),
        (0, 130, 200),
        (245, 130, 48),
        (145, 30, 180),
        (70, 240, 240),
        (240, 50, 230),
        (128, 128, 128),
    ];
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "P6 {SIDE} {SIDE} 255")?;
    for x in 0..SIDE {
        for y in 0..SIDE {
            let v = ((x * SIDE + y) * SIDE + SLICE_Z) as u32;
            let (r, g, b) = PALETTE[partitioning.partition_of(v) as usize % PALETTE.len()];
            out.write_all(&[r, g, b])?;
        }
    }
    Ok(())
}

fn main() {
    // A 2-D slice of the paper's 64kcube (40^3), 9 partitions from hash.
    let graph = gen::mesh3d(SIDE, SIDE, SIDE);
    let config = AdaptiveConfig::new(9);
    let mut partitioner =
        AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, 3);

    for checkpoint in [0usize, 5, 20, 60] {
        while partitioner.iteration() < checkpoint {
            partitioner.iterate();
        }
        println!(
            "\n=== iteration {:>3}  cut ratio {:.3} ===",
            partitioner.iteration(),
            partitioner.cut_ratio()
        );
        println!("{}", render(partitioner.partitioning()));
        let frame = format!("mesh_frame_{:03}.ppm", partitioner.iteration());
        if let Err(e) = write_ppm(partitioner.partitioning(), &frame) {
            eprintln!("could not write {frame}: {e}");
        } else {
            println!("(wrote {frame})");
        }
    }
    println!("(hash scatter dissolves into contiguous regions, as in the paper's video)");
}
