//! The paper's biomedical scenario (Figure 7), miniaturised: a cardiac
//! tissue simulation on a FEM mesh whose hash partitioning is re-arranged
//! by the background algorithm, followed by a +10% forest-fire growth burst
//! that the partitioning absorbs.
//!
//! ```text
//! cargo run --release --example biomedical
//! ```

use apg::apps::HeartSim;
use apg::core::AdaptiveConfig;
use apg::graph::{gen, DynGraph, Graph};
use apg::pregel::{CostModel, EngineBuilder, MutationBatch};
use apg::streams::{forest_fire_delta, ForestFireConfig};

fn main() {
    let mesh = gen::mesh3d(16, 16, 16);
    let shadow = DynGraph::from(&mesh);
    println!(
        "heart mesh: {} cells, {} gap junctions",
        mesh.num_vertices(),
        mesh.num_edges()
    );

    let mut engine = EngineBuilder::new(9)
        .seed(5)
        .cost_model(CostModel::heartsim())
        .adaptive(AdaptiveConfig::new(9))
        .build(&mesh, HeartSim::new());

    println!("\nphase (a): optimising the initial hash partitioning");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "step", "cuts", "migrations", "sim time"
    );
    let mut last_cut = 0;
    for step in 0..60 {
        let r = engine.superstep();
        last_cut = r.cut_edges.unwrap_or(last_cut);
        if step % 10 == 0 {
            println!(
                "{:>6} {:>10} {:>12} {:>12.0}",
                step, last_cut, r.migrations_completed, r.sim_time
            );
        }
    }

    println!("\nphase (b): +10% forest-fire burst");
    // The burst is computed as an UpdateBatch against a shadow copy and
    // fed to the engine through the shared delta model — ids align because
    // engine and shadow allocate slots identically.
    let burst = shadow.num_live_vertices() / 10;
    let batch = forest_fire_delta(&shadow, &ForestFireConfig::burst(burst, 99));
    let new_ids = engine.apply_mutations(MutationBatch::from(batch));
    println!(
        "injected {} new cells; graph now {} vertices / {} edges",
        new_ids.len(),
        engine.num_live_vertices(),
        engine.num_edges()
    );

    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "step", "cuts", "migrations", "sim time"
    );
    for step in 0..40 {
        let r = engine.superstep();
        last_cut = r.cut_edges.unwrap_or(last_cut);
        if step % 10 == 0 {
            println!(
                "{:>6} {:>10} {:>12} {:>12.0}",
                60 + step,
                last_cut,
                r.migrations_completed,
                r.sim_time
            );
        }
    }
    println!("\nfinal cut ratio: {:.4}", engine.cut_ratio());
    // A cell's voltage proves the tissue is actually simulating throughout.
    let probe = engine.vertex_value(2048).expect("cell state");
    println!("probe cell voltage: {:.3} (tissue active)", probe.voltage);
}
