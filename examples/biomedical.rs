//! The paper's biomedical scenario (Figure 7), miniaturised: a cardiac
//! tissue simulation on a FEM mesh whose hash partitioning is re-arranged
//! by the background algorithm, followed by a +10% forest-fire growth burst
//! that the partitioning absorbs.
//!
//! ```text
//! cargo run --release --example biomedical
//! ```

use apg::apps::HeartSim;
use apg::core::AdaptiveConfig;
use apg::graph::{gen, DynGraph, Graph};
use apg::pregel::{CostModel, EngineBuilder, MutationBatch};
use apg::streams::forest_fire_burst;

fn main() {
    let mesh = gen::mesh3d(16, 16, 16);
    let mut shadow = DynGraph::from(&mesh);
    println!(
        "heart mesh: {} cells, {} gap junctions",
        mesh.num_vertices(),
        mesh.num_edges()
    );

    let mut engine = EngineBuilder::new(9)
        .seed(5)
        .cost_model(CostModel::heartsim())
        .adaptive(AdaptiveConfig::new(9))
        .build(&mesh, HeartSim::new());

    println!("\nphase (a): optimising the initial hash partitioning");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "step", "cuts", "migrations", "sim time"
    );
    let mut last_cut = 0;
    for step in 0..60 {
        let r = engine.superstep();
        last_cut = r.cut_edges.unwrap_or(last_cut);
        if step % 10 == 0 {
            println!(
                "{:>6} {:>10} {:>12} {:>12.0}",
                step, last_cut, r.migrations_completed, r.sim_time
            );
        }
    }

    println!("\nphase (b): +10% forest-fire burst");
    let before_slots = shadow.num_vertices();
    let new_ids = forest_fire_burst(&mut shadow, 99);
    let mut batch = MutationBatch::new();
    for (i, &v) in new_ids.iter().enumerate() {
        let existing: Vec<u32> = shadow
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| (w as usize) < before_slots)
            .collect();
        let ph = batch.add_vertex(existing);
        assert_eq!(ph, i);
    }
    for (i, &v) in new_ids.iter().enumerate() {
        for &w in shadow.neighbors(v) {
            if (w as usize) >= before_slots && w > v {
                batch.connect_new(i, (w as usize) - before_slots);
            }
        }
    }
    engine.apply_mutations(batch);
    println!(
        "injected {} new cells; graph now {} vertices / {} edges",
        new_ids.len(),
        engine.num_live_vertices(),
        engine.num_edges()
    );

    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "step", "cuts", "migrations", "sim time"
    );
    for step in 0..40 {
        let r = engine.superstep();
        last_cut = r.cut_edges.unwrap_or(last_cut);
        if step % 10 == 0 {
            println!(
                "{:>6} {:>10} {:>12} {:>12.0}",
                60 + step,
                last_cut,
                r.migrations_completed,
                r.sim_time
            );
        }
    }
    println!("\nfinal cut ratio: {:.4}", engine.cut_ratio());
    // A cell's voltage proves the tissue is actually simulating throughout.
    let probe = engine.vertex_value(2048).expect("cell state");
    println!("probe cell voltage: {:.3} (tissue active)", probe.voltage);
}
