//! The paper's online-social-network scenario (Figure 8), miniaturised:
//! TunkRank influence over a live mention stream on two clusters — one with
//! the background adaptive partitioner, one static hash — for six simulated
//! hours of a London day.
//!
//! Ingestion goes through the canonical path: the Twitter generator is a
//! `StreamSource` emitting `UpdateBatch`es, each batch feeds both Pregel
//! engines (via `MutationBatch::from`) *and* a logical-level
//! `StreamingRunner`, whose per-batch `TimelineStats` show the cut being
//! absorbed as the stream lands.
//!
//! ```text
//! cargo run --release --example social_stream
//! ```

use apg::apps::TunkRank;
use apg::core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
use apg::graph::DynGraph;
use apg::partition::InitialStrategy;
use apg::pregel::{CostModel, EngineBuilder, MutationBatch};
use apg::streams::{StreamSource, TwitterConfig, TwitterStream};

fn main() {
    let config = TwitterConfig {
        initial_users: 1200,
        ..TwitterConfig::default()
    };
    // 30-minute windows through the evening ramp-up, pulled as batches.
    let mut stream = TwitterStream::new(config, 7).with_clock(17.0, 1800.0);

    let initial = DynGraph::with_vertices(config.initial_users);
    let program = TunkRank::new(usize::MAX); // runs continuously
    let mut adaptive = EngineBuilder::new(9)
        .seed(7)
        .cost_model(CostModel::lan_10gbe())
        .adaptive(AdaptiveConfig::new(9))
        .cut_every(0)
        .build(&initial, program);
    let mut hash = EngineBuilder::new(9)
        .seed(7)
        .cost_model(CostModel::lan_10gbe())
        .cut_every(0)
        .build(&initial, program);
    let mut runner = StreamingRunner::new(AdaptivePartitioner::with_strategy(
        &initial,
        InitialStrategy::Hash,
        &AdaptiveConfig::new(9),
        7,
    ))
    .iterations_per_batch(3);

    println!(
        "{:>6} {:>8} {:>16} {:>11} {:>10} {:>10} {:>9}",
        "hour", "deltas", "cut in->out", "migrations", "hash t", "adapt t", "speedup"
    );
    for _ in 0..12 {
        let hour = stream.clock_hour();
        let batch = stream.next_batch().expect("stream is open-ended");

        // One batch, three consumers — same deltas everywhere.
        let mutation = MutationBatch::from(batch.clone());
        adaptive.apply_mutations(mutation.clone());
        hash.apply_mutations(mutation);
        let timeline = runner.ingest(&batch);

        let ra = adaptive.run(3);
        let rh = hash.run(3);
        let mean = |rs: &[apg::pregel::SuperstepReport]| {
            rs.iter().map(|r| r.sim_time).sum::<f64>() / rs.len() as f64
        };
        let (ta, th) = (mean(&ra), mean(&rh));
        println!(
            "{:>6.1} {:>8} {:>8.3} ->{:>5.3} {:>11} {:>10.0} {:>10.0} {:>8.2}x",
            hour,
            timeline.deltas,
            timeline.cut_ratio_after_ingest(),
            timeline.cut_ratio_after(),
            timeline.migrations,
            th,
            ta,
            th / ta
        );
    }

    // Who is influential? Report the top user by TunkRank.
    let (best, score) = (0..adaptive.num_total_slots() as u32)
        .filter_map(|v| adaptive.vertex_value(v).map(|s| (v, *s)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("graph is non-empty");
    println!("most influential user: #{best} (influence {score:.2})");
    println!(
        "final cut ratio: adaptive {:.3} vs hash {:.3} (logical runner {:.3})",
        adaptive.cut_ratio(),
        hash.cut_ratio(),
        runner.partitioner().cut_ratio()
    );
}
