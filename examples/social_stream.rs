//! The paper's online-social-network scenario (Figure 8), miniaturised:
//! TunkRank influence over a live mention stream on two clusters — one with
//! the background adaptive partitioner, one static hash — for six simulated
//! hours of a London day.
//!
//! ```text
//! cargo run --release --example social_stream
//! ```

use apg::apps::TunkRank;
use apg::core::AdaptiveConfig;
use apg::graph::DynGraph;
use apg::pregel::{CostModel, EngineBuilder, MutationBatch};
use apg::streams::{TwitterConfig, TwitterStream};

fn main() {
    let config = TwitterConfig {
        initial_users: 1200,
        ..TwitterConfig::default()
    };
    let mut stream = TwitterStream::new(config, 7);

    let initial = DynGraph::with_vertices(config.initial_users);
    let program = TunkRank::new(usize::MAX); // runs continuously
    let mut adaptive = EngineBuilder::new(9)
        .seed(7)
        .cost_model(CostModel::lan_10gbe())
        .adaptive(AdaptiveConfig::new(9))
        .cut_every(0)
        .build(&initial, program);
    let mut hash = EngineBuilder::new(9)
        .seed(7)
        .cost_model(CostModel::lan_10gbe())
        .cut_every(0)
        .build(&initial, program);

    println!(
        "{:>6} {:>10} {:>12} {:>12} {:>9}",
        "hour", "tweets/s", "hash t", "adaptive t", "speedup"
    );
    for window in 0..12 {
        let hour = 17.0 + window as f64 * 0.5; // evening ramp-up
        let batch = stream.window(hour, 1800.0);

        let mut mutation = MutationBatch::new();
        for _ in adaptive.num_total_slots()..batch.num_users {
            mutation.add_vertex(Vec::new());
        }
        for &(a, b) in &batch.edges {
            mutation.add_edge(a as u32, b as u32);
        }
        adaptive.apply_mutations(mutation.clone());
        hash.apply_mutations(mutation);

        let ra = adaptive.run(3);
        let rh = hash.run(3);
        let mean = |rs: &[apg::pregel::SuperstepReport]| {
            rs.iter().map(|r| r.sim_time).sum::<f64>() / rs.len() as f64
        };
        let (ta, th) = (mean(&ra), mean(&rh));
        println!(
            "{:>6.1} {:>10.1} {:>12.0} {:>12.0} {:>8.2}x",
            hour,
            batch.tweets as f64 / 1800.0,
            th,
            ta,
            th / ta
        );
    }

    // Who is influential? Report the top user by TunkRank.
    let (best, score) = (0..adaptive.num_total_slots() as u32)
        .filter_map(|v| adaptive.vertex_value(v).map(|s| (v, *s)))
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("graph is non-empty");
    println!("most influential user: #{best} (influence {score:.2})");
    println!(
        "final cut ratio: adaptive {:.3} vs hash {:.3}",
        adaptive.cut_ratio(),
        hash.cut_ratio()
    );
}
