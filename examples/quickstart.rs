//! Quickstart: partition the paper's `64kcube` mesh adaptively and compare
//! against hash partitioning and the centralised METIS-style baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use apg::prelude::*;

fn main() {
    // The paper's 64kcube dataset: a 40x40x40 FEM heart-tissue mesh.
    let graph = apg::graph::gen::mesh3d(40, 40, 40);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Paper defaults: k = 9 partitions, willingness s = 0.5, capacity 110%
    // of the balanced load, convergence after 30 quiet iterations.
    let config = AdaptiveConfig::new(9);
    let mut partitioner =
        AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, 42);

    println!("initial (hash) cut ratio: {:.4}", partitioner.cut_ratio());
    let report = partitioner.run_to_convergence();
    println!(
        "adaptive cut ratio:       {:.4}  (converged after {} iterations, {} migrations)",
        report.final_cut_ratio(),
        report.convergence_time(),
        report.total_migrations()
    );

    // The centralised benchmark the paper compares against (Figure 4).
    let metis = apg::metis::partition(&graph, 9, 1.10, 42);
    println!(
        "METIS-style baseline:     {:.4}  (requires global graph knowledge)",
        cut_ratio(&graph, &metis)
    );

    let balance = apg::partition::vertex_imbalance(partitioner.partitioning());
    println!("vertex imbalance:         {balance:.3}  (capacity factor 1.10 bounds this)");
}
