//! Durable-state layer: the versioned binary codec every snapshot, delta
//! log and checkpoint in the workspace is written with.
//!
//! The paper's adaptive partitioner only earns its keep on *long-running*
//! dynamic graphs, which makes recoverable state table stakes: a stream
//! consumer that dies must restart from `(snapshot, log tail)` and continue
//! exactly where it left off. This crate provides the bottom of that stack:
//!
//! * [`Encode`] / [`Decode`] — a small, real binary data model (LEB128
//!   varints for integers, IEEE-754 bits for floats, length-prefixed
//!   sequences) with implementations for the primitive types, tuples,
//!   `Option` and `Vec`.
//! * [`Encoder`] / [`Decoder`] — the byte-level writer/reader pair.
//!   Decoding is total: every failure mode is a typed [`DecodeError`],
//!   never a panic, so corrupt or truncated files surface as errors.
//! * [`mod@format`] — framed containers: a 4-byte magic, a `u16` format
//!   version and the payload, so on-disk artefacts are self-identifying
//!   and version drift is rejected loudly (see
//!   [`format::encode_framed`] / [`format::decode_framed`]).
//! * [`store`] — the file-backed durability layer: append-only log
//!   segments and snapshot files of length-prefixed CRC-checksummed
//!   frames, an atomically-flipped manifest, explicit fsync ordering, and
//!   torn-tail recovery (see [`store::SegmentStore`]).
//!
//! The domain types implement the traits next to their definitions
//! (`apg-graph` for graphs/deltas, `apg-partition` for assignments,
//! `apg-core` for checkpoints), keeping field access private while this
//! crate stays dependency-free.
//!
//! # Format stability
//!
//! The byte format is pinned by golden fixtures committed under
//! `tests/fixtures/` at the workspace root: re-encoding the canonical
//! values must reproduce those files byte-for-byte, and decoding them must
//! reproduce the values. Any intentional format change must bump
//! [`format::VERSION`] and regenerate the fixtures (`APG_BLESS=1`), at
//! which point decoders may add back-compat arms keyed on the header
//! version.
//!
//! # Example
//!
//! ```
//! use apg_persist::{Decode, Decoder, Encode, Encoder};
//!
//! let value: (u32, Vec<bool>, Option<f64>) = (7, vec![true, false], Some(0.5));
//! let mut enc = Encoder::new();
//! value.encode(&mut enc);
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! let back = <(u32, Vec<bool>, Option<f64>)>::decode(&mut dec).unwrap();
//! dec.finish().unwrap();
//! assert_eq!(back, value);
//! ```

pub mod store;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended inside a value.
    UnexpectedEof {
        /// Bytes still required by the read that failed.
        needed: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// The first bytes are not the expected container magic.
    BadMagic {
        /// The magic the decoder was asked for.
        expected: [u8; 4],
        /// What the stream actually starts with.
        found: [u8; 4],
    },
    /// The container's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
        /// Highest version this build understands.
        supported: u16,
    },
    /// A value decoded but violates an invariant of its type.
    Corrupt(&'static str),
    /// Decoding finished with unread bytes left over.
    TrailingBytes {
        /// How many bytes were never consumed.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of stream: needed {needed} more byte(s), {remaining} remaining"
            ),
            DecodeError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                std::str::from_utf8(expected).unwrap_or("<binary>"),
                found
            ),
            DecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported format version {found} (this build supports up to {supported})"
            ),
            DecodeError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            DecodeError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing byte(s) after the payload")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Byte-stream writer the [`Encode`] impls append to.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes verbatim.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends an unsigned integer as a LEB128 varint (1 byte for values
    /// below 128 — lengths and ids in small graphs stay small on disk).
    pub fn write_varint(&mut self, mut value: u64) {
        loop {
            let byte = (value & 0x7f) as u8;
            value >>= 7;
            if value == 0 {
                self.bytes.push(byte);
                return;
            }
            self.bytes.push(byte | 0x80);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finishes encoding, yielding the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Byte-stream reader the [`Decode`] impls consume from.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads exactly `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn read_bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEof {
                needed: n - self.remaining(),
                remaining: self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a LEB128 varint written by [`Encoder::write_varint`].
    ///
    /// Only the *minimal* encoding is accepted: a terminal zero byte after
    /// at least one continuation byte (e.g. `0x85 0x00` for 5) decodes to
    /// the same value the one-byte form would, so accepting it would break
    /// the canonical-bytes contract (decode-then-re-encode must reproduce
    /// the input) the golden fixtures and the decoder-totality property
    /// tests pin.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEof`] on truncation,
    /// [`DecodeError::Corrupt`] if the varint runs past 64 bits or is not
    /// minimally encoded.
    pub fn read_varint(&mut self) -> Result<u64, DecodeError> {
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.read_bytes(1)?[0];
            if shift == 63 && byte > 1 {
                return Err(DecodeError::Corrupt("varint overflows 64 bits"));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                if shift > 0 && byte == 0 {
                    return Err(DecodeError::Corrupt("varint is not minimally encoded"));
                }
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(DecodeError::Corrupt("varint overflows 64 bits"));
            }
        }
    }

    /// Declares decoding complete.
    ///
    /// # Errors
    ///
    /// [`DecodeError::TrailingBytes`] if unread bytes remain — a length
    /// mismatch a plain EOF check would miss.
    pub fn finish(&self) -> Result<(), DecodeError> {
        if self.remaining() > 0 {
            return Err(DecodeError::TrailingBytes {
                remaining: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Types that can write themselves into an [`Encoder`].
///
/// Encoding is infallible (it targets an in-memory buffer) and must be a
/// pure function of the value: equal values produce equal bytes, which is
/// what lets golden fixtures pin the format byte-for-byte.
pub trait Encode {
    /// Appends this value's byte representation.
    fn encode(&self, enc: &mut Encoder);

    /// Convenience: encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }
}

/// Types that can read themselves back from a [`Decoder`].
///
/// `decode` must accept exactly the bytes `encode` produced (round-trip
/// identity) and must reject, with a typed error, any stream that violates
/// the type's invariants — decoders are the trust boundary for data read
/// from disk.
pub trait Decode: Sized {
    /// Reads one value.
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`] on truncated, overlong or invariant-violating
    /// input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError>;

    /// Convenience: decodes a complete buffer, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// As [`Decode::decode`], plus [`DecodeError::TrailingBytes`].
    fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let value = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }
}

macro_rules! impl_varint_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.write_varint(*self as u64);
            }
        }

        impl Decode for $t {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                let raw = dec.read_varint()?;
                <$t>::try_from(raw).map_err(|_| DecodeError::Corrupt(concat!(
                    "varint out of range for ", stringify!($t)
                )))
            }
        }
    )*};
}

impl_varint_codec!(u8, u16, u32, usize);

impl Encode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_varint(*self);
    }
}

impl Decode for u64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        dec.read_varint()
    }
}

impl Encode for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_bytes(&[u8::from(*self)]);
    }
}

impl Decode for bool {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.read_bytes(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Corrupt("bool byte is neither 0 nor 1")),
        }
    }
}

impl Encode for f64 {
    /// IEEE-754 bits, little-endian: exact round trip, NaN payloads
    /// included.
    fn encode(&self, enc: &mut Encoder) {
        enc.write_bytes(&self.to_bits().to_le_bytes());
    }
}

impl Decode for f64 {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let raw = dec.read_bytes(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(raw.try_into().expect(
            "read_bytes(8) returned a slice of exactly 8 bytes",
        ))))
    }
}

impl Encode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_varint(self.len() as u64);
        enc.write_bytes(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(dec, 1)?;
        let raw = dec.read_bytes(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::Corrupt("string is not UTF-8"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_varint(self.len() as u64);
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(dec, 1)?;
        let mut out = Vec::with_capacity(len.min(dec.remaining()));
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => false.encode(enc),
            Some(value) => {
                true.encode(enc);
                value.encode(enc);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        if bool::decode(dec)? {
            Ok(Some(T::decode(dec)?))
        } else {
            Ok(None)
        }
    }
}

macro_rules! impl_tuple_codec {
    ($( ($($name:ident . $idx:tt),+) ),+ $(,)?) => {$(
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, enc: &mut Encoder) {
                $(self.$idx.encode(enc);)+
            }
        }

        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                Ok(($($name::decode(dec)?,)+))
            }
        }
    )+};
}

impl_tuple_codec!((A.0), (A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Reads a sequence length and sanity-checks it against the bytes left:
/// a corrupted length (e.g. from a flipped high byte) must fail fast as
/// `Corrupt`, not attempt a multi-gigabyte allocation and then EOF.
///
/// `min_item_bytes` is the smallest possible encoding of one element.
///
/// # Errors
///
/// [`DecodeError::Corrupt`] when the claimed length cannot possibly fit in
/// the remaining bytes; propagates varint read errors.
pub fn decode_len(dec: &mut Decoder<'_>, min_item_bytes: usize) -> Result<usize, DecodeError> {
    let raw = dec.read_varint()?;
    let len = usize::try_from(raw).map_err(|_| DecodeError::Corrupt("length exceeds usize"))?;
    if len.saturating_mul(min_item_bytes.max(1)) > dec.remaining() {
        return Err(DecodeError::Corrupt(
            "sequence length exceeds the remaining payload",
        ));
    }
    Ok(len)
}

pub mod format {
    //! Framed containers: magic + version + payload.
    //!
    //! Every artefact the workspace persists is wrapped in a 6-byte header
    //! — a 4-byte ASCII magic identifying *what* the file is and a `u16`
    //! little-endian version identifying *which format revision* wrote it —
    //! so a reader can reject foreign files ([`DecodeError::BadMagic`]) and
    //! future-format files ([`DecodeError::UnsupportedVersion`]) before
    //! touching the payload.

    use super::{Decode, DecodeError, Decoder, Encode, Encoder};

    /// Current format revision, shared by every container. Bump on any
    /// byte-level change and regenerate the golden fixtures.
    ///
    /// v2: `AdaptiveConfig` gained the persisted `drain_floor` field
    /// (adaptive per-batch iteration budget).
    ///
    /// v3: `StreamCheckpoint` bounds its timeline — it carries a rolling
    /// `TimelineStats` suffix plus `timeline_window`, `batches_ingested`
    /// and `timeline_digest` (an FNV-1a fold over the evicted prefix)
    /// instead of the full history, making snapshot size O(window) rather
    /// than O(stream).
    ///
    /// v4: incremental delta checkpoints. A new framed container
    /// ([`MAGIC_DELTA`]) encodes a checkpoint against a referenced base
    /// snapshot `(seq, digest)`: changed adjacency spans, vertex births
    /// and tombstones, per-vertex label records, bookkeeping deltas and
    /// the timeline-window suffix. The store grows digest-chained
    /// `dsnap-<seq>.bin` files alongside full snapshots.
    pub const VERSION: u16 = 4;

    /// Magic for a [`DynGraph`](../../apg_graph/struct.DynGraph.html)
    /// snapshot.
    pub const MAGIC_GRAPH: [u8; 4] = *b"APGG";
    /// Magic for a delta-log segment file.
    pub const MAGIC_LOG: [u8; 4] = *b"APGL";
    /// Magic for a streaming-runner checkpoint (snapshot + log tail).
    pub const MAGIC_CHECKPOINT: [u8; 4] = *b"APGC";
    /// Magic for an incremental delta checkpoint (encoded against a base
    /// snapshot referenced by `(seq, digest)`).
    pub const MAGIC_DELTA: [u8; 4] = *b"APGD";

    /// Writes `magic`, [`VERSION`] and the encoded `value`.
    pub fn encode_framed<T: Encode>(magic: [u8; 4], value: &T) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.write_bytes(&magic);
        enc.write_bytes(&VERSION.to_le_bytes());
        value.encode(&mut enc);
        enc.into_bytes()
    }

    /// Checks the header, decodes the payload, rejects trailing bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::BadMagic`] / [`DecodeError::UnsupportedVersion`] on
    /// header mismatch, plus any payload [`DecodeError`].
    pub fn decode_framed<T: Decode>(magic: [u8; 4], bytes: &[u8]) -> Result<T, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let found = dec.read_bytes(4)?;
        if found != magic {
            return Err(DecodeError::BadMagic {
                expected: magic,
                found: found.try_into().expect("read_bytes(4) returned 4 bytes"),
            });
        }
        let version = u16::from_le_bytes(
            dec.read_bytes(2)?
                .try_into()
                .expect("read_bytes(2) returned 2 bytes"),
        );
        // Exact-version match: the payload decoders read the current
        // layout only (they are not version-aware), so an older revision's
        // bytes must be rejected here rather than misparsed downstream.
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let value = T::decode(&mut dec)?;
        dec.finish()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).unwrap(), value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(65_535u16);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
        round_trip(0.0f64);
        round_trip(-0.0f64);
        round_trip(f64::INFINITY);
        round_trip(std::f64::consts::PI);
        round_trip(String::from("snapshot ∆ log"));
        round_trip(String::new());
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let bytes = f64::NAN.to_bytes();
        let back = f64::from_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u32, 128, 16_384, 2_097_152]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(42u16));
        round_trip(Option::<u16>::None);
        round_trip((7u8, vec![true, false], Some(1.5f64)));
        round_trip(vec![vec![1u8, 2], vec![], vec![3]]);
    }

    #[test]
    fn varints_use_minimal_bytes() {
        assert_eq!(127u64.to_bytes().len(), 1);
        assert_eq!(128u64.to_bytes().len(), 2);
        assert_eq!(16_383u64.to_bytes().len(), 2);
        assert_eq!(16_384u64.to_bytes().len(), 3);
        assert_eq!(u64::MAX.to_bytes().len(), 10);
    }

    #[test]
    fn truncation_is_eof_not_panic() {
        let bytes = (vec![1u32, 2, 3], 99u64).to_bytes();
        for cut in 0..bytes.len() {
            let err = <(Vec<u32>, u64)>::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    DecodeError::UnexpectedEof { .. } | DecodeError::Corrupt(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 5u32.to_bytes();
        bytes.push(0);
        assert_eq!(
            u32::from_bytes(&bytes).unwrap_err(),
            DecodeError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn narrowing_decodes_reject_out_of_range() {
        let bytes = 300u64.to_bytes();
        assert!(matches!(
            u8::from_bytes(&bytes).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn overlong_varint_is_corrupt() {
        // 11 continuation bytes: more than a u64 can hold.
        let bytes = [0xffu8; 11];
        assert!(matches!(
            u64::from_bytes(&bytes).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn non_minimal_varint_is_corrupt() {
        // 0x85 0x00 decodes to 5 under a permissive reader, but re-encodes
        // as the single byte 0x05 — canonical decoding must reject it.
        assert!(matches!(
            u64::from_bytes(&[0x85, 0x00]).unwrap_err(),
            DecodeError::Corrupt("varint is not minimally encoded")
        ));
        // Longer padding chains are equally non-minimal.
        assert!(matches!(
            u64::from_bytes(&[0xff, 0x80, 0x80, 0x00]).unwrap_err(),
            DecodeError::Corrupt("varint is not minimally encoded")
        ));
        // The single zero byte *is* the minimal encoding of 0.
        assert_eq!(u64::from_bytes(&[0x00]).unwrap(), 0);
    }

    #[test]
    fn bogus_length_fails_fast() {
        // A Vec<u64> claiming u64::MAX elements with a 1-byte payload must
        // be Corrupt, not an allocation attempt.
        let mut enc = Encoder::new();
        enc.write_varint(u64::MAX);
        enc.write_bytes(&[1]);
        assert!(matches!(
            Vec::<u64>::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn bad_bool_is_corrupt() {
        assert!(matches!(
            bool::from_bytes(&[2]).unwrap_err(),
            DecodeError::Corrupt(_)
        ));
    }

    #[test]
    fn framed_containers_check_magic_and_version() {
        let value = vec![1u32, 2, 3];
        let bytes = format::encode_framed(format::MAGIC_GRAPH, &value);
        assert_eq!(
            format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &bytes).unwrap(),
            value
        );

        // Wrong magic.
        let err = format::decode_framed::<Vec<u32>>(format::MAGIC_LOG, &bytes).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));

        // Future version.
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&(format::VERSION + 1).to_le_bytes());
        let err = format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &future).unwrap_err();
        assert_eq!(
            err,
            DecodeError::UnsupportedVersion {
                found: format::VERSION + 1,
                supported: format::VERSION
            }
        );

        // Version 0 never existed.
        let mut zero = bytes.clone();
        zero[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert!(matches!(
            format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &zero).unwrap_err(),
            DecodeError::UnsupportedVersion { found: 0, .. }
        ));

        // Truncated header and truncated payload.
        assert!(format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &bytes[..3]).is_err());
        assert!(
            format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &bytes[..bytes.len() - 1])
                .is_err()
        );

        // Trailing garbage.
        let mut padded = bytes.clone();
        padded.push(0xee);
        assert_eq!(
            format::decode_framed::<Vec<u32>>(format::MAGIC_GRAPH, &padded).unwrap_err(),
            DecodeError::TrailingBytes { remaining: 1 }
        );
    }

    #[test]
    fn errors_display_usefully() {
        let msgs = [
            DecodeError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            }
            .to_string(),
            DecodeError::BadMagic {
                expected: *b"APGG",
                found: *b"NOPE",
            }
            .to_string(),
            DecodeError::UnsupportedVersion {
                found: 9,
                supported: 1,
            }
            .to_string(),
            DecodeError::Corrupt("demo").to_string(),
            DecodeError::TrailingBytes { remaining: 3 }.to_string(),
        ];
        for msg in msgs {
            assert!(!msg.is_empty());
        }
    }
}
