//! File-backed segment store: the durability layer under the streaming
//! checkpoint loop.
//!
//! A [`SegmentStore`] owns one directory and keeps two kinds of
//! payload-agnostic artefacts in it (the *contents* are opaque byte
//! payloads — `apg-core` feeds it framed checkpoints and encoded update
//! batches, but this layer never decodes them):
//!
//! * **snapshot files** (`snap-<seq>.bin`) — one frame holding the full
//!   durable state at a boundary, written by
//!   [`SegmentStore::install_snapshot`];
//! * **delta snapshots** (`dsnap-<seq>.bin`) — one frame holding an
//!   incremental encoding against a base root, written by
//!   [`SegmentStore::install_delta`]: the frame payload starts with a
//!   16-byte back-link (`base seq: u64 LE ++ base digest: u64 LE`,
//!   FNV-1a over the base's frame payload) followed by the caller's
//!   bytes, so recovery can walk — and digest-validate — the chain down
//!   to its full snapshot;
//! * **log segments** (`seg-<seq>.bin`) — append-only frame sequences,
//!   one frame per [`SegmentStore::append`], rotated to a fresh file once
//!   [`StoreConfig::segment_rotate_bytes`] is exceeded.
//!
//! All share one monotonically increasing sequence counter, so "the log
//! tail after root `S`" is simply *every segment with `seq > S`*, in
//! sequence order. A `MANIFEST` file names the durable recovery root
//! (full or delta snapshot). Chains are bounded by
//! [`StoreConfig::max_chain_len`]: once [`SegmentStore::needs_rebase`]
//! turns true the caller folds the chain into a fresh full snapshot,
//! whose install garbage-collects the stale links.
//!
//! # On-disk framing
//!
//! Every file starts with a 6-byte header (4-byte ASCII magic + `u16` LE
//! [`format::VERSION`]). After the header come frames:
//!
//! ```text
//! [len: u32 LE][crc32(seq ++ payload): u32 LE][seq: u64 LE][payload: len bytes]
//! ```
//!
//! The CRC is the IEEE/zlib CRC-32 over the sequence number and payload
//! together. `seq` is the frame's position in the write-ahead tail since
//! the last snapshot (0-based, reset by every
//! [`SegmentStore::install_snapshot`]); recovery requires the tail's
//! sequence numbers to be contiguous across segment boundaries, so a
//! sealed segment that lost whole frames to a *clean-looking* truncation
//! (cut exactly at a frame boundary — undetectable from that file alone)
//! is still caught instead of silently replaying history with a hole.
//! Snapshot files and the manifest hold exactly one frame (seq 0);
//! segments hold zero or more.
//!
//! # Fsync ordering (the write path's crash contract)
//!
//! [`SegmentStore::install_snapshot`] performs, in order:
//!
//! 1. write `snap-<S>.bin`, `fsync` it;
//! 2. create the fresh active segment `seg-<S+1>.bin`, `fsync` it;
//! 3. `fsync` the directory (both names are durable);
//! 4. write `MANIFEST.tmp` (pointing at `S`), `fsync`, atomically
//!    `rename` onto `MANIFEST`, `fsync` the directory — the *pointer
//!    flip*: only now is the new snapshot the recovery root;
//! 5. best-effort delete of everything with `seq < S` (stale files are
//!    garbage, never a correctness hazard).
//!
//! Because the flip happens last, a crash anywhere in 1–3 leaves the old
//! manifest pointing at the old, fully-fsynced snapshot + segments.
//! [`SegmentStore::append`] writes one frame and (with
//! [`StoreConfig::fsync`] on) syncs the segment before returning, so an
//! acknowledged append is durable.
//!
//! # Recovery
//!
//! [`SegmentStore::open`] on an existing directory reads `MANIFEST`,
//! loads the snapshot it names, then replays every higher-sequence
//! segment in order. Corruption handling is position-dependent, WAL
//! style:
//!
//! * a short/torn/checksum-failing frame in the **last** segment is the
//!   expected signature of a mid-write crash: the segment is truncated
//!   back to its last good frame (counted in
//!   [`Recovery::torn_frames_dropped`]) and recovery succeeds;
//! * the same damage in a **sealed** (non-last) segment, the snapshot, or
//!   the manifest means acknowledged data was lost — recovery fails with
//!   a typed [`StoreError`], never a panic and never a silently partial
//!   state;
//! * a frame-sequence gap anywhere in the tail (acknowledged frames
//!   missing without visible damage) is equally fatal and typed.
//!
//! A directory with no `MANIFEST` is a fresh store (an interrupted
//! first-ever `install_snapshot` leaves no manifest, so its debris is
//! ignored and overwritten).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::{format, DecodeError};

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC-32 of `bytes` (the checksum every frame carries).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// FNV-1a 64-bit hash — the content digest each delta-snapshot link
/// records for its base, validated link by link during recovery. Cheap
/// enough to compute inline on the write path (one pass over the payload
/// being written anyway) and independent of the per-frame CRC, so a chain
/// link catches a *wrong file* (e.g. a stale same-sequence artefact) even
/// when that file is internally self-consistent.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Magic for a store snapshot file (`snap-<seq>.bin`).
pub const MAGIC_STORE_SNAPSHOT: [u8; 4] = *b"APGN";
/// Magic for a store delta-snapshot file (`dsnap-<seq>.bin`), chained to a
/// base snapshot by `(seq, digest)`.
pub const MAGIC_STORE_DELTA: [u8; 4] = *b"APGI";
/// Magic for a store log segment (`seg-<seq>.bin`).
pub const MAGIC_STORE_SEGMENT: [u8; 4] = *b"APGT";
/// Magic for the store manifest.
pub const MAGIC_STORE_MANIFEST: [u8; 4] = *b"APGM";

/// Frames larger than this are rejected as corrupt before allocation: no
/// real payload (a checkpoint of a graph that fits in memory) approaches
/// it, but a flipped length byte can claim anything.
const MAX_FRAME_BYTES: usize = 1 << 30;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the store was doing (`"create segment"`, `"fsync dir"`, …).
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A payload handed back to the caller failed to decode (wrapped so
    /// callers can surface one error type for the whole recovery path).
    Decode(DecodeError),
    /// Acknowledged-durable data is damaged: a sealed segment, snapshot or
    /// manifest fails its header or checksum checks.
    Corrupt(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { op, path, source } => {
                write!(f, "store I/O failure: {op} on {}: {source}", path.display())
            }
            StoreError::Decode(e) => write!(f, "store payload failed to decode: {e}"),
            StoreError::Corrupt(what) => write!(f, "store corrupt: {what}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Decode(e) => Some(e),
            StoreError::Corrupt(_) => None,
        }
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

/// Write-path tuning for a [`SegmentStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Rotate the active segment to a fresh file once it holds at least
    /// this many payload bytes (checked *before* each append).
    pub segment_rotate_bytes: u64,
    /// Whether to `fsync` after every append and snapshot write. Turning
    /// this off surrenders the durability guarantee (a crash may lose
    /// acknowledged appends) in exchange for write speed — the persist
    /// bench prices exactly this knob.
    pub fsync: bool,
    /// Rebase policy for delta-snapshot chains: once
    /// [`SegmentStore::chain_len`] reaches this many links,
    /// [`SegmentStore::needs_rebase`] turns true and the caller is expected
    /// to fold the chain into a fresh full [`SegmentStore::install_snapshot`]
    /// (which garbage-collects the chain). Bounds both recovery replay work
    /// and the disk the chain pins.
    pub max_chain_len: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            segment_rotate_bytes: 1 << 20,
            fsync: true,
            max_chain_len: 8,
        }
    }
}

/// What [`SegmentStore::open`] found on disk.
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    /// The durable base snapshot payload the recovery root chains down to
    /// (`None` for a fresh store).
    pub snapshot: Option<Vec<u8>>,
    /// Delta-snapshot payloads chained above the base, oldest first: the
    /// recovery root is `snapshot` with each delta applied in order.
    pub deltas: Vec<Vec<u8>>,
    /// Every frame appended after the recovery root, in append order.
    pub tail: Vec<Vec<u8>>,
    /// Frames dropped from the *last* segment because a crash tore them
    /// (truncation repair). Always 0 on a clean shutdown.
    pub torn_frames_dropped: usize,
}

/// An open store: the writer half of the durability layer. See the
/// [module docs](self) for layout, fsync ordering and recovery semantics.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    config: StoreConfig,
    /// Next unused sequence number (snapshots, delta snapshots and
    /// segments share it).
    next_seq: u64,
    /// Sequence of the durable (manifest-named) recovery root — a full
    /// snapshot, or the newest delta snapshot in the chain.
    snapshot_seq: Option<u64>,
    /// Sequence of the full snapshot anchoring the delta chain (equals
    /// `snapshot_seq` when the root is a full snapshot).
    chain_base_seq: Option<u64>,
    /// Delta-snapshot sequences above the base, oldest first.
    chain: Vec<u64>,
    /// FNV-1a digest of the recovery root's frame payload — what the next
    /// delta install records as its back-link.
    root_digest: Option<u64>,
    /// The active segment: `(seq, handle, payload bytes appended)`.
    active: Option<(u64, File, u64)>,
    /// Frames appended to the tail since the last snapshot — the next
    /// frame's sequence number (reset by every install, rebuilt by
    /// recovery).
    next_frame_seq: u64,
}

fn io_err<'a>(op: &'static str, path: &'a Path) -> impl FnOnce(std::io::Error) -> StoreError + 'a {
    move |source| StoreError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Parses `prefix-<seq>.bin` names; returns the sequence number.
fn parse_seq(name: &str, prefix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

fn write_header(buf: &mut Vec<u8>, magic: [u8; 4]) {
    buf.extend_from_slice(&magic);
    buf.extend_from_slice(&format::VERSION.to_le_bytes());
}

fn frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC, patched once seq+payload are in place
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[8..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Checks a file's 6-byte header. Returns the remaining bytes.
fn check_header(bytes: &[u8], magic: [u8; 4]) -> Result<&[u8], StoreError> {
    if bytes.len() < 6 {
        return Err(StoreError::Corrupt("store file shorter than its header"));
    }
    if bytes[..4] != magic {
        return Err(StoreError::Corrupt("store file has the wrong magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != format::VERSION {
        return Err(StoreError::Corrupt(
            "store file written by an unsupported format version",
        ));
    }
    Ok(&bytes[6..])
}

/// One parse step over a frame sequence.
enum FrameStep<'a> {
    /// A complete, checksum-verified frame: its sequence number, payload,
    /// and the bytes after it.
    Ok(u64, &'a [u8], &'a [u8]),
    /// The bytes end cleanly at a frame boundary.
    End,
    /// The remaining bytes are not a whole valid frame (torn write,
    /// flipped bit, or a length that cannot fit).
    Torn,
}

fn next_frame(bytes: &[u8]) -> FrameStep<'_> {
    if bytes.is_empty() {
        return FrameStep::End;
    }
    if bytes.len() < 16 {
        return FrameStep::Torn;
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let want = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_BYTES || bytes.len() - 16 < len {
        return FrameStep::Torn;
    }
    if crc32(&bytes[8..16 + len]) != want {
        return FrameStep::Torn;
    }
    let seq = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    FrameStep::Ok(seq, &bytes[16..16 + len], &bytes[16 + len..])
}

/// Parses every frame in `bytes` (a file body with the header already
/// stripped) into `(seq, payload)` pairs. On damage: the byte offset
/// (relative to `bytes`) of the first bad frame, plus the frames before
/// it.
fn parse_frames(bytes: &[u8]) -> (Vec<(u64, Vec<u8>)>, Option<usize>) {
    let mut frames = Vec::new();
    let mut rest = bytes;
    loop {
        match next_frame(rest) {
            FrameStep::Ok(seq, payload, tail) => {
                frames.push((seq, payload.to_vec()));
                rest = tail;
            }
            FrameStep::End => return (frames, None),
            FrameStep::Torn => {
                let offset = bytes.len() - rest.len();
                return (frames, Some(offset));
            }
        }
    }
}

impl SegmentStore {
    /// Opens (or creates) a store in `dir`, recovering whatever the last
    /// writer made durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; [`StoreError::Corrupt`]
    /// when acknowledged-durable data (manifest, snapshot, sealed
    /// segments) is damaged. Torn tails on the last segment are *not*
    /// errors — they are repaired and reported via
    /// [`Recovery::torn_frames_dropped`].
    pub fn open(dir: &Path, config: StoreConfig) -> Result<(SegmentStore, Recovery), StoreError> {
        fs::create_dir_all(dir).map_err(io_err("create dir", dir))?;

        // Inventory the directory.
        let mut seg_seqs = Vec::new();
        let mut max_seq = 0u64;
        for entry in fs::read_dir(dir).map_err(io_err("read dir", dir))? {
            let entry = entry.map_err(io_err("read dir entry", dir))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(seq) = parse_seq(name, "snap-").or_else(|| parse_seq(name, "dsnap-")) {
                max_seq = max_seq.max(seq);
            } else if let Some(seq) = parse_seq(name, "seg-") {
                seg_seqs.push(seq);
                max_seq = max_seq.max(seq);
            }
        }
        seg_seqs.sort_unstable();

        let manifest_path = dir.join("MANIFEST");
        if !manifest_path.exists() {
            // Fresh store (or a crash before the first pointer flip, whose
            // debris is overwritten — it was never durable). Start the
            // sequence above anything lying around so stale names are
            // never re-written.
            let mut store = SegmentStore {
                dir: dir.to_path_buf(),
                config,
                next_seq: max_seq + 1,
                snapshot_seq: None,
                chain_base_seq: None,
                chain: Vec::new(),
                root_digest: None,
                active: None,
                next_frame_seq: 0,
            };
            store.open_fresh_segment()?;
            return Ok((store, Recovery::default()));
        }

        // Manifest → durable recovery-root seq (a full snapshot or the
        // newest link of a delta chain).
        let manifest_bytes =
            fs::read(&manifest_path).map_err(io_err("read manifest", &manifest_path))?;
        let body = check_header(&manifest_bytes, MAGIC_STORE_MANIFEST)?;
        let snapshot_seq = match next_frame(body) {
            FrameStep::Ok(0, payload, rest) if rest.is_empty() && payload.len() == 8 => {
                u64::from_le_bytes(payload.try_into().expect("8 bytes"))
            }
            _ => return Err(StoreError::Corrupt("manifest frame is damaged")),
        };

        // Walk the chain from the root down to its full-snapshot base,
        // validating every link: each delta snapshot records the `(seq,
        // digest)` of its base, and the digest must match what is actually
        // on disk — a broken or missing link is acknowledged-durable data
        // gone, hence fatal and typed.
        let mut deltas_rev: Vec<Vec<u8>> = Vec::new();
        let mut chain_rev: Vec<u64> = Vec::new();
        let mut cursor = snapshot_seq;
        let mut expected_digest: Option<u64> = None;
        let mut root_digest = 0u64;
        let (snapshot, chain_base_seq) = loop {
            let snap_path = dir.join(format!("snap-{cursor}.bin"));
            if snap_path.exists() {
                let snap_bytes =
                    fs::read(&snap_path).map_err(io_err("read snapshot", &snap_path))?;
                let body = check_header(&snap_bytes, MAGIC_STORE_SNAPSHOT)?;
                let payload = match next_frame(body) {
                    FrameStep::Ok(0, payload, []) => payload.to_vec(),
                    _ => return Err(StoreError::Corrupt("snapshot frame is damaged")),
                };
                let digest = fnv1a64(&payload);
                if expected_digest.is_some_and(|want| want != digest) {
                    return Err(StoreError::Corrupt(
                        "delta chain base digest does not match the snapshot on disk",
                    ));
                }
                if expected_digest.is_none() {
                    root_digest = digest;
                }
                break (payload, cursor);
            }
            let dsnap_path = dir.join(format!("dsnap-{cursor}.bin"));
            if !dsnap_path.exists() {
                return Err(StoreError::Corrupt(
                    "delta chain link is missing from the store directory",
                ));
            }
            let dsnap_bytes =
                fs::read(&dsnap_path).map_err(io_err("read delta snapshot", &dsnap_path))?;
            let body = check_header(&dsnap_bytes, MAGIC_STORE_DELTA)?;
            let frame_payload = match next_frame(body) {
                FrameStep::Ok(0, payload, []) => payload,
                _ => return Err(StoreError::Corrupt("delta snapshot frame is damaged")),
            };
            if frame_payload.len() < 16 {
                return Err(StoreError::Corrupt(
                    "delta snapshot is too short to hold its base link",
                ));
            }
            let digest = fnv1a64(frame_payload);
            if expected_digest.is_some_and(|want| want != digest) {
                return Err(StoreError::Corrupt(
                    "delta chain link digest does not match the file on disk",
                ));
            }
            if expected_digest.is_none() {
                root_digest = digest;
            }
            let base_seq = u64::from_le_bytes(frame_payload[..8].try_into().expect("8 bytes"));
            let base_digest = u64::from_le_bytes(frame_payload[8..16].try_into().expect("8 bytes"));
            if base_seq >= cursor {
                return Err(StoreError::Corrupt("delta chain does not descend"));
            }
            deltas_rev.push(frame_payload[16..].to_vec());
            chain_rev.push(cursor);
            expected_digest = Some(base_digest);
            cursor = base_seq;
        };
        deltas_rev.reverse();
        chain_rev.reverse();
        let deltas = deltas_rev;
        let chain = chain_rev;

        // Live segments: everything after the snapshot, in order. Torn
        // frames are only legal at the very tail of the very last one.
        let live: Vec<u64> = seg_seqs.into_iter().filter(|&s| s > snapshot_seq).collect();
        let mut tail = Vec::new();
        let mut torn_frames_dropped = 0usize;
        let mut expected_frame_seq = 0u64;
        let mut last_segment: Option<(u64, u64)> = None; // (seq, good body bytes)
        for (i, &seq) in live.iter().enumerate() {
            let path = dir.join(format!("seg-{seq}.bin"));
            let bytes = fs::read(&path).map_err(io_err("read segment", &path))?;
            let is_last = i + 1 == live.len();
            let header_checked = check_header(&bytes, MAGIC_STORE_SEGMENT);
            let body = match header_checked {
                Ok(body) => body,
                Err(e) => {
                    if is_last {
                        // Even the header is torn (a crash during segment
                        // creation): nothing in this segment was ever
                        // readable, so drop it whole and treat the tail as
                        // ending at the previous segment.
                        torn_frames_dropped += 1;
                        fs::remove_file(&path).map_err(io_err("remove torn segment", &path))?;
                        last_segment = None;
                        continue;
                    }
                    return Err(e);
                }
            };
            let (frames, damage) = parse_frames(body);
            // Frame sequence numbers must run contiguously across the whole
            // tail: a gap means acknowledged frames vanished without
            // visible damage (e.g. a sealed segment truncated exactly at a
            // frame boundary) — replaying past it would reorder history.
            for (frame_seq, _) in &frames {
                if *frame_seq != expected_frame_seq {
                    return Err(StoreError::Corrupt(
                        "write-ahead frame sequence is not contiguous",
                    ));
                }
                expected_frame_seq += 1;
            }
            match damage {
                None => {
                    last_segment = Some((seq, body.len() as u64));
                    tail.extend(frames.into_iter().map(|(_, payload)| payload));
                }
                Some(offset) if is_last => {
                    // Torn tail: truncate back to the last good frame and
                    // count what a future reader will no longer see. The
                    // remainder past the first damage is unaccounted — it
                    // may hold later intact frames, but replaying past a
                    // hole would reorder history, so everything after the
                    // tear is dropped with it.
                    let keep = 6 + offset as u64;
                    let file = OpenOptions::new()
                        .write(true)
                        .open(&path)
                        .map_err(io_err("open segment for repair", &path))?;
                    file.set_len(keep)
                        .map_err(io_err("truncate torn tail", &path))?;
                    file.sync_all()
                        .map_err(io_err("fsync repaired segment", &path))?;
                    // Count whole torn frames conservatively: at least one
                    // (the torn frame itself).
                    torn_frames_dropped += 1;
                    last_segment = Some((seq, offset as u64));
                    tail.extend(frames.into_iter().map(|(_, payload)| payload));
                }
                Some(_) => {
                    return Err(StoreError::Corrupt("sealed segment holds a damaged frame"));
                }
            }
        }

        let mut store = SegmentStore {
            dir: dir.to_path_buf(),
            config,
            next_seq: max_seq.max(snapshot_seq) + 1,
            snapshot_seq: Some(snapshot_seq),
            chain_base_seq: Some(chain_base_seq),
            chain,
            root_digest: Some(root_digest),
            active: None,
            next_frame_seq: expected_frame_seq,
        };
        // Continue appending to the last live segment; create one if the
        // tail is empty (e.g. the post-snapshot segment was torn away).
        match last_segment {
            Some((seq, body_bytes)) => {
                let path = store.segment_path(seq);
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(io_err("reopen active segment", &path))?;
                store.active = Some((seq, file, body_bytes));
            }
            None => store.open_fresh_segment()?,
        }
        let recovery = Recovery {
            snapshot: Some(snapshot),
            deltas,
            tail,
            torn_frames_dropped,
        };
        Ok((store, recovery))
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("seg-{seq}.bin"))
    }

    /// Creates (and syncs) a fresh empty segment, making it active.
    fn open_fresh_segment(&mut self) -> Result<(), StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let path = self.segment_path(seq);
        let mut header = Vec::with_capacity(6);
        write_header(&mut header, MAGIC_STORE_SEGMENT);
        let mut file = File::create(&path).map_err(io_err("create segment", &path))?;
        file.write_all(&header)
            .map_err(io_err("write segment header", &path))?;
        if self.config.fsync {
            file.sync_all()
                .map_err(io_err("fsync new segment", &path))?;
            self.sync_dir()?;
        }
        self.active = Some((seq, file, 0));
        Ok(())
    }

    fn sync_dir(&self) -> Result<(), StoreError> {
        let dir = File::open(&self.dir).map_err(io_err("open dir", &self.dir))?;
        dir.sync_all().map_err(io_err("fsync dir", &self.dir))
    }

    /// Appends one payload frame to the active segment, rotating first if
    /// the segment is over [`StoreConfig::segment_rotate_bytes`]. With
    /// [`StoreConfig::fsync`] on, the frame is durable when this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only — appends never read.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let rotate = match &self.active {
            Some((_, _, written)) => *written >= self.config.segment_rotate_bytes,
            None => true,
        };
        if rotate {
            // Seal the old segment with a final sync so rotation never
            // weakens durability ordering.
            if let Some((seq, file, _)) = self.active.take() {
                if self.config.fsync {
                    let path = self.segment_path(seq);
                    file.sync_all()
                        .map_err(io_err("fsync sealed segment", &path))?;
                }
            }
            self.open_fresh_segment()?;
        }
        let seq = self.active.as_ref().expect("rotation ensured a segment").0;
        let path = self.segment_path(seq);
        let bytes = frame(self.next_frame_seq, payload);
        self.next_frame_seq += 1;
        let fsync = self.config.fsync;
        let (_, file, written) = self.active.as_mut().expect("rotation ensured a segment");
        file.write_all(&bytes)
            .map_err(io_err("append frame", &path))?;
        if fsync {
            file.sync_data().map_err(io_err("fsync append", &path))?;
        }
        *written += bytes.len() as u64;
        Ok(())
    }

    /// Makes `payload` the durable recovery root: writes a new snapshot
    /// file, starts a fresh log segment, flips the manifest pointer
    /// atomically, then deletes everything older (best-effort). See the
    /// [module docs](self) for the exact fsync ordering.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]. On error the manifest still names the previous
    /// snapshot — a failed install never destroys the old recovery root.
    pub fn install_snapshot(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;

        // 1. Snapshot file, fsynced before anything points at it.
        let snap_path = self.dir.join(format!("snap-{seq}.bin"));
        let mut bytes = Vec::with_capacity(6 + 16 + payload.len());
        write_header(&mut bytes, MAGIC_STORE_SNAPSHOT);
        bytes.extend_from_slice(&frame(0, payload));
        let mut file = File::create(&snap_path).map_err(io_err("create snapshot", &snap_path))?;
        file.write_all(&bytes)
            .map_err(io_err("write snapshot", &snap_path))?;
        file.sync_all()
            .map_err(io_err("fsync snapshot", &snap_path))?;

        // 2+3. Fresh tail segment for appends after this snapshot, then
        // make both names durable.
        let old_active = self.active.take();
        self.open_fresh_segment()?;
        if let Some((old_seq, old_file, _)) = old_active {
            let old_path = self.segment_path(old_seq);
            old_file
                .sync_all()
                .map_err(io_err("fsync sealed segment", &old_path))?;
        }
        self.sync_dir()?;

        // 4. The pointer flip: tmp + fsync + atomic rename + dir fsync.
        let manifest = self.dir.join("MANIFEST");
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut bytes = Vec::with_capacity(6 + 16 + 8);
        write_header(&mut bytes, MAGIC_STORE_MANIFEST);
        bytes.extend_from_slice(&frame(0, &seq.to_le_bytes()));
        let mut file = File::create(&tmp).map_err(io_err("create manifest tmp", &tmp))?;
        file.write_all(&bytes)
            .map_err(io_err("write manifest tmp", &tmp))?;
        file.sync_all()
            .map_err(io_err("fsync manifest tmp", &tmp))?;
        drop(file);
        fs::rename(&tmp, &manifest).map_err(io_err("rename manifest", &manifest))?;
        self.sync_dir()?;
        self.snapshot_seq = Some(seq);
        // A full snapshot folds (rebases) any delta chain: it is now the
        // whole recovery root.
        self.chain_base_seq = Some(seq);
        self.chain.clear();
        self.root_digest = Some(fnv1a64(payload));
        // The tail restarts at this snapshot: frame numbering resets only
        // now — a *failed* install keeps the old root, whose tail (which
        // the already-created fresh segment is part of) must keep counting.
        self.next_frame_seq = 0;

        // 5. Garbage: everything strictly below the new snapshot —
        // including the entire superseded delta chain — is unreachable
        // from the manifest. Deletion failures are ignored — stale files
        // are filtered by sequence on recovery anyway.
        self.collect_garbage(seq, seq);
        Ok(())
    }

    /// Makes `payload` the durable recovery root as a *delta snapshot*
    /// chained onto the current root: writes `dsnap-<seq>.bin` carrying
    /// the `(seq, digest)` back-link, starts a fresh log segment, flips
    /// the manifest pointer atomically, then deletes stale artefacts
    /// (best-effort). Fsync ordering is identical to
    /// [`SegmentStore::install_snapshot`]; recovery replays the base
    /// snapshot plus every chained delta in order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if no recovery root exists yet (the first
    /// install must be a full snapshot); [`StoreError::Io`] on filesystem
    /// failures. On error the manifest still names the previous root.
    pub fn install_delta(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let (Some(base_seq), Some(base_digest)) = (self.snapshot_seq, self.root_digest) else {
            return Err(StoreError::Corrupt(
                "delta install requires an existing snapshot root",
            ));
        };
        let seq = self.next_seq;
        self.next_seq += 1;

        // 1. Delta-snapshot file: one frame whose payload is the 16-byte
        // base link followed by the caller's bytes, fsynced before
        // anything points at it.
        let dsnap_path = self.dir.join(format!("dsnap-{seq}.bin"));
        let mut frame_payload = Vec::with_capacity(16 + payload.len());
        frame_payload.extend_from_slice(&base_seq.to_le_bytes());
        frame_payload.extend_from_slice(&base_digest.to_le_bytes());
        frame_payload.extend_from_slice(payload);
        let mut bytes = Vec::with_capacity(6 + 16 + frame_payload.len());
        write_header(&mut bytes, MAGIC_STORE_DELTA);
        bytes.extend_from_slice(&frame(0, &frame_payload));
        let mut file =
            File::create(&dsnap_path).map_err(io_err("create delta snapshot", &dsnap_path))?;
        file.write_all(&bytes)
            .map_err(io_err("write delta snapshot", &dsnap_path))?;
        file.sync_all()
            .map_err(io_err("fsync delta snapshot", &dsnap_path))?;

        // 2+3. Fresh tail segment for appends after this root, then make
        // both names durable.
        let old_active = self.active.take();
        self.open_fresh_segment()?;
        if let Some((old_seq, old_file, _)) = old_active {
            let old_path = self.segment_path(old_seq);
            old_file
                .sync_all()
                .map_err(io_err("fsync sealed segment", &old_path))?;
        }
        self.sync_dir()?;

        // 4. The pointer flip: tmp + fsync + atomic rename + dir fsync.
        let manifest = self.dir.join("MANIFEST");
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut bytes = Vec::with_capacity(6 + 16 + 8);
        write_header(&mut bytes, MAGIC_STORE_MANIFEST);
        bytes.extend_from_slice(&frame(0, &seq.to_le_bytes()));
        let mut file = File::create(&tmp).map_err(io_err("create manifest tmp", &tmp))?;
        file.write_all(&bytes)
            .map_err(io_err("write manifest tmp", &tmp))?;
        file.sync_all()
            .map_err(io_err("fsync manifest tmp", &tmp))?;
        drop(file);
        fs::rename(&tmp, &manifest).map_err(io_err("rename manifest", &manifest))?;
        self.sync_dir()?;
        self.snapshot_seq = Some(seq);
        self.chain.push(seq);
        self.root_digest = Some(fnv1a64(&frame_payload));
        self.next_frame_seq = 0;

        // 5. Garbage: segments below the new root are folded into it, but
        // the chain's snapshots (base and intermediate links) must stay.
        let base_floor = self.chain_base_seq.unwrap_or(seq);
        self.collect_garbage(base_floor, seq);
        Ok(())
    }

    /// Best-effort deletion of artefacts unreachable from the manifest:
    /// snapshots and delta snapshots below `snap_floor`, segments below
    /// `seg_floor`. Orphaned delta snapshots *between* the floors (from
    /// interrupted installs) are harmless — recovery only follows explicit
    /// chain links — and are swept by the next full-snapshot install.
    fn collect_garbage(&self, snap_floor: u64, seg_floor: u64) {
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let stale = parse_seq(name, "snap-").is_some_and(|s| s < snap_floor)
                    || parse_seq(name, "dsnap-").is_some_and(|s| {
                        s < snap_floor || (s < seg_floor && !self.chain.contains(&s))
                    })
                    || parse_seq(name, "seg-").is_some_and(|s| s < seg_floor);
                if stale {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sequence of the durable (manifest-named) recovery root, if one
    /// exists — a full snapshot, or the newest link of a delta chain.
    pub fn snapshot_seq(&self) -> Option<u64> {
        self.snapshot_seq
    }

    /// Sequence of the full snapshot anchoring the current delta chain
    /// (equals [`SegmentStore::snapshot_seq`] when the chain is empty).
    pub fn chain_base_seq(&self) -> Option<u64> {
        self.chain_base_seq
    }

    /// Number of delta snapshots chained above the base full snapshot.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Whether the delta chain has reached [`StoreConfig::max_chain_len`]
    /// — the caller should fold it with a full
    /// [`SegmentStore::install_snapshot`] instead of chaining further.
    pub fn needs_rebase(&self) -> bool {
        self.chain.len() >= self.config.max_chain_len
    }

    /// FNV-1a digest of the current recovery root's frame payload — the
    /// back-link the next [`SegmentStore::install_delta`] will record.
    pub fn root_digest(&self) -> Option<u64> {
        self.root_digest
    }

    /// Sequence of the segment currently receiving appends.
    pub fn active_segment_seq(&self) -> Option<u64> {
        self.active.as_ref().map(|(seq, _, _)| *seq)
    }

    /// Total bytes currently on disk for the live artefacts (base
    /// snapshot, delta chain, and segments above the recovery root) —
    /// what a follower would have to copy to bootstrap.
    pub fn live_bytes(&self) -> u64 {
        let mut total = 0;
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let snap_floor = self.chain_base_seq.unwrap_or(0);
        let seg_floor = self.snapshot_seq.unwrap_or(0);
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let live = name == "MANIFEST"
                || parse_seq(name, "snap-").is_some_and(|s| s >= snap_floor)
                || parse_seq(name, "dsnap-").is_some_and(|s| s >= snap_floor)
                || parse_seq(name, "seg-").is_some_and(|s| s >= seg_floor);
            if live {
                if let Ok(meta) = entry.metadata() {
                    total += meta.len();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scratch directory under the system temp dir, removed on drop
    /// (hand-rolled: no tempfile crate in the offline container).
    struct Scratch(PathBuf);

    impl Scratch {
        fn new(tag: &str) -> Self {
            let pid = std::process::id();
            let dir = std::env::temp_dir().join(format!("apg-store-{tag}-{pid}"));
            let _ = fs::remove_dir_all(&dir);
            Scratch(dir)
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn no_sync() -> StoreConfig {
        StoreConfig {
            fsync: false,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn snapshot_and_tail_round_trip() {
        let scratch = Scratch::new("round-trip");
        {
            let (mut store, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
            assert!(rec.snapshot.is_none());
            store.install_snapshot(b"snapshot-one").unwrap();
            store.append(b"batch-a").unwrap();
            store.append(b"batch-b").unwrap();
        }
        let (store, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"snapshot-one"[..]));
        assert_eq!(rec.tail, vec![b"batch-a".to_vec(), b"batch-b".to_vec()]);
        assert_eq!(rec.torn_frames_dropped, 0);
        assert!(store.snapshot_seq().is_some());
    }

    #[test]
    fn new_snapshot_resets_the_tail_and_collects_garbage() {
        let scratch = Scratch::new("gc");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        store.install_snapshot(b"one").unwrap();
        store.append(b"a").unwrap();
        store.install_snapshot(b"two").unwrap();
        store.append(b"b").unwrap();
        let snap_seq = store.snapshot_seq().unwrap();
        drop(store);

        let (_, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"two"[..]));
        assert_eq!(rec.tail, vec![b"b".to_vec()]);
        // Stale artefacts are gone.
        for entry in fs::read_dir(&scratch.0).unwrap().flatten() {
            let name = entry.file_name().to_str().unwrap().to_string();
            if let Some(seq) = parse_seq(&name, "snap-").or_else(|| parse_seq(&name, "seg-")) {
                assert!(seq >= snap_seq, "stale file {name} survived");
            }
        }
    }

    #[test]
    fn rotation_splits_the_tail_across_segments() {
        let scratch = Scratch::new("rotate");
        let config = StoreConfig {
            segment_rotate_bytes: 32,
            fsync: false,
            ..StoreConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&scratch.0, config.clone()).unwrap();
        store.install_snapshot(b"s").unwrap();
        let first_seg = store.active_segment_seq().unwrap();
        for i in 0..8u8 {
            store.append(&[i; 16]).unwrap();
        }
        assert!(
            store.active_segment_seq().unwrap() > first_seg,
            "32-byte rotation threshold never rotated across 8x24-byte frames"
        );
        drop(store);
        let (_, rec) = SegmentStore::open(&scratch.0, config).unwrap();
        assert_eq!(rec.tail.len(), 8);
        for (i, payload) in rec.tail.iter().enumerate() {
            assert_eq!(payload, &[i as u8; 16]);
        }
    }

    #[test]
    fn torn_tail_is_repaired_sealed_damage_is_fatal() {
        let scratch = Scratch::new("torn");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        store.install_snapshot(b"s").unwrap();
        store.append(b"good-frame").unwrap();
        store.append(b"doomed-frame").unwrap();
        let seg = store.segment_path(store.active_segment_seq().unwrap());
        drop(store);

        // Tear the last frame: chop 3 bytes off the end.
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let (_, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.tail, vec![b"good-frame".to_vec()]);
        assert_eq!(rec.torn_frames_dropped, 1);
        // The repair truncated the file: reopening is now clean.
        let (_, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.torn_frames_dropped, 0);

        // Same damage on a *sealed* segment is unrecoverable: append past
        // the rotation threshold so the damaged segment is not last.
        let scratch = Scratch::new("sealed");
        let config = StoreConfig {
            segment_rotate_bytes: 8,
            fsync: false,
            ..StoreConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&scratch.0, config.clone()).unwrap();
        store.install_snapshot(b"s").unwrap();
        let sealed = store.segment_path(store.active_segment_seq().unwrap());
        store.append(b"frame-in-sealed-segment").unwrap();
        store.append(b"frame-in-next-segment").unwrap();
        drop(store);
        let mut bytes = fs::read(&sealed).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40; // flip a payload bit: CRC must catch it
        fs::write(&sealed, &bytes).unwrap();
        match SegmentStore::open(&scratch.0, config) {
            Err(StoreError::Corrupt(_)) => {}
            other => panic!("sealed damage must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn clean_truncation_of_a_sealed_segment_is_a_sequence_gap() {
        // One frame per segment (any append exceeds a 1-byte threshold, so
        // every append rotates first). Truncating a *sealed* segment back
        // to its bare header leaves a file with zero visible damage — only
        // the frame-sequence contiguity check can tell that acknowledged
        // frames vanished.
        let scratch = Scratch::new("gap");
        let config = StoreConfig {
            segment_rotate_bytes: 1,
            fsync: false,
            ..StoreConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&scratch.0, config.clone()).unwrap();
        store.install_snapshot(b"s").unwrap();
        store.append(b"frame-zero").unwrap();
        let sealed = store.segment_path(store.active_segment_seq().unwrap());
        store.append(b"frame-one").unwrap();
        store.append(b"frame-two").unwrap();
        drop(store);

        fs::write(&sealed, &fs::read(&sealed).unwrap()[..6]).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, config),
            Err(StoreError::Corrupt(
                "write-ahead frame sequence is not contiguous"
            ))
        ));
    }

    #[test]
    fn damaged_manifest_and_snapshot_are_typed_errors() {
        let scratch = Scratch::new("manifest");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        store.install_snapshot(b"payload").unwrap();
        let snap = scratch
            .0
            .join(format!("snap-{}.bin", store.snapshot_seq().unwrap()));
        drop(store);

        let manifest = scratch.0.join("MANIFEST");
        let good_manifest = fs::read(&manifest).unwrap();
        let good_snap = fs::read(&snap).unwrap();

        // Truncated manifest.
        fs::write(&manifest, &good_manifest[..good_manifest.len() - 2]).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, no_sync()),
            Err(StoreError::Corrupt(_))
        ));
        fs::write(&manifest, &good_manifest).unwrap();

        // Bit-flipped snapshot payload.
        let mut bad = good_snap.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        fs::write(&snap, &bad).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, no_sync()),
            Err(StoreError::Corrupt("snapshot frame is damaged"))
        ));
        fs::write(&snap, &good_snap).unwrap();

        // Restored: opens clean again.
        let (_, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"payload"[..]));
    }

    #[test]
    fn failed_install_preserves_the_old_root() {
        // Simulate "crash between snapshot write and pointer flip" by
        // hand-writing a newer snapshot file without touching MANIFEST:
        // recovery must still land on the flipped root.
        let scratch = Scratch::new("no-flip");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        store.install_snapshot(b"durable").unwrap();
        store.append(b"tail-frame").unwrap();
        drop(store);
        // An orphaned higher-seq snapshot (never named by the manifest).
        let mut bytes = Vec::new();
        write_header(&mut bytes, MAGIC_STORE_SNAPSHOT);
        bytes.extend_from_slice(&frame(0, b"never-flipped"));
        fs::write(scratch.0.join("snap-99.bin"), &bytes).unwrap();

        let (store, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"durable"[..]));
        assert_eq!(rec.tail, vec![b"tail-frame".to_vec()]);
        // And the writer will never reuse the orphan's sequence number.
        assert!(store.next_seq > 99);
    }

    #[test]
    fn delta_chain_round_trips() {
        let scratch = Scratch::new("delta-chain");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        // The first install must anchor the chain.
        assert!(matches!(
            store.install_delta(b"too-early"),
            Err(StoreError::Corrupt(_))
        ));
        store.install_snapshot(b"base").unwrap();
        store.append(b"tail-a").unwrap();
        store.install_delta(b"delta-one").unwrap();
        store.install_delta(b"delta-two").unwrap();
        store.append(b"tail-b").unwrap();
        assert_eq!(store.chain_len(), 2);
        drop(store);

        let (store, rec) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"base"[..]));
        assert_eq!(
            rec.deltas,
            vec![b"delta-one".to_vec(), b"delta-two".to_vec()]
        );
        // tail-a predates delta-one's root and was folded into it.
        assert_eq!(rec.tail, vec![b"tail-b".to_vec()]);
        assert_eq!(store.chain_len(), 2);
        assert!(store.chain_base_seq().unwrap() < store.snapshot_seq().unwrap());
    }

    #[test]
    fn full_snapshot_rebases_and_collects_the_chain() {
        let scratch = Scratch::new("rebase");
        let config = StoreConfig {
            fsync: false,
            max_chain_len: 2,
            ..StoreConfig::default()
        };
        let (mut store, _) = SegmentStore::open(&scratch.0, config.clone()).unwrap();
        store.install_snapshot(b"base").unwrap();
        assert!(!store.needs_rebase());
        store.install_delta(b"d1").unwrap();
        assert!(!store.needs_rebase());
        store.install_delta(b"d2").unwrap();
        assert!(store.needs_rebase(), "max_chain_len reached");
        store.install_snapshot(b"rebased").unwrap();
        assert_eq!(store.chain_len(), 0);
        assert!(!store.needs_rebase());
        assert_eq!(store.chain_base_seq(), store.snapshot_seq());
        // The superseded chain (and its base) are garbage-collected.
        for entry in fs::read_dir(&scratch.0).unwrap().flatten() {
            let name = entry.file_name().to_str().unwrap().to_string();
            assert!(
                !name.starts_with("dsnap-"),
                "stale chain link {name} survived the rebase"
            );
        }
        drop(store);
        let (_, rec) = SegmentStore::open(&scratch.0, config).unwrap();
        assert_eq!(rec.snapshot.as_deref(), Some(&b"rebased"[..]));
        assert!(rec.deltas.is_empty());
    }

    #[test]
    fn broken_chain_links_are_typed_errors() {
        let build = |tag: &str| -> (Scratch, PathBuf) {
            let scratch = Scratch::new(tag);
            let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
            store.install_snapshot(b"base").unwrap();
            store.install_delta(b"delta-mid").unwrap();
            let mid = scratch
                .0
                .join(format!("dsnap-{}.bin", store.snapshot_seq().unwrap()));
            store.install_delta(b"delta-top").unwrap();
            (scratch, mid)
        };

        // Bit flip inside a mid-chain link: its digest no longer matches
        // what the child recorded.
        let (scratch, mid) = build("chain-flip");
        let mut bytes = fs::read(&mid).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x10;
        fs::write(&mid, &bytes).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, no_sync()),
            Err(StoreError::Corrupt(_))
        ));

        // Missing mid-chain link.
        let (scratch, mid) = build("chain-missing");
        fs::remove_file(&mid).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, no_sync()),
            Err(StoreError::Corrupt(
                "delta chain link is missing from the store directory"
            ))
        ));

        // A stale *different* file at the linked sequence: internally
        // valid, but the digest in the child link exposes it.
        let (scratch, mid) = build("chain-swap");
        let mut forged = Vec::new();
        write_header(&mut forged, MAGIC_STORE_DELTA);
        let mut fp = Vec::new();
        fp.extend_from_slice(&0u64.to_le_bytes());
        fp.extend_from_slice(&0u64.to_le_bytes());
        fp.extend_from_slice(b"forged-payload");
        forged.extend_from_slice(&frame(0, &fp));
        fs::write(&mid, &forged).unwrap();
        assert!(matches!(
            SegmentStore::open(&scratch.0, no_sync()),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn delta_install_keeps_live_bytes_bounded_by_chain() {
        let scratch = Scratch::new("delta-live-bytes");
        let (mut store, _) = SegmentStore::open(&scratch.0, no_sync()).unwrap();
        store.install_snapshot(&[0u8; 1024]).unwrap();
        let full = store.live_bytes();
        for _ in 0..3 {
            store.install_delta(&[1u8; 32]).unwrap();
        }
        let chained = store.live_bytes();
        assert!(
            chained < full + 3 * 1024,
            "live bytes grew like full snapshots: {chained} vs base {full}"
        );
        // The chain is still accounted (base + 3 links + manifest + segment).
        assert!(chained > full);
    }

    #[test]
    fn errors_display_usefully() {
        let io = StoreError::Io {
            op: "fsync dir",
            path: PathBuf::from("/tmp/x"),
            source: std::io::Error::other("demo"),
        };
        let decode = StoreError::Decode(DecodeError::Corrupt("demo"));
        let corrupt = StoreError::Corrupt("demo");
        for e in [&io, &decode, &corrupt] {
            assert!(!e.to_string().is_empty());
        }
        use std::error::Error;
        assert!(io.source().is_some());
        assert!(decode.source().is_some());
        assert!(corrupt.source().is_none());
    }
}
