//! Binary codec for the graph substrate: [`DynGraph`] snapshots and
//! [`DeltaLog`] segments.
//!
//! This is the `apg-graph` slice of the workspace's durable-state layer
//! (`apg-persist`): snapshots capture the **whole slot space** — live
//! vertices *and* tombstones — so a restored graph allocates the next
//! vertex id exactly where the original would have, keeping producers and
//! consumers of the dense id space aligned across a restart.
//!
//! # Wire shapes (format version 1)
//!
//! * `DynGraph` — slot count, per-slot alive flags, then per-slot **upper
//!   adjacency** (neighbours `w > v` only): symmetry is a structural
//!   invariant, so the lower half is redundant on disk and gets rebuilt —
//!   and validated — at decode time.
//! * `GraphDelta` — a tag byte plus the variant's fields.
//! * `UpdateBatch` — its delta sequence (`num_new` is recomputed, and
//!   `ConnectNew` placeholders are checked against it).
//! * `DeltaLog` — its batch sequence.
//!
//! Framed file helpers ([`DynGraph::to_snapshot_bytes`],
//! [`DeltaLog::to_segment_bytes`]) add the magic + version header from
//! [`apg_persist::format`].
//!
//! # Example
//!
//! ```
//! use apg_graph::{DynGraph, Graph};
//!
//! let mut g = DynGraph::with_vertices(3);
//! g.add_edge(0, 1);
//! g.remove_vertex(2); // tombstone
//! let bytes = g.to_snapshot_bytes();
//! let back = DynGraph::from_snapshot_bytes(&bytes).unwrap();
//! assert_eq!(back, g);
//! assert_eq!(back.num_vertices(), 3); // tombstone slot survived
//! ```

use apg_persist::{decode_len, format, Decode, DecodeError, Decoder, Encode, Encoder};

use crate::delta::{DeltaLog, GraphDelta, UpdateBatch};
use crate::dynamic::DynGraph;
use crate::types::{Graph, VertexId};

impl Encode for DynGraph {
    fn encode(&self, enc: &mut Encoder) {
        let n = self.num_vertices();
        enc.write_varint(n as u64);
        for v in 0..n as VertexId {
            self.is_vertex(v).encode(enc);
        }
        for v in 0..n as VertexId {
            let upper: Vec<VertexId> = if self.is_vertex(v) {
                self.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&w| w > v)
                    .collect()
            } else {
                Vec::new()
            };
            upper.encode(enc);
        }
    }
}

impl Decode for DynGraph {
    /// Rebuilds the graph, validating every structural invariant: upper
    /// adjacency strictly ascending and in range, no self loops, no edges
    /// at tombstoned endpoints.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = decode_len(dec, 1)?;
        // Clamp the pre-allocation to the bytes actually present: the
        // min_item_bytes guard in decode_len bounds n against the payload,
        // but capacity must never trust a decoded length outright.
        let mut alive = Vec::with_capacity(n.min(dec.remaining()));
        for _ in 0..n {
            alive.push(bool::decode(dec)?);
        }
        let mut graph = DynGraph::from_alive_slots(alive);
        for v in 0..n as VertexId {
            let upper = Vec::<VertexId>::decode(dec)?;
            if !upper.is_empty() && !graph.is_vertex(v) {
                return Err(DecodeError::Corrupt("tombstone slot holds adjacency"));
            }
            let mut prev: Option<VertexId> = None;
            for &w in &upper {
                if w <= v {
                    return Err(DecodeError::Corrupt(
                        "adjacency entry not in the upper half (w <= v)",
                    ));
                }
                if (w as usize) >= n {
                    return Err(DecodeError::Corrupt("adjacency endpoint out of range"));
                }
                if prev.is_some_and(|p| p >= w) {
                    return Err(DecodeError::Corrupt("adjacency not strictly ascending"));
                }
                prev = Some(w);
                if !graph.add_edge(v, w) {
                    // add_edge rejects dead endpoints and duplicates; the
                    // ascending check above already caught duplicates.
                    return Err(DecodeError::Corrupt("edge endpoint is a tombstone"));
                }
            }
        }
        Ok(graph)
    }
}

impl DynGraph {
    /// Builds a graph of `alive.len()` edgeless slots with the given
    /// liveness — the decoder's starting point for replaying adjacency.
    pub(crate) fn from_alive_slots(alive: Vec<bool>) -> Self {
        let num_live = alive.iter().filter(|&&a| a).count();
        let pool = crate::adj_pool::AdjPool::with_slots(alive.len());
        DynGraph::from_raw_parts(pool, alive, num_live, 0)
    }

    /// Serialises the graph — tombstone slots included — as a framed,
    /// versioned snapshot (`APGG` magic).
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        format::encode_framed(format::MAGIC_GRAPH, self)
    }

    /// Restores a snapshot written by [`DynGraph::to_snapshot_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: wrong magic, unsupported version, truncation,
    /// or a payload violating the graph invariants.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        format::decode_framed(format::MAGIC_GRAPH, bytes)
    }
}

/// Tag bytes for [`GraphDelta`] variants (appending new variants is a
/// format change: bump [`format::VERSION`]).
mod delta_tag {
    pub const ADD_VERTEX: u8 = 0;
    pub const CONNECT_NEW: u8 = 1;
    pub const ADD_EDGE: u8 = 2;
    pub const REMOVE_EDGE: u8 = 3;
    pub const REMOVE_VERTEX: u8 = 4;
}

impl Encode for GraphDelta {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            GraphDelta::AddVertex { neighbors } => {
                enc.write_bytes(&[delta_tag::ADD_VERTEX]);
                neighbors.encode(enc);
            }
            GraphDelta::ConnectNew { a, b } => {
                enc.write_bytes(&[delta_tag::CONNECT_NEW]);
                a.encode(enc);
                b.encode(enc);
            }
            GraphDelta::AddEdge { u, v } => {
                enc.write_bytes(&[delta_tag::ADD_EDGE]);
                u.encode(enc);
                v.encode(enc);
            }
            GraphDelta::RemoveEdge { u, v } => {
                enc.write_bytes(&[delta_tag::REMOVE_EDGE]);
                u.encode(enc);
                v.encode(enc);
            }
            GraphDelta::RemoveVertex { vertex } => {
                enc.write_bytes(&[delta_tag::REMOVE_VERTEX]);
                vertex.encode(enc);
            }
        }
    }
}

impl Decode for GraphDelta {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match dec.read_bytes(1)?[0] {
            delta_tag::ADD_VERTEX => Ok(GraphDelta::AddVertex {
                neighbors: Vec::decode(dec)?,
            }),
            delta_tag::CONNECT_NEW => Ok(GraphDelta::ConnectNew {
                a: usize::decode(dec)?,
                b: usize::decode(dec)?,
            }),
            delta_tag::ADD_EDGE => Ok(GraphDelta::AddEdge {
                u: VertexId::decode(dec)?,
                v: VertexId::decode(dec)?,
            }),
            delta_tag::REMOVE_EDGE => Ok(GraphDelta::RemoveEdge {
                u: VertexId::decode(dec)?,
                v: VertexId::decode(dec)?,
            }),
            delta_tag::REMOVE_VERTEX => Ok(GraphDelta::RemoveVertex {
                vertex: VertexId::decode(dec)?,
            }),
            _ => Err(DecodeError::Corrupt("unknown GraphDelta tag")),
        }
    }
}

impl Encode for UpdateBatch {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_varint(self.deltas().len() as u64);
        for delta in self.deltas() {
            delta.encode(enc);
        }
    }
}

impl Decode for UpdateBatch {
    /// Rebuilds the batch through its own API, re-deriving the placeholder
    /// count and rejecting `ConnectNew` events that reference placeholders
    /// the batch has not allocated (the builder API panics on those; a
    /// decoder must error instead).
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(dec, 1)?;
        let mut batch = UpdateBatch::new();
        for _ in 0..len {
            match GraphDelta::decode(dec)? {
                GraphDelta::ConnectNew { a, b } => {
                    if a >= batch.num_new_vertices() || b >= batch.num_new_vertices() {
                        return Err(DecodeError::Corrupt(
                            "ConnectNew references an unallocated placeholder",
                        ));
                    }
                    batch.connect_new(a, b);
                }
                other => batch.push(other),
            }
        }
        Ok(batch)
    }
}

impl Encode for DeltaLog {
    fn encode(&self, enc: &mut Encoder) {
        enc.write_varint(self.batches().len() as u64);
        for batch in self.batches() {
            batch.encode(enc);
        }
    }
}

impl Decode for DeltaLog {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(dec, 1)?;
        let mut log = DeltaLog::new();
        for _ in 0..len {
            log.record(UpdateBatch::decode(dec)?);
        }
        Ok(log)
    }
}

impl DeltaLog {
    /// Serialises the log as a framed, versioned segment file (`APGL`
    /// magic).
    pub fn to_segment_bytes(&self) -> Vec<u8> {
        format::encode_framed(format::MAGIC_LOG, self)
    }

    /// Restores a segment written by [`DeltaLog::to_segment_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: wrong magic, unsupported version, truncation,
    /// or a malformed batch.
    pub fn from_segment_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        format::decode_framed(format::MAGIC_LOG, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_persist::{Decode, Encode};

    fn sample_graph() -> DynGraph {
        let mut g = DynGraph::with_vertices(6);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 4);
        g.add_edge(3, 5);
        g.remove_vertex(2); // tombstone with a former edge
        g
    }

    #[test]
    fn graph_snapshot_round_trips_with_tombstones() {
        let g = sample_graph();
        let back = DynGraph::from_bytes(&g.to_bytes()).unwrap();
        assert_eq!(back, g);
        assert_eq!(back.num_vertices(), 6);
        assert_eq!(back.num_live_vertices(), 5);
        assert_eq!(back.num_edges(), 3);
        assert!(!back.is_vertex(2));
    }

    #[test]
    fn restored_graph_keeps_allocating_densely() {
        let g = sample_graph();
        let mut back = DynGraph::from_snapshot_bytes(&g.to_snapshot_bytes()).unwrap();
        // The tombstone slot is preserved, never reused: the next id is the
        // next fresh slot, exactly as on the original.
        assert_eq!(back.add_vertex(), 6);
        let mut original = g;
        assert_eq!(original.add_vertex(), 6);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = DynGraph::new();
        assert_eq!(DynGraph::from_bytes(&g.to_bytes()).unwrap(), g);
    }

    #[test]
    fn snapshot_rejects_corruption() {
        // Hand-assembled payloads violating each structural invariant; the
        // decoder must reject every one with a typed error.
        let mut enc = Encoder::new();
        6usize.encode(&mut enc);
        for _ in 0..6 {
            true.encode(&mut enc);
        }
        vec![9u32].encode(&mut enc); // vertex 0 -> 9 (out of range)
        for _ in 1..6 {
            Vec::<u32>::new().encode(&mut enc);
        }
        assert!(matches!(
            DynGraph::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("adjacency endpoint out of range")
        ));

        // Lower-half entry smuggled in.
        let mut enc = Encoder::new();
        2usize.encode(&mut enc);
        true.encode(&mut enc);
        true.encode(&mut enc);
        Vec::<u32>::new().encode(&mut enc);
        vec![0u32].encode(&mut enc); // vertex 1 -> 0 belongs to the lower half
        assert!(matches!(
            DynGraph::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("adjacency entry not in the upper half (w <= v)")
        ));

        // Tombstone with adjacency.
        let mut enc = Encoder::new();
        2usize.encode(&mut enc);
        false.encode(&mut enc);
        true.encode(&mut enc);
        vec![1u32].encode(&mut enc);
        Vec::<u32>::new().encode(&mut enc);
        assert!(matches!(
            DynGraph::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("tombstone slot holds adjacency")
        ));

        // Edge *to* a tombstone.
        let mut enc = Encoder::new();
        2usize.encode(&mut enc);
        true.encode(&mut enc);
        false.encode(&mut enc);
        vec![1u32].encode(&mut enc);
        Vec::<u32>::new().encode(&mut enc);
        assert!(matches!(
            DynGraph::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("edge endpoint is a tombstone")
        ));
    }

    #[test]
    fn deltas_and_batches_round_trip() {
        let mut batch = UpdateBatch::new();
        let a = batch.add_vertex(vec![0, 7]);
        let b = batch.add_vertex(vec![]);
        batch.connect_new(a, b);
        batch.add_edge(1, 2);
        batch.remove_edge(3, 4);
        batch.remove_vertex(5);
        let back = UpdateBatch::from_bytes(&batch.to_bytes()).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.num_new_vertices(), 2);
    }

    #[test]
    fn batch_decode_rejects_dangling_placeholder() {
        // ConnectNew before any AddVertex: unrepresentable via the API,
        // must decode to an error rather than panic.
        let mut enc = Encoder::new();
        enc.write_varint(1);
        GraphDelta::ConnectNew { a: 0, b: 0 }.encode(&mut enc);
        assert!(matches!(
            UpdateBatch::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("ConnectNew references an unallocated placeholder")
        ));
    }

    #[test]
    fn unknown_delta_tag_is_corrupt() {
        let mut enc = Encoder::new();
        enc.write_varint(1);
        enc.write_bytes(&[99]);
        assert!(matches!(
            UpdateBatch::from_bytes(&enc.into_bytes()).unwrap_err(),
            DecodeError::Corrupt("unknown GraphDelta tag")
        ));
    }

    #[test]
    fn log_segments_round_trip_and_replay() {
        let mut base = DynGraph::with_vertices(4);
        let mut log = DeltaLog::new();
        let mut b1 = UpdateBatch::new();
        b1.add_edge(0, 1);
        b1.add_vertex(vec![0, 2]);
        log.record(b1);
        let mut b2 = UpdateBatch::new();
        b2.remove_vertex(1);
        log.record(b2);

        let bytes = log.to_segment_bytes();
        let back = DeltaLog::from_segment_bytes(&bytes).unwrap();
        assert_eq!(back, log);

        let mut from_original = base.clone();
        log.replay(&mut from_original);
        back.replay(&mut base);
        assert_eq!(base, from_original, "decoded log must replay identically");
    }

    #[test]
    fn framed_graph_rejects_log_magic() {
        let g = sample_graph();
        let as_log_frame = apg_persist::format::encode_framed(format::MAGIC_LOG, &g);
        assert!(matches!(
            DynGraph::from_snapshot_bytes(&as_log_frame).unwrap_err(),
            DecodeError::BadMagic { .. }
        ));
    }
}
