//! Plain-text edge-list I/O.
//!
//! Format: one `u v` pair per line, `#`-prefixed comment lines ignored —
//! the same shape as SNAP edge lists, so real datasets can be dropped in
//! when available.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use crate::csr::CsrGraph;
use crate::types::{EdgeList, Graph, VertexId};

/// Errors produced when parsing an edge list.
#[derive(Debug)]
pub enum ParseEdgeListError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that is neither a comment nor a `u v` pair.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
}

impl std::fmt::Display for ParseEdgeListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseEdgeListError::Io(e) => write!(f, "i/o error reading edge list: {e}"),
            ParseEdgeListError::Malformed { line, text } => {
                write!(f, "malformed edge list line {line}: {text:?}")
            }
        }
    }
}

impl std::error::Error for ParseEdgeListError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseEdgeListError::Io(e) => Some(e),
            ParseEdgeListError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseEdgeListError {
    fn from(e: std::io::Error) -> Self {
        ParseEdgeListError::Io(e)
    }
}

/// Reads an edge list; a mutable reference also works (`read_edge_list(&mut r)`).
///
/// # Errors
///
/// Returns [`ParseEdgeListError::Malformed`] on lines that do not contain
/// exactly two unsigned integers, or [`ParseEdgeListError::Io`] on read
/// failures.
pub fn read_edge_list<R: Read>(reader: R) -> Result<EdgeList, ParseEdgeListError> {
    let reader = BufReader::new(reader);
    let mut edges = EdgeList::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<VertexId> { tok?.parse().ok() };
        match (parse(parts.next()), parse(parts.next()), parts.next()) {
            (Some(u), Some(v), None) => edges.push((u, v)),
            _ => {
                return Err(ParseEdgeListError::Malformed {
                    line: idx + 1,
                    text: line,
                })
            }
        }
    }
    Ok(edges)
}

/// Reads an edge list and builds a [`CsrGraph`] sized to the maximum vertex
/// id present.
///
/// # Errors
///
/// Same as [`read_edge_list`].
pub fn read_csr<R: Read>(reader: R) -> Result<CsrGraph, ParseEdgeListError> {
    let edges = read_edge_list(reader)?;
    let n = edges
        .iter()
        .map(|&(u, v)| u.max(v) as usize + 1)
        .max()
        .unwrap_or(0);
    Ok(CsrGraph::from_edges(n, &edges))
}

/// Writes a graph as an edge list with a header comment.
///
/// # Errors
///
/// Propagates I/O failures from the writer.
pub fn write_edge_list<G: Graph, W: Write>(graph: &G, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# vertices: {} edges: {}",
        graph.num_live_vertices(),
        graph.num_edges()
    )?;
    for u in graph.vertices() {
        for &v in graph.neighbors(u) {
            if u < v {
                writeln!(w, "{u} {v}")?;
            }
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_csr(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\n0 1\n  # another\n1 2\n";
        let edges = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn rejects_malformed_line() {
        let text = "0 1\n2 x\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        match err {
            ParseEdgeListError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn rejects_three_tokens() {
        let err = read_edge_list("0 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseEdgeListError::Malformed { line: 1, .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = read_csr("".as_bytes()).unwrap();
        assert_eq!(crate::types::Graph::num_vertices(&g), 0);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let err = read_edge_list("zz\n".as_bytes()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.starts_with("malformed"), "{msg}");
    }
}
