//! Graph substrate for the adaptive-partitioning reproduction.
//!
//! This crate provides everything the partitioning layers sit on:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row graph used for the
//!   static experiments (Figures 1, 4, 5, 6 of the paper).
//! * [`DynGraph`] — a mutable adjacency-list graph supporting vertex/edge
//!   insertion and removal, used for the dynamic experiments (Figures 7–9).
//!   Its adjacency lives in an [`AdjPool`] — one flat slab of neighbour
//!   entries with per-vertex spans — so mutable graphs read with CSR-like
//!   locality.
//! * [`delta`] — the canonical mutation event model: [`GraphDelta`] events
//!   grouped into [`UpdateBatch`]es with deterministic application and a
//!   replayable [`DeltaLog`]; every mutation producer in the workspace
//!   speaks this vocabulary.
//! * [`diff`] — structural diffs between two [`DynGraph`] states
//!   ([`GraphDiff`]), the graph slice of incremental checkpoints:
//!   O(changed) to compute, validated before application.
//! * [`gen`] — synthetic generators: 3-D finite-element meshes, 2-D
//!   triangulated meshes, Holme–Kim power-law-cluster graphs, preferential
//!   attachment, Erdős–Rényi, and the forest-fire expansion model the paper
//!   uses to mimic dynamic growth.
//! * [`algo`] — connected components, BFS, degree statistics, clustering.
//! * [`datasets`] — the named datasets of the paper's Table 1 (synthetic
//!   stand-ins for the real-world graphs; each records its substitution).
//! * [`io`] — plain-text edge-list reading/writing.
//!
//! # Example
//!
//! ```
//! use apg_graph::{gen, Graph};
//!
//! // The paper's `64kcube` dataset: a 40x40x40 FEM mesh.
//! let g = gen::mesh3d(40, 40, 40);
//! assert_eq!(g.num_vertices(), 64_000);
//! assert_eq!(g.num_edges(), 187_200);
//! ```

pub mod adj_pool;
pub mod algo;
pub mod csr;
pub mod datasets;
pub mod delta;
pub mod diff;
pub mod dynamic;
pub mod gen;
pub mod io;
pub mod persist;
pub mod types;

pub use adj_pool::AdjPool;
pub use csr::CsrGraph;
pub use delta::{ApplyReport, DeltaLog, GraphDelta, UpdateBatch};
pub use diff::{GraphDiff, SlotDiff};
pub use dynamic::DynGraph;
pub use types::{EdgeList, Graph, VertexId};
