//! Immutable compressed-sparse-row graph.

use serde::{Deserialize, Serialize};

use crate::types::{ordered, EdgeList, Graph, VertexId};

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Each undirected edge is stored in both endpoint adjacency lists, which are
/// kept sorted. Construction deduplicates parallel edges and drops
/// self-loops, so a `CsrGraph` is always a *simple* graph.
///
/// This is the representation used by all static experiments; it is compact
/// (8 bytes per directed arc + 8 per vertex) and gives cache-friendly
/// neighbour scans, the hot loop of the migration heuristic.
///
/// # Example
///
/// ```
/// use apg_graph::{CsrGraph, Graph};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 2)]);
/// assert_eq!(g.num_edges(), 3); // duplicate (1,2) removed
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    num_edges: usize,
}

impl CsrGraph {
    /// Builds a graph with `n` vertices from an undirected edge list.
    ///
    /// Self-loops are dropped and duplicate edges merged.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut dedup: EdgeList = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| ordered(u, v))
            .collect();
        for &(u, v) in &dedup {
            assert!(
                (u as usize) < n && (v as usize) < n,
                "edge ({u}, {v}) out of bounds for {n} vertices"
            );
        }
        dedup.sort_unstable();
        dedup.dedup();

        let mut degree = vec![0usize; n];
        for &(u, v) in &dedup {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; acc];
        for &(u, v) in &dedup {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Input was sorted by (u, v); each vertex's list of larger neighbours
        // is appended in order, but the smaller-neighbour entries interleave,
        // so sort each adjacency run.
        for v in 0..n {
            targets[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph {
            offsets,
            targets,
            num_edges: dedup.len(),
        }
    }

    /// Builds a graph from explicit sorted adjacency lists.
    ///
    /// Used by the generators, which already hold adjacency in the right
    /// shape. Callers that only *borrow* their adjacency (e.g.
    /// [`crate::DynGraph::to_csr`]) should use
    /// [`CsrGraph::from_sorted_adjacency_slices`] instead of cloning.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a list is unsorted, contains duplicates or a
    /// self-loop, or if adjacency is asymmetric.
    pub fn from_sorted_adjacency(adj: Vec<Vec<VertexId>>) -> Self {
        Self::from_sorted_adjacency_slices(&adj)
    }

    /// Builds a graph from borrowed sorted adjacency lists: offsets and
    /// targets are assembled directly from the slices, so the caller's
    /// adjacency is read once and never cloned.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a list is unsorted, contains duplicates or a
    /// self-loop, or if adjacency is asymmetric.
    pub fn from_sorted_adjacency_slices(adj: &[Vec<VertexId>]) -> Self {
        Self::from_sorted_neighbor_slices(adj.len(), |v| adj[v].as_slice())
    }

    /// Builds a graph over `n` vertices from a sorted-neighbour-slice
    /// accessor, the shape-agnostic core of the borrowed constructors: the
    /// caller's adjacency can live in per-vertex `Vec`s, a flat slab, or
    /// anything else that can lend `&[VertexId]` per slot (e.g.
    /// [`crate::DynGraph::to_csr`] reading its span pool). Each slot is
    /// read exactly twice (degree pass, copy pass), never cloned.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if a list is unsorted, contains duplicates or a
    /// self-loop, or if adjacency is asymmetric.
    pub fn from_sorted_neighbor_slices<'a, F>(n: usize, lists: F) -> Self
    where
        F: Fn(usize) -> &'a [VertexId],
    {
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for v in 0..n {
            let list = lists(v);
            debug_assert!(list.windows(2).all(|w| w[0] < w[1]), "unsorted adjacency");
            acc += list.len();
            offsets.push(acc);
        }
        let mut targets = Vec::with_capacity(acc);
        for v in 0..n {
            let list = lists(v);
            debug_assert!(!list.contains(&(v as VertexId)), "self-loop at {v}");
            targets.extend_from_slice(list);
        }
        debug_assert_eq!(acc % 2, 0, "asymmetric adjacency");
        CsrGraph {
            offsets,
            targets,
            num_edges: acc / 2,
        }
    }

    /// Returns every undirected edge once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

impl Graph for CsrGraph {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_live_vertices(&self) -> usize {
        self.num_vertices()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.num_vertices()
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4), (4, 3), (2, 2)]);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(4), &[3]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_vertices_have_no_neighbors() {
        let g = CsrGraph::from_edges(3, &[]);
        for v in 0..3 {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn edges_iterates_each_once() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn has_edge_matches_adjacency() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_edges() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn from_sorted_adjacency_round_trips() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let adj: Vec<Vec<VertexId>> = (0..4).map(|v| g.neighbors(v).to_vec()).collect();
        let g2 = CsrGraph::from_sorted_adjacency(adj);
        assert_eq!(g, g2);
    }

    #[test]
    fn serde_round_trip() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let json = serde_json_like(&g);
        assert!(json.contains("offsets"));
    }

    // serde_json is not an allowed dependency; exercise Serialize through the
    // Debug of the serde data model instead by checking the struct fields are
    // present in a manual "serialisation" via format!.
    fn serde_json_like(g: &CsrGraph) -> String {
        format!("offsets={:?} targets={:?}", g.offsets, g.targets)
    }
}
