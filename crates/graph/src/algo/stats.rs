//! Degree and clustering statistics.

use crate::types::Graph;

/// Summary statistics of the live-vertex degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree (`2|E| / |V|` for live vertices).
    pub mean: f64,
    /// Population standard deviation of degree.
    pub std_dev: f64,
}

/// Computes [`DegreeStats`] over the live vertices.
///
/// Returns all-zero stats for an empty graph.
pub fn degree_stats<G: Graph>(graph: &G) -> DegreeStats {
    let mut min = usize::MAX;
    let mut max = 0usize;
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    let mut count = 0usize;
    for v in graph.vertices() {
        let d = graph.degree(v);
        min = min.min(d);
        max = max.max(d);
        sum += d as f64;
        sum_sq += (d * d) as f64;
        count += 1;
    }
    if count == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            std_dev: 0.0,
        };
    }
    let mean = sum / count as f64;
    let var = (sum_sq / count as f64 - mean * mean).max(0.0);
    DegreeStats {
        min,
        max,
        mean,
        std_dev: var.sqrt(),
    }
}

/// Global clustering coefficient (transitivity): `3 * triangles / open triads`.
///
/// Exact, `O(sum of d(v)^2)`; fine for the dataset sizes in this repo's test
/// and bench suites. The paper's Holme–Kim graphs are generated with
/// "approximate average clustering", which this verifies.
pub fn global_clustering<G: Graph>(graph: &G) -> f64 {
    let mut triangles = 0u64; // each triangle counted 3 times (once per apex)
    let mut triads = 0u64;
    for v in graph.vertices() {
        let nbrs = graph.neighbors(v);
        let d = nbrs.len() as u64;
        triads += d.saturating_sub(1) * d / 2;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                // nbrs sorted ascending, a < b
                if graph.neighbors(a).binary_search(&b).is_ok() {
                    triangles += 1;
                }
            }
        }
    }
    if triads == 0 {
        0.0
    } else {
        triangles as f64 / triads as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn degree_stats_on_star() {
        // Star with centre 0 and 4 leaves.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
        assert!((s.mean - 1.6).abs() < 1e-12);
    }

    #[test]
    fn degree_stats_empty() {
        let g = CsrGraph::from_edges(0, &[]);
        let s = degree_stats(&g);
        assert_eq!(
            s,
            DegreeStats {
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0
            }
        );
    }

    #[test]
    fn clustering_of_triangle_is_one() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert!((global_clustering(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(global_clustering(&g), 0.0);
    }

    #[test]
    fn clustering_of_triangle_plus_pendant() {
        // Triangle {0,1,2} plus pendant 3 on 0: 3 closed / (3 + 3 extra open
        // triads at vertex 0 choose pairs with 3) -> triangles=3, triads:
        // v0: C(3,2)=3, v1: 1, v2: 1, v3: 0 => 5. 3/5.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (0, 3)]);
        assert!((global_clustering(&g) - 0.6).abs() < 1e-12);
    }
}

/// Degree histogram: `histogram[d]` = number of live vertices of degree `d`.
pub fn degree_histogram<G: Graph>(graph: &G) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in graph.vertices() {
        let d = graph.degree(v);
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// Crude power-law exponent estimate via the Hill/MLE estimator
/// `1 + n / Σ ln(d_i / (d_min - 0.5))` over degrees `>= d_min`.
///
/// Good enough to tell a power law (α ≈ 2–3) from a homogeneous mesh
/// (degenerate, returns `None` when fewer than 10 vertices qualify).
pub fn powerlaw_exponent<G: Graph>(graph: &G, d_min: usize) -> Option<f64> {
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for v in graph.vertices() {
        let d = graph.degree(v);
        if d >= d_min {
            n += 1;
            log_sum += (d as f64 / (d_min as f64 - 0.5)).ln();
        }
    }
    if n < 10 || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + n as f64 / log_sum)
    }
}

#[cfg(test)]
mod dist_tests {
    use super::*;
    use crate::{gen, CsrGraph};

    #[test]
    fn histogram_of_star() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let h = degree_histogram(&g);
        assert_eq!(h[1], 4);
        assert_eq!(h[4], 1);
    }

    #[test]
    fn histogram_sums_to_live_count() {
        let g = gen::holme_kim(500, 4, 0.1, 1);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 500);
    }

    #[test]
    fn ba_exponent_near_three() {
        // Barabási–Albert graphs have alpha ~ 3.
        let g = gen::preferential_attachment(20_000, 4, 7);
        let alpha = powerlaw_exponent(&g, 8).expect("enough tail");
        assert!(
            (2.2..=3.8).contains(&alpha),
            "BA exponent estimate {alpha} outside expected band"
        );
    }

    #[test]
    fn mesh_has_no_meaningful_tail() {
        let g = gen::mesh3d(8, 8, 8);
        // All degrees <= 6; nothing at or above d_min = 10.
        assert_eq!(powerlaw_exponent(&g, 10), None);
    }
}
