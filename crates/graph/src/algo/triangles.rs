//! Triangle counting and k-core decomposition.

use crate::types::{Graph, VertexId};

/// Per-vertex triangle counts (each triangle counted at all three corners)
/// and the global triangle total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriangleCounts {
    /// Triangles through each vertex slot (0 for tombstones).
    pub per_vertex: Vec<u32>,
    /// Distinct triangles in the graph.
    pub total: u64,
}

/// Counts triangles with the forward (oriented neighbour intersection)
/// algorithm: `O(Σ d(v)²)` worst case, fast on sparse graphs.
pub fn triangle_counts<G: Graph>(graph: &G) -> TriangleCounts {
    let n = graph.num_vertices();
    let mut per_vertex = vec![0u32; n];
    let mut total = 0u64;
    for u in graph.vertices() {
        let nbrs_u = graph.neighbors(u);
        for &v in nbrs_u {
            if v <= u {
                continue;
            }
            // Intersect the higher-id tails of u's and v's neighbourhoods.
            let nbrs_v = graph.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nbrs_u.len() && j < nbrs_v.len() {
                let (a, b) = (nbrs_u[i], nbrs_v[j]);
                if a <= v {
                    i += 1;
                    continue;
                }
                if b <= v {
                    j += 1;
                    continue;
                }
                match a.cmp(&b) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        per_vertex[u as usize] += 1;
                        per_vertex[v as usize] += 1;
                        per_vertex[a as usize] += 1;
                        total += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    TriangleCounts { per_vertex, total }
}

/// K-core decomposition: the core number of each vertex (the largest `k`
/// such that the vertex survives iterated removal of all degree-< k
/// vertices). Tombstones get core 0.
///
/// Linear-time bucket algorithm (Batagelj–Zaveršnik).
pub fn core_numbers<G: Graph>(graph: &G) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut degree: Vec<u32> = (0..n as VertexId).map(|v| graph.degree(v) as u32).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0) as usize;

    // Bucket sort vertices by current degree.
    let mut bins = vec![0usize; max_degree + 2];
    for v in graph.vertices() {
        bins[degree[v as usize] as usize] += 1;
    }
    let mut start = 0usize;
    for b in bins.iter_mut() {
        let count = *b;
        *b = start;
        start += count;
    }
    let mut position = vec![usize::MAX; n];
    let mut order: Vec<VertexId> = vec![0; graph.num_live_vertices()];
    {
        let mut cursor = bins.clone();
        for v in graph.vertices() {
            let d = degree[v as usize] as usize;
            position[v as usize] = cursor[d];
            order[cursor[d]] = v;
            cursor[d] += 1;
        }
    }

    let mut core = vec![0u32; n];
    for idx in 0..order.len() {
        let v = order[idx];
        core[v as usize] = degree[v as usize];
        for &w in graph.neighbors(v) {
            if degree[w as usize] > degree[v as usize] {
                // Move w one bucket down: swap it with the first element of
                // its current bucket, then shrink the bucket boundary.
                let dw = degree[w as usize] as usize;
                let pw = position[w as usize];
                let boundary = bins[dw];
                let u = order[boundary];
                if u != w {
                    order[boundary] = w;
                    order[pw] = u;
                    position[w as usize] = boundary;
                    position[u as usize] = pw;
                }
                bins[dw] += 1;
                degree[w as usize] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, CsrGraph};

    #[test]
    fn triangle_count_on_k4() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let t = triangle_counts(&g);
        assert_eq!(t.total, 4);
        assert!(t.per_vertex.iter().all(|&c| c == 3));
    }

    #[test]
    fn no_triangles_on_mesh() {
        // A 6-neighbour cubic mesh is bipartite: zero triangles.
        let g = gen::mesh3d(4, 4, 4);
        assert_eq!(triangle_counts(&g).total, 0);
    }

    #[test]
    fn triangle_total_matches_clustering_numerator() {
        let g = gen::holme_kim(400, 4, 0.4, 3);
        let t = triangle_counts(&g);
        // Cross-check against the independent global_clustering computation:
        // closed triads = 3 * triangles.
        let per_vertex_sum: u64 = t.per_vertex.iter().map(|&c| c as u64).sum();
        assert_eq!(per_vertex_sum, 3 * t.total);
    }

    #[test]
    fn core_numbers_on_k4_plus_tail() {
        // K4 with a pendant path: core 3 inside the clique, 1 on the tail.
        let g = CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (4, 5),
            ],
        );
        let core = core_numbers(&g);
        assert_eq!(&core[0..4], &[3, 3, 3, 3]);
        assert_eq!(core[4], 1);
        assert_eq!(core[5], 1);
    }

    #[test]
    fn core_of_mesh_interior() {
        // Interior of a 6-neighbour mesh peels down to core 3.
        let g = gen::mesh3d(5, 5, 5);
        let core = core_numbers(&g);
        let centre = (2 * 5 + 2) * 5 + 2;
        assert_eq!(core[centre], 3);
    }

    #[test]
    fn cores_handle_tombstones() {
        use crate::DynGraph;
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        g.remove_vertex(3);
        let core = core_numbers(&g);
        assert_eq!(&core[0..3], &[2, 2, 2]);
        assert_eq!(core[3], 0);
    }
}
