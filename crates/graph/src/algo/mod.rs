//! Graph algorithms used by the evaluation: connected components, BFS,
//! degree statistics and clustering coefficients.

mod components;
mod stats;
mod traversal;
mod triangles;

pub use components::{component_of, connected_components, Components};
pub use stats::{
    degree_histogram, degree_stats, global_clustering, powerlaw_exponent, DegreeStats,
};
pub use traversal::{bfs_distances, estimate_mean_geodesic};
pub use triangles::{core_numbers, triangle_counts, TriangleCounts};
