//! Connected components via weighted union-find.

use crate::types::{Graph, VertexId};

/// Result of a connected-components computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// Component label per vertex slot; tombstones get `u32::MAX`.
    pub labels: Vec<u32>,
    /// Number of components among live vertices.
    pub count: usize,
    /// Size of the largest component.
    pub giant_size: usize,
}

impl Components {
    /// Fraction of live vertices inside the giant component.
    ///
    /// The paper reports this for the CDR graph (99.1%).
    pub fn giant_fraction(&self, live: usize) -> f64 {
        if live == 0 {
            0.0
        } else {
            self.giant_size as f64 / live as f64
        }
    }
}

/// Computes connected components of the live subgraph.
pub fn connected_components<G: Graph>(graph: &G) -> Components {
    let n = graph.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    let mut rank = vec![0u8; n];

    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for v in graph.vertices() {
        for &w in graph.neighbors(v) {
            if w < v {
                continue;
            }
            let (a, b) = (find(&mut parent, v), find(&mut parent, w));
            if a != b {
                match rank[a as usize].cmp(&rank[b as usize]) {
                    std::cmp::Ordering::Less => parent[a as usize] = b,
                    std::cmp::Ordering::Greater => parent[b as usize] = a,
                    std::cmp::Ordering::Equal => {
                        parent[b as usize] = a;
                        rank[a as usize] += 1;
                    }
                }
            }
        }
    }

    let mut labels = vec![u32::MAX; n];
    let mut sizes: Vec<usize> = Vec::new();
    let mut remap = std::collections::HashMap::new();
    for v in graph.vertices() {
        let root = find(&mut parent, v);
        let next = sizes.len() as u32;
        let label = *remap.entry(root).or_insert_with(|| {
            sizes.push(0);
            next
        });
        labels[v as usize] = label;
        sizes[label as usize] += 1;
    }
    Components {
        labels,
        count: sizes.len(),
        giant_size: sizes.iter().copied().max().unwrap_or(0),
    }
}

/// Convenience: component label lookup that panics on tombstones.
pub fn component_of(components: &Components, v: VertexId) -> u32 {
    let label = components.labels[v as usize];
    assert_ne!(label, u32::MAX, "vertex {v} is not live");
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrGraph, DynGraph};

    #[test]
    fn two_components() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3); // {0,1,2}, {3,4}, {5}
        assert_eq!(c.giant_size, 3);
        assert_eq!(c.labels[0], c.labels[2]);
        assert_ne!(c.labels[0], c.labels[3]);
    }

    #[test]
    fn tombstones_excluded() {
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        g.remove_vertex(3);
        let c = connected_components(&g);
        assert_eq!(c.count, 2); // {0,1}, {2}
        assert_eq!(c.labels[3], u32::MAX);
    }

    #[test]
    fn giant_fraction_on_connected_graph_is_one() {
        let g = crate::gen::mesh3d(5, 5, 5);
        let c = connected_components(&g);
        assert_eq!(c.count, 1);
        assert!((c.giant_fraction(125) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_has_zero_components() {
        let g = CsrGraph::from_edges(0, &[]);
        let c = connected_components(&g);
        assert_eq!(c.count, 0);
        assert_eq!(c.giant_size, 0);
        assert_eq!(c.giant_fraction(0), 0.0);
    }
}
