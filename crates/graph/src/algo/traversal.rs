//! Breadth-first traversal and distance estimation.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::types::{Graph, VertexId};

/// BFS distances from `source` to every vertex; unreachable or tombstoned
/// vertices get `u32::MAX`.
///
/// # Panics
///
/// Panics if `source` is not a live vertex.
pub fn bfs_distances<G: Graph>(graph: &G, source: VertexId) -> Vec<u32> {
    assert!(graph.is_vertex(source), "source {source} is not live");
    let mut dist = vec![u32::MAX; graph.num_vertices()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v as usize];
        for &w in graph.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Estimates the mean geodesic (shortest-path) distance by sampling
/// `samples` random live sources and averaging distances to all reachable
/// vertices.
///
/// The paper reports a mean geodesic distance of 9.4 for its CDR graph; this
/// estimator is what the CDR generator's tests check against.
///
/// Returns `0.0` for graphs with fewer than 2 live vertices.
pub fn estimate_mean_geodesic<G: Graph>(graph: &G, samples: usize, seed: u64) -> f64 {
    if graph.num_live_vertices() < 2 {
        return 0.0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let live: Vec<VertexId> = graph.vertices().collect();
    let mut total = 0f64;
    let mut count = 0usize;
    for _ in 0..samples {
        let src = live[rng.gen_range(0..live.len())];
        let dist = bfs_distances(graph, src);
        for (v, &d) in dist.iter().enumerate() {
            if d != u32::MAX && d > 0 && graph.is_vertex(v as VertexId) {
                total += d as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn bfs_on_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1]);
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn mean_geodesic_of_path_graph() {
        // Path 0-1-2: distances {1,2,1,1,1,2} mean = 8/6.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let est = estimate_mean_geodesic(&g, 200, 1);
        assert!((est - 8.0 / 6.0).abs() < 0.15, "estimate {est}");
    }

    #[test]
    fn mean_geodesic_trivial_graphs() {
        let g = CsrGraph::from_edges(1, &[]);
        assert_eq!(estimate_mean_geodesic(&g, 5, 1), 0.0);
    }
}
