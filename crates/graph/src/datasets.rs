//! The named datasets of the paper's Table 1.
//!
//! The synthetic graphs (`1e4`, `64kcube`, `1e6`, `plc*`) are regenerated
//! with the same models and parameters the paper used. The real-world graphs
//! (`3elt`, `4elt`, `wikivote`, `epinions`, `uk-2007-05-u`) cannot be
//! downloaded in this offline environment, so each is substituted by a
//! synthetic analogue matched on vertex count, edge count and family (FEM
//! mesh vs power law); every substitution is recorded in
//! [`Dataset::substitution`].
//!
//! The paper's `1e8` (10^8-vertex heart mesh, 3 TB in RAM on a 63-blade
//! cluster) is listed with a 1/100 scale default; pass an explicit scale to
//! [`Dataset::build_scaled`] to grow it as far as your memory allows.

use crate::csr::CsrGraph;
use crate::gen;

/// Graph family, as listed in the paper's Table 1 "Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Finite-element mesh (homogeneous degree distribution).
    Fem,
    /// Power-law degree distribution.
    PowerLaw,
}

impl std::fmt::Display for GraphKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphKind::Fem => write!(f, "FEM"),
            GraphKind::PowerLaw => write!(f, "pwlaw"),
        }
    }
}

/// A named dataset from the paper's Table 1.
#[derive(Debug, Clone, Copy)]
pub struct Dataset {
    /// Name as printed in Table 1.
    pub name: &'static str,
    /// Family of the graph.
    pub kind: GraphKind,
    /// |V| reported in the paper.
    pub paper_vertices: usize,
    /// |E| reported in the paper.
    pub paper_edges: usize,
    /// Source string from Table 1.
    pub paper_source: &'static str,
    /// How this repo realises the dataset (None = same model & parameters).
    pub substitution: Option<&'static str>,
    /// Default downscale denominator (1 = full size).
    pub default_scale_down: usize,
    builder: fn(usize, u64) -> CsrGraph,
}

impl Dataset {
    /// Builds the dataset at its default scale with the given seed.
    ///
    /// Synthetic datasets are deterministic for a fixed seed; mesh datasets
    /// ignore the seed entirely.
    pub fn build(&self, seed: u64) -> CsrGraph {
        (self.builder)(self.default_scale_down, seed)
    }

    /// Builds the dataset scaled down by `scale_down` (1 = paper-size).
    pub fn build_scaled(&self, scale_down: usize, seed: u64) -> CsrGraph {
        assert!(scale_down >= 1, "scale_down must be >= 1");
        (self.builder)(scale_down, seed)
    }

    /// Vertex count at the default scale.
    pub fn default_vertices(&self) -> usize {
        self.paper_vertices / self.default_scale_down
    }
}

fn b_1e4(_s: usize, _seed: u64) -> CsrGraph {
    gen::mesh3d(100, 10, 10)
}
fn b_64kcube(_s: usize, _seed: u64) -> CsrGraph {
    gen::mesh3d(40, 40, 40)
}
fn b_1e6(_s: usize, _seed: u64) -> CsrGraph {
    gen::mesh3d(100, 100, 100)
}
fn b_1e8(s: usize, _seed: u64) -> CsrGraph {
    // Paper: ~464^3. Default 1/100 scale: 10^6 vertices in cube form.
    let side = (1e8_f64 / s as f64).cbrt().round() as usize;
    gen::mesh3d(side, side, side)
}
fn b_3elt(_s: usize, _seed: u64) -> CsrGraph {
    gen::mesh2d_tri(59, 80) // 4720 vertices, 13883 edges (paper: 4720/13722)
}
fn b_4elt(_s: usize, _seed: u64) -> CsrGraph {
    gen::mesh2d_tri(102, 153) // 15606 vertices, 46309 edges (paper: 15606/45878)
}
fn b_plc1000(_s: usize, seed: u64) -> CsrGraph {
    gen::holme_kim(1000, 10, 0.1, seed)
}
fn b_plc10000(_s: usize, seed: u64) -> CsrGraph {
    gen::holme_kim(10_000, 13, 0.1, seed)
}
fn b_plc50000(_s: usize, seed: u64) -> CsrGraph {
    gen::holme_kim(50_000, 25, 0.1, seed)
}
fn b_wikivote(_s: usize, seed: u64) -> CsrGraph {
    gen::preferential_attachment(7115, 15, seed)
}
fn b_epinions(_s: usize, seed: u64) -> CsrGraph {
    gen::preferential_attachment(75_879, 7, seed)
}
fn b_uk2007(s: usize, seed: u64) -> CsrGraph {
    // Paper: 10^6 vertices, 41.2M edges. Keep vertex count, scale edges.
    let m = (41usize / s).max(1);
    gen::preferential_attachment(1_000_000, m, seed)
}

/// All datasets of Table 1, in the paper's row order.
pub const TABLE1: &[Dataset] = &[
    Dataset {
        name: "1e4",
        kind: GraphKind::Fem,
        paper_vertices: 10_000,
        paper_edges: 27_900,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_1e4,
    },
    Dataset {
        name: "64kcube",
        kind: GraphKind::Fem,
        paper_vertices: 64_000,
        paper_edges: 187_200,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_64kcube,
    },
    Dataset {
        name: "1e6",
        kind: GraphKind::Fem,
        paper_vertices: 1_000_000,
        paper_edges: 2_970_000,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_1e6,
    },
    Dataset {
        name: "1e8",
        kind: GraphKind::Fem,
        paper_vertices: 100_000_000,
        paper_edges: 297_000_000,
        paper_source: "synth",
        substitution: Some("scaled 1/100 by default; single-host reproduction of a 3 TB cluster graph"),
        default_scale_down: 100,
        builder: b_1e8,
    },
    Dataset {
        name: "3elt",
        kind: GraphKind::Fem,
        paper_vertices: 4720,
        paper_edges: 13_722,
        paper_source: "[34]",
        substitution: Some("Walshaw-archive mesh replaced by 59x80 triangulated grid (same |V|, |E| within 1.2%)"),
        default_scale_down: 1,
        builder: b_3elt,
    },
    Dataset {
        name: "4elt",
        kind: GraphKind::Fem,
        paper_vertices: 15_606,
        paper_edges: 45_878,
        paper_source: "[34]",
        substitution: Some("Walshaw-archive mesh replaced by 102x153 triangulated grid (same |V|, |E| within 1%)"),
        default_scale_down: 1,
        builder: b_4elt,
    },
    Dataset {
        name: "plc1000",
        kind: GraphKind::PowerLaw,
        paper_vertices: 1000,
        paper_edges: 9879,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_plc1000,
    },
    Dataset {
        name: "plc10000",
        kind: GraphKind::PowerLaw,
        paper_vertices: 10_000,
        paper_edges: 129_774,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_plc10000,
    },
    Dataset {
        name: "plc50000",
        kind: GraphKind::PowerLaw,
        paper_vertices: 50_000,
        paper_edges: 1_249_061,
        paper_source: "synth",
        substitution: None,
        default_scale_down: 1,
        builder: b_plc50000,
    },
    Dataset {
        name: "wikivote",
        kind: GraphKind::PowerLaw,
        paper_vertices: 7115,
        paper_edges: 103_689,
        paper_source: "[19]",
        substitution: Some("SNAP wiki-Vote replaced by preferential attachment m=15 (|V| exact, |E| within 3%)"),
        default_scale_down: 1,
        builder: b_wikivote,
    },
    Dataset {
        name: "epinion",
        kind: GraphKind::PowerLaw,
        paper_vertices: 75_879,
        paper_edges: 508_837,
        paper_source: "[30]",
        substitution: Some("Epinions trust graph replaced by preferential attachment m=7 (|V| exact, |E| within 5%)"),
        default_scale_down: 1,
        builder: b_epinions,
    },
    Dataset {
        name: "uk-2007-05-u",
        kind: GraphKind::PowerLaw,
        paper_vertices: 1_000_000,
        paper_edges: 41_247_159,
        paper_source: "[2]",
        substitution: Some("LAW webgraph replaced by preferential attachment; |V| exact, |E| scaled 1/10 by default"),
        default_scale_down: 10,
        builder: b_uk2007,
    },
];

/// Looks a dataset up by its Table 1 name.
pub fn by_name(name: &str) -> Option<&'static Dataset> {
    TABLE1.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Graph;

    #[test]
    fn synthetic_mesh_sizes_match_paper_exactly() {
        for (name, v, e) in [("1e4", 10_000, 27_900), ("64kcube", 64_000, 187_200)] {
            let d = by_name(name).unwrap();
            let g = d.build(0);
            assert_eq!(g.num_vertices(), v, "{name} |V|");
            assert_eq!(g.num_edges(), e, "{name} |E|");
        }
    }

    #[test]
    fn analogue_sizes_close_to_paper() {
        for name in ["3elt", "4elt", "plc1000", "wikivote"] {
            let d = by_name(name).unwrap();
            let g = d.build(1);
            let dv =
                (g.num_vertices() as f64 - d.paper_vertices as f64).abs() / d.paper_vertices as f64;
            let de = (g.num_edges() as f64 - d.paper_edges as f64).abs() / d.paper_edges as f64;
            assert!(dv < 0.01, "{name}: |V| off by {dv}");
            assert!(de < 0.06, "{name}: |E| off by {de}");
        }
    }

    #[test]
    fn substituted_datasets_are_documented() {
        for d in TABLE1 {
            if d.paper_source != "synth" || d.default_scale_down > 1 {
                assert!(
                    d.substitution.is_some(),
                    "{} needs a substitution note",
                    d.name
                );
            }
        }
    }

    #[test]
    fn by_name_misses_gracefully() {
        assert!(by_name("nope").is_none());
        assert_eq!(by_name("epinion").unwrap().paper_vertices, 75_879);
    }

    #[test]
    fn kinds_display_like_table1() {
        assert_eq!(GraphKind::Fem.to_string(), "FEM");
        assert_eq!(GraphKind::PowerLaw.to_string(), "pwlaw");
    }
}
