//! Fundamental graph types shared across the workspace.

/// Identifier of a vertex.
///
/// The paper's graphs range up to 10^8 vertices; `u32` covers that with half
/// the memory of `usize` in adjacency arrays, which matters for the CSR
/// representation of multi-million-edge graphs.
pub type VertexId = u32;

/// A list of undirected edges `(u, v)`.
///
/// Self-loops and duplicate edges are permitted in an `EdgeList`; graph
/// constructors deduplicate and drop self-loops.
pub type EdgeList = Vec<(VertexId, VertexId)>;

/// Common read-only interface over graph representations.
///
/// Both [`crate::CsrGraph`] and [`crate::DynGraph`] implement this trait, so
/// the partitioning layers (initial strategies, the adaptive heuristic, the
/// METIS-like baseline) are written once against `G: Graph`.
///
/// Vertices are identified by dense ids `0..num_vertices()`. A dynamic graph
/// may contain *removed* ids inside this range; [`Graph::is_vertex`]
/// distinguishes live vertices from tombstones.
pub trait Graph {
    /// Total number of vertex slots, i.e. the exclusive upper bound on ids.
    ///
    /// For dynamic graphs this counts tombstones too; use
    /// [`Graph::num_live_vertices`] for the live population.
    fn num_vertices(&self) -> usize;

    /// Number of live vertices.
    fn num_live_vertices(&self) -> usize;

    /// Number of undirected edges between live vertices.
    fn num_edges(&self) -> usize;

    /// Whether `v` is a live vertex.
    fn is_vertex(&self, v: VertexId) -> bool;

    /// Neighbours of `v` in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= num_vertices() as VertexId`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Degree of `v` (0 for tombstoned vertices).
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Iterator over live vertex ids in ascending order.
    fn vertices(&self) -> LiveVertices<'_, Self>
    where
        Self: Sized,
    {
        LiveVertices {
            graph: self,
            next: 0,
        }
    }
}

/// Iterator over the live vertices of a [`Graph`], produced by
/// [`Graph::vertices`].
#[derive(Debug, Clone)]
pub struct LiveVertices<'a, G> {
    graph: &'a G,
    next: VertexId,
}

impl<G: Graph> Iterator for LiveVertices<'_, G> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        while (self.next as usize) < self.graph.num_vertices() {
            let v = self.next;
            self.next += 1;
            if self.graph.is_vertex(v) {
                return Some(v);
            }
        }
        None
    }
}

/// Normalises an edge so the smaller endpoint comes first.
///
/// Useful for deduplicating undirected edge lists.
#[inline]
pub fn ordered(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrGraph;

    #[test]
    fn ordered_normalises() {
        assert_eq!(ordered(3, 1), (1, 3));
        assert_eq!(ordered(1, 3), (1, 3));
        assert_eq!(ordered(2, 2), (2, 2));
    }

    #[test]
    fn live_vertices_iterates_all_for_csr() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let vs: Vec<_> = g.vertices().collect();
        assert_eq!(vs, vec![0, 1, 2, 3]);
    }
}
