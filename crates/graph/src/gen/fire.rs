//! Forest-fire graph expansion (Leskovec et al.), the paper's model for
//! dynamic growth.
//!
//! The paper injects a forest-fire expansion of 10% of the graph size to
//! stress the adaptive heuristic (Figure 7b) and uses the same model to add
//! dynamism to its static synthetic graphs (§4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dynamic::DynGraph;
use crate::types::{Graph, VertexId};

/// Parameters for a forest-fire expansion burst.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestFireConfig {
    /// Number of new vertices to inject.
    pub new_vertices: usize,
    /// Forward-burning probability; expected burn fan-out per visited vertex
    /// is `p / (1 - p)`. The classic densifying regime is `0.3..0.4`.
    pub burn_prob: f64,
    /// Cap on edges created per new vertex (keeps worst-case bounded).
    pub max_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ForestFireConfig {
    /// A burst adding `new_vertices` with the defaults used in the Figure 7b
    /// reproduction: burn probability tuned so each new vertex brings ~3 new
    /// edges, matching the paper's injection of 10 M vertices and 30 M edges
    /// into the 100 M-vertex / 300 M-edge heart mesh.
    pub fn burst(new_vertices: usize, seed: u64) -> Self {
        ForestFireConfig {
            new_vertices,
            burn_prob: 0.45,
            max_links: 16,
            seed,
        }
    }
}

/// Expands `graph` in place with a forest-fire burst and returns the ids of
/// the new vertices.
///
/// Each new vertex picks a uniform random live *ambassador*, links to it,
/// then recursively "burns" a geometric number of each visited vertex's
/// neighbours, linking to every burned vertex, up to `max_links` links.
///
/// # Panics
///
/// Panics if the graph has no live vertices (an ambassador cannot be chosen)
/// while `new_vertices > 0`.
pub fn forest_fire(graph: &mut DynGraph, cfg: &ForestFireConfig) -> Vec<VertexId> {
    assert!(
        cfg.new_vertices == 0 || graph.num_live_vertices() > 0,
        "forest fire needs at least one live ambassador"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut new_ids = Vec::with_capacity(cfg.new_vertices);

    for _ in 0..cfg.new_vertices {
        let ambassador = pick_live(graph, &mut rng);
        let v = graph.add_vertex();
        let mut burned: Vec<VertexId> = Vec::with_capacity(cfg.max_links);
        let mut frontier = vec![ambassador];
        burned.push(ambassador);
        while let Some(w) = frontier.pop() {
            if burned.len() >= cfg.max_links {
                break;
            }
            // Geometric(1 - p) fan-out: keep drawing neighbours while a
            // biased coin keeps landing on "burn".
            let nbrs = graph.neighbors(w);
            if nbrs.is_empty() {
                continue;
            }
            let mut fanout = 0usize;
            while rng.gen_bool(cfg.burn_prob) && fanout < cfg.max_links {
                fanout += 1;
            }
            for _ in 0..fanout {
                let pick = nbrs[rng.gen_range(0..nbrs.len())];
                if !burned.contains(&pick) {
                    burned.push(pick);
                    frontier.push(pick);
                    if burned.len() >= cfg.max_links {
                        break;
                    }
                }
            }
        }
        for w in burned {
            graph.add_edge(v, w);
        }
        new_ids.push(v);
    }
    new_ids
}

fn pick_live(graph: &DynGraph, rng: &mut StdRng) -> VertexId {
    loop {
        let v = rng.gen_range(0..graph.num_vertices()) as VertexId;
        if graph.is_vertex(v) {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::mesh3d;

    fn base() -> DynGraph {
        DynGraph::from(&mesh3d(10, 10, 10))
    }

    #[test]
    fn adds_requested_vertices() {
        let mut g = base();
        let before_v = g.num_live_vertices();
        let cfg = ForestFireConfig::burst(100, 3);
        let new = forest_fire(&mut g, &cfg);
        assert_eq!(new.len(), 100);
        assert_eq!(g.num_live_vertices(), before_v + 100);
    }

    #[test]
    fn every_new_vertex_is_connected() {
        let mut g = base();
        let new = forest_fire(&mut g, &ForestFireConfig::burst(50, 9));
        for v in new {
            assert!(g.degree(v) >= 1, "vertex {v} left isolated");
        }
    }

    #[test]
    fn burst_brings_about_three_edges_per_new_vertex() {
        // The Figure 7b scenario: the paper injects 10 M vertices and 30 M
        // edges into a 100 M / 300 M mesh, i.e. ~3 edges per new vertex.
        let mut g = DynGraph::from(&mesh3d(20, 20, 20)); // 8000 v, 22800 e
        let before_e = g.num_edges();
        let burst = g.num_live_vertices() / 10;
        forest_fire(&mut g, &ForestFireConfig::burst(burst, 1));
        let added = g.num_edges() - before_e;
        let per_vertex = added as f64 / burst as f64;
        assert!(
            (2.0..=4.5).contains(&per_vertex),
            "edges per new vertex {per_vertex} outside expected band"
        );
    }

    #[test]
    fn respects_max_links() {
        // max_links caps the edges a vertex creates on arrival; check each
        // arrival in isolation (later arrivals may legitimately attach to
        // earlier new vertices and raise their degree).
        for seed in 0..30 {
            let mut g = base();
            let cfg = ForestFireConfig {
                new_vertices: 1,
                burn_prob: 0.9,
                max_links: 5,
                seed,
            };
            let new = forest_fire(&mut g, &cfg);
            assert!(
                g.degree(new[0]) <= 5,
                "seed {seed}: degree {}",
                g.degree(new[0])
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = base();
        let mut b = base();
        forest_fire(&mut a, &ForestFireConfig::burst(40, 77));
        forest_fire(&mut b, &ForestFireConfig::burst(40, 77));
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
