//! Synthetic graph generators.
//!
//! These cover every graph family the paper evaluates on:
//!
//! * [`mesh3d`] — 3-D regular cubic FEM meshes ("modelling the electric
//!   connections between heart cells", paper §4.1). `mesh3d(40, 40, 40)` is
//!   the paper's `64kcube` (64 000 vertices, 187 200 edges) and
//!   `mesh3d(100, 100, 100)` its `1e6`.
//! * [`mesh2d_tri`] — 2-D triangulated meshes, stand-ins for the Walshaw
//!   archive graphs `3elt`/`4elt`.
//! * [`holme_kim`] — the power-law-cluster model the paper generates with
//!   networkX (`plc*` datasets).
//! * [`preferential_attachment`] — Barabási–Albert graphs used as
//!   degree-matched analogues of the real power-law graphs (wikivote,
//!   epinions, uk-2007-05).
//! * [`erdos_renyi`] — uniform random graphs for tests and ablations.
//! * [`forest_fire`] — the forest-fire expansion model used to mimic dynamic
//!   growth (paper §4.1 and Figure 7b).

mod fire;
mod mesh;
mod powerlaw;
mod random;
mod smallworld;

pub use fire::{forest_fire, ForestFireConfig};
pub use mesh::{mesh2d_tri, mesh3d, rect_mesh_dims};
pub use powerlaw::{holme_kim, preferential_attachment};
pub use random::erdos_renyi;
pub use smallworld::watts_strogatz;
