//! Finite-element-mesh generators (the paper's FEM graph family).

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Generates a 3-D regular cubic mesh of `a x b x c` vertices with
/// 6-neighbour (von Neumann) connectivity.
///
/// This reproduces the paper's synthetic FEM family: the vertex at grid
/// coordinate `(x, y, z)` connects to its axis-aligned neighbours. The edge
/// count is `a*b*(c-1) + a*(b-1)*c + (a-1)*b*c`, which matches the paper's
/// Table 1 exactly: `mesh3d(40,40,40)` has 187 200 edges (`64kcube`) and
/// `mesh3d(100,100,100)` has 2 970 000 (`1e6`).
///
/// # Panics
///
/// Panics if any dimension is zero or the vertex count overflows `u32`.
pub fn mesh3d(a: usize, b: usize, c: usize) -> CsrGraph {
    assert!(a > 0 && b > 0 && c > 0, "mesh dimensions must be positive");
    let n = a
        .checked_mul(b)
        .and_then(|ab| ab.checked_mul(c))
        .expect("mesh too large");
    assert!(n <= u32::MAX as usize, "mesh exceeds u32 vertex ids");

    let id = |x: usize, y: usize, z: usize| -> VertexId { ((x * b + y) * c + z) as VertexId };
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::with_capacity(6); n];
    for x in 0..a {
        for y in 0..b {
            for z in 0..c {
                let v = id(x, y, z);
                let mut push = |w: VertexId| {
                    adj[v as usize].push(w);
                    adj[w as usize].push(v);
                };
                if x + 1 < a {
                    push(id(x + 1, y, z));
                }
                if y + 1 < b {
                    push(id(x, y + 1, z));
                }
                if z + 1 < c {
                    push(id(x, y, z + 1));
                }
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    CsrGraph::from_sorted_adjacency(adj)
}

/// Generates a 2-D triangulated mesh of `rows x cols` vertices.
///
/// Grid edges plus one diagonal per cell, giving the triangular elements
/// typical of 2-D FEM graphs such as `3elt`/`4elt` from the Walshaw archive
/// (which are not redistributable here; see `datasets` for the substitution
/// note). Edge count: `rows*(cols-1) + (rows-1)*cols + (rows-1)*(cols-1)`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn mesh2d_tri(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let n = rows * cols;
    assert!(n <= u32::MAX as usize, "mesh exceeds u32 vertex ids");
    let id = |r: usize, c: usize| -> VertexId { (r * cols + c) as VertexId };
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::with_capacity(8); n];
    for r in 0..rows {
        for c in 0..cols {
            let v = id(r, c);
            let mut push = |w: VertexId| {
                adj[v as usize].push(w);
                adj[w as usize].push(v);
            };
            if c + 1 < cols {
                push(id(r, c + 1));
            }
            if r + 1 < rows {
                push(id(r + 1, c));
            }
            if r + 1 < rows && c + 1 < cols {
                push(id(r + 1, c + 1));
            }
        }
    }
    for list in &mut adj {
        list.sort_unstable();
    }
    CsrGraph::from_sorted_adjacency(adj)
}

/// Picks near-cubic dimensions `(a, b, c)` with `a*b*c == n` when `n`
/// factorises nicely, used by the scalability sweep (paper Figure 6) whose
/// mesh sizes are 1000, 3000, 9900, 29700, 99000 and 300000 vertices.
///
/// Falls back to `(n, 1, 1)` for awkward `n` (a degenerate chain), so the
/// caller should stick to friendly sizes.
pub fn rect_mesh_dims(n: usize) -> (usize, usize, usize) {
    // Prefer the most cubic factorisation a*b*c = n (maximise min dimension,
    // then minimise max dimension).
    let mut best = (n, 1, 1);
    let mut best_key = (1usize, n as i64);
    let mut a = 1usize;
    while a * a * a <= n {
        if n.is_multiple_of(a) {
            let m = n / a;
            let mut b = a;
            while b * b <= m {
                if m.is_multiple_of(b) {
                    let c = m / b;
                    let key = (a.min(b).min(c), -(c as i64));
                    if key > best_key {
                        best_key = key;
                        best = (a, b, c);
                    }
                }
                b += 1;
            }
        }
        a += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Graph;

    #[test]
    fn mesh3d_matches_paper_64kcube() {
        let g = mesh3d(40, 40, 40);
        assert_eq!(g.num_vertices(), 64_000);
        assert_eq!(g.num_edges(), 187_200);
    }

    #[test]
    fn mesh3d_matches_paper_1e4() {
        // 100x10x10 gives exactly the paper's 1e4 dataset: 10000 / 27900.
        let g = mesh3d(100, 10, 10);
        assert_eq!(g.num_vertices(), 10_000);
        assert_eq!(g.num_edges(), 27_900);
    }

    #[test]
    fn mesh3d_degrees_bounded_by_six() {
        let g = mesh3d(3, 4, 5);
        for v in g.vertices() {
            assert!(g.degree(v) >= 3 && g.degree(v) <= 6);
        }
        // Corner vertex has exactly 3 neighbours.
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn mesh3d_is_symmetric_and_connected() {
        let g = mesh3d(4, 4, 4);
        for v in g.vertices() {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v));
            }
        }
        assert_eq!(crate::algo::connected_components(&g).count, 1);
    }

    #[test]
    fn mesh2d_edge_count_formula() {
        let (r, c) = (7, 9);
        let g = mesh2d_tri(r, c);
        assert_eq!(g.num_vertices(), r * c);
        assert_eq!(g.num_edges(), r * (c - 1) + (r - 1) * c + (r - 1) * (c - 1));
    }

    #[test]
    fn mesh2d_single_row_is_a_path() {
        let g = mesh2d_tri(1, 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn rect_dims_cover_figure6_sizes() {
        for n in [1000usize, 3000, 9900, 29700, 99000, 300000] {
            let (a, b, c) = rect_mesh_dims(n);
            assert_eq!(a * b * c, n);
            assert!(
                a.min(b).min(c) >= 10,
                "degenerate dims for {n}: {a}x{b}x{c}"
            );
        }
    }

    #[test]
    fn rect_dims_prefers_cube_for_perfect_cubes() {
        assert_eq!(rect_mesh_dims(64_000), (40, 40, 40));
        assert_eq!(rect_mesh_dims(1000), (10, 10, 10));
    }
}
