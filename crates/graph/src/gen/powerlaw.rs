//! Power-law graph generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Generates a Holme–Kim *power-law cluster* graph: `n` vertices, `m` edges
/// added per arriving vertex, and probability `p` of closing a triad after
/// each preferential attachment.
///
/// This is the model behind networkX's `powerlaw_cluster_graph`, which the
/// paper uses for its `plc*` datasets with rewiring probability `p = 0.1`
/// (paper §4.1). Expected edge count is `m * (n - m)`.
///
/// # Panics
///
/// Panics if `m == 0`, `m >= n`, or `p` is not in `[0, 1]`.
pub fn holme_kim(n: usize, m: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(m >= 1 && m < n, "need 1 <= m < n (got m={m}, n={n})");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);

    // `repeats` holds one entry per edge endpoint, so sampling uniformly from
    // it is preferential attachment in O(1).
    let mut repeats: Vec<VertexId> = Vec::with_capacity(2 * m * n);
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    let add_edge =
        |adj: &mut Vec<Vec<VertexId>>, repeats: &mut Vec<VertexId>, u: VertexId, v: VertexId| {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
            repeats.push(u);
            repeats.push(v);
        };

    // Seed clique over the first m vertices keeps early attachments sane.
    for u in 0..m as VertexId {
        for v in (u + 1)..m as VertexId {
            add_edge(&mut adj, &mut repeats, u, v);
        }
    }

    for v in m as VertexId..n as VertexId {
        let mut targets: Vec<VertexId> = Vec::with_capacity(m);
        let mut added = 0usize;
        let mut last_target: Option<VertexId> = None;
        while added < m {
            // Triad step: with probability p, link to a random neighbour of
            // the previous target (closing a triangle), if one is available.
            let candidate = if let Some(w) = last_target.filter(|_| rng.gen_bool(p)) {
                let nbrs = &adj[w as usize];
                let pick = nbrs[rng.gen_range(0..nbrs.len())];
                if pick != v && !targets.contains(&pick) {
                    Some(pick)
                } else {
                    None
                }
            } else {
                None
            };
            let target = candidate.unwrap_or_else(|| {
                // Preferential attachment, retrying on collisions.
                loop {
                    let pick = repeats[rng.gen_range(0..repeats.len())];
                    if pick != v && !targets.contains(&pick) {
                        break pick;
                    }
                }
            });
            targets.push(target);
            last_target = Some(target);
            added += 1;
        }
        for w in targets {
            add_edge(&mut adj, &mut repeats, v, w);
        }
    }

    for list in &mut adj {
        list.sort_unstable();
        list.dedup();
    }
    CsrGraph::from_sorted_adjacency(adj)
}

/// Generates a Barabási–Albert preferential-attachment graph: `n` vertices,
/// each arriving vertex attaching to `m` distinct existing vertices chosen
/// proportionally to degree.
///
/// Used as the degree-matched synthetic analogue of the paper's real
/// power-law graphs (wikivote, epinions, uk-2007-05-u), since the originals
/// cannot be downloaded in this offline environment. Expected edge count is
/// `m * (n - m)` plus the seed clique.
///
/// # Panics
///
/// Panics if `m == 0` or `m >= n`.
pub fn preferential_attachment(n: usize, m: usize, seed: u64) -> CsrGraph {
    holme_kim(n, m, 0.0, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::types::Graph;

    #[test]
    fn holme_kim_edge_count_close_to_model() {
        let (n, m) = (2000, 8);
        let g = holme_kim(n, m, 0.1, 42);
        assert_eq!(g.num_vertices(), n);
        let expected = m * (n - m) + m * (m - 1) / 2;
        let got = g.num_edges();
        // Duplicate-free attachment can only lose a handful of edges.
        assert!(
            got as f64 > 0.99 * expected as f64 && got <= expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn holme_kim_is_connected() {
        let g = holme_kim(500, 3, 0.1, 7);
        assert_eq!(algo::connected_components(&g).count, 1);
    }

    #[test]
    fn holme_kim_triads_raise_clustering() {
        let low = holme_kim(1500, 5, 0.0, 1);
        let high = holme_kim(1500, 5, 0.9, 1);
        let c_low = algo::global_clustering(&low);
        let c_high = algo::global_clustering(&high);
        assert!(
            c_high > c_low * 1.5,
            "clustering should rise with triad probability: {c_low} vs {c_high}"
        );
    }

    #[test]
    fn powerlaw_has_heavy_tail() {
        let g = preferential_attachment(3000, 4, 11);
        let stats = algo::degree_stats(&g);
        // Heavy tail: max degree far above mean.
        assert!(
            stats.max as f64 > 8.0 * stats.mean,
            "max {} mean {}",
            stats.max,
            stats.mean
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = holme_kim(300, 4, 0.1, 99);
        let b = holme_kim(300, 4, 0.1, 99);
        assert_eq!(a, b);
        let c = holme_kim(300, 4, 0.1, 100);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "1 <= m < n")]
    fn rejects_m_zero() {
        let _ = holme_kim(10, 0, 0.1, 0);
    }
}
