//! Watts–Strogatz small-world graphs.
//!
//! Not one of the paper's families, but a useful middle ground between its
//! two extremes (regular FEM meshes and power-law graphs): high clustering
//! with short paths and a homogeneous degree distribution. Used by tests
//! and ablations to check the heuristic does not overfit either extreme.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::types::{ordered, EdgeList, VertexId};

/// Generates a Watts–Strogatz graph: a ring of `n` vertices each connected
/// to its `k` nearest neighbours (`k` even), with every edge rewired to a
/// uniform random endpoint with probability `p`.
///
/// # Panics
///
/// Panics if `k` is odd, zero, or `>= n`, or `p` is not a probability.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> CsrGraph {
    assert!(k > 0 && k.is_multiple_of(2), "k must be positive and even");
    assert!(k < n, "ring degree must be below n");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);

    let mut edges: EdgeList = Vec::with_capacity(n * k / 2);
    let mut present = std::collections::HashSet::with_capacity(n * k / 2);
    for v in 0..n {
        for offset in 1..=(k / 2) {
            let w = (v + offset) % n;
            let e = ordered(v as VertexId, w as VertexId);
            if present.insert(e) {
                edges.push(e);
            }
        }
    }
    for edge in edges.iter_mut() {
        if !rng.gen_bool(p) {
            continue;
        }
        let (u, _) = *edge;
        // Try a few times for a fresh endpoint; keep the original on failure
        // (dense corner cases), so |E| is preserved.
        for _ in 0..8 {
            let w = rng.gen_range(0..n) as VertexId;
            let candidate = ordered(u, w);
            if w != u && !present.contains(&candidate) {
                present.remove(edge);
                present.insert(candidate);
                *edge = candidate;
                break;
            }
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::types::Graph;

    #[test]
    fn ring_without_rewiring() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        assert_eq!(algo::connected_components(&g).count, 1);
    }

    #[test]
    fn rewiring_shortens_paths_but_keeps_edges() {
        let ring = watts_strogatz(300, 6, 0.0, 2);
        let small_world = watts_strogatz(300, 6, 0.2, 2);
        assert_eq!(ring.num_edges(), small_world.num_edges());
        let d_ring = algo::estimate_mean_geodesic(&ring, 8, 1);
        let d_sw = algo::estimate_mean_geodesic(&small_world, 8, 1);
        assert!(
            d_sw < 0.6 * d_ring,
            "rewiring should shorten paths: {d_ring} -> {d_sw}"
        );
    }

    #[test]
    fn rewired_graph_keeps_high_clustering_at_low_p() {
        let g = watts_strogatz(400, 8, 0.05, 3);
        let c = algo::global_clustering(&g);
        assert!(c > 0.3, "clustering collapsed: {c}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            watts_strogatz(100, 4, 0.3, 9),
            watts_strogatz(100, 4, 0.3, 9)
        );
    }

    #[test]
    #[should_panic(expected = "even")]
    fn rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }
}
