//! Uniform random graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::csr::CsrGraph;
use crate::types::VertexId;

/// Generates an Erdős–Rényi `G(n, p)` graph.
///
/// Uses geometric skipping so generation is `O(|E|)` rather than `O(n^2)`,
/// which keeps test graphs with small `p` cheap.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    if p > 0.0 && n >= 2 {
        let log1p = (1.0 - p).ln();
        // Walk the strictly-upper-triangular adjacency matrix in row-major
        // order, jumping ahead geometrically between present edges.
        let (mut u, mut v) = (0usize, 0usize);
        loop {
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = if p >= 1.0 {
                1
            } else {
                1 + (r.ln() / log1p).floor() as usize
            };
            v += skip;
            while v >= n {
                u += 1;
                if u >= n - 1 {
                    break;
                }
                v = u + 1 + (v - n);
            }
            if u >= n - 1 {
                break;
            }
            edges.push((u as VertexId, v as VertexId));
        }
    }
    CsrGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Graph;

    #[test]
    fn density_close_to_p() {
        let n = 600;
        let p = 0.05;
        let g = erdos_renyi(n, p, 5);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn p_zero_yields_empty() {
        let g = erdos_renyi(100, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn p_one_yields_complete() {
        let n = 20;
        let g = erdos_renyi(n, 1.0, 1);
        assert_eq!(g.num_edges(), n * (n - 1) / 2);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(erdos_renyi(200, 0.02, 3), erdos_renyi(200, 0.02, 3));
    }
}
