//! Slab-backed adjacency storage for [`crate::DynGraph`].
//!
//! A `Vec<Vec<VertexId>>` adjacency costs one heap allocation — and one
//! pointer chase — per vertex, which is what makes neighbour scans
//! cache-hostile once the graph outgrows the last-level cache. An
//! [`AdjPool`] stores every neighbour list in a single flat arena instead:
//! each vertex slot owns a `{offset, len, cap}` span of the arena, so a
//! sequential sweep walks one contiguous allocation and a random lookup
//! costs exactly one indirection (span → arena), same as a CSR read.
//!
//! Lists stay **sorted** — that is part of the `neighbors()` contract the
//! whole workspace relies on (binary-search membership, deterministic
//! scans, byte-stable snapshot encoding) — so removal shifts the span tail
//! left rather than swap-removing. Growth is amortized doubling: a full
//! span relocates to the end of the arena with twice its capacity, and the
//! region it vacated becomes garbage. Once garbage exceeds half the arena
//! a compaction rebuilds it in slot order, which also restores perfect
//! scan locality after heavy churn.
//!
//! Layout (offsets, capacities, garbage, when compaction fires) is
//! deliberately **not** part of the pool's identity: equality compares the
//! logical per-slot lists only, so two pools that went through different
//! mutation histories compare equal whenever their graphs do.

use crate::types::VertexId;

/// Minimum capacity a span is (re)allocated with once it holds anything.
const MIN_SPAN_CAP: u32 = 4;

/// Garbage floor below which compaction never fires, so small graphs with
/// a little churn don't thrash the arena.
const COMPACT_MIN_GARBAGE: usize = 64;

/// One vertex slot's view into the arena: `arena[offset .. offset + cap]`
/// belongs to the slot, the first `len` entries are its (sorted) list.
#[derive(Debug, Clone, Copy, Default)]
struct Span {
    offset: usize,
    len: u32,
    cap: u32,
}

/// A slab of per-slot sorted adjacency lists in one flat arena.
#[derive(Debug, Clone, Default)]
pub struct AdjPool {
    arena: Vec<VertexId>,
    spans: Vec<Span>,
    /// Arena entries no span owns (vacated by relocation or slot clears).
    garbage: usize,
    /// Compactions performed over the pool's lifetime (observability).
    compactions: usize,
}

impl AdjPool {
    /// An empty pool with no slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// A pool of `n` empty slots.
    pub fn with_slots(n: usize) -> Self {
        AdjPool {
            arena: Vec::new(),
            spans: vec![Span::default(); n],
            garbage: 0,
            compactions: 0,
        }
    }

    /// A pool of `degrees.len()` empty slots whose spans are preallocated
    /// back-to-back with exactly the given capacities — the bulk
    /// constructor for callers that know every degree up front (CSR
    /// freezes, snapshot decodes after a degree prepass). Filling slot `v`
    /// up to `degrees[v]` entries never relocates.
    pub fn with_capacities(degrees: &[usize]) -> Self {
        let total: usize = degrees.iter().sum();
        let mut spans = Vec::with_capacity(degrees.len());
        let mut offset = 0usize;
        for &d in degrees {
            spans.push(Span {
                offset,
                len: 0,
                cap: d as u32,
            });
            offset += d;
        }
        AdjPool {
            arena: vec![0; total],
            spans,
            garbage: 0,
            compactions: 0,
        }
    }

    /// Number of slots (alive or not — liveness is the caller's concern).
    pub fn num_slots(&self) -> usize {
        self.spans.len()
    }

    /// Appends a new empty slot and returns its index.
    pub fn push_slot(&mut self) -> usize {
        self.spans.push(Span::default());
        self.spans.len() - 1
    }

    /// The sorted list held by `slot`.
    #[inline]
    pub fn neighbors(&self, slot: usize) -> &[VertexId] {
        let span = &self.spans[slot];
        &self.arena[span.offset..span.offset + span.len as usize]
    }

    /// Length of `slot`'s list.
    #[inline]
    pub fn len_of(&self, slot: usize) -> usize {
        self.spans[slot].len as usize
    }

    /// Inserts `value` into `slot`'s sorted list; `false` if present.
    /// Relocates the span (amortized doubling) when it is full.
    pub fn insert_sorted(&mut self, slot: usize, value: VertexId) -> bool {
        let pos = match self.neighbors(slot).binary_search(&value) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        if self.spans[slot].len == self.spans[slot].cap {
            self.grow(slot);
        }
        let span = self.spans[slot];
        let start = span.offset + pos;
        let end = span.offset + span.len as usize;
        self.arena.copy_within(start..end, start + 1);
        self.arena[start] = value;
        self.spans[slot].len += 1;
        true
    }

    /// Appends `value` to `slot`'s list without relocating.
    ///
    /// Bulk-fill fast path for spans sized by [`AdjPool::with_capacities`]:
    /// the caller promises `value` exceeds the current last entry and the
    /// span has room (both debug-asserted).
    pub fn push_within_cap(&mut self, slot: usize, value: VertexId) {
        let span = self.spans[slot];
        debug_assert!(span.len < span.cap, "span for slot {slot} is full");
        debug_assert!(
            span.len == 0 || self.arena[span.offset + span.len as usize - 1] < value,
            "bulk fill must append in ascending order"
        );
        self.arena[span.offset + span.len as usize] = value;
        self.spans[slot].len += 1;
    }

    /// Removes `value` from `slot`'s sorted list, shifting the tail left so
    /// order is preserved; `false` if absent. Freed capacity stays with the
    /// span (it is not garbage — the slot will reuse it).
    pub fn remove_sorted(&mut self, slot: usize, value: VertexId) -> bool {
        let pos = match self.neighbors(slot).binary_search(&value) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        let span = self.spans[slot];
        let start = span.offset + pos;
        let end = span.offset + span.len as usize;
        self.arena.copy_within(start + 1..end, start);
        self.spans[slot].len -= 1;
        true
    }

    /// Empties `slot` and releases its capacity to garbage (the tombstone
    /// path — a cleared slot never grows back).
    pub fn clear_slot(&mut self, slot: usize) {
        self.garbage += self.spans[slot].cap as usize;
        self.spans[slot] = Span::default();
    }

    /// Entries the arena currently holds (live + garbage + slack).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Arena entries owned by no span.
    pub fn garbage(&self) -> usize {
        self.garbage
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> usize {
        self.compactions
    }

    /// Compacts when more than half the arena is garbage (and enough of it
    /// to be worth a rebuild). Callers invoke this at mutation-batch
    /// granularity — never mid-loop — so span addresses are stable inside
    /// any one mutation. Returns whether a compaction ran.
    pub fn maybe_compact(&mut self) -> bool {
        if self.garbage > COMPACT_MIN_GARBAGE && self.garbage * 2 > self.arena.len() {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Rebuilds the arena in slot order with tight spans (`cap == len`).
    ///
    /// Purely a layout operation: every slot's list is byte-identical
    /// before and after, so graph behaviour — and therefore determinism —
    /// cannot observe it. Also restores sequential-scan locality after
    /// churn has scattered relocated spans.
    pub fn compact(&mut self) {
        let live: usize = self.spans.iter().map(|s| s.len as usize).sum();
        let mut arena = Vec::with_capacity(live);
        for span in &mut self.spans {
            let offset = arena.len();
            arena.extend_from_slice(&self.arena[span.offset..span.offset + span.len as usize]);
            span.offset = offset;
            span.cap = span.len;
        }
        self.arena = arena;
        self.garbage = 0;
        self.compactions += 1;
    }

    /// Relocates `slot`'s span to the arena end with doubled capacity.
    fn grow(&mut self, slot: usize) {
        let span = self.spans[slot];
        let new_cap = (span.cap * 2).max(MIN_SPAN_CAP);
        let new_offset = self.arena.len();
        self.arena
            .extend_from_within(span.offset..span.offset + span.len as usize);
        self.arena.resize(new_offset + new_cap as usize, 0);
        self.garbage += span.cap as usize;
        self.spans[slot] = Span {
            offset: new_offset,
            len: span.len,
            cap: new_cap,
        };
    }
}

/// Logical equality: same slot count, same per-slot lists. Layout (span
/// placement, capacities, garbage) is invisible, so graphs that reached the
/// same logical state through different histories compare equal.
impl PartialEq for AdjPool {
    fn eq(&self, other: &Self) -> bool {
        self.spans.len() == other.spans.len()
            && (0..self.spans.len()).all(|s| self.neighbors(s) == other.neighbors(s))
    }
}

impl Eq for AdjPool {}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with_lists(lists: &[&[VertexId]]) -> AdjPool {
        let mut pool = AdjPool::with_slots(lists.len());
        for (slot, list) in lists.iter().enumerate() {
            for &v in *list {
                assert!(pool.insert_sorted(slot, v));
            }
        }
        pool
    }

    #[test]
    fn insert_keeps_lists_sorted_and_deduplicated() {
        let mut pool = AdjPool::with_slots(2);
        for v in [5, 2, 9, 2, 7] {
            pool.insert_sorted(0, v);
        }
        assert_eq!(pool.neighbors(0), &[2, 5, 7, 9]);
        assert_eq!(pool.neighbors(1), &[] as &[VertexId]);
        assert!(!pool.insert_sorted(0, 5), "duplicate rejected");
    }

    #[test]
    fn remove_shifts_tail_preserving_order() {
        let mut pool = pool_with_lists(&[&[1, 2, 3, 4, 5]]);
        assert!(pool.remove_sorted(0, 3));
        assert_eq!(pool.neighbors(0), &[1, 2, 4, 5]);
        assert!(!pool.remove_sorted(0, 3), "double remove is a no-op");
        assert_eq!(pool.len_of(0), 4);
    }

    #[test]
    fn growth_relocates_and_preserves_contents() {
        let mut pool = AdjPool::with_slots(3);
        // Interleave inserts so spans relocate past each other repeatedly.
        for v in 0..200u32 {
            pool.insert_sorted((v % 3) as usize, v);
        }
        for slot in 0..3u32 {
            let expect: Vec<VertexId> = (0..200).filter(|v| v % 3 == slot).collect();
            assert_eq!(pool.neighbors(slot as usize), expect.as_slice());
        }
        assert!(pool.garbage() > 0, "relocations must leave garbage behind");
    }

    #[test]
    fn with_capacities_bulk_fill_never_relocates() {
        let degrees = [3usize, 0, 2];
        let mut pool = AdjPool::with_capacities(&degrees);
        let before = pool.arena_len();
        for v in [10, 20, 30] {
            pool.push_within_cap(0, v);
        }
        for v in [7, 9] {
            pool.push_within_cap(2, v);
        }
        assert_eq!(pool.arena_len(), before, "bulk fill must not grow");
        assert_eq!(pool.garbage(), 0);
        assert_eq!(pool.neighbors(0), &[10, 20, 30]);
        assert_eq!(pool.neighbors(2), &[7, 9]);
    }

    #[test]
    fn clear_slot_releases_capacity_and_compaction_reclaims_it() {
        let mut pool = AdjPool::with_slots(8);
        for slot in 0..8 {
            for v in 0..64u32 {
                pool.insert_sorted(slot, v);
            }
        }
        let logical: Vec<Vec<VertexId>> = (0..8).map(|s| pool.neighbors(s).to_vec()).collect();
        for slot in [1, 3, 5, 7] {
            pool.clear_slot(slot);
        }
        assert!(pool.garbage() >= 4 * 64);
        assert!(pool.maybe_compact(), "half the arena is dead");
        assert_eq!(pool.compactions(), 1);
        assert_eq!(pool.garbage(), 0);
        for slot in [0, 2, 4, 6] {
            assert_eq!(pool.neighbors(slot), logical[slot].as_slice());
        }
        for slot in [1, 3, 5, 7] {
            assert_eq!(pool.neighbors(slot), &[] as &[VertexId]);
        }
        // Arena is now tight: live entries only.
        assert_eq!(pool.arena_len(), 4 * 64);
    }

    #[test]
    fn maybe_compact_respects_garbage_floor() {
        let mut pool = pool_with_lists(&[&[1, 2, 3]]);
        pool.clear_slot(0);
        assert!(!pool.maybe_compact(), "tiny garbage never compacts");
    }

    #[test]
    fn equality_is_layout_invariant() {
        // Same logical lists, very different histories/layouts.
        let mut churned = AdjPool::with_slots(2);
        for v in 0..100u32 {
            churned.insert_sorted(0, v);
        }
        for v in 0..100u32 {
            if v % 2 == 0 {
                churned.remove_sorted(0, v);
            }
        }
        churned.insert_sorted(1, 7);

        let mut fresh = AdjPool::with_capacities(&[50, 1]);
        for v in (1..100u32).step_by(2) {
            fresh.push_within_cap(0, v);
        }
        fresh.push_within_cap(1, 7);

        assert_eq!(churned, fresh);
        churned.compact();
        assert_eq!(churned, fresh, "compaction is logically invisible");
        fresh.remove_sorted(1, 7);
        assert_ne!(churned, fresh);
    }

    #[test]
    fn push_slot_appends_empty_slots() {
        let mut pool = AdjPool::new();
        assert_eq!(pool.push_slot(), 0);
        assert_eq!(pool.push_slot(), 1);
        assert_eq!(pool.num_slots(), 2);
        pool.insert_sorted(1, 9);
        assert_eq!(pool.neighbors(1), &[9]);
        assert_eq!(pool.neighbors(0), &[] as &[VertexId]);
    }
}
