//! Mutable adjacency-list graph for dynamic workloads.

use serde::{Deserialize, Serialize};

use crate::csr::CsrGraph;
use crate::types::{Graph, VertexId};

/// A mutable undirected simple graph.
///
/// Supports the four mutations the paper's dynamic scenarios need — vertex
/// insertion, vertex removal, edge insertion, edge removal — while keeping
/// neighbour lists sorted so the migration heuristic's neighbour scans stay
/// cache-friendly and deterministic.
///
/// Removed vertices leave a *tombstone*: the id is never reused within one
/// graph's lifetime, mirroring how real systems (and the paper's Pregel-like
/// implementation) keep vertex identity stable across mutations.
///
/// # Example
///
/// ```
/// use apg_graph::{DynGraph, Graph};
///
/// let mut g = DynGraph::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// assert!(g.add_edge(a, b));
/// assert_eq!(g.num_edges(), 1);
/// g.remove_vertex(b);
/// assert_eq!(g.num_edges(), 0);
/// assert!(!g.is_vertex(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynGraph {
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    num_live: usize,
    num_edges: usize,
}

impl DynGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a graph from already-validated parts (the snapshot
    /// decoder's entry point; see `crate::persist`).
    pub(crate) fn from_raw_parts(
        adj: Vec<Vec<VertexId>>,
        alive: Vec<bool>,
        num_live: usize,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(adj.len(), alive.len());
        DynGraph {
            adj,
            alive,
            num_live,
            num_edges,
        }
    }

    /// Creates a graph with `n` live, isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynGraph {
            adj: vec![Vec::new(); n],
            alive: vec![true; n],
            num_live: n,
            num_edges: 0,
        }
    }

    /// Adds a new vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.adj.len() as VertexId;
        self.adj.push(Vec::new());
        self.alive.push(true);
        self.num_live += 1;
        id
    }

    /// Removes vertex `v` and all incident edges.
    ///
    /// Returns `false` if `v` was already removed or never existed.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if !self.is_vertex(v) {
            return false;
        }
        let neighbors = std::mem::take(&mut self.adj[v as usize]);
        for &w in &neighbors {
            let list = &mut self.adj[w as usize];
            if let Ok(pos) = list.binary_search(&v) {
                list.remove(pos);
            }
        }
        self.num_edges -= neighbors.len();
        self.alive[v as usize] = false;
        self.num_live -= 1;
        true
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Returns `false` (and changes nothing) for self-loops, dead endpoints,
    /// or already-present edges.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_vertex(u) || !self.is_vertex(v) {
            return false;
        }
        let lu = &mut self.adj[u as usize];
        match lu.binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => lu.insert(pos, v),
        }
        let lv = &mut self.adj[v as usize];
        let pos = lv.binary_search(&u).unwrap_err();
        lv.insert(pos, u);
        self.num_edges += 1;
        true
    }

    /// Removes the undirected edge `{u, v}`.
    ///
    /// Returns `false` if the edge did not exist.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_vertex(u) || !self.is_vertex(v) {
            return false;
        }
        let lu = &mut self.adj[u as usize];
        match lu.binary_search(&v) {
            Ok(pos) => lu.remove(pos),
            Err(_) => return false,
        };
        let lv = &mut self.adj[v as usize];
        let pos = lv.binary_search(&u).expect("asymmetric adjacency");
        lv.remove(pos);
        self.num_edges -= 1;
        true
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.is_vertex(u) && self.is_vertex(v) && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Freezes the current live subgraph into a [`CsrGraph`].
    ///
    /// Tombstoned ids are preserved as isolated vertices so that ids remain
    /// stable between the two representations. The CSR offsets and targets
    /// are built directly from the borrowed neighbour lists — the graph's
    /// adjacency is read once, never cloned.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_sorted_adjacency_slices(&self.adj)
    }

    /// The full vertex-slot range `0..num_vertices()`, tombstones included.
    ///
    /// This is the domain the parallel execution layer shards: it depends
    /// only on how many ids were ever allocated, so a shard plan over it is
    /// stable across thread counts (pair with [`Graph::is_vertex`] to skip
    /// tombstones inside a shard).
    pub fn slot_range(&self) -> std::ops::Range<usize> {
        0..self.adj.len()
    }

    /// Live vertices within a slot sub-range, ascending — the read-only
    /// shard view the parallel decision sweep iterates.
    ///
    /// # Panics
    ///
    /// Panics if `slots.end > num_vertices()`.
    pub fn live_in(&self, slots: std::ops::Range<usize>) -> impl Iterator<Item = VertexId> + '_ {
        self.alive[slots.clone()]
            .iter()
            .zip(slots)
            .filter_map(|(&alive, slot)| alive.then_some(slot as VertexId))
    }

    /// Returns every undirected edge once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            let u = u as VertexId;
            list.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

impl From<&CsrGraph> for DynGraph {
    fn from(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let adj: Vec<Vec<VertexId>> = (0..n as VertexId)
            .map(|v| g.neighbors(v).to_vec())
            .collect();
        DynGraph {
            adj,
            alive: vec![true; n],
            num_live: n,
            num_edges: g.num_edges(),
        }
    }
}

impl Graph for DynGraph {
    fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    fn num_live_vertices(&self) -> usize {
        self.num_live
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// Neighbours of `v` in ascending order.
    ///
    /// **Tombstone semantics:** calling this on a *removed* vertex returns
    /// the empty slice — [`DynGraph::remove_vertex`] strips the adjacency
    /// when it tombstones the id — so tombstones look like isolated
    /// vertices, never like their former selves. Ids that were never
    /// allocated (`v >= num_vertices()`) panic.
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let list = &self.adj[v as usize];
        debug_assert!(
            self.alive[v as usize] || list.is_empty(),
            "tombstone {v} still holds adjacency"
        );
        list
    }

    /// Degree of `v`.
    ///
    /// **Tombstone semantics:** 0 for a removed vertex (its adjacency was
    /// stripped at removal); panics for ids that were never allocated.
    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(
            self.alive[v as usize] || self.adj[v as usize].is_empty(),
            "tombstone {v} still holds adjacency"
        );
        self.adj[v as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_edges() {
        let mut g = DynGraph::with_vertices(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1), "duplicate edge rejected");
        assert!(!g.add_edge(1, 0), "reverse duplicate rejected");
        assert!(!g.add_edge(1, 1), "self-loop rejected");
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn remove_vertex_cleans_incident_edges() {
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        assert!(g.remove_vertex(0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_live_vertices(), 3);
        assert!(!g.is_vertex(0));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        // Operations on a tombstone are no-ops.
        assert!(!g.remove_vertex(0));
        assert!(!g.add_edge(0, 1));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = DynGraph::new();
        let a = g.add_vertex();
        g.remove_vertex(a);
        let b = g.add_vertex();
        assert_ne!(a, b);
    }

    #[test]
    fn vertices_skips_tombstones() {
        let mut g = DynGraph::with_vertices(4);
        g.remove_vertex(1);
        let live: Vec<_> = g.vertices().collect();
        assert_eq!(live, vec![0, 2, 3]);
    }

    #[test]
    fn csr_round_trip_preserves_structure() {
        let mut g = DynGraph::with_vertices(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 3);
        let back = DynGraph::from(&csr);
        assert_eq!(back.num_edges(), 3);
        assert_eq!(back.neighbors(1), g.neighbors(1));
    }

    #[test]
    fn tombstones_read_as_isolated() {
        let mut g = DynGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.remove_vertex(1);
        // Documented semantics: neighbors/degree on a tombstone are empty/0.
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.degree(1), 0);
        assert!(!g.is_vertex(1));
    }

    #[test]
    fn live_in_matches_vertices_per_shard() {
        let mut g = DynGraph::with_vertices(10);
        g.remove_vertex(2);
        g.remove_vertex(7);
        assert_eq!(g.slot_range(), 0..10);
        let stitched: Vec<VertexId> = g.live_in(0..5).chain(g.live_in(5..10)).collect();
        let whole: Vec<VertexId> = g.vertices().collect();
        assert_eq!(stitched, whole);
        assert_eq!(g.live_in(2..3).count(), 0);
    }

    #[test]
    fn neighbors_stay_sorted_under_churn() {
        let mut g = DynGraph::with_vertices(10);
        for v in [5, 2, 9, 1, 7] {
            g.add_edge(0, v);
        }
        assert_eq!(g.neighbors(0), &[1, 2, 5, 7, 9]);
        g.remove_edge(0, 5);
        assert_eq!(g.neighbors(0), &[1, 2, 7, 9]);
    }
}
