//! Mutable adjacency-list graph for dynamic workloads.

use serde::{Deserialize, Serialize};

use crate::adj_pool::AdjPool;
use crate::csr::CsrGraph;
use crate::types::{Graph, VertexId};

/// A mutable undirected simple graph.
///
/// Supports the four mutations the paper's dynamic scenarios need — vertex
/// insertion, vertex removal, edge insertion, edge removal — while keeping
/// neighbour lists sorted so the migration heuristic's neighbour scans stay
/// cache-friendly and deterministic.
///
/// # Memory layout
///
/// Adjacency lives in an [`AdjPool`]: one flat arena of `VertexId`s with a
/// `{offset, len, cap}` span per vertex slot, instead of one heap `Vec`
/// per vertex. Every consumer still reads through
/// [`Graph::neighbors`]` -> &[VertexId]`, but a sequential sweep now walks
/// a single contiguous allocation and a random lookup costs one
/// indirection — CSR-like locality with mutability. Layout is invisible to
/// behaviour: lists stay sorted under churn, equality compares logical
/// lists only, and the snapshot codec encodes per-vertex lists, so wire
/// bytes are identical to the boxed-per-vertex representation's.
///
/// Removed vertices leave a *tombstone*: the id is never reused within one
/// graph's lifetime, mirroring how real systems (and the paper's Pregel-like
/// implementation) keep vertex identity stable across mutations.
///
/// # Example
///
/// ```
/// use apg_graph::{DynGraph, Graph};
///
/// let mut g = DynGraph::new();
/// let a = g.add_vertex();
/// let b = g.add_vertex();
/// assert!(g.add_edge(a, b));
/// assert_eq!(g.num_edges(), 1);
/// g.remove_vertex(b);
/// assert_eq!(g.num_edges(), 0);
/// assert!(!g.is_vertex(b));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynGraph {
    adj: AdjPool,
    alive: Vec<bool>,
    num_live: usize,
    num_edges: usize,
}

impl DynGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Assembles a graph from already-validated parts (the snapshot
    /// decoder's entry point; see `crate::persist`).
    pub(crate) fn from_raw_parts(
        adj: AdjPool,
        alive: Vec<bool>,
        num_live: usize,
        num_edges: usize,
    ) -> Self {
        debug_assert_eq!(adj.num_slots(), alive.len());
        DynGraph {
            adj,
            alive,
            num_live,
            num_edges,
        }
    }

    /// Creates a graph with `n` live, isolated vertices.
    pub fn with_vertices(n: usize) -> Self {
        DynGraph {
            adj: AdjPool::with_slots(n),
            alive: vec![true; n],
            num_live: n,
            num_edges: 0,
        }
    }

    /// Creates a graph of `degrees.len()` live, isolated vertices whose
    /// adjacency spans are preallocated with exactly the given capacities.
    ///
    /// The bulk-construction fast path: a caller that knows every degree up
    /// front (a degree prepass over a source graph) can then add each edge
    /// once without a single span relocation.
    pub fn with_degree_capacities(degrees: &[usize]) -> Self {
        DynGraph {
            adj: AdjPool::with_capacities(degrees),
            alive: vec![true; degrees.len()],
            num_live: degrees.len(),
            num_edges: 0,
        }
    }

    /// Adds a new vertex and returns its id.
    pub fn add_vertex(&mut self) -> VertexId {
        let id = self.adj.push_slot() as VertexId;
        self.alive.push(true);
        self.num_live += 1;
        id
    }

    /// Removes vertex `v` and all incident edges.
    ///
    /// Returns `false` if `v` was already removed or never existed.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if !self.is_vertex(v) {
            return false;
        }
        // Walk v's list by index: removing v from a neighbour's span never
        // moves v's own span (no relocation or compaction inside the loop).
        let degree = self.adj.len_of(v as usize);
        for i in 0..degree {
            let w = self.adj.neighbors(v as usize)[i];
            let removed = self.adj.remove_sorted(w as usize, v);
            debug_assert!(removed, "asymmetric adjacency at {{{v}, {w}}}");
        }
        self.adj.clear_slot(v as usize);
        self.adj.maybe_compact();
        self.num_edges -= degree;
        self.alive[v as usize] = false;
        self.num_live -= 1;
        true
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Returns `false` (and changes nothing) for self-loops, dead endpoints,
    /// or already-present edges.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_vertex(u) || !self.is_vertex(v) {
            return false;
        }
        if !self.adj.insert_sorted(u as usize, v) {
            return false;
        }
        let inserted = self.adj.insert_sorted(v as usize, u);
        debug_assert!(inserted, "asymmetric adjacency at {{{u}, {v}}}");
        self.num_edges += 1;
        self.adj.maybe_compact();
        true
    }

    /// Removes the undirected edge `{u, v}`.
    ///
    /// Returns `false` if the edge did not exist.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_vertex(u) || !self.is_vertex(v) {
            return false;
        }
        if !self.adj.remove_sorted(u as usize, v) {
            return false;
        }
        let removed = self.adj.remove_sorted(v as usize, u);
        debug_assert!(removed, "asymmetric adjacency at {{{u}, {v}}}");
        self.num_edges -= 1;
        true
    }

    /// Whether the edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.is_vertex(u)
            && self.is_vertex(v)
            && self.adj.neighbors(u as usize).binary_search(&v).is_ok()
    }

    /// Forces an adjacency-arena compaction, rebuilding the slab in slot
    /// order with tight spans.
    ///
    /// Compaction normally fires automatically once churn has turned more
    /// than half the arena into garbage; this entry point hands memory back
    /// eagerly (and restores perfect sequential-scan locality) at a moment
    /// the caller chooses, e.g. after a large deletion burst. Purely a
    /// layout operation — no observable behaviour changes.
    pub fn compact_adjacency(&mut self) {
        self.adj.compact();
    }

    /// Rewrites the slots a validated [`GraphDiff`](crate::GraphDiff)
    /// names and installs the pre-checked bookkeeping totals. Infallible
    /// by contract: callers run `GraphDiff::validate_against` first, so
    /// every list is sorted, symmetric in the final state, and consistent
    /// with `new_live`/`new_edges`.
    pub(crate) fn apply_validated_diff(
        &mut self,
        new_slots: usize,
        changed: &[crate::diff::ResolvedSlot],
        new_live: usize,
        new_edges: usize,
    ) {
        while self.adj.num_slots() < new_slots {
            self.adj.push_slot();
            self.alive.push(false);
        }
        for entry in changed {
            self.adj.clear_slot(entry.slot);
            for &w in &entry.neighbors {
                let inserted = self.adj.insert_sorted(entry.slot, w);
                debug_assert!(inserted, "validated diff re-inserted a neighbour");
            }
            self.alive[entry.slot] = entry.alive;
        }
        self.num_live = new_live;
        self.num_edges = new_edges;
        self.adj.maybe_compact();
    }

    /// Freezes the current live subgraph into a [`CsrGraph`].
    ///
    /// Tombstoned ids are preserved as isolated vertices so that ids remain
    /// stable between the two representations. The CSR offsets and targets
    /// are built directly from the borrowed neighbour spans — the graph's
    /// adjacency is read once, never cloned.
    pub fn to_csr(&self) -> CsrGraph {
        CsrGraph::from_sorted_neighbor_slices(self.adj.num_slots(), |v| self.adj.neighbors(v))
    }

    /// The full vertex-slot range `0..num_vertices()`, tombstones included.
    ///
    /// This is the domain the parallel execution layer shards: it depends
    /// only on how many ids were ever allocated, so a shard plan over it is
    /// stable across thread counts (pair with [`Graph::is_vertex`] to skip
    /// tombstones inside a shard).
    pub fn slot_range(&self) -> std::ops::Range<usize> {
        0..self.adj.num_slots()
    }

    /// Live vertices within a slot sub-range, ascending — the read-only
    /// shard view the parallel decision sweep iterates.
    ///
    /// # Panics
    ///
    /// Panics if `slots.end > num_vertices()`.
    pub fn live_in(&self, slots: std::ops::Range<usize>) -> impl Iterator<Item = VertexId> + '_ {
        self.alive[slots.clone()]
            .iter()
            .zip(slots)
            .filter_map(|(&alive, slot)| alive.then_some(slot as VertexId))
    }

    /// Returns every undirected edge once, with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.adj.num_slots()).flat_map(move |u| {
            let u = u as VertexId;
            self.adj
                .neighbors(u as usize)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }
}

impl From<&CsrGraph> for DynGraph {
    fn from(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let degrees: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        let mut adj = AdjPool::with_capacities(&degrees);
        for v in 0..n as VertexId {
            for &w in g.neighbors(v) {
                adj.push_within_cap(v as usize, w);
            }
        }
        DynGraph {
            adj,
            alive: vec![true; n],
            num_live: n,
            num_edges: g.num_edges(),
        }
    }
}

impl Graph for DynGraph {
    fn num_vertices(&self) -> usize {
        self.adj.num_slots()
    }

    fn num_live_vertices(&self) -> usize {
        self.num_live
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn is_vertex(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }

    /// Neighbours of `v` in ascending order.
    ///
    /// **Tombstone semantics:** calling this on a *removed* vertex returns
    /// the empty slice — [`DynGraph::remove_vertex`] strips the adjacency
    /// when it tombstones the id — so tombstones look like isolated
    /// vertices, never like their former selves. Ids that were never
    /// allocated (`v >= num_vertices()`) panic.
    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let list = self.adj.neighbors(v as usize);
        debug_assert!(
            self.alive[v as usize] || list.is_empty(),
            "tombstone {v} still holds adjacency"
        );
        list
    }

    /// Degree of `v`.
    ///
    /// **Tombstone semantics:** 0 for a removed vertex (its adjacency was
    /// stripped at removal); panics for ids that were never allocated.
    fn degree(&self, v: VertexId) -> usize {
        debug_assert!(
            self.alive[v as usize] || self.adj.len_of(v as usize) == 0,
            "tombstone {v} still holds adjacency"
        );
        self.adj.len_of(v as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_remove_edges() {
        let mut g = DynGraph::with_vertices(3);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1), "duplicate edge rejected");
        assert!(!g.add_edge(1, 0), "reverse duplicate rejected");
        assert!(!g.add_edge(1, 1), "self-loop rejected");
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn remove_vertex_cleans_incident_edges() {
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        g.add_edge(1, 2);
        assert!(g.remove_vertex(0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_live_vertices(), 3);
        assert!(!g.is_vertex(0));
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(1, 2));
        // Operations on a tombstone are no-ops.
        assert!(!g.remove_vertex(0));
        assert!(!g.add_edge(0, 1));
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = DynGraph::new();
        let a = g.add_vertex();
        g.remove_vertex(a);
        let b = g.add_vertex();
        assert_ne!(a, b);
    }

    #[test]
    fn vertices_skips_tombstones() {
        let mut g = DynGraph::with_vertices(4);
        g.remove_vertex(1);
        let live: Vec<_> = g.vertices().collect();
        assert_eq!(live, vec![0, 2, 3]);
    }

    #[test]
    fn csr_round_trip_preserves_structure() {
        let mut g = DynGraph::with_vertices(5);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(3, 4);
        let csr = g.to_csr();
        assert_eq!(csr.num_edges(), 3);
        let back = DynGraph::from(&csr);
        assert_eq!(back.num_edges(), 3);
        assert_eq!(back.neighbors(1), g.neighbors(1));
    }

    #[test]
    fn tombstones_read_as_isolated() {
        let mut g = DynGraph::with_vertices(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.remove_vertex(1);
        // Documented semantics: neighbors/degree on a tombstone are empty/0.
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        assert_eq!(g.degree(1), 0);
        assert!(!g.is_vertex(1));
    }

    #[test]
    fn live_in_matches_vertices_per_shard() {
        let mut g = DynGraph::with_vertices(10);
        g.remove_vertex(2);
        g.remove_vertex(7);
        assert_eq!(g.slot_range(), 0..10);
        let stitched: Vec<VertexId> = g.live_in(0..5).chain(g.live_in(5..10)).collect();
        let whole: Vec<VertexId> = g.vertices().collect();
        assert_eq!(stitched, whole);
        assert_eq!(g.live_in(2..3).count(), 0);
    }

    #[test]
    fn neighbors_stay_sorted_under_churn() {
        let mut g = DynGraph::with_vertices(10);
        for v in [5, 2, 9, 1, 7] {
            g.add_edge(0, v);
        }
        assert_eq!(g.neighbors(0), &[1, 2, 5, 7, 9]);
        g.remove_edge(0, 5);
        assert_eq!(g.neighbors(0), &[1, 2, 7, 9]);
    }

    #[test]
    fn equality_is_layout_invariant() {
        // Build the same logical graph twice: once via bulk construction,
        // once via churn heavy enough to relocate spans and compact.
        let mut churned = DynGraph::with_vertices(6);
        for u in 0..6u32 {
            for w in (u + 1)..6 {
                churned.add_edge(u, w);
            }
        }
        for u in 0..6u32 {
            for w in (u + 1)..6 {
                if (u + w) % 2 == 0 {
                    churned.remove_edge(u, w);
                }
            }
        }
        churned.compact_adjacency();

        let mut fresh = DynGraph::with_vertices(6);
        for u in 0..6u32 {
            for w in (u + 1)..6 {
                if (u + w) % 2 != 0 {
                    fresh.add_edge(u, w);
                }
            }
        }
        assert_eq!(churned, fresh);
        fresh.remove_vertex(3);
        assert_ne!(churned, fresh);
    }

    #[test]
    fn degree_capacities_prealloc_matches_incremental_build() {
        let mut incremental = DynGraph::with_vertices(4);
        incremental.add_edge(0, 1);
        incremental.add_edge(0, 2);
        incremental.add_edge(2, 3);

        let mut bulk = DynGraph::with_degree_capacities(&[2, 1, 2, 1]);
        bulk.add_edge(0, 1);
        bulk.add_edge(0, 2);
        bulk.add_edge(2, 3);
        assert_eq!(bulk, incremental);
        assert_eq!(bulk.degree(0), 2);
    }
}
