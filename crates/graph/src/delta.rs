//! The canonical graph-mutation event model.
//!
//! Every way the graph changes — synthetic stream generators, the Pregel
//! engine's superstep mutations, churn injected by experiments — is
//! expressed as [`GraphDelta`] events grouped into [`UpdateBatch`]es. A
//! batch applies to a [`DynGraph`] deterministically (same batch, same base
//! graph, same result — always), reports what it did in an
//! [`ApplyReport`], and can be recorded into a [`DeltaLog`] for replay.
//!
//! This is the shape the paper's systems view takes: a stream of buffered
//! update batches interleaved with repartitioning rounds, rather than
//! ad-hoc mutation calls scattered through the code.
//!
//! # Id assignment
//!
//! [`GraphDelta::AddVertex`] does not carry an id: the vertex receives the
//! next free slot when the batch is applied, exactly as
//! [`DynGraph::add_vertex`] would assign it. Because slots are allocated
//! sequentially and never reused, producers that track their own dense id
//! space (the stream generators do) stay aligned with the graph as long as
//! every batch they emit is applied in order to a graph seeded with the
//! same initial population.
//!
//! Edges between two vertices added in the *same* batch are expressed with
//! [`GraphDelta::ConnectNew`], which names them by placeholder index (their
//! position among the batch's `AddVertex` events) — no future id needs to
//! be known at build time. Alternatively, since ids are deterministic, a
//! producer that knows the base slot count may reference an
//! earlier-in-batch vertex by its concrete future id from a later
//! `AddVertex`'s neighbour list; both spellings apply identically.
//!
//! # Example
//!
//! ```
//! use apg_graph::{DynGraph, Graph, UpdateBatch};
//!
//! let mut g = DynGraph::with_vertices(2);
//! let mut batch = UpdateBatch::new();
//! let a = batch.add_vertex(vec![0]); // new vertex, linked to existing 0
//! let b = batch.add_vertex(vec![1]);
//! batch.connect_new(a, b); // edge between the two new vertices
//! batch.add_edge(0, 1);
//! let report = batch.apply(&mut g);
//! assert_eq!(report.new_vertices, vec![2, 3]);
//! assert_eq!(report.edges_added, 4);
//! assert_eq!(g.num_edges(), 4);
//! ```

use serde::{Deserialize, Serialize};

use crate::dynamic::DynGraph;
use crate::types::{Graph, VertexId};

/// A single change to a dynamic graph.
///
/// Deltas are data, not actions: building one never touches a graph. They
/// take effect through [`UpdateBatch::apply`] (or the mirrored application
/// paths in `apg-core` / `apg-pregel`, which preserve these semantics while
/// maintaining their own incremental accounting).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GraphDelta {
    /// Add a new vertex; its id is assigned at apply time (next free slot).
    /// `neighbors` lists existing vertices to connect it to — entries that
    /// are dead or unknown at apply time are skipped and counted as
    /// rejected, mirroring a stream racing with removals.
    AddVertex {
        /// Endpoints of the new vertex's initial edges.
        neighbors: Vec<VertexId>,
    },
    /// Connect two vertices added earlier in the *same batch*, by
    /// placeholder index (their position among the batch's `AddVertex`
    /// events).
    ConnectNew {
        /// Placeholder index of one endpoint.
        a: usize,
        /// Placeholder index of the other endpoint.
        b: usize,
    },
    /// Add the undirected edge `{u, v}` between existing vertices.
    AddEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove the undirected edge `{u, v}`.
    RemoveEdge {
        /// One endpoint.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
    /// Remove a vertex and all its incident edges (the id becomes a
    /// tombstone and is never reused).
    RemoveVertex {
        /// The vertex to remove.
        vertex: VertexId,
    },
}

/// What applying a batch (or replaying a log) actually did.
///
/// Deltas that change nothing — duplicate edges, dead endpoints, unknown
/// ids, self-loops — are counted as `rejected` rather than failing the
/// whole batch: update streams legitimately race with removals, and the
/// paper's system tolerates exactly this.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApplyReport {
    /// Ids assigned to the batch's new vertices, in event order.
    pub new_vertices: Vec<VertexId>,
    /// Vertices removed (tombstoned).
    pub vertices_removed: usize,
    /// Edges created, including a new vertex's initial edges.
    pub edges_added: usize,
    /// Edges removed, including edges dropped by vertex removal.
    pub edges_removed: usize,
    /// Deltas (or neighbour entries) that changed nothing.
    pub rejected: usize,
}

impl ApplyReport {
    /// Folds another report into this one (used when replaying a log).
    pub fn merge(&mut self, other: &ApplyReport) {
        self.new_vertices.extend_from_slice(&other.new_vertices);
        self.vertices_removed += other.vertices_removed;
        self.edges_added += other.edges_added;
        self.edges_removed += other.edges_removed;
        self.rejected += other.rejected;
    }

    /// Whether the application changed the graph at all.
    pub fn changed_anything(&self) -> bool {
        !self.new_vertices.is_empty()
            || self.vertices_removed > 0
            || self.edges_added > 0
            || self.edges_removed > 0
    }
}

/// A mutable graph-like structure the delta model can apply onto.
///
/// There is exactly **one** application loop in the workspace —
/// [`UpdateBatch::apply_to`] — and every consumer (a bare [`DynGraph`],
/// `apg-core`'s partitioner with its incremental cut accounting,
/// `apg-pregel`'s engine with its worker placement) plugs into it through
/// this trait, so their application semantics cannot drift.
///
/// Implementations must mirror [`DynGraph`]'s mutation semantics: dense
/// sequential id allocation, duplicate/self-loop/dead-endpoint edges
/// rejected with `false`, vertex removal dropping incident edges.
pub trait DeltaTarget {
    /// Allocates the next vertex slot and returns its id.
    fn delta_add_vertex(&mut self) -> VertexId;
    /// Adds the undirected edge `{u, v}`; `false` if it changed nothing.
    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool;
    /// Removes the undirected edge `{u, v}`; `false` if absent.
    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool;
    /// Removes `v`, returning how many incident edges were dropped, or
    /// `None` if `v` was not a live vertex.
    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize>;
}

impl DeltaTarget for DynGraph {
    fn delta_add_vertex(&mut self) -> VertexId {
        self.add_vertex()
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.add_edge(u, v)
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.remove_edge(u, v)
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.is_vertex(v) {
            return None;
        }
        let degree = self.degree(v);
        self.remove_vertex(v);
        Some(degree)
    }
}

/// An ordered batch of [`GraphDelta`]s applied atomically between
/// repartitioning rounds (or supersteps).
///
/// Deltas apply **in the order they were scheduled**; there is no
/// adds-before-removals regrouping. Placeholder indices returned by
/// [`UpdateBatch::add_vertex`] are stable under [`UpdateBatch::extend`]
/// (the appended batch's placeholders are offset).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateBatch {
    deltas: Vec<GraphDelta>,
    /// Count of `AddVertex` deltas, for placeholder accounting.
    num_new: usize,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a new vertex attached to `neighbors` (existing ids).
    /// Returns its placeholder index within this batch.
    pub fn add_vertex(&mut self, neighbors: Vec<VertexId>) -> usize {
        self.deltas.push(GraphDelta::AddVertex { neighbors });
        self.num_new += 1;
        self.num_new - 1
    }

    /// Schedules an edge between two vertices added earlier in *this*
    /// batch, by placeholder index.
    ///
    /// # Panics
    ///
    /// Panics if either placeholder has not been returned by
    /// [`UpdateBatch::add_vertex`] on this batch yet.
    pub fn connect_new(&mut self, a: usize, b: usize) {
        assert!(
            a < self.num_new && b < self.num_new,
            "placeholder out of range: ({a}, {b}) with {} new vertices",
            self.num_new
        );
        self.deltas.push(GraphDelta::ConnectNew { a, b });
    }

    /// Schedules an edge between existing vertices.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        self.deltas.push(GraphDelta::AddEdge { u, v });
    }

    /// Schedules an edge removal.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) {
        self.deltas.push(GraphDelta::RemoveEdge { u, v });
    }

    /// Schedules a vertex removal.
    pub fn remove_vertex(&mut self, v: VertexId) {
        self.deltas.push(GraphDelta::RemoveVertex { vertex: v });
    }

    /// Appends a raw delta.
    ///
    /// # Panics
    ///
    /// Panics if a [`GraphDelta::ConnectNew`] references a placeholder this
    /// batch has not allocated yet.
    pub fn push(&mut self, delta: GraphDelta) {
        match delta {
            GraphDelta::AddVertex { neighbors } => {
                self.add_vertex(neighbors);
            }
            GraphDelta::ConnectNew { a, b } => self.connect_new(a, b),
            other => self.deltas.push(other),
        }
    }

    /// The scheduled deltas, in application order.
    pub fn deltas(&self) -> &[GraphDelta] {
        &self.deltas
    }

    /// Number of scheduled deltas.
    pub fn len(&self) -> usize {
        self.deltas.len()
    }

    /// Whether the batch schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Number of scheduled vertex additions.
    pub fn num_new_vertices(&self) -> usize {
        self.num_new
    }

    /// Number of scheduled vertex removals.
    pub fn num_vertex_removals(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| matches!(d, GraphDelta::RemoveVertex { .. }))
            .count()
    }

    /// Number of scheduled edge additions (`AddEdge` and `ConnectNew`
    /// events plus new vertices' initial neighbour entries).
    pub fn num_edge_additions(&self) -> usize {
        self.deltas
            .iter()
            .map(|d| match d {
                GraphDelta::AddVertex { neighbors } => neighbors.len(),
                GraphDelta::ConnectNew { .. } | GraphDelta::AddEdge { .. } => 1,
                _ => 0,
            })
            .sum()
    }

    /// Number of scheduled edge removals (vertex removals not included —
    /// how many edges those drop depends on the graph at apply time).
    pub fn num_edge_removals(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| matches!(d, GraphDelta::RemoveEdge { .. }))
            .count()
    }

    /// Appends `other` after this batch, **in place**: the receiver's
    /// buffer is extended (no clone, no rebuild), and `other`'s placeholder
    /// indices are offset past this batch's vertex additions so every
    /// `ConnectNew` keeps naming the vertices it named before.
    pub fn extend(&mut self, mut other: UpdateBatch) {
        let offset = self.num_new;
        if offset > 0 {
            for delta in &mut other.deltas {
                if let GraphDelta::ConnectNew { a, b } = delta {
                    *a += offset;
                    *b += offset;
                }
            }
        }
        self.num_new += other.num_new;
        self.deltas.append(&mut other.deltas);
    }

    /// Applies the batch to any [`DeltaTarget`], in scheduled order, and
    /// reports what changed.
    ///
    /// This is the **only** application loop: the partitioner's and the
    /// engine's batch paths both run through it. Application is
    /// deterministic: the same batch applied to structurally equal targets
    /// produces structurally equal targets and identical reports. Deltas
    /// that change nothing are counted as rejected, never errors.
    pub fn apply_to<T: DeltaTarget + ?Sized>(&self, target: &mut T) -> ApplyReport {
        let mut report = ApplyReport::default();
        let mut new_ids: Vec<VertexId> = Vec::with_capacity(self.num_new);
        for delta in &self.deltas {
            match delta {
                GraphDelta::AddVertex { neighbors } => {
                    let v = target.delta_add_vertex();
                    new_ids.push(v);
                    report.new_vertices.push(v);
                    for &w in neighbors {
                        if target.delta_add_edge(v, w) {
                            report.edges_added += 1;
                        } else {
                            report.rejected += 1;
                        }
                    }
                }
                GraphDelta::ConnectNew { a, b } => {
                    // Out-of-range placeholders cannot be built through the
                    // batch API, but a log that bypassed it (hand-edited,
                    // externally produced) must reject, not panic.
                    match (new_ids.get(*a), new_ids.get(*b)) {
                        (Some(&x), Some(&y)) if target.delta_add_edge(x, y) => {
                            report.edges_added += 1;
                        }
                        _ => report.rejected += 1,
                    }
                }
                GraphDelta::AddEdge { u, v } => {
                    if target.delta_add_edge(*u, *v) {
                        report.edges_added += 1;
                    } else {
                        report.rejected += 1;
                    }
                }
                GraphDelta::RemoveEdge { u, v } => {
                    if target.delta_remove_edge(*u, *v) {
                        report.edges_removed += 1;
                    } else {
                        report.rejected += 1;
                    }
                }
                GraphDelta::RemoveVertex { vertex } => match target.delta_remove_vertex(*vertex) {
                    Some(dropped_edges) => {
                        report.vertices_removed += 1;
                        report.edges_removed += dropped_edges;
                    }
                    None => report.rejected += 1,
                },
            }
        }
        report
    }

    /// Applies the batch to a bare graph — [`UpdateBatch::apply_to`] with
    /// `graph` as the target.
    pub fn apply(&self, graph: &mut DynGraph) -> ApplyReport {
        self.apply_to(graph)
    }
}

impl From<GraphDelta> for UpdateBatch {
    /// A single-delta batch. `ConnectNew` is batch-scoped and meaningless
    /// alone, so it panics here like it would in [`UpdateBatch::push`].
    fn from(delta: GraphDelta) -> Self {
        let mut batch = UpdateBatch::new();
        batch.push(delta);
        batch
    }
}

/// A recorded sequence of [`UpdateBatch`]es.
///
/// Because batch application is deterministic, replaying a log onto a
/// fresh graph with the same initial population reproduces the original
/// graph exactly — the foundation for snapshots, replication, and
/// reproducible dynamic-workload experiments.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeltaLog {
    batches: Vec<UpdateBatch>,
}

impl DeltaLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch at the end of the log.
    pub fn record(&mut self, batch: UpdateBatch) {
        self.batches.push(batch);
    }

    /// The recorded batches, oldest first.
    pub fn batches(&self) -> &[UpdateBatch] {
        &self.batches
    }

    /// Number of recorded batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total deltas across all recorded batches.
    pub fn total_deltas(&self) -> usize {
        self.batches.iter().map(UpdateBatch::len).sum()
    }

    /// Removes and returns the oldest `n` batches (clamped to the length),
    /// leaving the tail in place — the truncation half of log compaction:
    /// the drained prefix gets folded into a snapshot, the remainder stays
    /// as the live segment.
    pub fn split_front(&mut self, n: usize) -> Vec<UpdateBatch> {
        let n = n.min(self.batches.len());
        self.batches.drain(..n).collect()
    }

    /// Unwraps into the recorded batches, oldest first.
    pub fn into_batches(self) -> Vec<UpdateBatch> {
        self.batches
    }

    /// Replays every batch, in order, onto `graph`; returns the merged
    /// report.
    pub fn replay(&self, graph: &mut DynGraph) -> ApplyReport {
        let mut total = ApplyReport::default();
        for batch in &self.batches {
            total.merge(&batch.apply(graph));
        }
        total
    }
}

impl From<Vec<UpdateBatch>> for DeltaLog {
    /// A log over an existing batch sequence (oldest first).
    fn from(batches: Vec<UpdateBatch>) -> Self {
        DeltaLog { batches }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn applies_in_scheduled_order() {
        let mut g = DynGraph::with_vertices(3);
        g.add_edge(0, 1);
        let mut batch = UpdateBatch::new();
        batch.remove_edge(0, 1);
        batch.add_edge(0, 1); // re-add after removal: order matters
        let report = batch.apply(&mut g);
        assert_eq!(report.edges_removed, 1);
        assert_eq!(report.edges_added, 1);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn placeholders_resolve_to_assigned_ids() {
        let mut g = DynGraph::with_vertices(2);
        let mut batch = UpdateBatch::new();
        let a = batch.add_vertex(vec![0]);
        let b = batch.add_vertex(vec![]);
        batch.connect_new(a, b);
        let report = batch.apply(&mut g);
        assert_eq!(report.new_vertices, vec![2, 3]);
        assert!(g.has_edge(2, 3));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn rejects_are_counted_not_fatal() {
        let mut g = DynGraph::with_vertices(3);
        g.remove_vertex(2);
        let mut batch = UpdateBatch::new();
        batch.add_edge(0, 2); // dead endpoint
        batch.add_edge(0, 0); // self loop
        batch.remove_edge(0, 1); // absent edge
        batch.remove_vertex(2); // already dead
        batch.add_vertex(vec![0, 2]); // one live, one dead neighbour
        let report = batch.apply(&mut g);
        assert_eq!(report.rejected, 5);
        assert_eq!(report.edges_added, 1);
        assert_eq!(report.new_vertices.len(), 1);
    }

    #[test]
    fn remove_vertex_counts_dropped_edges() {
        let mut g = DynGraph::with_vertices(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(0, 3);
        let mut batch = UpdateBatch::new();
        batch.remove_vertex(0);
        let report = batch.apply(&mut g);
        assert_eq!(report.vertices_removed, 1);
        assert_eq!(report.edges_removed, 3);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_appends_in_place_and_offsets_placeholders() {
        let mut first = UpdateBatch::new();
        first.add_vertex(vec![]);
        let mut second = UpdateBatch::new();
        let x = second.add_vertex(vec![]);
        let y = second.add_vertex(vec![]);
        second.connect_new(x, y);
        first.extend(second);
        assert_eq!(first.num_new_vertices(), 3);
        assert_eq!(
            first.deltas().last(),
            Some(&GraphDelta::ConnectNew { a: 1, b: 2 })
        );
        // The offset placeholders connect the *second* batch's vertices.
        let mut g = DynGraph::new();
        let report = first.apply(&mut g);
        assert_eq!(report.new_vertices, vec![0, 1, 2]);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn extend_appends_without_rebuilding_the_receiver() {
        let mut first = UpdateBatch::new();
        for v in 0..8 {
            first.add_edge(v, v + 1);
        }
        // With reserved spare capacity, Vec guarantees the buffer does not
        // move on append — so a moved pointer would mean extend rebuilt or
        // cloned the receiver's buffer instead of appending in place.
        first.deltas.reserve(16);
        let head_before = first.deltas.as_ptr();
        let mut second = UpdateBatch::new();
        second.remove_edge(0, 1);
        second.add_vertex(vec![0]);
        first.extend(second);
        assert_eq!(first.deltas.as_ptr(), head_before);
        assert_eq!(first.len(), 10);
    }

    #[test]
    #[should_panic(expected = "placeholder out of range")]
    fn connect_new_validates_placeholders() {
        let mut batch = UpdateBatch::new();
        batch.connect_new(0, 1);
    }

    #[test]
    fn counts_summarise_composition() {
        let mut batch = UpdateBatch::new();
        let a = batch.add_vertex(vec![1, 2]);
        let b = batch.add_vertex(vec![]);
        batch.connect_new(a, b);
        batch.add_edge(3, 4);
        batch.remove_edge(5, 6);
        batch.remove_vertex(7);
        assert_eq!(batch.num_new_vertices(), 2);
        assert_eq!(batch.num_vertex_removals(), 1);
        assert_eq!(batch.num_edge_additions(), 4);
        assert_eq!(batch.num_edge_removals(), 1);
        assert_eq!(batch.len(), 6);
    }

    #[test]
    fn log_replay_reproduces_graph() {
        let mut live = DynGraph::with_vertices(4);
        let mut log = DeltaLog::new();

        let mut b1 = UpdateBatch::new();
        b1.add_edge(0, 1);
        b1.add_vertex(vec![0, 2]);
        b1.apply(&mut live);
        log.record(b1);

        let mut b2 = UpdateBatch::new();
        b2.remove_vertex(1);
        b2.add_vertex(vec![4]);
        b2.apply(&mut live);
        log.record(b2);

        let mut fresh = DynGraph::with_vertices(4);
        let report = log.replay(&mut fresh);
        assert_eq!(fresh, live);
        assert_eq!(report.new_vertices, vec![4, 5]);
        assert_eq!(log.total_deltas(), 4);
    }

    #[test]
    fn single_delta_batch_via_from() {
        let batch = UpdateBatch::from(GraphDelta::AddEdge { u: 0, v: 1 });
        let mut g = DynGraph::with_vertices(2);
        assert_eq!(batch.apply(&mut g).edges_added, 1);
    }
}
