//! Structural diffs between two [`DynGraph`] states — the graph slice of
//! the workspace's incremental (delta-encoded) checkpoints.
//!
//! A [`GraphDiff`] captures *current* against *base* as the set of slots
//! whose liveness or adjacency changed, plus the slot-space growth and
//! the resulting bookkeeping totals. Each changed slot carries only its
//! **added and removed neighbours** relative to the base — not its full
//! final list — so a degree-30 vertex that gained one edge costs two
//! varints, not thirty-one. That is what keeps the encoding
//! O(changed-edges) under churn that touches most slots shallowly, the
//! common streaming regime. Computing one is O(changed + their degrees)
//! given the changed-slot set that mutation paths track anyway (see
//! `apg_exec::ChangedSet`), and applying one to a copy of the base
//! reproduces the current graph exactly — including tombstone slots, so
//! the never-reused id space stays aligned.
//!
//! # Trust boundary
//!
//! Diffs are decoded from disk, so [`GraphDiff::apply_to`] runs a full
//! read-only resolution pass *before* mutating anything: slot bounds,
//! ascending adjacency, added edges absent from (and removed edges
//! present in) the base, symmetry of every added and removed edge in the
//! final state, tombstone rules, and the edge/live-count cross-check. A
//! rejected diff leaves the base graph untouched.
//!
//! # Example
//!
//! ```
//! use apg_graph::{DynGraph, Graph, GraphDiff};
//!
//! let mut base = DynGraph::with_vertices(3);
//! base.add_edge(0, 1);
//! let mut current = base.clone();
//! current.add_edge(1, 2);
//! let v = current.add_vertex();
//! current.add_edge(0, v);
//!
//! let diff = GraphDiff::between(&base, &current, &[0, 1, 2, v as usize]);
//! let mut replayed = base.clone();
//! diff.apply_to(&mut replayed).unwrap();
//! assert_eq!(replayed, current);
//! ```

use apg_persist::{decode_len, Decode, DecodeError, Decoder, Encode, Encoder};

use crate::dynamic::DynGraph;
use crate::types::{Graph, VertexId};

/// One changed slot: its final liveness and its adjacency edits relative
/// to the base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDiff {
    /// The vertex slot this entry edits.
    pub slot: usize,
    /// Whether the slot is live in the final state.
    pub alive: bool,
    /// Neighbours gained since the base, strictly ascending. Must be
    /// disjoint from the base's list (an edge cannot be added twice).
    pub added: Vec<VertexId>,
    /// Neighbours lost since the base, strictly ascending. Every entry
    /// must appear in the base's list.
    pub removed: Vec<VertexId>,
}

/// A changed slot with its final neighbour list materialised — what the
/// resolution pass hands to the infallible mutation pass.
pub(crate) struct ResolvedSlot {
    pub(crate) slot: usize,
    pub(crate) alive: bool,
    pub(crate) neighbors: Vec<VertexId>,
}

/// A structural delta from a base [`DynGraph`] to a current one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphDiff {
    /// Slot count of the final state (never below the base's — ids are
    /// never reused, so the slot space only grows).
    pub new_slots: usize,
    /// Live-vertex count of the final state (cross-checked on apply).
    pub new_live: usize,
    /// Edge count of the final state (cross-checked on apply).
    pub new_edges: usize,
    /// Changed slots, strictly ascending by slot. Every newborn slot
    /// (`>= base` slot count) must appear here.
    pub changed: Vec<SlotDiff>,
}

impl GraphDiff {
    /// Computes the diff from `base` to `current`, given a sorted,
    /// deduplicated superset of the slots that may have changed
    /// (typically a drained `ChangedSet`). Slots whose state is in fact
    /// identical are filtered out, so conservative over-marking costs
    /// bytes never correctness; newborn slots missing from `candidates`
    /// are picked up unconditionally.
    ///
    /// # Panics
    ///
    /// Panics if `current` has fewer slots than `base` (ids are never
    /// reused) or `candidates` is not strictly ascending.
    pub fn between(base: &DynGraph, current: &DynGraph, candidates: &[usize]) -> GraphDiff {
        let base_n = base.num_vertices();
        let cur_n = current.num_vertices();
        assert!(cur_n >= base_n, "current graph lost slots");
        debug_assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "candidate slots not strictly ascending"
        );
        let mut changed = Vec::new();
        let mut push_if_changed = |slot: usize| {
            debug_assert!(slot < cur_n, "candidate slot {slot} out of range");
            let cur_alive = current.is_vertex(slot as VertexId);
            let cur_list = current.neighbors(slot as VertexId);
            let (base_alive, base_list): (bool, &[VertexId]) = if slot < base_n {
                (
                    base.is_vertex(slot as VertexId),
                    base.neighbors(slot as VertexId),
                )
            } else {
                (false, &[])
            };
            // Two-pointer walk over the sorted lists: what the base has
            // and the current lacks was removed, the converse added.
            let mut added = Vec::new();
            let mut removed = Vec::new();
            let (mut i, mut j) = (0, 0);
            while i < base_list.len() && j < cur_list.len() {
                match base_list[i].cmp(&cur_list[j]) {
                    std::cmp::Ordering::Less => {
                        removed.push(base_list[i]);
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        added.push(cur_list[j]);
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                    }
                }
            }
            removed.extend_from_slice(&base_list[i..]);
            added.extend_from_slice(&cur_list[j..]);
            if slot < base_n && cur_alive == base_alive && added.is_empty() && removed.is_empty() {
                return;
            }
            changed.push(SlotDiff {
                slot,
                alive: cur_alive,
                added,
                removed,
            });
        };
        let mut newborn = base_n..cur_n;
        let mut next_newborn = newborn.next();
        for &slot in candidates {
            // Merge in any newborn slots the candidate list skipped.
            while let Some(nb) = next_newborn {
                if nb >= slot {
                    break;
                }
                push_if_changed(nb);
                next_newborn = newborn.next();
            }
            if next_newborn == Some(slot) {
                next_newborn = newborn.next();
            }
            push_if_changed(slot);
        }
        while let Some(nb) = next_newborn {
            push_if_changed(nb);
            next_newborn = newborn.next();
        }
        GraphDiff {
            new_slots: cur_n,
            new_live: current.num_live_vertices(),
            new_edges: current.num_edges(),
            changed,
        }
    }

    /// Whether the diff rewrites no slots (the bookkeeping totals then
    /// necessarily match the base's).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Resolves every changed slot's final neighbour list against `base`,
    /// validating the full invariant list along the way. This is the
    /// trust boundary: nothing escapes un-checked, and the caller gets
    /// materialised lists the mutation pass can install infallibly.
    fn resolve_against(&self, base: &DynGraph) -> Result<Vec<ResolvedSlot>, DecodeError> {
        let base_n = base.num_vertices();
        if self.new_slots < base_n {
            return Err(DecodeError::Corrupt("graph diff shrinks the slot space"));
        }
        // Changed slots: strictly ascending, in range.
        let mut prev: Option<usize> = None;
        for entry in &self.changed {
            if entry.slot >= self.new_slots {
                return Err(DecodeError::Corrupt("diff slot out of range"));
            }
            if prev.is_some_and(|p| p >= entry.slot) {
                return Err(DecodeError::Corrupt("diff slots not strictly ascending"));
            }
            prev = Some(entry.slot);
        }
        let entry_index = |slot: usize| -> Option<usize> {
            self.changed.binary_search_by_key(&slot, |e| e.slot).ok()
        };
        // Every newborn slot must be described by the diff (its liveness
        // and adjacency are otherwise unknowable).
        for slot in base_n..self.new_slots {
            if entry_index(slot).is_none() {
                return Err(DecodeError::Corrupt("newborn slot missing from the diff"));
            }
        }
        // First pass: per-slot local checks, and materialise each changed
        // slot's final list by merging the base list with the edits.
        let mut resolved = Vec::with_capacity(self.changed.len());
        let mut degree_delta: i64 = 0;
        let mut live_delta: i64 = 0;
        for entry in &self.changed {
            let slot = entry.slot;
            let base_alive = slot < base_n && base.is_vertex(slot as VertexId);
            let base_list: &[VertexId] = if slot < base_n {
                base.neighbors(slot as VertexId)
            } else {
                &[]
            };
            if slot < base_n && !base_alive && entry.alive {
                return Err(DecodeError::Corrupt(
                    "diff resurrects a tombstone (ids are never reused)",
                ));
            }
            let ascending = |list: &[VertexId]| list.windows(2).all(|w| w[0] < w[1]);
            if !ascending(&entry.added) || !ascending(&entry.removed) {
                return Err(DecodeError::Corrupt(
                    "diff adjacency edits not strictly ascending",
                ));
            }
            for &w in &entry.added {
                let wi = w as usize;
                if wi >= self.new_slots {
                    return Err(DecodeError::Corrupt("diff adjacency endpoint out of range"));
                }
                if wi == slot {
                    return Err(DecodeError::Corrupt("diff adjacency holds a self loop"));
                }
                if base_list.binary_search(&w).is_ok() {
                    return Err(DecodeError::Corrupt(
                        "diff adds an edge the base already has",
                    ));
                }
            }
            for &w in &entry.removed {
                if base_list.binary_search(&w).is_err() {
                    return Err(DecodeError::Corrupt(
                        "diff removes an edge the base does not have",
                    ));
                }
            }
            // Merge: (base \ removed) ∪ added. Both edit lists are sorted
            // and anchored to the base list, so the result stays strictly
            // ascending without re-sorting.
            let mut neighbors =
                Vec::with_capacity(base_list.len() + entry.added.len() - entry.removed.len());
            let mut removed_it = entry.removed.iter().peekable();
            let mut added_it = entry.added.iter().peekable();
            for &w in base_list {
                if removed_it.peek() == Some(&&w) {
                    removed_it.next();
                    continue;
                }
                while let Some(&&a) = added_it.peek() {
                    if a < w {
                        neighbors.push(a);
                        added_it.next();
                    } else {
                        break;
                    }
                }
                neighbors.push(w);
            }
            neighbors.extend(added_it.copied());
            if !entry.alive && !neighbors.is_empty() {
                return Err(DecodeError::Corrupt("dead diff slot retains adjacency"));
            }
            degree_delta += entry.added.len() as i64 - entry.removed.len() as i64;
            live_delta += i64::from(entry.alive) - i64::from(base_alive);
            resolved.push(ResolvedSlot {
                slot,
                alive: entry.alive,
                neighbors,
            });
        }
        // Second pass: cross-slot checks against the final state. Edges
        // untouched by any edit stay symmetric because the base was; only
        // the edited ones need their counterpart verified.
        let final_alive = |slot: usize| -> bool {
            match entry_index(slot) {
                Some(i) => resolved[i].alive,
                None => base.is_vertex(slot as VertexId),
            }
        };
        let final_has = |slot: usize, w: VertexId| -> bool {
            match entry_index(slot) {
                Some(i) => resolved[i].neighbors.binary_search(&w).is_ok(),
                None => base.neighbors(slot as VertexId).binary_search(&w).is_ok(),
            }
        };
        for entry in &self.changed {
            let v = entry.slot as VertexId;
            for &w in &entry.added {
                if !final_alive(w as usize) {
                    return Err(DecodeError::Corrupt(
                        "diff adjacency endpoint is dead in the final state",
                    ));
                }
                if !final_has(w as usize, v) {
                    return Err(DecodeError::Corrupt("diff adjacency is asymmetric"));
                }
            }
            // Removed-edge closure: the other endpoint must drop the edge
            // too, or it would retain the asymmetric half.
            for &w in &entry.removed {
                if final_has(w as usize, v) {
                    return Err(DecodeError::Corrupt(
                        "removed edge's other endpoint missing from the diff",
                    ));
                }
            }
        }
        // Both endpoints of every added and removed edge record the edit
        // (the symmetry + closure checks above), so the summed degree
        // delta counts each exactly twice.
        if degree_delta % 2 != 0 {
            return Err(DecodeError::Corrupt("diff edge accounting is inconsistent"));
        }
        let expected_edges = base.num_edges() as i64 + degree_delta / 2;
        if expected_edges != self.new_edges as i64 {
            return Err(DecodeError::Corrupt(
                "diff edge count does not match its adjacency",
            ));
        }
        let expected_live = base.num_live_vertices() as i64 + live_delta;
        if expected_live != self.new_live as i64 {
            return Err(DecodeError::Corrupt(
                "diff live count does not match its liveness flags",
            ));
        }
        Ok(resolved)
    }

    /// Validates the diff against `base` without mutating it. See the
    /// [module docs](self) for the full check list.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Corrupt`] naming the violated invariant.
    pub fn validate_against(&self, base: &DynGraph) -> Result<(), DecodeError> {
        self.resolve_against(base).map(|_| ())
    }

    /// Applies the diff to `base`, turning it into the final state.
    ///
    /// Resolution (validation + final-list materialisation) runs first
    /// and the mutation pass is infallible, so a rejected diff leaves
    /// `base` exactly as it was.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Corrupt`] from the resolution pass.
    pub fn apply_to(&self, base: &mut DynGraph) -> Result<(), DecodeError> {
        let resolved = self.resolve_against(base)?;
        base.apply_validated_diff(self.new_slots, &resolved, self.new_live, self.new_edges);
        Ok(())
    }
}

impl Encode for SlotDiff {
    fn encode(&self, enc: &mut Encoder) {
        self.slot.encode(enc);
        self.alive.encode(enc);
        self.added.encode(enc);
        self.removed.encode(enc);
    }
}

impl Decode for SlotDiff {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SlotDiff {
            slot: usize::decode(dec)?,
            alive: bool::decode(dec)?,
            added: Vec::decode(dec)?,
            removed: Vec::decode(dec)?,
        })
    }
}

impl Encode for GraphDiff {
    fn encode(&self, enc: &mut Encoder) {
        self.new_slots.encode(enc);
        self.new_live.encode(enc);
        self.new_edges.encode(enc);
        self.changed.encode(enc);
    }
}

impl Decode for GraphDiff {
    /// Structural validation that needs the base graph lives in
    /// [`GraphDiff::validate_against`]; decoding checks only what the
    /// bytes alone can prove.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let new_slots = usize::decode(dec)?;
        let new_live = usize::decode(dec)?;
        let new_edges = usize::decode(dec)?;
        let len = decode_len(dec, 4)?;
        let mut changed = Vec::with_capacity(len.min(dec.remaining()));
        for _ in 0..len {
            changed.push(SlotDiff::decode(dec)?);
        }
        Ok(GraphDiff {
            new_slots,
            new_live,
            new_edges,
            changed,
        })
    }
}
