//! Streaming ingestion: batched graph updates interleaved with
//! repartitioning rounds.
//!
//! This is the paper's operating loop made explicit: a stream of buffered
//! [`UpdateBatch`]es lands on the graph, and between batches the adaptive
//! heuristic iterates to absorb the change. [`StreamingRunner`] owns an
//! [`AdaptivePartitioner`], pulls batches from any
//! [`StreamSource`], applies them through the
//! shared delta model (incremental cut maintained across every delta), runs
//! the per-batch iteration budget, and records one [`TimelineStats`] entry
//! per batch.
//!
//! The budget is *adaptive*: each batch is charged the full
//! `iterations_per_batch`, but once the active set drains below the
//! configured floor ([`AdaptiveConfig::drain_floor`]) the remaining
//! iterations are skipped and fast-forwarded instead of executed — budget
//! goes where the batch landed. At the default floor of `0.0` (stop only
//! when fully drained) every skipped iteration is provably a no-op, so the
//! recorded timeline is byte-identical to a fixed-budget run
//! ([`AdaptiveConfig::budget_fixed`] forces that mode for comparison).
//!
//! [`AdaptiveConfig::drain_floor`]: crate::AdaptiveConfig::drain_floor
//! [`AdaptiveConfig::budget_fixed`]: crate::AdaptiveConfig::budget_fixed
//!
//! # Determinism
//!
//! Delta application and the quota merge are single-threaded and ordered;
//! only the decision sweep fans out. For a fixed seed the timeline is
//! therefore identical at every [`AdaptiveConfig::parallelism`] level —
//! wall-clock aside, which is why [`TimelineStats`] equality deliberately
//! ignores it.
//!
//! [`AdaptiveConfig::parallelism`]: crate::AdaptiveConfig::parallelism
//!
//! # Example
//!
//! ```
//! use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
//! use apg_graph::DynGraph;
//! use apg_partition::InitialStrategy;
//! use apg_streams::{CdrConfig, CdrStream};
//!
//! let config = CdrConfig { initial_subscribers: 500, ..CdrConfig::default() };
//! let mut stream = CdrStream::new(config, 7);
//! let graph = DynGraph::with_vertices(config.initial_subscribers);
//! let partitioner = AdaptivePartitioner::with_strategy(
//!     &graph,
//!     InitialStrategy::Hash,
//!     &AdaptiveConfig::new(4),
//!     7,
//! );
//! let mut runner = StreamingRunner::new(partitioner).iterations_per_batch(3);
//! let consumed = runner.drive(&mut stream, 10);
//! assert_eq!(consumed, 10);
//! assert_eq!(runner.timeline().len(), 10);
//! ```

use std::time::Instant;

use serde::{Deserialize, Serialize};

use apg_graph::{ApplyReport, DeltaLog, UpdateBatch};
use apg_serve::{QueryRouter, QueryWorkload, ServeStats};
use apg_streams::StreamSource;

use crate::partitioner::AdaptivePartitioner;
use crate::runner::ConvergenceReport;

/// Per-batch observables of a streaming run.
///
/// Everything except `wall_ms` is a pure function of the seed, the stream,
/// and the configuration — the determinism contract. `wall_ms` is a
/// measurement of the host, so **equality ignores it**: two timelines
/// compare equal iff every deterministic field matches.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TimelineStats {
    /// Batch index within the run (0-based).
    pub batch: usize,
    /// Deltas the batch scheduled.
    pub deltas: usize,
    /// Vertices the batch added.
    pub vertices_added: usize,
    /// Vertices the batch removed.
    pub vertices_removed: usize,
    /// Edges the batch added.
    pub edges_added: usize,
    /// Edges the batch removed (vertex-removal casualties included).
    pub edges_removed: usize,
    /// Cut edges before the batch landed.
    pub cut_before: usize,
    /// Cut edges right after ingestion, before any repartitioning.
    pub cut_after_ingest: usize,
    /// Cut edges after this batch's repartitioning iterations.
    pub cut_after: usize,
    /// Vertices migrated by this batch's iterations.
    pub migrations: usize,
    /// Repartitioning iterations run for this batch.
    pub iterations: usize,
    /// Live vertices after the batch.
    pub live_vertices: usize,
    /// Edges after the batch.
    pub num_edges: usize,
    /// Wall-clock for ingest + iterations, milliseconds. Measurement, not
    /// state: ignored by `==`.
    pub wall_ms: f64,
}

impl TimelineStats {
    /// Cut ratio after the batch's iterations (0 for edgeless graphs).
    pub fn cut_ratio_after(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_after as f64 / self.num_edges as f64
        }
    }

    /// Cut ratio right after ingestion, before the batch's iterations (0
    /// for edgeless graphs) — the spike the repartitioning rounds then
    /// work off.
    pub fn cut_ratio_after_ingest(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_after_ingest as f64 / self.num_edges as f64
        }
    }

    /// The deterministic fields, as a fixed-order array (fingerprinting,
    /// equality, and test diagnostics all key off this).
    pub fn deterministic_fields(&self) -> [usize; 13] {
        [
            self.batch,
            self.deltas,
            self.vertices_added,
            self.vertices_removed,
            self.edges_added,
            self.edges_removed,
            self.cut_before,
            self.cut_after_ingest,
            self.cut_after,
            self.migrations,
            self.iterations,
            self.live_vertices,
            self.num_edges,
        ]
    }
}

impl PartialEq for TimelineStats {
    /// Deterministic fields only — `wall_ms` is measurement noise.
    fn eq(&self, other: &Self) -> bool {
        self.deterministic_fields() == other.deterministic_fields()
    }
}

impl Eq for TimelineStats {}

/// Seed for the rolling timeline digest: the FNV-1a 64-bit offset basis.
/// A runner that has evicted nothing carries exactly this value.
pub const TIMELINE_DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// Folds one evicted [`TimelineStats`] entry into the rolling digest:
/// FNV-1a over the little-endian bytes of every deterministic field, in
/// [`TimelineStats::deterministic_fields`] order (`wall_ms` excluded — the
/// digest must be reproducible across hosts and resumes).
///
/// The digest is how a bounded timeline keeps the full-history equality
/// contract: two runs whose retained suffixes match *and* whose digests
/// match processed identical timelines, entry for entry.
pub fn fold_timeline_digest(digest: u64, stats: &TimelineStats) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut digest = digest;
    for field in stats.deterministic_fields() {
        for byte in (field as u64).to_le_bytes() {
            digest ^= u64::from(byte);
            digest = digest.wrapping_mul(FNV_PRIME);
        }
    }
    digest
}

/// The optional interleaved serving phase: a query workload served once
/// per ingested batch, with its own per-round timeline.
#[derive(Debug, Clone)]
struct ServePhase {
    workload: QueryWorkload,
    timeline: Vec<ServeStats>,
}

/// Drives batched ingestion through an [`AdaptivePartitioner`].
///
/// Construction is builder-style: wrap a partitioner, optionally set the
/// per-batch iteration budget, delta recording, and an interleaved
/// [serve phase](StreamingRunner::serve_workload), then feed batches with
/// [`StreamingRunner::ingest`] or pull a whole stream with
/// [`StreamingRunner::drive`].
#[derive(Debug, Clone)]
pub struct StreamingRunner {
    partitioner: AdaptivePartitioner,
    iterations_per_batch: usize,
    record: bool,
    log: DeltaLog,
    timeline: Vec<TimelineStats>,
    /// Retained timeline entries are capped at this many; older entries
    /// are folded into `timeline_digest` and dropped. `usize::MAX` means
    /// unbounded (the default — full history in memory and on disk).
    timeline_window: usize,
    /// Batches ingested over the runner's whole life, eviction-proof: the
    /// global batch counter `TimelineStats::batch` is stamped from (and
    /// the source cursor is derived from).
    batches_ingested: usize,
    /// FNV-1a fold over every evicted timeline entry, in eviction order;
    /// [`TIMELINE_DIGEST_SEED`] while nothing has been evicted.
    timeline_digest: u64,
    serve: Option<ServePhase>,
    iterations_skipped: usize,
}

impl StreamingRunner {
    /// Wraps a partitioner with the default budget of 5 iterations per
    /// batch.
    pub fn new(partitioner: AdaptivePartitioner) -> Self {
        StreamingRunner {
            partitioner,
            iterations_per_batch: 5,
            record: false,
            log: DeltaLog::new(),
            timeline: Vec::new(),
            timeline_window: usize::MAX,
            batches_ingested: 0,
            timeline_digest: TIMELINE_DIGEST_SEED,
            serve: None,
            iterations_skipped: 0,
        }
    }

    /// Sets how many repartitioning iterations run after each batch
    /// (0 = ingest only; useful when the caller owns the iteration
    /// schedule).
    pub fn iterations_per_batch(mut self, n: usize) -> Self {
        self.iterations_per_batch = n;
        self
    }

    /// Bounds the retained timeline to the most recent `window` entries.
    /// Older entries are folded — oldest first — into the
    /// [rolling digest](StreamingRunner::timeline_digest) and dropped, so
    /// checkpoints stay O(window) instead of O(stream) while the
    /// (suffix, digest, [`batches_ingested`]) triple still pins the full
    /// history byte-for-byte.
    ///
    /// The default is `usize::MAX` (keep everything). Shrinking the window
    /// on a runner that already holds more entries evicts immediately.
    ///
    /// [`batches_ingested`]: StreamingRunner::batches_ingested
    ///
    /// # Panics
    ///
    /// Panics if `window` is 0: a checkpoint must retain at least the
    /// latest entry so resume can re-anchor the stream position.
    pub fn timeline_window(mut self, window: usize) -> Self {
        assert!(window > 0, "timeline window must retain at least one entry");
        self.timeline_window = window;
        self.evict_timeline_overflow();
        self
    }

    /// Folds and drops timeline entries past the window, oldest first.
    fn evict_timeline_overflow(&mut self) {
        let excess = self.timeline.len().saturating_sub(self.timeline_window);
        if excess == 0 {
            return;
        }
        for stats in self.timeline.drain(..excess) {
            self.timeline_digest = fold_timeline_digest(self.timeline_digest, &stats);
        }
    }

    /// Enables recording every ingested batch into a [`DeltaLog`], so the
    /// run's exact mutation history can be replayed onto a fresh graph.
    pub fn record_log(mut self, yes: bool) -> Self {
        self.record = yes;
        self
    }

    /// Attaches an interleaved serving phase: after each batch's
    /// repartitioning iterations, one round of `workload` is served
    /// read-only against the fresh `(graph, partitioning)` snapshot (round
    /// index = batch index, parallelism = the partitioner's configured
    /// [`parallelism`](crate::AdaptiveConfig::parallelism)), and its
    /// [`ServeStats`] appended to [`StreamingRunner::serve_timeline`].
    ///
    /// In debug builds every serve round is followed by a full
    /// [`AdaptivePartitioner::audit`] plus active-set and cut checks,
    /// proving the read-only traversal dirtied nothing.
    ///
    /// The serve phase is *not* part of the checkpoint wire format:
    /// [resumed](crate::persist) runners come back without one, and callers
    /// that want serving after a resume re-attach it here.
    pub fn serve_workload(mut self, workload: QueryWorkload) -> Self {
        self.serve = Some(ServePhase {
            workload,
            timeline: Vec::new(),
        });
        self
    }

    /// Applies one batch, runs the per-batch iteration budget, and records
    /// + returns the batch's [`TimelineStats`].
    ///
    /// The recorded `iterations` field is the *charged* budget
    /// (`iterations_per_batch`), not the executed count: iterations the
    /// adaptive budget skips are fast-forwarded through the partitioner's
    /// counters (see [`AdaptiveConfig::drain_floor`]), so at the default
    /// floor the stats are identical whether they ran or not.
    ///
    /// [`AdaptiveConfig::drain_floor`]: crate::AdaptiveConfig::drain_floor
    pub fn ingest(&mut self, batch: &UpdateBatch) -> TimelineStats {
        let cut_before = self.partitioner.cut_edges();
        let start = Instant::now();
        let report: ApplyReport = self.partitioner.apply_batch(batch);
        let cut_after_ingest = self.partitioner.cut_edges();
        let mut migrations = 0usize;
        let mut executed = 0usize;
        while executed < self.iterations_per_batch {
            if self.budget_drained() {
                break;
            }
            migrations += self.partitioner.iterate().migrations;
            executed += 1;
        }
        let skipped = self.iterations_per_batch - executed;
        if skipped > 0 {
            self.partitioner.charge_quiet_iterations(skipped);
            self.iterations_skipped += skipped;
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        if self.record {
            self.log.record(batch.clone());
        }
        use apg_graph::Graph;
        let stats = TimelineStats {
            batch: self.batches_ingested,
            deltas: batch.len(),
            vertices_added: report.new_vertices.len(),
            vertices_removed: report.vertices_removed,
            edges_added: report.edges_added,
            edges_removed: report.edges_removed,
            cut_before,
            cut_after_ingest,
            cut_after: self.partitioner.cut_edges(),
            migrations,
            iterations: self.iterations_per_batch,
            live_vertices: self.partitioner.graph().num_live_vertices(),
            num_edges: self.partitioner.graph().num_edges(),
            wall_ms,
        };
        self.timeline.push(stats.clone());
        self.batches_ingested += 1;
        self.evict_timeline_overflow();
        self.serve_after_batch(stats.batch as u64);
        stats
    }

    /// Whether the adaptive budget should stop executing this batch's
    /// remaining iterations: the active set has drained to (or below) the
    /// configured floor. Never true in `budget_fixed` mode.
    fn budget_drained(&self) -> bool {
        use apg_graph::Graph;
        let config = self.partitioner.config();
        if config.budget_fixed {
            return false;
        }
        let live = self.partitioner.graph().num_live_vertices();
        let floor = (config.drain_floor * live as f64) as usize;
        self.partitioner.num_active_vertices() <= floor
    }

    /// Serves one workload round against the post-batch snapshot (no-op
    /// without an attached serve phase). In debug builds, proves serving
    /// left the partitioner untouched.
    fn serve_after_batch(&mut self, round: u64) {
        let Some(phase) = self.serve.as_mut() else {
            return;
        };
        let partitioner = &self.partitioner;
        #[cfg(debug_assertions)]
        let (active_before, cut_before) =
            (partitioner.num_active_vertices(), partitioner.cut_edges());
        let router = QueryRouter::new(partitioner.graph(), partitioner.partitioning());
        let stats = router.serve_round(&phase.workload, round, partitioner.config().parallelism);
        phase.timeline.push(stats);
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                active_before,
                partitioner.num_active_vertices(),
                "serve round {round} dirtied the active set"
            );
            debug_assert_eq!(
                cut_before,
                partitioner.cut_edges(),
                "serve round {round} moved the cut"
            );
            partitioner.audit();
        }
    }

    /// The per-round serving timeline, oldest first (empty when no
    /// [workload is attached](StreamingRunner::serve_workload)).
    pub fn serve_timeline(&self) -> &[ServeStats] {
        self.serve.as_ref().map_or(&[], |phase| &phase.timeline)
    }

    /// The attached serve workload, if any.
    pub fn serve_workload_ref(&self) -> Option<&QueryWorkload> {
        self.serve.as_ref().map(|phase| &phase.workload)
    }

    /// Pulls and ingests up to `max_batches` batches from `source`;
    /// returns how many were consumed (fewer only if the stream ended).
    pub fn drive<S: StreamSource>(&mut self, source: &mut S, max_batches: usize) -> usize {
        for consumed in 0..max_batches {
            match source.next_batch() {
                Some(batch) => {
                    self.ingest(&batch);
                }
                None => return consumed,
            }
        }
        max_batches
    }

    /// Runs the partitioner to convergence on the current graph (e.g.
    /// after the stream ends), returning the standard report.
    pub fn run_to_convergence(&mut self) -> ConvergenceReport {
        self.partitioner.run_to_convergence()
    }

    /// The retained per-batch timeline, oldest first. With an unbounded
    /// [window](StreamingRunner::timeline_window) (the default) this is
    /// the whole run; with a bounded one it is the most recent `window`
    /// entries (earlier ones live on in the
    /// [digest](StreamingRunner::timeline_digest)).
    pub fn timeline(&self) -> &[TimelineStats] {
        &self.timeline
    }

    /// The timeline retention cap (`usize::MAX` = unbounded).
    pub fn timeline_window_len(&self) -> usize {
        self.timeline_window
    }

    /// Batches ingested over the runner's whole life — the stream
    /// position, independent of how many timeline entries are retained.
    pub fn batches_ingested(&self) -> usize {
        self.batches_ingested
    }

    /// The rolling FNV-1a digest over every evicted timeline entry
    /// ([`TIMELINE_DIGEST_SEED`] while nothing has been evicted). Together
    /// with the retained suffix and [`batches_ingested`], this pins the
    /// full per-batch history: equality of the triple implies the two runs
    /// recorded identical `TimelineStats` for every batch ever ingested.
    ///
    /// [`batches_ingested`]: StreamingRunner::batches_ingested
    pub fn timeline_digest(&self) -> u64 {
        self.timeline_digest
    }

    /// How many timeline entries have been evicted into the digest.
    pub fn timeline_evicted(&self) -> usize {
        self.batches_ingested - self.timeline.len()
    }

    /// The per-batch iteration budget currently in effect.
    pub fn iterations_budget(&self) -> usize {
        self.iterations_per_batch
    }

    /// Total budgeted iterations the adaptive budget skipped (rather than
    /// executed) across the run so far — 0 in
    /// [`budget_fixed`](crate::AdaptiveConfig::budget_fixed) mode or when
    /// no batch drained early. Skipped iterations are still charged to the
    /// partitioner's iteration counter and to each batch's recorded
    /// `iterations`, so this is pure wall-clock savings, not a history
    /// change.
    pub fn iterations_skipped(&self) -> usize {
        self.iterations_skipped
    }

    /// Whether ingested batches are recorded into the replay log.
    pub fn records_log(&self) -> bool {
        self.record
    }

    /// Reassembles a runner from checkpointed parts (resume path; see
    /// [`crate::persist`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_checkpoint_parts(
        partitioner: AdaptivePartitioner,
        iterations_per_batch: usize,
        record: bool,
        log: DeltaLog,
        timeline: Vec<TimelineStats>,
        timeline_window: usize,
        batches_ingested: usize,
        timeline_digest: u64,
    ) -> Self {
        StreamingRunner {
            partitioner,
            iterations_per_batch,
            record,
            log,
            timeline,
            timeline_window,
            batches_ingested,
            timeline_digest,
            // The serve phase is deliberately outside the wire format (the
            // workload is an in-process concern); resumed runners re-attach
            // one via `serve_workload` if they want interleaved serving.
            serve: None,
            // A skip diagnostic, not logical state: the skipped iterations
            // are already charged into the partitioner's counters.
            iterations_skipped: 0,
        }
    }

    /// The recorded delta log (empty unless
    /// [`StreamingRunner::record_log`] enabled recording).
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// The wrapped partitioner.
    pub fn partitioner(&self) -> &AdaptivePartitioner {
        &self.partitioner
    }

    /// Mutable access to the wrapped partitioner (for interleaving manual
    /// iterations or audits between batches).
    pub fn partitioner_mut(&mut self) -> &mut AdaptivePartitioner {
        &mut self.partitioner
    }

    /// Unwraps the partitioner, discarding the timeline and log.
    pub fn into_partitioner(self) -> AdaptivePartitioner {
        self.partitioner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaptiveConfig;
    use apg_graph::{DynGraph, Graph};
    use apg_partition::{cut_edges, InitialStrategy};
    use apg_streams::{CdrConfig, CdrStream, TwitterConfig, TwitterStream};

    fn runner(graph: &DynGraph, k: u16, parallelism: usize, seed: u64) -> StreamingRunner {
        let cfg = AdaptiveConfig::new(k).parallelism(parallelism);
        StreamingRunner::new(AdaptivePartitioner::with_strategy(
            graph,
            InitialStrategy::Hash,
            &cfg,
            seed,
        ))
        .iterations_per_batch(3)
    }

    #[test]
    fn ingest_maintains_incremental_cut() {
        let config = CdrConfig {
            initial_subscribers: 800,
            ..CdrConfig::default()
        };
        let mut stream = CdrStream::new(config, 3);
        let graph = DynGraph::with_vertices(config.initial_subscribers);
        let mut r = runner(&graph, 4, 1, 3);
        for _ in 0..2 * config.batches_per_week {
            let batch = apg_streams::StreamSource::next_batch(&mut stream).unwrap();
            let stats = r.ingest(&batch);
            assert_eq!(
                r.partitioner().cut_edges(),
                cut_edges(r.partitioner().graph(), r.partitioner().partitioning()),
                "incremental cut drifted at batch {}",
                stats.batch
            );
            r.partitioner().audit();
        }
        assert!(r.timeline().len() == 2 * config.batches_per_week);
    }

    #[test]
    fn recorded_log_replays_to_identical_graph() {
        let config = TwitterConfig {
            initial_users: 300,
            ..TwitterConfig::default()
        };
        let mut stream = TwitterStream::new(config, 5).with_clock(19.0, 900.0);
        let base = DynGraph::with_vertices(config.initial_users);
        let mut r = runner(&base, 3, 1, 5).record_log(true);
        r.drive(&mut stream, 6);
        assert_eq!(r.log().len(), 6);
        let mut fresh = base.clone();
        r.log().replay(&mut fresh);
        assert_eq!(&fresh, r.partitioner().graph());
    }

    #[test]
    fn timeline_is_parallelism_invariant() {
        let run = |parallelism: usize| {
            let config = CdrConfig {
                initial_subscribers: 1500,
                ..CdrConfig::default()
            };
            let mut stream = CdrStream::new(config, 11);
            let graph = DynGraph::with_vertices(config.initial_subscribers);
            let mut r = runner(&graph, 6, parallelism, 11);
            r.drive(&mut stream, 10);
            r.timeline().to_vec()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4));
        let migrations: usize = sequential.iter().map(|s| s.migrations).sum();
        assert!(migrations > 0, "scenario too quiet to prove anything");
    }

    #[test]
    fn adaptive_budget_preserves_the_timeline_and_skips_work() {
        // A generous budget on a modest stream: most batches drain their
        // active set before the budget runs out, so the adaptive run skips
        // real work — while recording exactly the fixed run's timeline.
        let config = CdrConfig {
            initial_subscribers: 300,
            ..CdrConfig::default()
        };
        let graph = DynGraph::with_vertices(config.initial_subscribers);
        let run = |fixed: bool| {
            let cfg = AdaptiveConfig::new(2).willingness(1.0).budget_fixed(fixed);
            let mut stream = CdrStream::new(config, 7);
            let mut r = StreamingRunner::new(AdaptivePartitioner::with_strategy(
                &graph,
                InitialStrategy::Hash,
                &cfg,
                7,
            ))
            .iterations_per_batch(25);
            r.drive(&mut stream, 8);
            r
        };
        let adaptive = run(false);
        let fixed = run(true);
        assert_eq!(fixed.iterations_skipped(), 0);
        assert!(
            adaptive.iterations_skipped() > 0,
            "a 25-iteration budget should drain early on this stream"
        );
        assert_eq!(adaptive.timeline(), fixed.timeline());
        assert_eq!(
            adaptive.partitioner().iteration(),
            fixed.partitioner().iteration(),
            "skipped iterations must still be charged to the counter"
        );
        assert_eq!(
            adaptive.partitioner().partitioning(),
            fixed.partitioner().partitioning()
        );
        adaptive.partitioner().audit();
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mk = |wall: f64| TimelineStats {
            batch: 0,
            deltas: 5,
            vertices_added: 1,
            vertices_removed: 0,
            edges_added: 4,
            edges_removed: 0,
            cut_before: 10,
            cut_after_ingest: 12,
            cut_after: 8,
            migrations: 3,
            iterations: 5,
            live_vertices: 100,
            num_edges: 200,
            wall_ms: wall,
        };
        assert_eq!(mk(1.0), mk(99.0));
        let mut other = mk(1.0);
        other.migrations = 4;
        assert_ne!(mk(1.0), other);
    }

    #[test]
    fn serve_phase_appends_one_round_per_batch_and_mutates_nothing() {
        use apg_serve::{QueryMix, QueryWorkload};
        let config = CdrConfig {
            initial_subscribers: 600,
            ..CdrConfig::default()
        };
        let graph = DynGraph::with_vertices(config.initial_subscribers);
        let run = |serve: bool| {
            let mut stream = CdrStream::new(config, 9);
            let mut r = runner(&graph, 4, 2, 9);
            if serve {
                r = r.serve_workload(QueryWorkload::new(QueryMix::Uniform, 32, 5));
            }
            r.drive(&mut stream, 8);
            r
        };
        let with_serve = run(true);
        assert_eq!(with_serve.serve_timeline().len(), 8);
        for (i, round) in with_serve.serve_timeline().iter().enumerate() {
            assert_eq!(round.round, i as u64);
            assert_eq!(round.queries, 32);
        }
        // Serving is read-only: the ingest timeline is byte-identical to a
        // run without the serve phase.
        let without = run(false);
        assert!(without.serve_timeline().is_empty());
        assert_eq!(with_serve.timeline(), without.timeline());
    }

    #[test]
    fn serve_timeline_is_parallelism_invariant() {
        use apg_serve::{QueryMix, QueryWorkload};
        let config = CdrConfig {
            initial_subscribers: 900,
            ..CdrConfig::default()
        };
        let graph = DynGraph::with_vertices(config.initial_subscribers);
        let run = |parallelism: usize| {
            let mut stream = CdrStream::new(config, 13);
            let mut r = runner(&graph, 6, parallelism, 13).serve_workload(QueryWorkload::new(
                QueryMix::CommunityBiased,
                48,
                21,
            ));
            r.drive(&mut stream, 6);
            r.serve_timeline().to_vec()
        };
        let sequential = run(1);
        assert_eq!(sequential, run(4));
        let hops: usize = sequential.iter().map(|s| s.hops).sum();
        assert!(hops > 0, "scenario too quiet to prove anything");
    }

    #[test]
    fn drive_stops_at_stream_end() {
        let graph = DynGraph::from(&apg_graph::gen::mesh3d(6, 6, 6));
        let cfg = apg_streams::ForestFireConfig::burst(20, 3);
        let mut source = apg_streams::ForestFireSource::new(&graph, &cfg, 8);
        let mut r = runner(&graph, 4, 1, 7);
        let consumed = r.drive(&mut source, 100);
        assert_eq!(consumed, 3); // ceil(20 / 8)
        assert_eq!(
            r.partitioner().graph().num_live_vertices(),
            graph.num_live_vertices() + 20
        );
    }
}
