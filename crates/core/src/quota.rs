//! Per-iteration migration quotas (paper §2.2).
//!
//! Capacities can only be observed at the start of an iteration, and
//! migration decisions are taken independently, so without further
//! restriction every vertex could pick the same destination and overflow
//! it. The paper's worst-case rule splits each partition's remaining
//! capacity `C^t(j)` evenly across the `k − 1` possible senders:
//! `Q^t(i, j) = C^t(j) / (k − 1)`.
//!
//! The table is **not** shared across the parallel decision sweep: shards
//! only *propose* migrations, and the partitioner consumes the table in its
//! single-threaded merge phase, in ascending vertex order — the same
//! admissions a sequential sweep would make, at any thread count.

use apg_partition::PartitionId;

use crate::config::QuotaRule;

/// Tracks how many more vertices may migrate between each ordered partition
/// pair during the current iteration.
#[derive(Debug, Clone)]
pub struct QuotaTable {
    k: usize,
    /// Remaining budget for (from, to) pairs, row-major; `usize::MAX`
    /// encodes "unbounded".
    budget: Vec<usize>,
}

impl QuotaTable {
    /// Builds the table for one iteration from each partition's remaining
    /// capacity at the start of the iteration.
    ///
    /// # Panics
    ///
    /// Panics if `remaining.len()` is zero.
    pub fn new(rule: QuotaRule, remaining: &[usize]) -> Self {
        let mut table = QuotaTable {
            k: remaining.len(),
            budget: Vec::new(),
        };
        table.rebuild(rule, remaining);
        table
    }

    /// Rebuilds the table in place for a new iteration, reusing the budget
    /// allocation — the hot-loop counterpart of [`QuotaTable::new`].
    ///
    /// # Panics
    ///
    /// Panics if `remaining.len()` is zero.
    pub fn rebuild(&mut self, rule: QuotaRule, remaining: &[usize]) {
        let k = remaining.len();
        assert!(k > 0, "need at least one partition");
        self.k = k;
        self.budget.clear();
        match rule {
            QuotaRule::Unbounded => self.budget.resize(k * k, usize::MAX),
            QuotaRule::PerSourceSplit => {
                self.budget.resize(k * k, 0);
                for (to, &cap) in remaining.iter().enumerate() {
                    // With k == 1 there is nowhere to migrate anyway.
                    let per_source = if k > 1 { cap / (k - 1) } else { 0 };
                    for from in 0..k {
                        if from != to {
                            self.budget[from * k + to] = per_source;
                        }
                    }
                }
            }
        }
    }

    /// Remaining budget for migrations `from -> to`.
    pub fn available(&self, from: PartitionId, to: PartitionId) -> usize {
        self.budget[from as usize * self.k + to as usize]
    }

    /// Attempts to consume one unit of `from -> to` budget.
    ///
    /// Returns `true` when the migration is admitted.
    pub fn try_consume(&mut self, from: PartitionId, to: PartitionId) -> bool {
        self.try_consume_units(from, to, 1)
    }

    /// Attempts to consume `units` of `from -> to` budget at once — used by
    /// the edge-balanced extension, where a vertex of degree `d` occupies
    /// `d` units of its destination's capacity.
    ///
    /// Returns `true` when the migration is admitted. Zero-unit requests
    /// always succeed.
    pub fn try_consume_units(&mut self, from: PartitionId, to: PartitionId, units: usize) -> bool {
        let slot = &mut self.budget[from as usize * self.k + to as usize];
        match *slot {
            usize::MAX => true, // unbounded never depletes
            ref mut b if *b >= units => {
                *b -= units;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_capacity_evenly() {
        // k = 3, partition 2 has 10 slots left -> 5 per sender.
        let q = QuotaTable::new(QuotaRule::PerSourceSplit, &[0, 4, 10]);
        assert_eq!(q.available(0, 2), 5);
        assert_eq!(q.available(1, 2), 5);
        assert_eq!(q.available(0, 1), 2);
        assert_eq!(q.available(1, 0), 0);
    }

    #[test]
    fn self_migration_has_no_budget() {
        let q = QuotaTable::new(QuotaRule::PerSourceSplit, &[10, 10]);
        assert_eq!(q.available(1, 1), 0);
    }

    #[test]
    fn consume_depletes() {
        let mut q = QuotaTable::new(QuotaRule::PerSourceSplit, &[0, 2]);
        assert!(q.try_consume(0, 1));
        assert!(q.try_consume(0, 1));
        assert!(!q.try_consume(0, 1), "budget of 2 must deplete");
    }

    #[test]
    fn total_admissions_cannot_overflow_destination() {
        // Worst case: every sender exhausts its quota; the destination still
        // fits because k-1 senders * C/(k-1) <= C.
        let remaining = [7usize, 7, 7, 7];
        let mut q = QuotaTable::new(QuotaRule::PerSourceSplit, &remaining);
        let mut admitted = 0;
        for from in 0..4u16 {
            while q.try_consume(from, 2) {
                admitted += 1;
            }
        }
        assert!(admitted <= 7, "overflow: {admitted} > 7");
    }

    #[test]
    fn rebuild_resets_a_depleted_table() {
        let mut q = QuotaTable::new(QuotaRule::PerSourceSplit, &[0, 2]);
        while q.try_consume(0, 1) {}
        q.rebuild(QuotaRule::PerSourceSplit, &[0, 2]);
        assert_eq!(q.available(0, 1), 2);
        // Rule and shape can change between rebuilds.
        q.rebuild(QuotaRule::Unbounded, &[0, 0, 0]);
        assert!(q.try_consume(2, 1));
        assert_eq!(q.available(2, 2), usize::MAX);
    }

    #[test]
    fn unbounded_never_blocks() {
        let mut q = QuotaTable::new(QuotaRule::Unbounded, &[0, 0]);
        for _ in 0..1000 {
            assert!(q.try_consume(0, 1));
        }
    }

    #[test]
    fn k_equal_one_blocks_everything() {
        let q = QuotaTable::new(QuotaRule::PerSourceSplit, &[100]);
        assert_eq!(q.available(0, 0), 0);
    }
}
