//! The per-vertex migration decision kernel (paper §2.1).
//!
//! "At each iteration, a vertex will decide to migrate to the partition
//! where the highest number of its neighbouring vertices are. [...] Since
//! migrating a vertex potentially introduces an overhead, the heuristic will
//! preferentially choose to stay in the current partition if it is one of
//! the candidates."
//!
//! The kernel is shared verbatim between the logical-level partitioner in
//! this crate and the distributed Pregel integration in `apg-pregel`, so
//! the two realisations cannot drift apart.

use rand::Rng;

use apg_partition::PartitionId;

/// Outcome of one vertex's migration evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationDecision {
    /// Remain in the current partition.
    Stay,
    /// Request migration to the given partition.
    Migrate(PartitionId),
}

/// Reusable candidate-selection state.
///
/// Holds `O(k)` scratch space so evaluating a vertex costs
/// `O(degree + |candidates|)` with no allocation, the property that makes
/// the heuristic "efficiently computed" at scale (paper §2).
///
/// # Example
///
/// ```
/// use apg_core::{DecisionKernel, MigrationDecision};
/// use rand::SeedableRng;
///
/// let mut kernel = DecisionKernel::new(3, false);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// // Vertex in partition 0 with neighbours 2:1 in favour of partition 2.
/// let decision = kernel.decide(0, [2, 2, 1].into_iter(), &mut rng);
/// assert_eq!(decision, MigrationDecision::Migrate(2));
/// ```
#[derive(Debug, Clone)]
pub struct DecisionKernel {
    counts: Vec<u32>,
    touched: Vec<PartitionId>,
    candidates: Vec<PartitionId>,
    count_self: bool,
}

impl DecisionKernel {
    /// Creates a kernel for `k` partitions.
    ///
    /// `count_self` implements the literal `Γ(v,t) = {v} ∪ N(v)` reading of
    /// the paper's candidate definition (see
    /// [`crate::AdaptiveConfig::count_self`]).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: PartitionId, count_self: bool) -> Self {
        assert!(k > 0, "need at least one partition");
        DecisionKernel {
            counts: vec![0; k as usize],
            touched: Vec::with_capacity(k as usize),
            candidates: Vec::with_capacity(k as usize),
            count_self,
        }
    }

    /// Evaluates the greedy heuristic for one vertex.
    ///
    /// `neighbor_partitions` yields the current partition of each neighbour
    /// (duplicates expected — one entry per neighbour). Ties among the
    /// highest-count partitions are broken uniformly at random, except that
    /// the current partition always wins ties ("preferentially choose to
    /// stay").
    pub fn decide<R: Rng, I>(
        &mut self,
        current: PartitionId,
        neighbor_partitions: I,
        rng: &mut R,
    ) -> MigrationDecision
    where
        I: Iterator<Item = PartitionId>,
    {
        // Count neighbours per partition using a touched-list so clearing is
        // O(|touched|), not O(k).
        for p in neighbor_partitions {
            if self.counts[p as usize] == 0 {
                self.touched.push(p);
            }
            self.counts[p as usize] += 1;
        }
        if self.count_self {
            if self.counts[current as usize] == 0 {
                self.touched.push(current);
            }
            self.counts[current as usize] += 1;
        }

        let mut best = 0u32;
        for &p in &self.touched {
            best = best.max(self.counts[p as usize]);
        }
        let decision = if best == 0 {
            // Isolated vertex: cand(v, t) degenerates to the current
            // partition (v ∈ Γ(v, t)).
            MigrationDecision::Stay
        } else if self.counts[current as usize] == best {
            MigrationDecision::Stay
        } else {
            self.candidates.clear();
            for &p in &self.touched {
                if self.counts[p as usize] == best {
                    self.candidates.push(p);
                }
            }
            let pick = if self.candidates.len() == 1 {
                self.candidates[0]
            } else {
                self.candidates[rng.gen_range(0..self.candidates.len())]
            };
            MigrationDecision::Migrate(pick)
        };

        for &p in &self.touched {
            self.counts[p as usize] = 0;
        }
        self.touched.clear();
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn migrates_to_majority_partition() {
        let mut k = DecisionKernel::new(4, false);
        let d = k.decide(0, [1, 1, 1, 2].into_iter(), &mut rng());
        assert_eq!(d, MigrationDecision::Migrate(1));
    }

    #[test]
    fn prefers_staying_on_tie() {
        let mut k = DecisionKernel::new(3, false);
        // 2 neighbours home, 2 in partition 1: tie -> stay.
        let d = k.decide(0, [0, 0, 1, 1].into_iter(), &mut rng());
        assert_eq!(d, MigrationDecision::Stay);
    }

    #[test]
    fn isolated_vertex_stays() {
        let mut k = DecisionKernel::new(3, false);
        assert_eq!(
            k.decide(2, std::iter::empty(), &mut rng()),
            MigrationDecision::Stay
        );
    }

    #[test]
    fn random_tie_break_covers_all_candidates() {
        let mut k = DecisionKernel::new(4, false);
        let mut seen = std::collections::HashSet::new();
        let mut r = rng();
        for _ in 0..200 {
            match k.decide(0, [1, 1, 2, 2, 3, 3].into_iter(), &mut r) {
                MigrationDecision::Migrate(p) => {
                    seen.insert(p);
                }
                MigrationDecision::Stay => panic!("majority is elsewhere"),
            }
        }
        assert_eq!(seen, [1, 2, 3].into_iter().collect());
    }

    #[test]
    fn count_self_adds_stickiness() {
        // One neighbour elsewhere: without self-count we chase it...
        let mut without = DecisionKernel::new(2, false);
        assert_eq!(
            without.decide(0, [1].into_iter(), &mut rng()),
            MigrationDecision::Migrate(1)
        );
        // ...with self-count it is a tie and we stay.
        let mut with = DecisionKernel::new(2, true);
        assert_eq!(
            with.decide(0, [1].into_iter(), &mut rng()),
            MigrationDecision::Stay
        );
    }

    #[test]
    fn scratch_state_resets_between_calls() {
        let mut k = DecisionKernel::new(3, false);
        let _ = k.decide(0, [1, 1].into_iter(), &mut rng());
        // A second call must not see counts from the first.
        let d = k.decide(0, [2].into_iter(), &mut rng());
        assert_eq!(d, MigrationDecision::Migrate(2));
    }
}
