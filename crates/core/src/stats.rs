//! Small statistics helpers for experiment reporting.
//!
//! The paper reports every quality number as "the mean of n = 10
//! repetitions. Errors are reported in the form of estimated error in the
//! mean" (§4.2); [`mean_and_sem`] computes exactly that.

/// Mean and standard error of the mean of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Standard error of the mean (`sd / sqrt(n)`, with Bessel's
    /// correction); zero for samples of size < 2.
    pub sem: f64,
    /// Sample size.
    pub n: usize,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.sem)
    }
}

/// Computes mean ± SEM over `values`.
///
/// Returns a zeroed summary for an empty sample.
pub fn mean_and_sem(values: &[f64]) -> Summary {
    let n = values.len();
    if n == 0 {
        return Summary {
            mean: 0.0,
            sem: 0.0,
            n: 0,
        };
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Summary {
            mean,
            sem: 0.0,
            n: 1,
        };
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
    Summary {
        mean,
        sem: (var / n as f64).sqrt(),
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_constant_sample() {
        let s = mean_and_sem(&[2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.sem, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn known_sem() {
        // Sample {1, 3}: mean 2, sd sqrt(2), sem 1.
        let s = mean_and_sem(&[1.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.sem - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_samples() {
        assert_eq!(mean_and_sem(&[]).n, 0);
        let one = mean_and_sem(&[5.0]);
        assert_eq!(one.mean, 5.0);
        assert_eq!(one.sem, 0.0);
    }

    #[test]
    fn display_formats() {
        let s = mean_and_sem(&[1.0, 2.0, 3.0]);
        assert!(s.to_string().contains('±'));
    }
}
