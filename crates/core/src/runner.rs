//! Convergence reporting for full runs of the algorithm.

use serde::{Deserialize, Serialize};

use crate::partitioner::IterationStats;

/// Outcome of [`crate::AdaptivePartitioner::run_to_convergence`].
///
/// Wraps the per-iteration history with the paper's derived measures:
/// *convergence time* (iterations until the final migration, excluding the
/// quiet window used only for detection) and initial/final cut ratios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceReport {
    history: Vec<IterationStats>,
    initial_cut: usize,
    initial_edges: usize,
    window: usize,
}

impl ConvergenceReport {
    /// Assembles a report. `initial_*` describe the state before the first
    /// iteration; `window` is the convergence window used for detection.
    pub fn new(
        history: Vec<IterationStats>,
        initial_cut: usize,
        initial_edges: usize,
        window: usize,
    ) -> Self {
        ConvergenceReport {
            history,
            initial_cut,
            initial_edges,
            window,
        }
    }

    /// Per-iteration metrics, oldest first.
    pub fn history(&self) -> &[IterationStats] {
        &self.history
    }

    /// Total iterations executed (including the quiet detection window).
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// Whether the run ended because the convergence criterion was met
    /// (rather than hitting the iteration cap).
    pub fn converged(&self) -> bool {
        self.history.len() >= self.window
            && self.history[self.history.len() - self.window..]
                .iter()
                .all(|s| s.migrations == 0)
    }

    /// The paper's convergence time: iterations up to and including the
    /// last one that migrated anything. Zero if nothing ever migrated.
    pub fn convergence_time(&self) -> usize {
        self.history
            .iter()
            .rposition(|s| s.migrations > 0)
            .map(|idx| idx + 1)
            .unwrap_or(0)
    }

    /// Cut ratio before the first iteration.
    pub fn initial_cut_ratio(&self) -> f64 {
        if self.initial_edges == 0 {
            0.0
        } else {
            self.initial_cut as f64 / self.initial_edges as f64
        }
    }

    /// Cut ratio after the last iteration (initial if no iterations ran).
    pub fn final_cut_ratio(&self) -> f64 {
        self.history
            .last()
            .map(|s| s.cut_ratio())
            .unwrap_or_else(|| self.initial_cut_ratio())
    }

    /// Total vertex migrations across the run.
    pub fn total_migrations(&self) -> usize {
        self.history.iter().map(|s| s.migrations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(iteration: usize, migrations: usize, cut: usize) -> IterationStats {
        IterationStats {
            iteration,
            migrations,
            cut_edges: cut,
            live_vertices: 100,
            num_edges: 200,
            max_partition: 30,
        }
    }

    #[test]
    fn convergence_time_excludes_quiet_tail() {
        let history = vec![
            stat(0, 5, 80),
            stat(1, 2, 60),
            stat(2, 0, 60),
            stat(3, 0, 60),
        ];
        let r = ConvergenceReport::new(history, 100, 200, 2);
        assert!(r.converged());
        assert_eq!(r.convergence_time(), 2);
        assert_eq!(r.total_migrations(), 7);
    }

    #[test]
    fn not_converged_when_tail_active() {
        let history = vec![stat(0, 0, 80), stat(1, 1, 60)];
        let r = ConvergenceReport::new(history, 100, 200, 2);
        assert!(!r.converged());
        assert_eq!(r.convergence_time(), 2);
    }

    #[test]
    fn ratios() {
        let r = ConvergenceReport::new(vec![stat(0, 1, 50)], 100, 200, 30);
        assert!((r.initial_cut_ratio() - 0.5).abs() < 1e-12);
        assert!((r.final_cut_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_history_falls_back_to_initial() {
        let r = ConvergenceReport::new(vec![], 10, 100, 30);
        assert!((r.final_cut_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(r.convergence_time(), 0);
        assert!(!r.converged());
    }
}
