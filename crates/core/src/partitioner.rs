//! The adaptive iterative vertex-migration partitioner.

use std::time::Instant;

use rand::Rng;
use serde::{Deserialize, Serialize};

use apg_exec::{fanout, vertex_rng, ActiveSet, ChangedSet, ShardPlan};
use apg_graph::delta::DeltaTarget;
use apg_graph::{ApplyReport, DynGraph, Graph, UpdateBatch, VertexId};
use apg_partition::{
    cut_edges, cut_edges_sharded, initial::hash_vertex, CapacityModel, InitialStrategy,
    PartitionId, Partitioning,
};

use crate::candidates::{DecisionKernel, MigrationDecision};
use crate::config::{AdaptiveConfig, PlacementPolicy};
use crate::quota::QuotaTable;
use crate::runner::ConvergenceReport;

/// Metrics recorded after each iteration of the algorithm.
///
/// These are exactly the series the paper plots in Figure 7: number of cut
/// edges, number of migrations, and the graph population they refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Vertices migrated during this iteration.
    pub migrations: usize,
    /// Cut edges after this iteration.
    pub cut_edges: usize,
    /// Live vertices after this iteration.
    pub live_vertices: usize,
    /// Edges after this iteration.
    pub num_edges: usize,
    /// Largest partition size after this iteration.
    pub max_partition: usize,
}

impl IterationStats {
    /// Cut edges normalised by total edges (0 for edgeless graphs).
    pub fn cut_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.num_edges as f64
        }
    }
}

/// Where one iteration spent its effort — phase wall-clock plus how much
/// work the active-set sweep actually scheduled. Returned by
/// [`AdaptivePartitioner::iterate_profiled`]; everything here is a
/// measurement or a sweep-internal count, deliberately **not** part of
/// [`IterationStats`] (whose equality pins deterministic history, which
/// must not depend on whether the active-set skip was enabled).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepProfile {
    /// Active slots when the iteration started.
    pub active_before: usize,
    /// Active slots when the iteration finished.
    pub active_after: usize,
    /// Vertices the decision phase visited (all live vertices in
    /// exhaustive mode, the live active ones otherwise).
    pub visited: usize,
    /// Shards the fan-out scheduled (shards with no active slot are
    /// skipped outright in active-set mode).
    pub shards_swept: usize,
    /// Total shards in the iteration's plan.
    pub num_shards: usize,
    /// Total slots inside the scheduled shard ranges. In active-set mode
    /// each scheduled shard is trimmed to its dirtied region
    /// (first..=last active slot), so this measures the slot footprint the
    /// sweep actually covered — after a local batch it is proportional to
    /// where the batch landed, not to `num_shards x shard_size`.
    pub slots_scheduled: usize,
    /// Wall-clock of the parallel decision phase, milliseconds.
    pub decide_ms: f64,
    /// Wall-clock of the quota-admission merge, milliseconds.
    pub merge_ms: f64,
    /// Wall-clock of the move-application phase, milliseconds.
    pub apply_ms: f64,
}

/// How capacities are maintained as the graph evolves.
#[derive(Debug, Clone)]
enum CapacityMode {
    /// Recomputed every iteration as `factor x` the balanced load of the
    /// *current* live population — capacities track graph growth, which is
    /// what lets the heuristic absorb the paper's +10% forest-fire burst.
    Auto,
    /// Fixed, caller-supplied limits.
    Fixed(CapacityModel),
}

/// The paper's adaptive partitioner at the logical level (§2).
///
/// Owns a [`DynGraph`] and its [`Partitioning`] and advances them one
/// iteration at a time; graph mutations may be interleaved with iterations,
/// which is the "adaptive" part. The cut-edge count is maintained
/// incrementally, so per-iteration cost is `O(|V| + Σ deg(migrants))`, not
/// `O(|E|)`.
///
/// # Parallel execution
///
/// Each iteration's decision phase runs on up to
/// [`AdaptiveConfig::parallelism`] threads: the vertex-slot range is cut
/// into fixed-size shards (`apg-exec`), every shard evaluates its vertices
/// with a private [`DecisionKernel`], all against the **frozen snapshot**
/// of the graph and assignment taken at the start of the iteration (the
/// `&self` borrow guarantees no mutation can interleave). Quota admission
/// and the actual moves happen afterwards in a single-threaded merge, in
/// ascending vertex order. Every random draw a vertex consumes — its
/// willingness roll, its tie-breaks — comes from a private RNG keyed by
/// `(seed, vertex, iteration)`, so no draw depends on which other vertices
/// were evaluated, in what grouping, or on what thread: the migration
/// history for a fixed seed is identical at every parallelism level.
///
/// # The active-set sweep
///
/// The decision rule is deterministic whenever it says *Stay*: the current
/// partition wins every tie, so randomness only ever picks *which other*
/// partition to chase. A vertex that decided Stay therefore keeps deciding
/// Stay — on every future iteration, under every RNG outcome — until
/// something in its view changes: a neighbour's label, its own label, or
/// its incident edges. The partitioner exploits this with an [`ActiveSet`]:
/// a vertex is active iff it has not yet been evaluated to a Stay since it
/// was last *dirtied*, and the decision phase visits **only active
/// vertices** (whole shards with no active slot are skipped).
///
/// Evaluating a vertex that decides Stay retires it; a vertex that
/// proposes a migration stays active (its tie-break re-rolls each round,
/// and a quota-blocked proposal must be re-made). Migrations re-dirty the
/// migrant and its whole neighbourhood (every neighbour sees the label
/// change), and the mutation hooks re-dirty exactly the vertices whose
/// incident-edge multiset changed: an edge add/remove marks its two
/// endpoints, a vertex removal marks every former neighbour, an insertion
/// marks the newcomer — so streaming churn reactivates exactly the
/// region it perturbed. Note that *cut-incident* is deliberately **not**
/// the activity criterion: on a high-cut power-law graph nearly every
/// vertex touches the cut, yet at convergence they all stably decide Stay
/// — stay-stability is what lets converged iterations cost near zero
/// instead of `O(|V|)`.
///
/// Because per-vertex RNG keying makes skipping exact, the history is
/// *identical* to an exhaustive sweep's
/// ([`AdaptiveConfig::sweep_exhaustive`] pins this); a converged, quiet
/// partitioner iterates in `O(shards)` bookkeeping, and a streaming one
/// pays per batch in proportion to the region the batch dirtied.
///
/// # Example
///
/// ```
/// use apg_core::{AdaptiveConfig, AdaptivePartitioner};
/// use apg_graph::gen;
/// use apg_partition::InitialStrategy;
///
/// let g = gen::mesh3d(8, 8, 8);
/// let cfg = AdaptiveConfig::new(4);
/// let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 7);
/// let before = p.cut_edges();
/// p.run_for(50);
/// assert!(p.cut_edges() < before);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePartitioner {
    graph: DynGraph,
    partitioning: Partitioning,
    config: AdaptiveConfig,
    capacity_mode: CapacityMode,
    seed: u64,
    cut: usize,
    /// Per-partition degree mass (edge endpoints), maintained for the
    /// edge-balanced extension and load diagnostics.
    degree_mass: Vec<usize>,
    iteration: usize,
    quiet_streak: usize,
    pending: Vec<(VertexId, PartitionId)>,
    /// Which vertex slots the decision sweep still needs to visit; see the
    /// type-level docs. Not persisted: restore conservatively re-marks all
    /// live vertices (skipped ones would have decided *Stay* anyway).
    active: ActiveSet,
    /// Which vertex slots have *mutated* (liveness, adjacency, or label)
    /// since the last checkpoint drained it. Unlike `active` — which is
    /// cleared as the sweep retires vertices — this set only grows until
    /// [`AdaptivePartitioner::drain_changed`] resets it, so it is exactly
    /// the slot superset an incremental snapshot must re-encode. Not
    /// persisted: restore starts it fully marked (the first checkpoint
    /// after a restore is a full one anyway).
    changed: ChangedSet,
    /// Largest partition size, tracked incrementally; `max_stale` flags
    /// that the current maximum may have shrunk (the argmax partition lost
    /// a vertex) and must be recomputed on next read.
    max_live: usize,
    max_stale: bool,
    /// Reusable per-iteration scratch; see [`IterScratch`].
    scratch: IterScratch,
}

/// Per-iteration scratch buffers, hoisted out of the iteration loop so
/// their capacity survives across iterations instead of being reallocated
/// each round. Contents are dead between [`AdaptivePartitioner::iterate`]
/// calls — nothing here is logical state (clones just carry the capacity
/// along).
#[derive(Debug, Clone)]
struct IterScratch {
    /// Per-partition remaining capacity at iteration start.
    remaining: Vec<usize>,
    /// Work list of `(shard index, slot range)` pairs the decide fan-out
    /// sweeps this iteration (trimmed to each shard's dirtied region in
    /// active-set mode).
    shards: Vec<(usize, std::ops::Range<usize>)>,
    /// One reusable [`DecisionKernel`] per scheduled shard: the k-length
    /// label histogram every vertex evaluation fills, hoisted here so its
    /// O(k) buffers survive across iterations instead of being reallocated
    /// per shard per round. Kernel state is self-clearing between
    /// `decide` calls, so reuse cannot leak counts across vertices.
    kernels: Vec<DecisionKernel>,
    /// Quota admission table, rebuilt in place each iteration.
    quota: QuotaTable,
}

impl AdaptivePartitioner {
    /// Creates a partitioner over a copy of `graph`, initialised with the
    /// given strategy and automatic capacities
    /// (`config.capacity_factor x` balanced load, tracking graph size).
    pub fn with_strategy<G: Graph>(
        graph: &G,
        strategy: InitialStrategy,
        config: &AdaptiveConfig,
        seed: u64,
    ) -> Self {
        let caps = CapacityModel::vertex_balanced(
            graph.num_live_vertices(),
            config.num_partitions,
            config.capacity_factor,
        );
        let partitioning = strategy.assign(graph, &caps, seed);
        Self::from_parts(
            to_dyn(graph),
            partitioning,
            config.clone(),
            CapacityMode::Auto,
            seed,
        )
    }

    /// Creates a partitioner from an existing assignment (e.g. produced by
    /// `apg-metis`, or resumed from a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the graph's vertex-slot
    /// count or its `k` differs from the config's.
    pub fn from_partitioning<G: Graph>(
        graph: &G,
        partitioning: Partitioning,
        config: &AdaptiveConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            partitioning.num_vertices(),
            graph.num_vertices(),
            "assignment does not cover the graph"
        );
        assert_eq!(
            partitioning.num_partitions(),
            config.num_partitions,
            "partition count mismatch"
        );
        Self::from_parts(
            to_dyn(graph),
            partitioning,
            config.clone(),
            CapacityMode::Auto,
            seed,
        )
    }

    /// Replaces automatic capacity tracking with fixed explicit limits.
    pub fn set_fixed_capacities(&mut self, caps: CapacityModel) {
        assert_eq!(
            caps.num_partitions(),
            self.config.num_partitions,
            "partition count mismatch"
        );
        self.capacity_mode = CapacityMode::Fixed(caps);
    }

    fn from_parts(
        graph: DynGraph,
        mut partitioning: Partitioning,
        config: AdaptiveConfig,
        capacity_mode: CapacityMode,
        seed: u64,
    ) -> Self {
        partitioning.recount_live(&graph);
        // Construction and restore pay one full-graph recount; shard it so
        // multi-million-vertex start-up does not serially walk every
        // adjacency list (`audit` keeps the serial walk as the independent
        // cross-check).
        let cut = cut_edges_sharded(&graph, &partitioning, config.parallelism);
        let mut degree_mass = vec![0usize; config.num_partitions as usize];
        // All live vertices start active: a fresh partitioner owes every
        // vertex a first evaluation, and a restored one may not know which
        // vertices the original had retired — conservatively re-marking is
        // exact because skipped vertices would have decided Stay anyway.
        let mut active = ActiveSet::with_default_shards(graph.num_vertices());
        for v in graph.vertices() {
            degree_mass[partitioning.partition_of(v) as usize] += graph.degree(v);
            active.mark(v as usize);
        }
        // No base to diff against yet: the first checkpoint must re-encode
        // everything, so the changed set starts saturated.
        let mut changed = ChangedSet::with_len(graph.num_vertices());
        changed.mark_all();
        let max_live = partitioning.sizes().iter().copied().max().unwrap_or(0);
        let k = config.num_partitions as usize;
        let scratch = IterScratch {
            remaining: Vec::with_capacity(k),
            shards: Vec::new(),
            kernels: Vec::new(),
            quota: QuotaTable::new(config.quota_rule, &vec![0; k]),
        };
        AdaptivePartitioner {
            graph,
            partitioning,
            config,
            capacity_mode,
            seed,
            cut,
            degree_mass,
            iteration: 0,
            quiet_streak: 0,
            pending: Vec::new(),
            active,
            changed,
            max_live,
            max_stale: false,
            scratch,
        }
    }

    /// The graph being partitioned.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Current number of cut edges (maintained incrementally).
    pub fn cut_edges(&self) -> usize {
        self.cut
    }

    /// Current cut ratio.
    pub fn cut_ratio(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            0.0
        } else {
            self.cut as f64 / self.graph.num_edges() as f64
        }
    }

    /// Iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Consecutive migration-free iterations.
    pub fn quiet_streak(&self) -> usize {
        self.quiet_streak
    }

    /// Vertices the next decision sweep will visit (the active set): every
    /// vertex with a cut-incident edge plus everything dirtied by
    /// mutations or migrations since its last evaluation. This is the
    /// per-iteration cost driver — `O(active)`, not `O(|V|)`.
    pub fn num_active_vertices(&self) -> usize {
        self.active.num_active()
    }

    /// Whether vertex `v` is in the active set (will be visited by the
    /// next decision sweep).
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the slot range.
    pub fn is_active(&self, v: VertexId) -> bool {
        self.active.contains(v as usize)
    }

    /// Vertex slots mutated (liveness, adjacency, or label) since the last
    /// [`AdaptivePartitioner::drain_changed`]. This is the slot superset an
    /// incremental checkpoint re-encodes — `O(changed)` bytes, not
    /// `O(|V|)`.
    pub fn num_changed(&self) -> usize {
        self.changed.num_marked()
    }

    /// The mutated slots in ascending order, *without* resetting the set —
    /// for checkpoint writers that must keep the marks until the install
    /// is durable (then [`AdaptivePartitioner::clear_changed`]).
    pub fn changed_slots(&self) -> Vec<usize> {
        self.changed.collect_sorted()
    }

    /// Drains the changed-slot set: returns the mutated slots in ascending
    /// order and resets the set, establishing the *current* state as the
    /// new diff base. Callers must checkpoint the state they drain
    /// against, or the next drain will under-report.
    pub fn drain_changed(&mut self) -> Vec<usize> {
        self.changed.drain_sorted()
    }

    /// Resets the changed-slot set without reading it — used when a full
    /// (non-incremental) checkpoint of the current state was just taken,
    /// or when the state was just restored from one.
    pub fn clear_changed(&mut self) {
        self.changed.clear();
    }

    /// Whether the convergence criterion (no migrations for
    /// `config.convergence_window` iterations) currently holds.
    pub fn is_converged(&self) -> bool {
        self.quiet_streak >= self.config.convergence_window
    }

    /// Current capacity limits (vertex- or degree-mass-denominated,
    /// depending on [`AdaptiveConfig::balance_edges`]).
    pub fn capacities(&self) -> CapacityModel {
        match &self.capacity_mode {
            CapacityMode::Fixed(caps) => caps.clone(),
            CapacityMode::Auto if self.config.balance_edges => CapacityModel::edge_balanced(
                self.graph.num_edges().max(1),
                self.config.num_partitions,
                self.config.capacity_factor,
            ),
            CapacityMode::Auto => CapacityModel::vertex_balanced(
                self.graph.num_live_vertices(),
                self.config.num_partitions,
                self.config.capacity_factor,
            ),
        }
    }

    /// Per-partition degree mass (edge endpoints).
    pub fn degree_mass(&self) -> &[usize] {
        &self.degree_mass
    }

    /// Runs one iteration of the algorithm and reports its metrics.
    ///
    /// All migration decisions observe the assignment as it stood at the
    /// start of the iteration (the paper's iteration semantics); moves are
    /// applied together afterwards. The decision phase visits only the
    /// active set, on up to [`AdaptiveConfig::parallelism`] threads, with
    /// results independent of both the thread count and the skip (see the
    /// type-level docs).
    pub fn iterate(&mut self) -> IterationStats {
        self.iterate_profiled().0
    }

    /// [`AdaptivePartitioner::iterate`], additionally reporting where the
    /// iteration spent its time and how much work the active-set sweep
    /// scheduled (benchmark instrumentation; the stats are identical to
    /// what `iterate` would have produced).
    pub fn iterate_profiled(&mut self) -> (IterationStats, SweepProfile) {
        let k = self.config.num_partitions;
        let caps = self.capacities();
        let balance_edges = self.config.balance_edges;
        {
            let degree_mass = &self.degree_mass;
            let partitioning = &self.partitioning;
            self.scratch.remaining.clear();
            self.scratch.remaining.extend((0..k).map(|p| {
                let load = if balance_edges {
                    degree_mass[p as usize]
                } else {
                    partitioning.size(p)
                };
                caps.remaining(p, load)
            }));
        }
        self.scratch
            .quota
            .rebuild(self.config.quota_rule, &self.scratch.remaining);

        // Decision phase: shards propose migrations for the active slots of
        // their range against the frozen graph + assignment. Every vertex
        // draws from its own (seed, vertex, iteration) RNG, so visiting a
        // subset draws exactly what a full sweep would have drawn for each
        // visited vertex. Read-only, embarrassingly parallel; proposals
        // come back in shard order = vertex order. Shards with no active
        // slot are skipped before the fan-out even sees them.
        let s = self.config.willingness_at(self.iteration);
        let plan = ShardPlan::with_default_size(self.graph.slot_range().len());
        debug_assert_eq!(self.active.len(), plan.len(), "active set out of sync");
        debug_assert_eq!(self.active.shard_size(), plan.shard_size());
        let exhaustive = self.config.sweep_exhaustive;
        let graph = &self.graph;
        let partitioning = &self.partitioning;
        let active = &self.active;
        let count_self = self.config.count_self;
        let seed = self.seed;
        let round = self.iteration as u64;
        let active_before = active.num_active();

        self.scratch.shards.clear();
        if exhaustive {
            self.scratch.shards.extend(plan.ranges().enumerate());
        } else {
            // The dirtied-region work list: only shards with active slots,
            // each trimmed to its first..=last active slot, so the fan-out
            // covers the region recent churn touched and nothing else.
            active.collect_dirty_shards(&mut self.scratch.shards);
        }
        let shards_swept = self.scratch.shards.len();
        let slots_scheduled: usize = self.scratch.shards.iter().map(|(_, r)| r.len()).sum();

        // One reusable kernel per scheduled shard (grown on demand, kept
        // across iterations). Kernels are interchangeable — decide() leaves
        // no state behind — so pairing kernel i with work item i is safe.
        if self.scratch.kernels.len() < shards_swept {
            self.scratch
                .kernels
                .resize_with(shards_swept, || DecisionKernel::new(k, count_self));
        }
        let work: Vec<(&mut DecisionKernel, &(usize, std::ops::Range<usize>))> = self
            .scratch
            .kernels
            .iter_mut()
            .zip(self.scratch.shards.iter())
            .collect();

        let decide_start = Instant::now();
        let outcomes: Vec<ShardOutcome> =
            fanout::map_items(self.config.parallelism, work, |_, (kernel, (_, slots))| {
                let mut out = ShardOutcome::default();
                if exhaustive {
                    for v in graph.live_in(slots.clone()) {
                        evaluate_vertex(v, s, seed, round, graph, partitioning, kernel, &mut out);
                    }
                } else {
                    for slot in active.iter_in(slots.clone()) {
                        let v = slot as VertexId;
                        debug_assert!(graph.is_vertex(v), "tombstone {v} in active set");
                        evaluate_vertex(v, s, seed, round, graph, partitioning, kernel, &mut out);
                    }
                }
                out
            });
        let decide_ms = decide_start.elapsed().as_secs_f64() * 1e3;

        // Merge phase: single-threaded and deterministic. First retire the
        // vertices the sweep proved interior — the apply phase re-dirties
        // every neighbourhood its moves perturb, so anything whose boundary
        // status changes is re-marked immediately after. Then admit
        // proposals against the quota table in ascending vertex order
        // (exactly what a sequential sweep would have consumed).
        let merge_start = Instant::now();
        let mut visited = 0usize;
        for outcome in &outcomes {
            visited += outcome.visited;
            for &v in &outcome.retire {
                self.active.clear(v as usize);
            }
        }
        self.pending.clear();
        for (v, to) in outcomes.iter().flat_map(|o| o.proposals.iter().copied()) {
            let current = self.partitioning.partition_of(v);
            let units = if balance_edges {
                self.graph.degree(v)
            } else {
                1
            };
            if self.scratch.quota.try_consume_units(current, to, units) {
                self.pending.push((v, to));
            }
        }
        let merge_ms = merge_start.elapsed().as_secs_f64() * 1e3;

        // Apply phase: move vertices, updating the cut incrementally and
        // re-dirtying each migrant's neighbourhood. The sharded path is the
        // default; `apply_serial` keeps the per-migrant loop alive as the
        // equivalence reference (both produce identical state — the
        // apply-equivalence proptests pin this).
        let apply_start = Instant::now();
        let migrations = self.pending.len();
        if self.config.apply_serial {
            // Index loop rather than iterating a moved-out buffer, so
            // `pending` keeps its capacity in place across iterations.
            for i in 0..self.pending.len() {
                let (v, to) = self.pending[i];
                self.apply_move(v, to);
            }
        } else {
            self.apply_pending_sharded();
        }
        let apply_ms = apply_start.elapsed().as_secs_f64() * 1e3;

        self.iteration += 1;
        if migrations == 0 {
            self.quiet_streak += 1;
        } else {
            self.quiet_streak = 0;
        }
        let profile = SweepProfile {
            active_before,
            active_after: self.active.num_active(),
            visited,
            shards_swept,
            num_shards: plan.num_shards(),
            slots_scheduled,
            decide_ms,
            merge_ms,
            apply_ms,
        };
        (self.stats_snapshot(migrations), profile)
    }

    /// Applies every admitted migration at once on the sharded fan-out.
    ///
    /// The migration set is frozen after admission and each vertex moves at
    /// most once, so a migrant's cut and degree-mass deltas are pure
    /// functions of the iteration-start labels plus the migration list: a
    /// neighbour's post-apply label is its own migration target if it is
    /// migrating (`pending` is sorted by vertex id, so membership is a
    /// binary search), its frozen label otherwise. Shards of the migrant
    /// list therefore compute independent `{cut delta, degree-mass delta,
    /// dirty list}` outcomes against the frozen snapshot — each
    /// migrant–migrant edge is counted by its lower-id endpoint, every
    /// other edge by its migrant — and the single-threaded merge folds
    /// them in shard order, then replays the label/size bookkeeping in
    /// admission order. The resulting state is identical to running
    /// [`AdaptivePartitioner::apply_move`] per migrant in admission order
    /// (dirty-marking is idempotent and the deltas are exact), which
    /// [`AdaptiveConfig::apply_serial`] keeps alive as the reference.
    fn apply_pending_sharded(&mut self) {
        let k = self.config.num_partitions as usize;
        let graph = &self.graph;
        let partitioning = &self.partitioning;
        let pending = &self.pending;
        debug_assert!(
            pending.windows(2).all(|w| w[0].0 < w[1].0),
            "pending not sorted by vertex id"
        );
        let plan = ShardPlan::with_default_size(pending.len());
        let outcomes = fanout::map_shards(self.config.parallelism, &plan, |_, migrants| {
            let mut out = ApplyOutcome {
                cut_delta: 0,
                mass_delta: vec![0i64; k],
                dirty: Vec::new(),
            };
            for i in migrants {
                let (v, to) = pending[i];
                let from = partitioning.partition_of(v);
                if from == to {
                    continue;
                }
                out.dirty.push(v as usize);
                for &w in graph.neighbors(v) {
                    // The neighbour sees v's label change: it re-enters
                    // the active set (exactly as `apply_move` marks it).
                    out.dirty.push(w as usize);
                    let old_w = partitioning.partition_of(w);
                    let (new_w, counts_edge) = match migrant_target(pending, w) {
                        // A migrant–migrant edge contributes one delta,
                        // owned by the lower-id endpoint.
                        Some(target) => (target, v < w),
                        None => (old_w, true),
                    };
                    if counts_edge {
                        out.cut_delta += (to != new_w) as i64 - (from != old_w) as i64;
                    }
                }
                let deg = graph.degree(v) as i64;
                out.mass_delta[from as usize] -= deg;
                out.mass_delta[to as usize] += deg;
            }
            out
        });

        let mut cut = self.cut as i64;
        for out in &outcomes {
            cut += out.cut_delta;
            for (p, delta) in out.mass_delta.iter().enumerate() {
                self.degree_mass[p] = (self.degree_mass[p] as i64 + delta) as usize;
            }
            for &slot in &out.dirty {
                self.active.mark(slot);
            }
        }
        self.cut = cut as usize;
        for i in 0..self.pending.len() {
            let (v, to) = self.pending[i];
            let from = self.partitioning.partition_of(v);
            if from == to {
                continue;
            }
            self.partitioning.move_vertex(v, to);
            // Only the migrant's own label changed; neighbours are dirty
            // for the *sweep* (out.dirty above), not for checkpoints.
            self.changed.mark(v as usize);
            self.note_size_gain(to);
            self.note_size_loss(from);
        }
    }

    fn apply_move(&mut self, v: VertexId, to: PartitionId) {
        let from = self.partitioning.partition_of(v);
        if from == to {
            return;
        }
        for &w in self.graph.neighbors(v) {
            let pw = self.partitioning.partition_of(w);
            if pw == from {
                self.cut += 1; // was internal, becomes cut
            } else if pw == to {
                self.cut -= 1; // was cut, becomes internal
            }
            // The neighbour sees v's label change: its decision may differ
            // next iteration, so it re-enters the active set.
            self.active.mark(w as usize);
        }
        self.active.mark(v as usize);
        // Checkpoint-wise only v's own state (its label) changed.
        self.changed.mark(v as usize);
        let deg = self.graph.degree(v);
        self.degree_mass[from as usize] -= deg;
        self.degree_mass[to as usize] += deg;
        self.partitioning.move_vertex(v, to);
        self.note_size_gain(to);
        self.note_size_loss(from);
    }

    /// Partition `p` gained a vertex: its new size may be the new maximum.
    fn note_size_gain(&mut self, p: PartitionId) {
        let size = self.partitioning.size(p);
        if size > self.max_live {
            self.max_live = size;
        }
    }

    /// Partition `p` lost a vertex: if it held the maximum, the maximum
    /// may have shrunk — flag it for lazy recomputation instead of paying
    /// an `O(k)` rescan on every move.
    fn note_size_loss(&mut self, p: PartitionId) {
        if self.partitioning.size(p) + 1 == self.max_live {
            self.max_stale = true;
        }
    }

    fn stats_snapshot(&mut self, migrations: usize) -> IterationStats {
        if self.max_stale {
            self.max_live = self.partitioning.sizes().iter().copied().max().unwrap_or(0);
            self.max_stale = false;
        }
        IterationStats {
            iteration: self.iteration - 1,
            migrations,
            cut_edges: self.cut,
            live_vertices: self.graph.num_live_vertices(),
            num_edges: self.graph.num_edges(),
            max_partition: self.max_live,
        }
    }

    /// Fast-forwards the counters over `n` skipped iterations that are
    /// provably migration-free — the adaptive per-batch budget's way of
    /// charging iterations it never executes (a drained active set means
    /// every remaining budgeted iteration would visit nothing and migrate
    /// nothing). The iteration counter keys the per-vertex RNG streams, so
    /// charging keeps every future draw aligned with a run that executed
    /// the skipped iterations; the quiet streak advances exactly as `n`
    /// migration-free [`AdaptivePartitioner::iterate`] calls would have.
    pub(crate) fn charge_quiet_iterations(&mut self, n: usize) {
        self.iteration += n;
        self.quiet_streak += n;
    }

    /// Runs exactly `n` iterations, returning their stats.
    pub fn run_for(&mut self, n: usize) -> Vec<IterationStats> {
        (0..n).map(|_| self.iterate()).collect()
    }

    /// Runs until convergence (no migrations for
    /// `config.convergence_window` consecutive iterations) or until
    /// `config.max_iterations` iterations have been executed in this call.
    pub fn run_to_convergence(&mut self) -> ConvergenceReport {
        let initial_cut = self.cut;
        let initial_edges = self.graph.num_edges();
        let mut history = Vec::new();
        for _ in 0..self.config.max_iterations {
            history.push(self.iterate());
            if self.is_converged() {
                break;
            }
        }
        ConvergenceReport::new(
            history,
            initial_cut,
            initial_edges,
            self.config.convergence_window,
        )
    }

    // ---- dynamic graph mutations -------------------------------------
    //
    // The canonical mutation path is [`AdaptivePartitioner::apply_batch`];
    // the per-delta methods below are its building blocks and remain
    // public for tests and fine-grained callers. Every path maintains the
    // incremental cut, partition sizes, and degree mass.

    /// Applies an [`UpdateBatch`] through the partitioner: the resulting
    /// graph and [`ApplyReport`] are identical to [`UpdateBatch::apply`] on
    /// a bare [`DynGraph`] (the application loop is literally shared, via
    /// [`DeltaTarget`]), while the incremental accounting is maintained
    /// across every delta and new vertices are placed by the configured
    /// [`PlacementPolicy`].
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> ApplyReport {
        batch.apply_to(self)
    }

    /// Streams in a new vertex with the given neighbours, placing it
    /// according to the configured [`PlacementPolicy`]. Returns its id.
    ///
    /// Edges to tombstoned or unknown endpoints are ignored (the stream may
    /// race with removals, as in the paper's CDR scenario).
    pub fn add_vertex_with_edges(&mut self, neighbors: &[VertexId]) -> VertexId {
        let v = self.insert_vertex();
        for &w in neighbors {
            self.add_edge(v, w);
        }
        v
    }

    /// Adds an isolated vertex and places it; resets the quiet streak. The
    /// new vertex starts active (it owes a first evaluation).
    fn insert_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        let p = self.place_new_vertex(v);
        self.partitioning.grow_to(v as usize + 1, p);
        self.active.grow_to(v as usize + 1);
        self.active.mark(v as usize);
        self.changed.grow_to(v as usize + 1);
        self.changed.mark(v as usize);
        self.note_size_gain(p);
        self.quiet_streak = 0;
        v
    }

    /// Adds an undirected edge; returns whether the graph changed. Both
    /// endpoints re-enter the active set — and only they: an edge flip
    /// changes the endpoints' own neighbour multisets, while every other
    /// vertex's candidate counts are untouched (their neighbour sets and
    /// neighbour *labels* did not move), so marking just `u` and `v` is
    /// already exact and keeps hub-incident churn cheap.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let added = self.graph.add_edge(u, v);
        if added {
            if self.partitioning.partition_of(u) != self.partitioning.partition_of(v) {
                self.cut += 1;
            }
            self.degree_mass[self.partitioning.partition_of(u) as usize] += 1;
            self.degree_mass[self.partitioning.partition_of(v) as usize] += 1;
            self.active.mark(u as usize);
            self.active.mark(v as usize);
            self.changed.mark(u as usize);
            self.changed.mark(v as usize);
            self.quiet_streak = 0;
        }
        added
    }

    /// Removes an undirected edge; returns whether the graph changed. Both
    /// endpoints re-enter the active set (and only they — see
    /// [`AdaptivePartitioner::add_edge`] for why that is exact).
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let removed = self.graph.remove_edge(u, v);
        if removed {
            if self.partitioning.partition_of(u) != self.partitioning.partition_of(v) {
                self.cut -= 1;
            }
            self.degree_mass[self.partitioning.partition_of(u) as usize] -= 1;
            self.degree_mass[self.partitioning.partition_of(v) as usize] -= 1;
            self.active.mark(u as usize);
            self.active.mark(v as usize);
            self.changed.mark(u as usize);
            self.changed.mark(v as usize);
            self.quiet_streak = 0;
        }
        removed
    }

    /// Removes a vertex and its incident edges; returns whether the graph
    /// changed. Every former neighbour re-enters the active set (each lost
    /// an edge); the tombstone itself leaves it.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if !self.graph.is_vertex(v) {
            return false;
        }
        let pv = self.partitioning.partition_of(v);
        for &w in self.graph.neighbors(v) {
            if self.partitioning.partition_of(w) != pv {
                self.cut -= 1;
            }
            self.degree_mass[self.partitioning.partition_of(w) as usize] -= 1;
            self.active.mark(w as usize);
            self.changed.mark(w as usize);
        }
        self.degree_mass[pv as usize] -= self.graph.degree(v);
        self.graph.remove_vertex(v);
        self.partitioning.forget_vertex(v);
        self.note_size_loss(pv);
        self.active.clear(v as usize);
        // The tombstone leaves the sweep but *is* a checkpoint change.
        self.changed.mark(v as usize);
        self.quiet_streak = 0;
        true
    }

    fn place_new_vertex(&mut self, v: VertexId) -> PartitionId {
        let k = self.config.num_partitions;
        let caps = self.capacities();
        let least_loaded = || -> PartitionId {
            (0..k)
                .min_by_key(|&p| self.partitioning.size(p))
                .expect("k >= 1")
        };
        match self.config.placement {
            PlacementPolicy::LeastLoaded => least_loaded(),
            PlacementPolicy::HashWithFallback => {
                let p = (hash_vertex(v) % k as u64) as PartitionId;
                if caps.remaining(p, self.partitioning.size(p)) > 0 {
                    p
                } else {
                    least_loaded()
                }
            }
        }
    }

    /// Captures the partitioner's complete logical state for persistence:
    /// graph (tombstones included), assignment with live sizes, config,
    /// seed, iteration counter and quiet streak, plus fixed capacities if
    /// any were set.
    ///
    /// The capture is *complete* in the determinism sense:
    /// [`AdaptivePartitioner::restore`] on the returned state yields a
    /// partitioner whose future [`AdaptivePartitioner::iterate`] history is
    /// identical to this one's — the iteration counter keys the per-shard
    /// RNG streams, so it must survive the trip. The incremental
    /// accounting (cut, degree mass) is *not* captured: it is a pure
    /// function of graph + assignment and is recomputed on restore.
    pub fn snapshot_state(&self) -> crate::persist::PartitionerState {
        crate::persist::PartitionerState {
            graph: self.graph.clone(),
            partitioning: self.partitioning.clone(),
            config: self.config.clone(),
            seed: self.seed,
            iteration: self.iteration,
            quiet_streak: self.quiet_streak,
            fixed_capacities: match &self.capacity_mode {
                CapacityMode::Auto => None,
                CapacityMode::Fixed(caps) => Some(caps.clone()),
            },
        }
    }

    /// Rebuilds a partitioner from state captured by
    /// [`AdaptivePartitioner::snapshot_state`] (possibly on a previous
    /// process), recomputing the incremental accounting. The active set is
    /// not part of the captured state: restore conservatively marks every
    /// live vertex active, which is exact — the vertices the original had
    /// retired would all have decided *Stay*, so kill-and-resume timelines
    /// stay byte-equal (the extra first-sweep evaluations retire them
    /// again without producing migrations).
    ///
    /// # Panics
    ///
    /// Panics if the state is internally inconsistent (assignment not
    /// covering the graph, partition-count mismatch). Decoded states are
    /// validated before this is reached; see
    /// [`crate::persist::PartitionerState`].
    pub fn restore(state: crate::persist::PartitionerState) -> Self {
        assert_eq!(
            state.partitioning.num_vertices(),
            state.graph.num_vertices(),
            "assignment does not cover the graph"
        );
        assert_eq!(
            state.partitioning.num_partitions(),
            state.config.num_partitions,
            "partition count mismatch"
        );
        let capacity_mode = match state.fixed_capacities {
            None => CapacityMode::Auto,
            Some(caps) => {
                assert_eq!(
                    caps.num_partitions(),
                    state.config.num_partitions,
                    "capacity table does not match the partition count"
                );
                CapacityMode::Fixed(caps)
            }
        };
        let mut p = Self::from_parts(
            state.graph,
            state.partitioning,
            state.config,
            capacity_mode,
            state.seed,
        );
        p.iteration = state.iteration;
        p.quiet_streak = state.quiet_streak;
        p
    }

    /// Audits internal invariants (incremental cut vs recount, size
    /// accounting, max-partition tracking, the active-set invariant); used
    /// by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn audit(&self) {
        let recount = cut_edges(&self.graph, &self.partitioning);
        assert_eq!(self.cut, recount, "incremental cut drifted");
        let mut sizes = vec![0usize; self.config.num_partitions as usize];
        let mut mass = vec![0usize; self.config.num_partitions as usize];
        for v in self.graph.vertices() {
            sizes[self.partitioning.partition_of(v) as usize] += 1;
            mass[self.partitioning.partition_of(v) as usize] += self.graph.degree(v);
        }
        assert_eq!(
            sizes.as_slice(),
            self.partitioning.sizes(),
            "size accounting drifted"
        );
        assert_eq!(mass, self.degree_mass, "degree-mass accounting drifted");
        let true_max = sizes.iter().copied().max().unwrap_or(0);
        if self.max_stale {
            assert!(
                self.max_live >= true_max,
                "stale max-partition tracking fell below the true maximum"
            );
        } else {
            assert_eq!(self.max_live, true_max, "max-partition tracking drifted");
        }
        // Active-set exactness invariant: every *inactive* live vertex must
        // provably decide Stay — no partition may outweigh its current one
        // among its neighbours (ties resolve to Stay deterministically, so
        // equality is safe; randomness only enters once another partition
        // strictly wins). This is precisely what makes skipping inactive
        // vertices indistinguishable from evaluating them.
        self.active.audit();
        assert_eq!(
            self.active.len(),
            self.graph.num_vertices(),
            "active set does not cover the slot range"
        );
        let mut counts = vec![0u32; self.config.num_partitions as usize];
        for v in self.graph.vertices() {
            if self.active.contains(v as usize) {
                continue;
            }
            counts.iter_mut().for_each(|c| *c = 0);
            for &w in self.graph.neighbors(v) {
                counts[self.partitioning.partition_of(w) as usize] += 1;
            }
            let pv = self.partitioning.partition_of(v);
            let own = counts[pv as usize] + self.config.count_self as u32;
            for (p, &count) in counts.iter().enumerate() {
                assert!(
                    p == pv as usize || count <= own,
                    "inactive vertex {v} could migrate: partition {p} holds \
                     {count} of its neighbours vs {own} at home"
                );
            }
        }
        for slot in self.active.iter() {
            assert!(
                self.graph.is_vertex(slot as VertexId),
                "tombstone {slot} lingering in the active set"
            );
        }
    }
}

/// The partitioner as a delta target: [`UpdateBatch::apply_to`]'s single
/// shared application loop drives these hooks, so the partitioner's batch
/// path cannot drift from a bare graph's.
impl DeltaTarget for AdaptivePartitioner {
    fn delta_add_vertex(&mut self) -> VertexId {
        self.insert_vertex()
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.add_edge(u, v)
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.remove_edge(u, v)
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.graph.is_vertex(v) {
            return None;
        }
        let degree = self.graph.degree(v);
        self.remove_vertex(v);
        Some(degree)
    }
}

/// What one shard's decision pass produced: migration proposals (ascending
/// vertex order), vertices proven interior (to retire from the active
/// set), and how many slots it visited.
#[derive(Debug, Default)]
struct ShardOutcome {
    proposals: Vec<(VertexId, PartitionId)>,
    retire: Vec<VertexId>,
    visited: usize,
}

/// What one shard of the parallel apply produced: the cut and degree-mass
/// deltas of its migrants' moves, computed against the frozen
/// iteration-start labels, plus the slots those moves dirty. Folding the
/// outcomes in shard order reproduces the serial
/// [`AdaptivePartitioner::apply_move`] loop's final state exactly.
#[derive(Debug)]
struct ApplyOutcome {
    cut_delta: i64,
    mass_delta: Vec<i64>,
    dirty: Vec<usize>,
}

/// Looks up `w`'s admitted migration target, if any. `pending` is sorted
/// ascending by vertex id (admission order), so membership is a binary
/// search.
fn migrant_target(pending: &[(VertexId, PartitionId)], w: VertexId) -> Option<PartitionId> {
    pending
        .binary_search_by_key(&w, |&(v, _)| v)
        .ok()
        .map(|i| pending[i].1)
}

/// Evaluates one vertex against the frozen iteration-start snapshot.
///
/// Every draw comes from the vertex's own `(seed, vertex, round)` RNG —
/// first the willingness roll, then any tie-breaks inside the kernel — so
/// the outcome is independent of which other vertices were visited. A
/// vertex that decides *Stay* is retired from the active set: Stay is
/// deterministic (the current partition wins every tie), so with an
/// unchanged neighbourhood the vertex would decide Stay on every future
/// iteration too.
///
/// `neighbors(v)` is walked exactly **once**: the kernel's label histogram
/// is both the candidate tally and the interior-vertex early-out (a vertex
/// whose neighbours all share its label makes its own partition the unique
/// best, so the kernel returns Stay — without a random draw — and the
/// vertex retires). Draw-for-draw identical to the old two-pass shape,
/// which pre-scanned the neighbours for a differing label before tallying:
/// the kernel only consumes randomness when several *foreign* partitions
/// tie for best, which an interior vertex cannot produce.
#[allow(clippy::too_many_arguments)]
#[inline]
fn evaluate_vertex(
    v: VertexId,
    s: f64,
    seed: u64,
    round: u64,
    graph: &DynGraph,
    partitioning: &Partitioning,
    kernel: &mut DecisionKernel,
    out: &mut ShardOutcome,
) {
    out.visited += 1;
    let mut rng = vertex_rng(seed, v as u64, round);
    if s < 1.0 && !rng.gen_bool(s) {
        // Declined to evaluate this round: it stays active and re-rolls
        // next iteration, exactly as an exhaustive sweep would.
        return;
    }
    let current = partitioning.partition_of(v);
    match kernel.decide(
        current,
        graph
            .neighbors(v)
            .iter()
            .map(|&w| partitioning.partition_of(w)),
        &mut rng,
    ) {
        MigrationDecision::Stay => out.retire.push(v),
        MigrationDecision::Migrate(to) => out.proposals.push((v, to)),
    }
}

/// Copies any [`Graph`] into a [`DynGraph`], degree prepass first: every
/// adjacency span is preallocated at its exact final size, so the edge
/// replay fills spans in place without a single relocation. All `n` slots
/// come out live, matching the historical behaviour of this conversion
/// (sources with tombstones resurrect them as isolated vertices).
fn to_dyn<G: Graph>(graph: &G) -> DynGraph {
    let mut degrees = vec![0usize; graph.num_vertices()];
    for v in graph.vertices() {
        degrees[v as usize] = graph.degree(v);
    }
    let mut d = DynGraph::with_degree_capacities(&degrees);
    for v in graph.vertices() {
        for &w in graph.neighbors(v) {
            if w > v {
                d.add_edge(v, w);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use apg_partition::vertex_imbalance;

    fn mesh_partitioner(s: f64, seed: u64) -> AdaptivePartitioner {
        let g = gen::mesh3d(8, 8, 8);
        let cfg = AdaptiveConfig::new(4).willingness(s);
        AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed)
    }

    #[test]
    fn cut_decreases_markedly_on_mesh() {
        let mut p = mesh_partitioner(0.5, 1);
        let before = p.cut_ratio();
        p.run_for(60);
        let after = p.cut_ratio();
        assert!(after < 0.5 * before, "cut only went {before} -> {after}");
        p.audit();
    }

    #[test]
    fn willingness_zero_freezes_everything() {
        let mut p = mesh_partitioner(0.0, 2);
        let before = p.partitioning().clone();
        let stats = p.run_for(5);
        assert!(stats.iter().all(|s| s.migrations == 0));
        assert_eq!(p.partitioning(), &before);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = mesh_partitioner(1.0, 3);
        for _ in 0..40 {
            p.iterate();
            let caps = p.capacities();
            for part in 0..4u16 {
                assert!(
                    p.partitioning().size(part) <= caps.capacity(part),
                    "partition {part} exceeded capacity at iteration {}",
                    p.iteration()
                );
            }
        }
    }

    #[test]
    fn balance_stays_bounded() {
        let mut p = mesh_partitioner(0.5, 4);
        p.run_for(80);
        let imb = vertex_imbalance(p.partitioning());
        assert!(imb <= 1.11, "imbalance {imb} above capacity factor");
    }

    #[test]
    fn converges_on_small_mesh() {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(4).max_iterations(600);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 5);
        let report = p.run_to_convergence();
        assert!(report.converged(), "did not converge in 600 iterations");
        assert!(p.is_converged());
    }

    #[test]
    fn incremental_cut_matches_recount_under_churn() {
        let mut p = mesh_partitioner(0.7, 6);
        p.run_for(10);
        // Interleave mutations with iterations.
        let v1 = p.add_vertex_with_edges(&[0, 1, 2, 3]);
        p.add_edge(v1, 10);
        p.remove_edge(0, 1);
        p.remove_vertex(5);
        p.run_for(5);
        p.audit();
    }

    #[test]
    fn mutations_reset_convergence() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2).max_iterations(400);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 7);
        p.run_to_convergence();
        assert!(p.is_converged());
        p.add_vertex_with_edges(&[0, 1]);
        assert!(!p.is_converged(), "mutation must reset the quiet streak");
    }

    #[test]
    fn new_vertex_migrates_towards_neighbours() {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(3).willingness(1.0);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 8);
        p.run_for(100);
        // Attach a vertex entirely to partition owners of vertex 0's area.
        let anchor = 0u32;
        let target_part = p.partitioning().partition_of(anchor);
        let neighbours: Vec<VertexId> = std::iter::once(anchor)
            .chain(p.graph().neighbors(anchor).iter().copied())
            .filter(|&w| p.partitioning().partition_of(w) == target_part)
            .collect();
        let v = p.add_vertex_with_edges(&neighbours);
        p.run_for(20);
        assert_eq!(
            p.partitioning().partition_of(v),
            target_part,
            "vertex should have migrated to its neighbourhood"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = mesh_partitioner(0.5, 11);
        let mut b = mesh_partitioner(0.5, 11);
        a.run_for(20);
        b.run_for(20);
        assert_eq!(a.partitioning(), b.partitioning());
        assert_eq!(a.cut_edges(), b.cut_edges());
    }

    #[test]
    fn parallel_sweep_is_thread_count_invariant() {
        // 8000 slots span multiple shards, so parallelism > 1 genuinely
        // fans out; the histories must be identical anyway.
        let g = gen::mesh3d(20, 20, 20);
        let run = |threads: usize| {
            let cfg = AdaptiveConfig::new(4).parallelism(threads);
            let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 17);
            let history = p.run_for(25);
            p.audit();
            (history, p.partitioning().clone(), p.cut_edges())
        };
        let sequential = run(1);
        assert_eq!(sequential, run(3));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn sharded_apply_matches_serial_apply() {
        let g = gen::mesh3d(12, 12, 12);
        let run = |serial: bool, threads: usize| {
            let cfg = AdaptiveConfig::new(4)
                .willingness(1.0)
                .parallelism(threads)
                .apply_serial(serial);
            let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 41);
            let mut history = p.run_for(12);
            let v = p.add_vertex_with_edges(&[0, 5, 9]);
            p.add_edge(v, 100);
            p.remove_vertex(200);
            history.extend(p.run_for(12));
            p.audit();
            (
                history,
                p.partitioning().clone(),
                p.cut_edges(),
                p.degree_mass().to_vec(),
            )
        };
        let reference = run(true, 1);
        assert_eq!(reference, run(false, 1));
        assert_eq!(reference, run(false, 8));
    }

    #[test]
    fn from_partitioning_resumes() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2);
        let p1 = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 1);
        let assignment = p1.partitioning().clone();
        let p2 = AdaptivePartitioner::from_partitioning(&g, assignment.clone(), &cfg, 2);
        assert_eq!(p2.partitioning(), &assignment);
        assert_eq!(p2.cut_edges(), cut_edges(&g, &assignment));
    }

    #[test]
    fn active_sweep_matches_exhaustive_sweep() {
        // The tentpole contract: with per-vertex RNG keying, skipping
        // interior vertices is exact — histories are identical whether the
        // active-set skip is on (default) or forced off.
        let g = gen::mesh3d(10, 10, 10);
        let run = |exhaustive: bool| {
            let cfg = AdaptiveConfig::new(4)
                .willingness(0.7)
                .sweep_exhaustive(exhaustive);
            let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 23);
            let mut history = p.run_for(8);
            let v = p.add_vertex_with_edges(&[0, 1, 5, 17]);
            p.add_edge(v, 40);
            p.remove_edge(2, 3);
            p.remove_vertex(77);
            history.extend(p.run_for(8));
            p.audit();
            (history, p.partitioning().clone(), p.cut_edges())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn stay_deciders_retire_from_the_active_set() {
        let g = gen::mesh3d(8, 8, 8);
        let cfg = AdaptiveConfig::new(4).max_iterations(500);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 9);
        let all = p.num_active_vertices();
        assert_eq!(all, 512, "everything starts active");
        let report = p.run_to_convergence();
        assert!(report.converged(), "mesh refinement did not go quiet");
        p.audit();
        // Quiet for the whole convergence window means every vertex has
        // long since evaluated to a stable Stay and retired — boundary
        // vertices included (Stay is deterministic, so sitting on the cut
        // does not keep a vertex active). Only quota-starved would-be
        // migrants could linger, and a converged mesh has none.
        assert!(
            p.num_active_vertices() <= all / 50,
            "converged mesh still has {} of {all} vertices active",
            p.num_active_vertices()
        );
        // The sweep visits exactly the active set.
        let active = p.num_active_vertices();
        let (_, profile) = p.iterate_profiled();
        assert_eq!(profile.active_before, active);
        assert_eq!(profile.visited, active);
        assert!(profile.shards_swept <= profile.num_shards);
        // The scheduled slot footprint is trimmed to the dirtied region:
        // never wider than the full plan, never narrower than the slots it
        // must visit.
        assert!(profile.slots_scheduled <= profile.num_shards * apg_exec::DEFAULT_SHARD_SIZE);
        assert!(profile.slots_scheduled >= profile.visited);
    }

    #[test]
    fn dirty_region_trims_the_scheduled_footprint() {
        let g = gen::mesh3d(8, 8, 8);
        let cfg = AdaptiveConfig::new(4).max_iterations(500);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 9);
        // First iteration: everything is dirty, so the scheduled footprint
        // is the full slot range.
        let (_, first) = p.iterate_profiled();
        assert_eq!(first.slots_scheduled, 512);
        p.run_to_convergence();
        // Perturb two distant vertices: the next sweep schedules only the
        // slivers around them, not whole 4096-wide shards (the mesh fits in
        // one shard, so without trimming this would be 512 slots).
        let mut batch = apg_graph::UpdateBatch::new();
        batch.remove_edge(0, 1);
        p.apply_batch(&batch);
        let dirtied = p.num_active_vertices();
        let (_, profile) = p.iterate_profiled();
        assert!(dirtied > 0);
        assert!(
            profile.slots_scheduled < 512,
            "footprint {} not trimmed below the full slot range",
            profile.slots_scheduled
        );
        assert!(profile.slots_scheduled >= dirtied);
    }

    #[test]
    fn mutations_reactivate_the_perturbed_region() {
        let g = gen::mesh3d(8, 8, 8);
        let cfg = AdaptiveConfig::new(4).willingness(1.0).max_iterations(400);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 31);
        p.run_to_convergence();
        let quiet = p.num_active_vertices();
        // An edge between two vertices re-activates both neighbourhoods.
        let (u, v) = (0u32, 300u32);
        assert!(p.add_edge(u, v) || p.remove_edge(u, v));
        assert!(p.is_active(u) && p.is_active(v));
        assert!(p.num_active_vertices() > quiet);
        p.audit();
    }

    #[test]
    fn restore_reactivates_all_live_vertices() {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(3).willingness(1.0);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 12);
        p.run_for(20);
        assert!(p.num_active_vertices() < p.graph().num_live_vertices());
        let restored = AdaptivePartitioner::restore(p.snapshot_state());
        assert_eq!(
            restored.num_active_vertices(),
            restored.graph().num_live_vertices(),
            "restore must conservatively re-mark every live vertex"
        );
        // ... and the conservative re-marking is exact: both futures agree.
        let mut a = p;
        let mut b = restored;
        assert_eq!(a.run_for(10), b.run_for(10));
        b.audit();
    }

    #[test]
    fn max_partition_tracking_matches_rescan() {
        let mut p = mesh_partitioner(0.8, 15);
        for _ in 0..25 {
            let stats = p.iterate();
            let rescan = p.partitioning().sizes().iter().copied().max().unwrap();
            assert_eq!(stats.max_partition, rescan);
        }
        p.remove_vertex(3);
        p.remove_vertex(100);
        let v = p.add_vertex_with_edges(&[0, 1]);
        p.add_edge(v, 2);
        let stats = p.iterate();
        let rescan = p.partitioning().sizes().iter().copied().max().unwrap();
        assert_eq!(stats.max_partition, rescan);
        p.audit();
    }

    #[test]
    fn fixed_capacities_are_respected() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2).willingness(1.0);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 3);
        let tight = CapacityModel::vertex_balanced(64, 2, 1.0);
        p.set_fixed_capacities(tight.clone());
        p.run_for(30);
        for part in 0..2u16 {
            assert!(p.partitioning().size(part) <= tight.capacity(part));
        }
    }
}
