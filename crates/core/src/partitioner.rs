//! The adaptive iterative vertex-migration partitioner.

use rand::Rng;
use serde::{Deserialize, Serialize};

use apg_exec::{fanout, merge_in_order, stream_rng, ShardPlan};
use apg_graph::delta::DeltaTarget;
use apg_graph::{ApplyReport, DynGraph, Graph, UpdateBatch, VertexId};
use apg_partition::{
    cut_edges, initial::hash_vertex, CapacityModel, InitialStrategy, PartitionId, Partitioning,
};

use crate::candidates::{DecisionKernel, MigrationDecision};
use crate::config::{AdaptiveConfig, PlacementPolicy};
use crate::quota::QuotaTable;
use crate::runner::ConvergenceReport;

/// Metrics recorded after each iteration of the algorithm.
///
/// These are exactly the series the paper plots in Figure 7: number of cut
/// edges, number of migrations, and the graph population they refer to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IterationStats {
    /// Iteration index (0-based).
    pub iteration: usize,
    /// Vertices migrated during this iteration.
    pub migrations: usize,
    /// Cut edges after this iteration.
    pub cut_edges: usize,
    /// Live vertices after this iteration.
    pub live_vertices: usize,
    /// Edges after this iteration.
    pub num_edges: usize,
    /// Largest partition size after this iteration.
    pub max_partition: usize,
}

impl IterationStats {
    /// Cut edges normalised by total edges (0 for edgeless graphs).
    pub fn cut_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.num_edges as f64
        }
    }
}

/// How capacities are maintained as the graph evolves.
#[derive(Debug, Clone)]
enum CapacityMode {
    /// Recomputed every iteration as `factor x` the balanced load of the
    /// *current* live population — capacities track graph growth, which is
    /// what lets the heuristic absorb the paper's +10% forest-fire burst.
    Auto,
    /// Fixed, caller-supplied limits.
    Fixed(CapacityModel),
}

/// The paper's adaptive partitioner at the logical level (§2).
///
/// Owns a [`DynGraph`] and its [`Partitioning`] and advances them one
/// iteration at a time; graph mutations may be interleaved with iterations,
/// which is the "adaptive" part. The cut-edge count is maintained
/// incrementally, so per-iteration cost is `O(|V| + Σ deg(migrants))`, not
/// `O(|E|)`.
///
/// # Parallel execution
///
/// Each iteration's decision phase runs on up to
/// [`AdaptiveConfig::parallelism`] threads: the vertex-slot range is cut
/// into fixed-size shards (`apg-exec`), every shard evaluates its vertices
/// with a private [`DecisionKernel`] and an RNG stream derived from
/// `(seed, shard, iteration)`, all against the **frozen snapshot** of the
/// graph and assignment taken at the start of the iteration (the `&self`
/// borrow guarantees no mutation can interleave). Quota admission and the
/// actual moves happen afterwards in a single-threaded merge, in ascending
/// vertex order. Because nothing random or order-dependent is tied to a
/// thread, the migration history for a fixed seed is identical at every
/// parallelism level.
///
/// # Example
///
/// ```
/// use apg_core::{AdaptiveConfig, AdaptivePartitioner};
/// use apg_graph::gen;
/// use apg_partition::InitialStrategy;
///
/// let g = gen::mesh3d(8, 8, 8);
/// let cfg = AdaptiveConfig::new(4);
/// let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 7);
/// let before = p.cut_edges();
/// p.run_for(50);
/// assert!(p.cut_edges() < before);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptivePartitioner {
    graph: DynGraph,
    partitioning: Partitioning,
    config: AdaptiveConfig,
    capacity_mode: CapacityMode,
    seed: u64,
    cut: usize,
    /// Per-partition degree mass (edge endpoints), maintained for the
    /// edge-balanced extension and load diagnostics.
    degree_mass: Vec<usize>,
    iteration: usize,
    quiet_streak: usize,
    pending: Vec<(VertexId, PartitionId)>,
}

impl AdaptivePartitioner {
    /// Creates a partitioner over a copy of `graph`, initialised with the
    /// given strategy and automatic capacities
    /// (`config.capacity_factor x` balanced load, tracking graph size).
    pub fn with_strategy<G: Graph>(
        graph: &G,
        strategy: InitialStrategy,
        config: &AdaptiveConfig,
        seed: u64,
    ) -> Self {
        let caps = CapacityModel::vertex_balanced(
            graph.num_live_vertices(),
            config.num_partitions,
            config.capacity_factor,
        );
        let partitioning = strategy.assign(graph, &caps, seed);
        Self::from_parts(
            to_dyn(graph),
            partitioning,
            config.clone(),
            CapacityMode::Auto,
            seed,
        )
    }

    /// Creates a partitioner from an existing assignment (e.g. produced by
    /// `apg-metis`, or resumed from a snapshot).
    ///
    /// # Panics
    ///
    /// Panics if the assignment length differs from the graph's vertex-slot
    /// count or its `k` differs from the config's.
    pub fn from_partitioning<G: Graph>(
        graph: &G,
        partitioning: Partitioning,
        config: &AdaptiveConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(
            partitioning.num_vertices(),
            graph.num_vertices(),
            "assignment does not cover the graph"
        );
        assert_eq!(
            partitioning.num_partitions(),
            config.num_partitions,
            "partition count mismatch"
        );
        Self::from_parts(
            to_dyn(graph),
            partitioning,
            config.clone(),
            CapacityMode::Auto,
            seed,
        )
    }

    /// Replaces automatic capacity tracking with fixed explicit limits.
    pub fn set_fixed_capacities(&mut self, caps: CapacityModel) {
        assert_eq!(
            caps.num_partitions(),
            self.config.num_partitions,
            "partition count mismatch"
        );
        self.capacity_mode = CapacityMode::Fixed(caps);
    }

    fn from_parts(
        graph: DynGraph,
        mut partitioning: Partitioning,
        config: AdaptiveConfig,
        capacity_mode: CapacityMode,
        seed: u64,
    ) -> Self {
        partitioning.recount_live(&graph);
        let cut = cut_edges(&graph, &partitioning);
        let mut degree_mass = vec![0usize; config.num_partitions as usize];
        for v in graph.vertices() {
            degree_mass[partitioning.partition_of(v) as usize] += graph.degree(v);
        }
        AdaptivePartitioner {
            graph,
            partitioning,
            config,
            capacity_mode,
            seed,
            cut,
            degree_mass,
            iteration: 0,
            quiet_streak: 0,
            pending: Vec::new(),
        }
    }

    /// The graph being partitioned.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current assignment.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Current number of cut edges (maintained incrementally).
    pub fn cut_edges(&self) -> usize {
        self.cut
    }

    /// Current cut ratio.
    pub fn cut_ratio(&self) -> f64 {
        if self.graph.num_edges() == 0 {
            0.0
        } else {
            self.cut as f64 / self.graph.num_edges() as f64
        }
    }

    /// Iterations executed so far.
    pub fn iteration(&self) -> usize {
        self.iteration
    }

    /// Consecutive migration-free iterations.
    pub fn quiet_streak(&self) -> usize {
        self.quiet_streak
    }

    /// Whether the convergence criterion (no migrations for
    /// `config.convergence_window` iterations) currently holds.
    pub fn is_converged(&self) -> bool {
        self.quiet_streak >= self.config.convergence_window
    }

    /// Current capacity limits (vertex- or degree-mass-denominated,
    /// depending on [`AdaptiveConfig::balance_edges`]).
    pub fn capacities(&self) -> CapacityModel {
        match &self.capacity_mode {
            CapacityMode::Fixed(caps) => caps.clone(),
            CapacityMode::Auto if self.config.balance_edges => CapacityModel::edge_balanced(
                self.graph.num_edges().max(1),
                self.config.num_partitions,
                self.config.capacity_factor,
            ),
            CapacityMode::Auto => CapacityModel::vertex_balanced(
                self.graph.num_live_vertices(),
                self.config.num_partitions,
                self.config.capacity_factor,
            ),
        }
    }

    /// Per-partition degree mass (edge endpoints).
    pub fn degree_mass(&self) -> &[usize] {
        &self.degree_mass
    }

    /// Runs one iteration of the algorithm and reports its metrics.
    ///
    /// All migration decisions observe the assignment as it stood at the
    /// start of the iteration (the paper's iteration semantics); moves are
    /// applied together afterwards. The decision phase runs on up to
    /// [`AdaptiveConfig::parallelism`] threads with results independent of
    /// the thread count (see the type-level docs).
    pub fn iterate(&mut self) -> IterationStats {
        let k = self.config.num_partitions;
        let caps = self.capacities();
        let balance_edges = self.config.balance_edges;
        let remaining: Vec<usize> = (0..k)
            .map(|p| {
                let load = if balance_edges {
                    self.degree_mass[p as usize]
                } else {
                    self.partitioning.size(p)
                };
                caps.remaining(p, load)
            })
            .collect();
        let mut quota = QuotaTable::new(self.config.quota_rule, &remaining);

        // Decision phase: every shard proposes migrations for its slot range
        // against the frozen graph + assignment, drawing from its own
        // (seed, shard, iteration) RNG stream. Read-only, embarrassingly
        // parallel; proposals come back in shard order = vertex order.
        let s = self.config.willingness_at(self.iteration);
        let plan = ShardPlan::with_default_size(self.graph.slot_range().len());
        let graph = &self.graph;
        let partitioning = &self.partitioning;
        let count_self = self.config.count_self;
        let seed = self.seed;
        let round = self.iteration as u64;
        let proposals: Vec<Vec<(VertexId, PartitionId)>> =
            fanout::map_shards(self.config.parallelism, &plan, |shard, slots| {
                let mut kernel = DecisionKernel::new(k, count_self);
                let mut rng = stream_rng(seed, shard as u64, round);
                let mut out = Vec::new();
                for v in graph.live_in(slots) {
                    if s < 1.0 && !rng.gen_bool(s) {
                        continue;
                    }
                    let current = partitioning.partition_of(v);
                    let neighbor_parts = graph
                        .neighbors(v)
                        .iter()
                        .map(|&w| partitioning.partition_of(w));
                    if let MigrationDecision::Migrate(to) =
                        kernel.decide(current, neighbor_parts, &mut rng)
                    {
                        out.push((v, to));
                    }
                }
                out
            });

        // Merge phase: single-threaded and deterministic — admit proposals
        // against the quota table in ascending vertex order (exactly what a
        // sequential sweep would have consumed), then apply.
        self.pending.clear();
        for (v, to) in merge_in_order(proposals) {
            let current = self.partitioning.partition_of(v);
            let units = if balance_edges {
                self.graph.degree(v)
            } else {
                1
            };
            if quota.try_consume_units(current, to, units) {
                self.pending.push((v, to));
            }
        }

        // Apply phase: move vertices, updating the cut incrementally.
        let migrations = self.pending.len();
        let pending = std::mem::take(&mut self.pending);
        for &(v, to) in &pending {
            self.apply_move(v, to);
        }
        self.pending = pending;

        self.iteration += 1;
        if migrations == 0 {
            self.quiet_streak += 1;
        } else {
            self.quiet_streak = 0;
        }
        self.stats_snapshot(migrations)
    }

    fn apply_move(&mut self, v: VertexId, to: PartitionId) {
        let from = self.partitioning.partition_of(v);
        if from == to {
            return;
        }
        for &w in self.graph.neighbors(v) {
            let pw = self.partitioning.partition_of(w);
            if pw == from {
                self.cut += 1; // was internal, becomes cut
            } else if pw == to {
                self.cut -= 1; // was cut, becomes internal
            }
        }
        let deg = self.graph.degree(v);
        self.degree_mass[from as usize] -= deg;
        self.degree_mass[to as usize] += deg;
        self.partitioning.move_vertex(v, to);
    }

    fn stats_snapshot(&self, migrations: usize) -> IterationStats {
        IterationStats {
            iteration: self.iteration - 1,
            migrations,
            cut_edges: self.cut,
            live_vertices: self.graph.num_live_vertices(),
            num_edges: self.graph.num_edges(),
            max_partition: self.partitioning.sizes().iter().copied().max().unwrap_or(0),
        }
    }

    /// Runs exactly `n` iterations, returning their stats.
    pub fn run_for(&mut self, n: usize) -> Vec<IterationStats> {
        (0..n).map(|_| self.iterate()).collect()
    }

    /// Runs until convergence (no migrations for
    /// `config.convergence_window` consecutive iterations) or until
    /// `config.max_iterations` iterations have been executed in this call.
    pub fn run_to_convergence(&mut self) -> ConvergenceReport {
        let initial_cut = self.cut;
        let initial_edges = self.graph.num_edges();
        let mut history = Vec::new();
        for _ in 0..self.config.max_iterations {
            history.push(self.iterate());
            if self.is_converged() {
                break;
            }
        }
        ConvergenceReport::new(
            history,
            initial_cut,
            initial_edges,
            self.config.convergence_window,
        )
    }

    // ---- dynamic graph mutations -------------------------------------
    //
    // The canonical mutation path is [`AdaptivePartitioner::apply_batch`];
    // the per-delta methods below are its building blocks and remain
    // public for tests and fine-grained callers. Every path maintains the
    // incremental cut, partition sizes, and degree mass.

    /// Applies an [`UpdateBatch`] through the partitioner: the resulting
    /// graph and [`ApplyReport`] are identical to [`UpdateBatch::apply`] on
    /// a bare [`DynGraph`] (the application loop is literally shared, via
    /// [`DeltaTarget`]), while the incremental accounting is maintained
    /// across every delta and new vertices are placed by the configured
    /// [`PlacementPolicy`].
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> ApplyReport {
        batch.apply_to(self)
    }

    /// Streams in a new vertex with the given neighbours, placing it
    /// according to the configured [`PlacementPolicy`]. Returns its id.
    ///
    /// Edges to tombstoned or unknown endpoints are ignored (the stream may
    /// race with removals, as in the paper's CDR scenario).
    pub fn add_vertex_with_edges(&mut self, neighbors: &[VertexId]) -> VertexId {
        let v = self.insert_vertex();
        for &w in neighbors {
            self.add_edge(v, w);
        }
        v
    }

    /// Adds an isolated vertex and places it; resets the quiet streak.
    fn insert_vertex(&mut self) -> VertexId {
        let v = self.graph.add_vertex();
        let p = self.place_new_vertex(v);
        self.partitioning.grow_to(v as usize + 1, p);
        self.quiet_streak = 0;
        v
    }

    /// Adds an undirected edge; returns whether the graph changed.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let added = self.graph.add_edge(u, v);
        if added {
            if self.partitioning.partition_of(u) != self.partitioning.partition_of(v) {
                self.cut += 1;
            }
            self.degree_mass[self.partitioning.partition_of(u) as usize] += 1;
            self.degree_mass[self.partitioning.partition_of(v) as usize] += 1;
            self.quiet_streak = 0;
        }
        added
    }

    /// Removes an undirected edge; returns whether the graph changed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let removed = self.graph.remove_edge(u, v);
        if removed {
            if self.partitioning.partition_of(u) != self.partitioning.partition_of(v) {
                self.cut -= 1;
            }
            self.degree_mass[self.partitioning.partition_of(u) as usize] -= 1;
            self.degree_mass[self.partitioning.partition_of(v) as usize] -= 1;
            self.quiet_streak = 0;
        }
        removed
    }

    /// Removes a vertex and its incident edges; returns whether the graph
    /// changed.
    pub fn remove_vertex(&mut self, v: VertexId) -> bool {
        if !self.graph.is_vertex(v) {
            return false;
        }
        let pv = self.partitioning.partition_of(v);
        for &w in self.graph.neighbors(v) {
            if self.partitioning.partition_of(w) != pv {
                self.cut -= 1;
            }
            self.degree_mass[self.partitioning.partition_of(w) as usize] -= 1;
        }
        self.degree_mass[pv as usize] -= self.graph.degree(v);
        self.graph.remove_vertex(v);
        self.partitioning.forget_vertex(v);
        self.quiet_streak = 0;
        true
    }

    fn place_new_vertex(&mut self, v: VertexId) -> PartitionId {
        let k = self.config.num_partitions;
        let caps = self.capacities();
        let least_loaded = || -> PartitionId {
            (0..k)
                .min_by_key(|&p| self.partitioning.size(p))
                .expect("k >= 1")
        };
        match self.config.placement {
            PlacementPolicy::LeastLoaded => least_loaded(),
            PlacementPolicy::HashWithFallback => {
                let p = (hash_vertex(v) % k as u64) as PartitionId;
                if caps.remaining(p, self.partitioning.size(p)) > 0 {
                    p
                } else {
                    least_loaded()
                }
            }
        }
    }

    /// Captures the partitioner's complete logical state for persistence:
    /// graph (tombstones included), assignment with live sizes, config,
    /// seed, iteration counter and quiet streak, plus fixed capacities if
    /// any were set.
    ///
    /// The capture is *complete* in the determinism sense:
    /// [`AdaptivePartitioner::restore`] on the returned state yields a
    /// partitioner whose future [`AdaptivePartitioner::iterate`] history is
    /// identical to this one's — the iteration counter keys the per-shard
    /// RNG streams, so it must survive the trip. The incremental
    /// accounting (cut, degree mass) is *not* captured: it is a pure
    /// function of graph + assignment and is recomputed on restore.
    pub fn snapshot_state(&self) -> crate::persist::PartitionerState {
        crate::persist::PartitionerState {
            graph: self.graph.clone(),
            partitioning: self.partitioning.clone(),
            config: self.config.clone(),
            seed: self.seed,
            iteration: self.iteration,
            quiet_streak: self.quiet_streak,
            fixed_capacities: match &self.capacity_mode {
                CapacityMode::Auto => None,
                CapacityMode::Fixed(caps) => Some(caps.clone()),
            },
        }
    }

    /// Rebuilds a partitioner from state captured by
    /// [`AdaptivePartitioner::snapshot_state`] (possibly on a previous
    /// process), recomputing the incremental accounting.
    ///
    /// # Panics
    ///
    /// Panics if the state is internally inconsistent (assignment not
    /// covering the graph, partition-count mismatch). Decoded states are
    /// validated before this is reached; see
    /// [`crate::persist::PartitionerState`].
    pub fn restore(state: crate::persist::PartitionerState) -> Self {
        assert_eq!(
            state.partitioning.num_vertices(),
            state.graph.num_vertices(),
            "assignment does not cover the graph"
        );
        assert_eq!(
            state.partitioning.num_partitions(),
            state.config.num_partitions,
            "partition count mismatch"
        );
        let capacity_mode = match state.fixed_capacities {
            None => CapacityMode::Auto,
            Some(caps) => {
                assert_eq!(
                    caps.num_partitions(),
                    state.config.num_partitions,
                    "capacity table does not match the partition count"
                );
                CapacityMode::Fixed(caps)
            }
        };
        let mut p = Self::from_parts(
            state.graph,
            state.partitioning,
            state.config,
            capacity_mode,
            state.seed,
        );
        p.iteration = state.iteration;
        p.quiet_streak = state.quiet_streak;
        p
    }

    /// Audits internal invariants (incremental cut vs recount, size
    /// accounting); used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn audit(&self) {
        let recount = cut_edges(&self.graph, &self.partitioning);
        assert_eq!(self.cut, recount, "incremental cut drifted");
        let mut sizes = vec![0usize; self.config.num_partitions as usize];
        let mut mass = vec![0usize; self.config.num_partitions as usize];
        for v in self.graph.vertices() {
            sizes[self.partitioning.partition_of(v) as usize] += 1;
            mass[self.partitioning.partition_of(v) as usize] += self.graph.degree(v);
        }
        assert_eq!(
            sizes.as_slice(),
            self.partitioning.sizes(),
            "size accounting drifted"
        );
        assert_eq!(mass, self.degree_mass, "degree-mass accounting drifted");
    }
}

/// The partitioner as a delta target: [`UpdateBatch::apply_to`]'s single
/// shared application loop drives these hooks, so the partitioner's batch
/// path cannot drift from a bare graph's.
impl DeltaTarget for AdaptivePartitioner {
    fn delta_add_vertex(&mut self) -> VertexId {
        self.insert_vertex()
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.add_edge(u, v)
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.remove_edge(u, v)
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.graph.is_vertex(v) {
            return None;
        }
        let degree = self.graph.degree(v);
        self.remove_vertex(v);
        Some(degree)
    }
}

fn to_dyn<G: Graph>(graph: &G) -> DynGraph {
    let mut d = DynGraph::with_vertices(graph.num_vertices());
    for v in graph.vertices() {
        for &w in graph.neighbors(v) {
            if w > v {
                d.add_edge(v, w);
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use apg_partition::vertex_imbalance;

    fn mesh_partitioner(s: f64, seed: u64) -> AdaptivePartitioner {
        let g = gen::mesh3d(8, 8, 8);
        let cfg = AdaptiveConfig::new(4).willingness(s);
        AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, seed)
    }

    #[test]
    fn cut_decreases_markedly_on_mesh() {
        let mut p = mesh_partitioner(0.5, 1);
        let before = p.cut_ratio();
        p.run_for(60);
        let after = p.cut_ratio();
        assert!(after < 0.5 * before, "cut only went {before} -> {after}");
        p.audit();
    }

    #[test]
    fn willingness_zero_freezes_everything() {
        let mut p = mesh_partitioner(0.0, 2);
        let before = p.partitioning().clone();
        let stats = p.run_for(5);
        assert!(stats.iter().all(|s| s.migrations == 0));
        assert_eq!(p.partitioning(), &before);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut p = mesh_partitioner(1.0, 3);
        for _ in 0..40 {
            p.iterate();
            let caps = p.capacities();
            for part in 0..4u16 {
                assert!(
                    p.partitioning().size(part) <= caps.capacity(part),
                    "partition {part} exceeded capacity at iteration {}",
                    p.iteration()
                );
            }
        }
    }

    #[test]
    fn balance_stays_bounded() {
        let mut p = mesh_partitioner(0.5, 4);
        p.run_for(80);
        let imb = vertex_imbalance(p.partitioning());
        assert!(imb <= 1.11, "imbalance {imb} above capacity factor");
    }

    #[test]
    fn converges_on_small_mesh() {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(4).max_iterations(600);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 5);
        let report = p.run_to_convergence();
        assert!(report.converged(), "did not converge in 600 iterations");
        assert!(p.is_converged());
    }

    #[test]
    fn incremental_cut_matches_recount_under_churn() {
        let mut p = mesh_partitioner(0.7, 6);
        p.run_for(10);
        // Interleave mutations with iterations.
        let v1 = p.add_vertex_with_edges(&[0, 1, 2, 3]);
        p.add_edge(v1, 10);
        p.remove_edge(0, 1);
        p.remove_vertex(5);
        p.run_for(5);
        p.audit();
    }

    #[test]
    fn mutations_reset_convergence() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2).max_iterations(400);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 7);
        p.run_to_convergence();
        assert!(p.is_converged());
        p.add_vertex_with_edges(&[0, 1]);
        assert!(!p.is_converged(), "mutation must reset the quiet streak");
    }

    #[test]
    fn new_vertex_migrates_towards_neighbours() {
        let g = gen::mesh3d(6, 6, 6);
        let cfg = AdaptiveConfig::new(3).willingness(1.0);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 8);
        p.run_for(100);
        // Attach a vertex entirely to partition owners of vertex 0's area.
        let anchor = 0u32;
        let target_part = p.partitioning().partition_of(anchor);
        let neighbours: Vec<VertexId> = std::iter::once(anchor)
            .chain(p.graph().neighbors(anchor).iter().copied())
            .filter(|&w| p.partitioning().partition_of(w) == target_part)
            .collect();
        let v = p.add_vertex_with_edges(&neighbours);
        p.run_for(20);
        assert_eq!(
            p.partitioning().partition_of(v),
            target_part,
            "vertex should have migrated to its neighbourhood"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = mesh_partitioner(0.5, 11);
        let mut b = mesh_partitioner(0.5, 11);
        a.run_for(20);
        b.run_for(20);
        assert_eq!(a.partitioning(), b.partitioning());
        assert_eq!(a.cut_edges(), b.cut_edges());
    }

    #[test]
    fn parallel_sweep_is_thread_count_invariant() {
        // 8000 slots span multiple shards, so parallelism > 1 genuinely
        // fans out; the histories must be identical anyway.
        let g = gen::mesh3d(20, 20, 20);
        let run = |threads: usize| {
            let cfg = AdaptiveConfig::new(4).parallelism(threads);
            let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Hash, &cfg, 17);
            let history = p.run_for(25);
            p.audit();
            (history, p.partitioning().clone(), p.cut_edges())
        };
        let sequential = run(1);
        assert_eq!(sequential, run(3));
        assert_eq!(sequential, run(8));
    }

    #[test]
    fn from_partitioning_resumes() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2);
        let p1 = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 1);
        let assignment = p1.partitioning().clone();
        let p2 = AdaptivePartitioner::from_partitioning(&g, assignment.clone(), &cfg, 2);
        assert_eq!(p2.partitioning(), &assignment);
        assert_eq!(p2.cut_edges(), cut_edges(&g, &assignment));
    }

    #[test]
    fn fixed_capacities_are_respected() {
        let g = gen::mesh3d(4, 4, 4);
        let cfg = AdaptiveConfig::new(2).willingness(1.0);
        let mut p = AdaptivePartitioner::with_strategy(&g, InitialStrategy::Random, &cfg, 3);
        let tight = CapacityModel::vertex_balanced(64, 2, 1.0);
        p.set_fixed_capacities(tight.clone());
        p.run_for(30);
        for part in 0..2u16 {
            assert!(p.partitioning().size(part) <= tight.capacity(part));
        }
    }
}
