//! Configuration of the adaptive partitioner.

use serde::{Deserialize, Serialize};

use apg_partition::PartitionId;

/// How per-iteration migration budgets are derived (paper §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuotaRule {
    /// The paper's worst-case split: partition `j` offers each other
    /// partition a quota of `C^t(j) / (k - 1)` incoming vertices per
    /// iteration, so uncoordinated senders can never overflow `j`.
    PerSourceSplit,
    /// No quota at all — used by the ablation benches to demonstrate the
    /// node-densification failure mode the quotas exist to prevent.
    Unbounded,
}

/// Where newly streamed-in vertices are placed before the iterative process
/// adapts them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// `H(v) mod k`, falling back to the least-loaded partition when the
    /// hashed target is full — the lightweight default of the paper's
    /// Pregel-like system.
    HashWithFallback,
    /// Always the least-loaded partition.
    LeastLoaded,
}

/// A linear schedule for the willingness to move: start high to migrate
/// aggressively while the partitioning is poor, then cool down to damp the
/// chasing effect near convergence. An extension over the paper's constant
/// `s = 0.5` (its §2.3 notes the trade-off this schedule navigates).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Anneal {
    /// Willingness at iteration 0.
    pub start: f64,
    /// Willingness from `over_iterations` onwards.
    pub end: f64,
    /// Iterations over which to interpolate linearly.
    pub over_iterations: usize,
}

impl Anneal {
    /// Willingness at a given iteration.
    pub fn at(&self, iteration: usize) -> f64 {
        if self.over_iterations == 0 || iteration >= self.over_iterations {
            return self.end;
        }
        let t = iteration as f64 / self.over_iterations as f64;
        self.start + (self.end - self.start) * t
    }
}

/// Why a configuration was rejected by [`AdaptiveConfigBuilder::build`].
///
/// The builder validates *everything at once* and reports the first
/// violation as a typed error — the fallible counterpart of the panicking
/// [`AdaptiveConfig::new`] chainers, for callers assembling configurations
/// from untrusted input (CLI flags, config files, sweep grids).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `k == 0`: there is nothing to partition into.
    ZeroPartitions,
    /// Willingness `s` outside `[0, 1]` (carries the offending value).
    WillingnessOutOfRange(f64),
    /// Capacity factor below `1.0`, i.e. less than the balanced load
    /// (carries the offending factor — note
    /// [`AdaptiveConfigBuilder::capacity_slack`] with a negative slack
    /// lands here).
    CapacityFactorBelowOne(f64),
    /// `parallelism == 0`: the decision sweep needs at least one thread.
    ZeroParallelism,
    /// Drain floor outside `[0, 1)` (carries the offending fraction).
    /// `1.0` is rejected because a batch whose active set never dips below
    /// the whole graph would skip every iteration; NaN lands here too.
    DrainFloorOutOfRange(f64),
    /// An annealing endpoint outside `[0, 1]`.
    AnnealOutOfRange {
        /// Willingness at iteration 0.
        start: f64,
        /// Willingness at the end of the schedule.
        end: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPartitions => write!(f, "need at least one partition"),
            ConfigError::WillingnessOutOfRange(s) => {
                write!(f, "willingness s = {s} outside [0, 1]")
            }
            ConfigError::CapacityFactorBelowOne(c) => {
                write!(f, "capacity factor {c} below the balanced load (1.0)")
            }
            ConfigError::ZeroParallelism => write!(f, "need at least one decision-sweep thread"),
            ConfigError::DrainFloorOutOfRange(d) => {
                write!(f, "drain floor {d} outside [0, 1)")
            }
            ConfigError::AnnealOutOfRange { start, end } => {
                write!(f, "anneal endpoints ({start}, {end}) outside [0, 1]")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`AdaptiveConfig`], created by
/// [`AdaptiveConfig::builder`].
///
/// Unlike the panicking [`AdaptiveConfig::new`] chainers, the builder
/// accepts any values and defers all checking to
/// [`build`](AdaptiveConfigBuilder::build), which returns a typed
/// [`ConfigError`] instead of panicking — no silent clamping anywhere.
///
/// # Example
///
/// ```
/// use apg_core::{AdaptiveConfig, ConfigError};
///
/// let config = AdaptiveConfig::builder(16)
///     .capacity_slack(0.1)
///     .parallelism(8)
///     .build()
///     .unwrap();
/// assert!((config.capacity_factor - 1.1).abs() < 1e-12);
///
/// let err = AdaptiveConfig::builder(16).willingness(1.5).build();
/// assert_eq!(err, Err(ConfigError::WillingnessOutOfRange(1.5)));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveConfigBuilder {
    num_partitions: PartitionId,
    willingness: f64,
    capacity_factor: f64,
    convergence_window: usize,
    max_iterations: usize,
    quota_rule: QuotaRule,
    placement: PlacementPolicy,
    anneal: Option<Anneal>,
    balance_edges: bool,
    count_self: bool,
    parallelism: usize,
    drain_floor: f64,
}

impl AdaptiveConfigBuilder {
    /// Sets the willingness to move `s` (validated to `[0, 1]` at build).
    pub fn willingness(mut self, s: f64) -> Self {
        self.willingness = s;
        self
    }

    /// Sets the per-partition capacity as a factor of the balanced load
    /// (validated to `>= 1.0` at build).
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        self.capacity_factor = factor;
        self
    }

    /// Sets the capacity as balanced load plus a slack fraction:
    /// `capacity_factor = 1.0 + slack` (so `0.1` means 110%, the paper's
    /// evaluation setting). Negative slack fails validation.
    pub fn capacity_slack(mut self, slack: f64) -> Self {
        self.capacity_factor = 1.0 + slack;
        self
    }

    /// Sets the convergence window (migration-free iterations before the
    /// runner declares convergence; the paper uses 30).
    pub fn convergence_window(mut self, window: usize) -> Self {
        self.convergence_window = window;
        self
    }

    /// Sets the hard iteration cap for convergence runs.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets the migration budget rule.
    pub fn quota_rule(mut self, rule: QuotaRule) -> Self {
        self.quota_rule = rule;
        self
    }

    /// Sets the placement policy for streamed-in vertices.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets whether a vertex counts itself when scoring its own partition.
    pub fn count_self(mut self, yes: bool) -> Self {
        self.count_self = yes;
        self
    }

    /// Switches the balance objective to edge endpoints (paper §6).
    pub fn balance_on_edges(mut self, yes: bool) -> Self {
        self.balance_edges = yes;
        self
    }

    /// Sets the decision-sweep thread count (validated to `>= 1` at
    /// build). Results are identical at any value for a fixed seed.
    pub fn parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Sets the adaptive-budget drain floor (validated to `[0, 1)` at
    /// build); see [`AdaptiveConfig::drain_floor`]. `0.0` (the default)
    /// stops a batch's iterations only once the active set is fully
    /// drained, which is provably history-preserving.
    pub fn drain_floor(mut self, fraction: f64) -> Self {
        self.drain_floor = fraction;
        self
    }

    /// Anneals the willingness linearly from `start` to `end` over the
    /// given number of iterations (endpoints validated to `[0, 1]` at
    /// build).
    pub fn anneal_willingness(mut self, start: f64, end: f64, over_iterations: usize) -> Self {
        self.anneal = Some(Anneal {
            start,
            end,
            over_iterations,
        });
        self
    }

    /// Validates the accumulated settings and produces the configuration.
    ///
    /// Checks run in a fixed order (partitions, willingness, capacity,
    /// parallelism, drain floor, anneal) and the first violation is
    /// returned.
    pub fn build(self) -> Result<AdaptiveConfig, ConfigError> {
        if self.num_partitions == 0 {
            return Err(ConfigError::ZeroPartitions);
        }
        if !(0.0..=1.0).contains(&self.willingness) {
            return Err(ConfigError::WillingnessOutOfRange(self.willingness));
        }
        if self.capacity_factor < 1.0 || self.capacity_factor.is_nan() {
            return Err(ConfigError::CapacityFactorBelowOne(self.capacity_factor));
        }
        if self.parallelism == 0 {
            return Err(ConfigError::ZeroParallelism);
        }
        if !(0.0..1.0).contains(&self.drain_floor) {
            return Err(ConfigError::DrainFloorOutOfRange(self.drain_floor));
        }
        if let Some(a) = &self.anneal {
            if !(0.0..=1.0).contains(&a.start) || !(0.0..=1.0).contains(&a.end) {
                return Err(ConfigError::AnnealOutOfRange {
                    start: a.start,
                    end: a.end,
                });
            }
        }
        Ok(AdaptiveConfig {
            num_partitions: self.num_partitions,
            willingness: self.willingness,
            capacity_factor: self.capacity_factor,
            convergence_window: self.convergence_window,
            max_iterations: self.max_iterations,
            quota_rule: self.quota_rule,
            placement: self.placement,
            anneal: self.anneal,
            balance_edges: self.balance_edges,
            count_self: self.count_self,
            parallelism: self.parallelism,
            drain_floor: self.drain_floor,
            sweep_exhaustive: false,
            apply_serial: false,
            budget_fixed: false,
        })
    }
}

/// Configuration for [`crate::AdaptivePartitioner`].
///
/// Defaults follow the paper's evaluation: willingness to move `s = 0.5`
/// (§2.3), capacity 110% of the balanced load (§4.2.1), convergence after
/// 30 migration-free iterations (§2.3).
///
/// Two construction paths:
///
/// * [`AdaptiveConfig::builder`] — the blessed one: accumulate settings,
///   then [`build`](AdaptiveConfigBuilder::build) validates everything and
///   returns `Result<_, ConfigError>`.
/// * [`AdaptiveConfig::new`] plus panicking chainers — the original API,
///   kept as a thin shim for call sites with statically known-good values.
///
/// # Example
///
/// ```
/// use apg_core::AdaptiveConfig;
///
/// let config = AdaptiveConfig::builder(9)
///     .willingness(0.8)
///     .capacity_factor(1.2)
///     .build()
///     .unwrap();
/// assert_eq!(config.num_partitions, 9);
/// assert!((config.willingness - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Number of partitions `k`.
    pub num_partitions: PartitionId,
    /// Willingness to move `s ∈ (0, 1]`: each vertex evaluates migration
    /// with this probability per iteration.
    pub willingness: f64,
    /// Per-partition capacity as a factor of the balanced load (`>= 1.0`).
    pub capacity_factor: f64,
    /// Iterations without any migration before declaring convergence.
    pub convergence_window: usize,
    /// Hard iteration cap for [`crate::AdaptivePartitioner::run_to_convergence`].
    pub max_iterations: usize,
    /// Migration budget rule.
    pub quota_rule: QuotaRule,
    /// Placement of newly inserted vertices.
    pub placement: PlacementPolicy,
    /// Optional annealing schedule overriding the constant willingness.
    pub anneal: Option<Anneal>,
    /// Balance partitions on edge endpoints (degree mass) instead of vertex
    /// counts — the extension the paper proposes in §6 ("many graph
    /// algorithms like PageRank have a complexity that is proportional to
    /// the number of edges"). Capacities and quotas are then denominated in
    /// degree-mass units.
    pub balance_edges: bool,
    /// Count the vertex itself towards its current partition when scoring
    /// candidates (the literal reading of the paper's `Γ(v,t) = {v} ∪ N(v)`;
    /// adds one unit of stickiness). Default `false`, matching the prose
    /// ("the partition where the highest number of its *neighbouring*
    /// vertices are") — the ablation bench compares both.
    pub count_self: bool,
    /// Threads for the per-iteration decision sweep (default: available
    /// cores; `1` runs inline on the caller's thread with no spawn).
    ///
    /// The sweep is sharded deterministically by vertex range with one RNG
    /// draw sequence per vertex (`apg-exec`), so for a fixed seed the
    /// migration history is **identical at every parallelism level** — this
    /// knob trades wall-clock only, never results.
    pub parallelism: usize,
    /// Adaptive per-batch iteration budget floor for
    /// [`crate::StreamingRunner`], as a fraction of the live vertex count
    /// in `[0, 1)`.
    ///
    /// After each batch the runner charges the full
    /// `iterations_per_batch` budget, but stops *executing* iterations
    /// early once the active set has drained to (or below)
    /// `drain_floor x live vertices` — the remaining iterations are
    /// *skipped*, not run. With the default `0.0` the cutoff is an empty
    /// active set, where every skipped iteration is provably a no-op
    /// (every inactive vertex decides *Stay*; the active-set exactness
    /// invariant), so the recorded [`crate::TimelineStats`] are
    /// byte-identical to a fixed-budget run. A positive floor trades that
    /// guarantee for earlier cutoffs: the last few stragglers of a batch
    /// are left to the next batch's budget, which can perturb the
    /// timeline.
    ///
    /// Skipped iterations still advance the iteration counter — the
    /// counter keys the per-vertex RNG streams, so skipping must
    /// fast-forward it for future draws to stay aligned with a
    /// fixed-budget run.
    pub drain_floor: f64,
    /// Diagnostic/test hook: force the decision sweep to evaluate **every**
    /// live vertex instead of only the active set. Because randomness is
    /// keyed per `(seed, vertex, iteration)` and skipped vertices provably
    /// decide *Stay*, both modes produce identical migration histories —
    /// the exhaustive mode exists so tests and benches can pin exactly
    /// that. Transient: deliberately not part of the persisted
    /// configuration (decoded states always get the default `false`).
    #[doc(hidden)]
    pub sweep_exhaustive: bool,
    /// Diagnostic/test hook: force the apply phase to run the serial
    /// per-migrant [`apply_move`] loop instead of the sharded parallel
    /// apply. Both paths produce identical state — the serial mode exists
    /// so tests and benches can pin exactly that. Transient: not part of
    /// the persisted configuration.
    ///
    /// [`apply_move`]: crate::AdaptivePartitioner
    #[doc(hidden)]
    pub apply_serial: bool,
    /// Diagnostic/test hook: force [`crate::StreamingRunner`] to burn the
    /// full fixed per-batch iteration budget, ignoring
    /// [`AdaptiveConfig::drain_floor`]'s early stop. At the default
    /// `drain_floor = 0.0` both modes record identical timelines — the
    /// fixed mode exists so tests and benches can pin exactly that.
    /// Transient: not part of the persisted configuration.
    #[doc(hidden)]
    pub budget_fixed: bool,
}

impl AdaptiveConfig {
    /// Starts a validating builder with the paper defaults for `k`
    /// partitions. Nothing is checked until
    /// [`build`](AdaptiveConfigBuilder::build), which returns
    /// `Err(ConfigError)` for any invalid combination — including `k == 0`.
    pub fn builder(k: PartitionId) -> AdaptiveConfigBuilder {
        AdaptiveConfigBuilder {
            num_partitions: k,
            willingness: 0.5,
            capacity_factor: 1.10,
            convergence_window: 30,
            max_iterations: 1000,
            quota_rule: QuotaRule::PerSourceSplit,
            placement: PlacementPolicy::HashWithFallback,
            anneal: None,
            balance_edges: false,
            count_self: false,
            parallelism: apg_exec::available_parallelism(),
            drain_floor: 0.0,
        }
    }

    /// Paper defaults for `k` partitions — the panicking shim over
    /// [`AdaptiveConfig::builder`] for statically known-good `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: PartitionId) -> Self {
        match Self::builder(k).build() {
            Ok(config) => config,
            Err(e) => panic!("{e}"),
        }
    }

    /// Sets the willingness to move `s`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= s <= 1.0`. (`s = 0` disables migration — the
    /// paper notes it "causes no migration whatsoever"; allowed for
    /// experiments.)
    pub fn willingness(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s), "s must be in [0, 1]");
        self.willingness = s;
        self
    }

    /// Sets the capacity factor.
    ///
    /// # Panics
    ///
    /// Panics if `factor < 1.0`.
    pub fn capacity_factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "capacity factor below balanced load");
        self.capacity_factor = factor;
        self
    }

    /// Sets the convergence window (the paper uses 30).
    pub fn convergence_window(mut self, window: usize) -> Self {
        self.convergence_window = window;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets the quota rule.
    pub fn quota_rule(mut self, rule: QuotaRule) -> Self {
        self.quota_rule = rule;
        self
    }

    /// Sets the placement policy for streamed-in vertices.
    pub fn placement(mut self, placement: PlacementPolicy) -> Self {
        self.placement = placement;
        self
    }

    /// Sets whether a vertex counts itself when scoring its own partition.
    pub fn count_self(mut self, yes: bool) -> Self {
        self.count_self = yes;
        self
    }

    /// Switches the balance objective to edge endpoints (paper §6).
    pub fn balance_on_edges(mut self, yes: bool) -> Self {
        self.balance_edges = yes;
        self
    }

    /// Sets the decision-sweep thread count (`1` = sequential). Results are
    /// identical at any value for a fixed seed; see
    /// [`AdaptiveConfig::parallelism`].
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn parallelism(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.parallelism = threads;
        self
    }

    /// Sets the adaptive-budget drain floor; see
    /// [`AdaptiveConfig::drain_floor`].
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= fraction < 1.0`.
    pub fn drain_floor(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&fraction),
            "drain floor must be in [0, 1)"
        );
        self.drain_floor = fraction;
        self
    }

    /// Forces the exhaustive (every-live-vertex) decision sweep; see
    /// [`AdaptiveConfig::sweep_exhaustive`]. Results are identical either
    /// way — this only trades away the active-set skip, for tests and
    /// benches that compare the two.
    #[doc(hidden)]
    pub fn sweep_exhaustive(mut self, yes: bool) -> Self {
        self.sweep_exhaustive = yes;
        self
    }

    /// Forces the serial per-migrant apply loop; see
    /// [`AdaptiveConfig::apply_serial`]. Results are identical either way —
    /// this exists for tests and benches that compare the two.
    #[doc(hidden)]
    pub fn apply_serial(mut self, yes: bool) -> Self {
        self.apply_serial = yes;
        self
    }

    /// Forces the fixed per-batch iteration budget; see
    /// [`AdaptiveConfig::budget_fixed`].
    #[doc(hidden)]
    pub fn budget_fixed(mut self, yes: bool) -> Self {
        self.budget_fixed = yes;
        self
    }

    /// Anneals the willingness linearly from `start` to `end` over the
    /// given number of iterations.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside `[0, 1]`.
    pub fn anneal_willingness(mut self, start: f64, end: f64, over_iterations: usize) -> Self {
        assert!((0.0..=1.0).contains(&start) && (0.0..=1.0).contains(&end));
        self.anneal = Some(Anneal {
            start,
            end,
            over_iterations,
        });
        self
    }

    /// Effective willingness at an iteration (constant unless annealed).
    pub fn willingness_at(&self, iteration: usize) -> f64 {
        match &self.anneal {
            Some(a) => a.at(iteration),
            None => self.willingness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = AdaptiveConfig::new(9);
        assert_eq!(c.num_partitions, 9);
        assert!((c.willingness - 0.5).abs() < 1e-12);
        assert!((c.capacity_factor - 1.10).abs() < 1e-12);
        assert_eq!(c.convergence_window, 30);
        assert_eq!(c.quota_rule, QuotaRule::PerSourceSplit);
        assert!(!c.count_self);
        assert!(!c.balance_edges);
    }

    #[test]
    fn builder_chains() {
        let c = AdaptiveConfig::new(4)
            .willingness(1.0)
            .capacity_factor(2.0)
            .convergence_window(5)
            .max_iterations(10)
            .quota_rule(QuotaRule::Unbounded)
            .placement(PlacementPolicy::LeastLoaded)
            .count_self(true);
        assert_eq!(c.max_iterations, 10);
        assert_eq!(c.placement, PlacementPolicy::LeastLoaded);
        assert!(c.count_self);
    }

    #[test]
    fn anneal_interpolates_and_clamps() {
        let c = AdaptiveConfig::new(2).anneal_willingness(0.9, 0.3, 10);
        assert!((c.willingness_at(0) - 0.9).abs() < 1e-12);
        assert!((c.willingness_at(5) - 0.6).abs() < 1e-12);
        assert!((c.willingness_at(10) - 0.3).abs() < 1e-12);
        assert!((c.willingness_at(1000) - 0.3).abs() < 1e-12);
        // Constant when no schedule is set.
        let plain = AdaptiveConfig::new(2);
        assert!((plain.willingness_at(7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parallelism_defaults_to_available_cores() {
        let c = AdaptiveConfig::new(4);
        assert_eq!(c.parallelism, apg_exec::available_parallelism());
        assert!(c.parallelism >= 1);
        assert_eq!(AdaptiveConfig::new(4).parallelism(6).parallelism, 6);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_parallelism() {
        let _ = AdaptiveConfig::new(2).parallelism(0);
    }

    #[test]
    fn drain_floor_defaults_to_fully_drained() {
        let c = AdaptiveConfig::new(4);
        assert_eq!(c.drain_floor, 0.0);
        assert!(!c.apply_serial && !c.budget_fixed);
        let c = AdaptiveConfig::builder(4)
            .drain_floor(0.25)
            .build()
            .unwrap();
        assert!((c.drain_floor - 0.25).abs() < 1e-12);
        assert!((AdaptiveConfig::new(4).drain_floor(0.5).drain_floor - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "drain floor must be in [0, 1)")]
    fn rejects_bad_drain_floor() {
        let _ = AdaptiveConfig::new(2).drain_floor(1.0);
    }

    #[test]
    #[should_panic(expected = "s must be in [0, 1]")]
    fn rejects_bad_willingness() {
        let _ = AdaptiveConfig::new(2).willingness(1.5);
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn rejects_zero_partitions() {
        let _ = AdaptiveConfig::new(0);
    }

    #[test]
    fn builder_matches_new_defaults() {
        assert_eq!(AdaptiveConfig::builder(9).build().unwrap(), {
            // `new` routes through the builder; keep the equality anyway as
            // the shim contract.
            AdaptiveConfig::new(9)
        });
    }

    #[test]
    fn builder_accepts_the_blessed_chain() {
        let c = AdaptiveConfig::builder(8)
            .capacity_slack(0.1)
            .parallelism(8)
            .willingness(0.7)
            .convergence_window(10)
            .max_iterations(200)
            .quota_rule(QuotaRule::Unbounded)
            .placement(PlacementPolicy::LeastLoaded)
            .count_self(true)
            .balance_on_edges(true)
            .anneal_willingness(0.9, 0.2, 40)
            .build()
            .unwrap();
        assert_eq!(c.num_partitions, 8);
        assert!((c.capacity_factor - 1.1).abs() < 1e-12);
        assert_eq!(c.parallelism, 8);
        assert!(c.count_self && c.balance_edges);
        assert_eq!(c.quota_rule, QuotaRule::Unbounded);
        assert_eq!(
            c.anneal,
            Some(Anneal {
                start: 0.9,
                end: 0.2,
                over_iterations: 40
            })
        );
        assert!(!c.sweep_exhaustive, "diagnostic hook never set by builder");
    }

    #[test]
    fn builder_rejects_each_invalid_setting_with_a_typed_error() {
        use ConfigError::*;
        assert_eq!(AdaptiveConfig::builder(0).build(), Err(ZeroPartitions));
        assert_eq!(
            AdaptiveConfig::builder(4).willingness(-0.1).build(),
            Err(WillingnessOutOfRange(-0.1))
        );
        assert!(matches!(
            AdaptiveConfig::builder(4).willingness(f64::NAN).build(),
            Err(WillingnessOutOfRange(s)) if s.is_nan()
        ));
        assert!(matches!(
            AdaptiveConfig::builder(4).capacity_factor(f64::NAN).build(),
            Err(CapacityFactorBelowOne(c)) if c.is_nan()
        ));
        assert_eq!(
            AdaptiveConfig::builder(4).capacity_factor(0.9).build(),
            Err(CapacityFactorBelowOne(0.9))
        );
        assert_eq!(
            AdaptiveConfig::builder(4).capacity_slack(-0.2).build(),
            Err(CapacityFactorBelowOne(0.8))
        );
        assert_eq!(
            AdaptiveConfig::builder(4).parallelism(0).build(),
            Err(ZeroParallelism)
        );
        assert_eq!(
            AdaptiveConfig::builder(4).drain_floor(1.0).build(),
            Err(DrainFloorOutOfRange(1.0))
        );
        assert_eq!(
            AdaptiveConfig::builder(4).drain_floor(-0.1).build(),
            Err(DrainFloorOutOfRange(-0.1))
        );
        assert!(matches!(
            AdaptiveConfig::builder(4).drain_floor(f64::NAN).build(),
            Err(DrainFloorOutOfRange(d)) if d.is_nan()
        ));
        assert_eq!(
            AdaptiveConfig::builder(4)
                .anneal_willingness(0.5, 1.2, 10)
                .build(),
            Err(AnnealOutOfRange {
                start: 0.5,
                end: 1.2
            })
        );
    }

    #[test]
    fn builder_checks_only_at_build() {
        // Setting an invalid value then overwriting it is fine — validation
        // is deferred, never incremental.
        let c = AdaptiveConfig::builder(4)
            .willingness(7.0)
            .willingness(0.5)
            .build();
        assert!(c.is_ok());
    }

    #[test]
    fn config_error_displays_the_offending_value() {
        let e = ConfigError::WillingnessOutOfRange(1.5);
        assert!(e.to_string().contains("1.5"));
        let e: Box<dyn std::error::Error> = Box::new(ConfigError::ZeroPartitions);
        assert!(e.to_string().contains("at least one partition"));
    }
}
