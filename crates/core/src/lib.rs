//! The paper's primary contribution: **adaptive iterative partitioning by
//! decentralised greedy vertex migration** (Vaquero et al., §2).
//!
//! Starting from any initial partitioning, every iteration each vertex
//! decides — from local information only — whether to migrate to the
//! partition holding most of its neighbours. Per-destination quotas derived
//! from partition capacities keep the partitioning balanced without global
//! coordination, and a random "willingness to move" factor `s` breaks the
//! neighbour-chasing oscillations that would otherwise prevent convergence.
//! Graph mutations (vertex/edge insertion and removal) feed into the same
//! iterative process, which is what makes the partitioning *adaptive*.
//!
//! The implementation here is the algorithm at the paper's §2 "logical
//! level": one process iterating over the whole graph, faithful to the
//! iteration semantics (all decisions in iteration `t` observe the state at
//! the start of `t`). Because every vertex decides from stale neighbour
//! labels, the decision sweep is embarrassingly parallel: it runs sharded
//! over [`AdaptiveConfig::parallelism`] threads via the `apg-exec` layer,
//! with per-shard RNG streams keeping results identical at any thread
//! count. The distributed realisation with deferred migration and capacity
//! messaging (§3) lives in the `apg-pregel` crate and reuses the decision
//! kernel and the same execution layer, so the two cannot drift.
//!
//! # Example
//!
//! ```
//! use apg_core::{AdaptiveConfig, AdaptivePartitioner};
//! use apg_graph::gen;
//! use apg_partition::InitialStrategy;
//!
//! let graph = gen::mesh3d(10, 10, 10);
//! let config = AdaptiveConfig::new(9); // k = 9, s = 0.5, capacity 110%
//! let mut partitioner =
//!     AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, 42);
//! let report = partitioner.run_to_convergence();
//! assert!(report.final_cut_ratio() < 0.5 * report.initial_cut_ratio());
//! ```

pub mod candidates;
pub mod config;
pub mod partitioner;
pub mod persist;
pub mod quota;
pub mod runner;
pub mod stats;
pub mod streaming;

pub use candidates::{DecisionKernel, MigrationDecision};
pub use config::{
    AdaptiveConfig, AdaptiveConfigBuilder, Anneal, ConfigError, PlacementPolicy, QuotaRule,
};
pub use partitioner::{AdaptivePartitioner, IterationStats, SweepProfile};
pub use persist::{
    CheckpointDelta, CheckpointStore, InstallReport, PartitionerState, RecoveredCheckpoint,
    StreamCheckpoint,
};
// The store types `CheckpointStore`'s signatures speak in, so callers can
// name them without depending on `apg-persist` directly.
pub use apg_persist::store::{StoreConfig, StoreError};
pub use quota::QuotaTable;
pub use runner::ConvergenceReport;
pub use stats::{mean_and_sem, Summary};
pub use streaming::{fold_timeline_digest, StreamingRunner, TimelineStats, TIMELINE_DIGEST_SEED};
