//! Restartable streams: checkpoints as `(snapshot, delta-log tail)` with
//! log compaction.
//!
//! This is the top of the workspace's durable-state stack (`apg-persist`
//! holds the codec, `apg-graph`/`apg-partition` the substrate codecs). The
//! unit of durability is the [`StreamCheckpoint`]:
//!
//! * a **snapshot** — the full logical state of a [`StreamingRunner`] at
//!   some batch boundary ([`PartitionerState`] + runner settings + the
//!   timeline and recorded log so far), and
//! * a **tail** — the [`DeltaLog`] of batches ingested *after* the
//!   snapshot was taken (the write-ahead segment).
//!
//! The operating loop writes the snapshot rarely and appends each ingested
//! batch to the tail (O(batch)). A snapshot is O(state): graph plus
//! assignment plus the *retained* [`TimelineStats`] suffix. With a bounded
//! [`StreamingRunner::timeline_window`] the suffix is O(window) — evicted
//! entries are folded into a rolling FNV-1a digest
//! ([`fold_timeline_digest`]), and
//! the checkpoint carries `(window, batches_ingested, digest)` so the full
//! history stays pinned byte-for-byte without being stored. With the
//! default unbounded window the whole history is retained, exactly as
//! before format v3. After a crash,
//! [`StreamingRunner::resume`] rebuilds the runner from the snapshot and
//! re-ingests the tail; because ingestion and the decision sweep are
//! deterministic, the resumed runner's [`TimelineStats`] timeline — and
//! every future batch it processes — is byte-identical to an uninterrupted
//! run's (`wall_ms` aside). [`StreamCheckpoint::compact`] folds a prefix
//! of the tail into a fresh snapshot by exactly that replay, then truncates
//! the segments, bounding recovery time on long streams.
//!
//! The stream *source* is not persisted: every `apg-streams` source is a
//! pure function of its constructor arguments, so the checkpoint only
//! records the [`SourceCursor`] — reconstruct the source with the same
//! arguments and [`RestartableSource::fast_forward`] to the cursor.
//!
//! [`RestartableSource::fast_forward`]: apg_streams::RestartableSource::fast_forward
//!
//! # Example
//!
//! ```
//! use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
//! use apg_core::persist::StreamCheckpoint;
//! use apg_graph::DynGraph;
//! use apg_partition::InitialStrategy;
//! use apg_streams::{PowerLawGrowth, RestartableSource, StreamSource};
//!
//! let base = DynGraph::with_vertices(100);
//! let cfg = AdaptiveConfig::new(4).parallelism(1);
//! let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 7);
//! let mut runner = StreamingRunner::new(p).iterations_per_batch(2);
//! let mut source = PowerLawGrowth::new(&base, 3, 25, 7);
//!
//! // Process four batches, checkpointing after two.
//! let mut ckpt = None;
//! for i in 0..4 {
//!     let batch = source.next_batch().unwrap();
//!     runner.ingest(&batch);
//!     match &mut ckpt {
//!         None if i == 1 => ckpt = Some(runner.checkpoint()),
//!         Some(c) => c.append(batch), // write-ahead the tail
//!         None => {}
//!     }
//! }
//! let bytes = ckpt.unwrap().to_bytes(); // what would hit disk
//!
//! // "Crash": rebuild everything from the bytes.
//! let ckpt = StreamCheckpoint::from_bytes(&bytes).unwrap();
//! let mut source2 = PowerLawGrowth::new(&base, 3, 25, 7);
//! source2.fast_forward(ckpt.cursor());
//! let mut resumed = StreamingRunner::resume(ckpt);
//! assert_eq!(resumed.timeline(), runner.timeline());
//!
//! // Both runs continue identically.
//! let next = source.next_batch().unwrap();
//! assert_eq!(source2.next_batch().unwrap(), next);
//! assert_eq!(resumed.ingest(&next), runner.ingest(&next));
//! ```

use apg_graph::{DeltaLog, DynGraph, Graph, GraphDiff, UpdateBatch};
use apg_partition::{CapacityModel, PartitionId, Partitioning};
use apg_persist::store::{SegmentStore, StoreConfig, StoreError};
use apg_persist::{decode_len, format, Decode, DecodeError, Decoder, Encode, Encoder};
use apg_streams::SourceCursor;

use crate::config::{AdaptiveConfig, Anneal, PlacementPolicy, QuotaRule};
use crate::partitioner::AdaptivePartitioner;
use crate::streaming::{
    fold_timeline_digest, StreamingRunner, TimelineStats, TIMELINE_DIGEST_SEED,
};

/// The complete logical state of an [`AdaptivePartitioner`], as captured
/// by [`AdaptivePartitioner::snapshot_state`].
///
/// Holds exactly the fields the determinism contract needs (the iteration
/// counter keys the per-shard RNG streams) and none of the derived
/// accounting (cut, degree mass), which restore recomputes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionerState {
    /// The graph, tombstone slots included (ids stay dense on restore).
    pub graph: DynGraph,
    /// Assignment and live sizes.
    pub partitioning: Partitioning,
    /// Full configuration, `parallelism` included (results are identical
    /// at every parallelism level, so restoring it is a wall-clock choice,
    /// not a correctness one).
    pub config: AdaptiveConfig,
    /// RNG seed.
    pub seed: u64,
    /// Iterations executed so far (keys the RNG streams and the anneal
    /// schedule).
    pub iteration: usize,
    /// Consecutive migration-free iterations.
    pub quiet_streak: usize,
    /// Explicit capacity limits, if the automatic tracking was overridden.
    pub fixed_capacities: Option<CapacityModel>,
}

impl Encode for QuotaRule {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            QuotaRule::PerSourceSplit => 0,
            QuotaRule::Unbounded => 1,
        };
        tag.encode(enc);
    }
}

impl Decode for QuotaRule {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match u8::decode(dec)? {
            0 => Ok(QuotaRule::PerSourceSplit),
            1 => Ok(QuotaRule::Unbounded),
            _ => Err(DecodeError::Corrupt("unknown QuotaRule tag")),
        }
    }
}

impl Encode for PlacementPolicy {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            PlacementPolicy::HashWithFallback => 0,
            PlacementPolicy::LeastLoaded => 1,
        };
        tag.encode(enc);
    }
}

impl Decode for PlacementPolicy {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match u8::decode(dec)? {
            0 => Ok(PlacementPolicy::HashWithFallback),
            1 => Ok(PlacementPolicy::LeastLoaded),
            _ => Err(DecodeError::Corrupt("unknown PlacementPolicy tag")),
        }
    }
}

impl Encode for Anneal {
    fn encode(&self, enc: &mut Encoder) {
        self.start.encode(enc);
        self.end.encode(enc);
        self.over_iterations.encode(enc);
    }
}

impl Decode for Anneal {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let anneal = Anneal {
            start: f64::decode(dec)?,
            end: f64::decode(dec)?,
            over_iterations: usize::decode(dec)?,
        };
        if !(0.0..=1.0).contains(&anneal.start) || !(0.0..=1.0).contains(&anneal.end) {
            return Err(DecodeError::Corrupt("anneal endpoint outside [0, 1]"));
        }
        Ok(anneal)
    }
}

impl Encode for AdaptiveConfig {
    /// The diagnostic hooks (`sweep_exhaustive`, `apply_serial`,
    /// `budget_fixed`) are deliberately absent: they are transient test
    /// switches that never alter results, not logical state — persisting
    /// them would change the wire format for knobs that never alter
    /// behaviour. `drain_floor` *is* persisted (format v2): a non-default
    /// floor changes which iterations a resumed stream executes.
    fn encode(&self, enc: &mut Encoder) {
        self.num_partitions.encode(enc);
        self.willingness.encode(enc);
        self.capacity_factor.encode(enc);
        self.convergence_window.encode(enc);
        self.max_iterations.encode(enc);
        self.quota_rule.encode(enc);
        self.placement.encode(enc);
        self.anneal.encode(enc);
        self.balance_edges.encode(enc);
        self.count_self.encode(enc);
        self.parallelism.encode(enc);
        self.drain_floor.encode(enc);
    }
}

impl Decode for AdaptiveConfig {
    /// Re-validates every invariant the builder methods assert, returning
    /// errors instead of panicking.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = AdaptiveConfig {
            num_partitions: u16::decode(dec)?,
            willingness: f64::decode(dec)?,
            capacity_factor: f64::decode(dec)?,
            convergence_window: usize::decode(dec)?,
            max_iterations: usize::decode(dec)?,
            quota_rule: QuotaRule::decode(dec)?,
            placement: PlacementPolicy::decode(dec)?,
            anneal: Option::<Anneal>::decode(dec)?,
            balance_edges: bool::decode(dec)?,
            count_self: bool::decode(dec)?,
            parallelism: usize::decode(dec)?,
            drain_floor: f64::decode(dec)?,
            sweep_exhaustive: false,
            apply_serial: false,
            budget_fixed: false,
        };
        if config.num_partitions == 0 {
            return Err(DecodeError::Corrupt("config has zero partitions"));
        }
        if !(0.0..=1.0).contains(&config.willingness) {
            return Err(DecodeError::Corrupt("willingness outside [0, 1]"));
        }
        if !config.capacity_factor.is_finite() || config.capacity_factor < 1.0 {
            return Err(DecodeError::Corrupt("capacity factor below 1.0"));
        }
        if config.parallelism == 0 {
            return Err(DecodeError::Corrupt("config has zero parallelism"));
        }
        if !(0.0..1.0).contains(&config.drain_floor) {
            return Err(DecodeError::Corrupt("drain floor outside [0, 1)"));
        }
        Ok(config)
    }
}

impl Encode for TimelineStats {
    fn encode(&self, enc: &mut Encoder) {
        for field in self.deterministic_fields() {
            field.encode(enc);
        }
        // Measurement, not state — persisted for reporting, ignored by
        // equality exactly as in memory.
        self.wall_ms.encode(enc);
    }
}

impl Decode for TimelineStats {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TimelineStats {
            batch: usize::decode(dec)?,
            deltas: usize::decode(dec)?,
            vertices_added: usize::decode(dec)?,
            vertices_removed: usize::decode(dec)?,
            edges_added: usize::decode(dec)?,
            edges_removed: usize::decode(dec)?,
            cut_before: usize::decode(dec)?,
            cut_after_ingest: usize::decode(dec)?,
            cut_after: usize::decode(dec)?,
            migrations: usize::decode(dec)?,
            iterations: usize::decode(dec)?,
            live_vertices: usize::decode(dec)?,
            num_edges: usize::decode(dec)?,
            wall_ms: f64::decode(dec)?,
        })
    }
}

impl Encode for PartitionerState {
    fn encode(&self, enc: &mut Encoder) {
        self.graph.encode(enc);
        self.partitioning.encode(enc);
        self.config.encode(enc);
        self.seed.encode(enc);
        self.iteration.encode(enc);
        self.quiet_streak.encode(enc);
        self.fixed_capacities.encode(enc);
    }
}

impl PartitionerState {
    /// Cross-field invariants (assignment covering the graph, matching
    /// partition counts, size table equal to a live recount) — shared by
    /// the binary decoder and the incremental-checkpoint apply path, so
    /// [`AdaptivePartitioner::restore`] can never panic on reconstituted
    /// state regardless of how it was built.
    pub(crate) fn validate(&self) -> Result<(), DecodeError> {
        if self.partitioning.num_vertices() != self.graph.num_vertices() {
            return Err(DecodeError::Corrupt(
                "assignment does not cover the graph's slots",
            ));
        }
        if self.partitioning.num_partitions() != self.config.num_partitions {
            return Err(DecodeError::Corrupt(
                "assignment and config disagree on the partition count",
            ));
        }
        if let Some(caps) = &self.fixed_capacities {
            if caps.num_partitions() != self.config.num_partitions {
                return Err(DecodeError::Corrupt(
                    "capacity table and config disagree on the partition count",
                ));
            }
        }
        // The partitioning's size table must equal a recount over the live
        // vertices: [`AdaptivePartitioner::restore`]'s audit asserts this,
        // so a validator that skipped it would turn corrupt (but
        // individually well-formed) fields into a downstream panic.
        let mut live_sizes = vec![0usize; usize::from(self.config.num_partitions)];
        for v in self.graph.vertices() {
            live_sizes[usize::from(self.partitioning.partition_of(v))] += 1;
        }
        if self.partitioning.sizes() != live_sizes.as_slice() {
            return Err(DecodeError::Corrupt(
                "partition size table disagrees with the live assignment",
            ));
        }
        Ok(())
    }
}

impl Decode for PartitionerState {
    /// Validates cross-field consistency (see
    /// `PartitionerState::validate`) so [`AdaptivePartitioner::restore`]
    /// can never panic on decoded state.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let state = PartitionerState {
            graph: DynGraph::decode(dec)?,
            partitioning: Partitioning::decode(dec)?,
            config: AdaptiveConfig::decode(dec)?,
            seed: u64::decode(dec)?,
            iteration: usize::decode(dec)?,
            quiet_streak: usize::decode(dec)?,
            fixed_capacities: Option::<CapacityModel>::decode(dec)?,
        };
        state.validate()?;
        Ok(state)
    }
}

/// A durable `(snapshot, log tail)` pair for a [`StreamingRunner`].
///
/// Created by [`StreamingRunner::checkpoint`]; grown batch-by-batch with
/// [`StreamCheckpoint::append`]; bounded with [`StreamCheckpoint::compact`];
/// turned back into a live runner with [`StreamingRunner::resume`];
/// serialised with [`StreamCheckpoint::to_bytes`] /
/// [`StreamCheckpoint::from_bytes`] (framed `APGC` container).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Partitioner state at the snapshot boundary.
    pub state: PartitionerState,
    /// The runner's per-batch iteration budget.
    pub iterations_per_batch: usize,
    /// Whether the runner records its ingested batches into a replay log.
    pub record: bool,
    /// The runner's recorded replay log at the snapshot boundary (empty
    /// unless recording was enabled).
    pub log: DeltaLog,
    /// The runner's timeline retention cap (`usize::MAX` = unbounded).
    pub timeline_window: usize,
    /// Batches the runner had ingested at the snapshot boundary — the
    /// authoritative stream position ([`StreamCheckpoint::cursor`] derives
    /// from this, *not* from `timeline.len()`, which under-counts once the
    /// window evicts entries).
    pub batches_ingested: usize,
    /// Rolling FNV-1a digest over the timeline entries evicted before the
    /// snapshot ([`TIMELINE_DIGEST_SEED`] when nothing was evicted).
    ///
    /// [`TIMELINE_DIGEST_SEED`]: crate::streaming::TIMELINE_DIGEST_SEED
    pub timeline_digest: u64,
    /// The retained timeline suffix up to the snapshot boundary (the whole
    /// timeline when the window is unbounded).
    pub timeline: Vec<TimelineStats>,
    /// Batches ingested after the snapshot — the write-ahead segment that
    /// resume replays.
    pub tail: DeltaLog,
}

impl StreamCheckpoint {
    /// Appends a batch the runner has ingested since the snapshot — the
    /// O(batch) write-ahead step of the operating loop. The batch must be
    /// appended exactly once, in ingestion order.
    pub fn append(&mut self, batch: UpdateBatch) {
        self.tail.record(batch);
    }

    /// Source position this checkpoint corresponds to: every batch covered
    /// by the snapshot plus every appended tail batch. Fast-forward a
    /// freshly reconstructed source here before pulling new batches.
    ///
    /// Derived from the explicit [`batches_ingested`] counter: with a
    /// bounded timeline window, `timeline.len()` only counts the retained
    /// suffix and would silently reposition the source too early.
    ///
    /// [`batches_ingested`]: StreamCheckpoint::batches_ingested
    pub fn cursor(&self) -> SourceCursor {
        SourceCursor::at((self.batches_ingested + self.tail.len()) as u64)
    }

    /// Folds the oldest `batches` tail segments into a fresh snapshot and
    /// truncates them, keeping recovery O(tail) instead of O(stream).
    ///
    /// Replay is deterministic, so compaction is observationally lossless:
    /// resuming the compacted checkpoint yields exactly the runner that
    /// resuming the uncompacted one would (pinned by the
    /// compaction-equals-full-replay property tests).
    pub fn compact(&mut self, batches: usize) {
        let n = batches.min(self.tail.len());
        if n == 0 {
            return;
        }
        let mut tail = std::mem::take(&mut self.tail);
        let prefix = DeltaLog::from(tail.split_front(n));
        // Move the expensive parts (graph, assignment, log, timeline) into
        // the replay instead of deep-cloning them — `*self` is rebuilt from
        // the folded runner right after, so only cheap stand-ins are left
        // behind transiently.
        let state = PartitionerState {
            graph: std::mem::replace(&mut self.state.graph, DynGraph::new()),
            partitioning: std::mem::replace(&mut self.state.partitioning, Partitioning::new(0, 1)),
            config: self.state.config.clone(),
            seed: self.state.seed,
            iteration: self.state.iteration,
            quiet_streak: self.state.quiet_streak,
            fixed_capacities: self.state.fixed_capacities.take(),
        };
        let folded = StreamingRunner::resume(StreamCheckpoint {
            state,
            iterations_per_batch: self.iterations_per_batch,
            record: self.record,
            log: std::mem::take(&mut self.log),
            timeline_window: self.timeline_window,
            batches_ingested: self.batches_ingested,
            timeline_digest: self.timeline_digest,
            timeline: std::mem::take(&mut self.timeline),
            tail: prefix,
        });
        *self = folded.checkpoint();
        self.tail = tail;
    }

    /// Serialises as a framed, versioned checkpoint file (`APGC` magic).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::encode_framed(format::MAGIC_CHECKPOINT, self)
    }

    /// Restores a checkpoint written by [`StreamCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: wrong magic, unsupported version, truncation,
    /// or a payload violating the checkpoint invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        format::decode_framed(format::MAGIC_CHECKPOINT, bytes)
    }

    /// Structural invariants every checkpoint must satisfy, however it was
    /// built (decoded whole, or reconstituted by [`CheckpointDelta::apply`]):
    /// the timeline-window bookkeeping and the partitioner-state
    /// cross-checks.
    pub(crate) fn validate(&self) -> Result<(), DecodeError> {
        if self.timeline_window == 0 {
            return Err(DecodeError::Corrupt("timeline window is zero"));
        }
        if self.timeline.len() > self.batches_ingested {
            return Err(DecodeError::Corrupt(
                "timeline longer than the batches-ingested counter",
            ));
        }
        if self.timeline.len() > self.timeline_window {
            return Err(DecodeError::Corrupt("timeline overflows its window"));
        }
        let evicted = self.batches_ingested - self.timeline.len();
        if evicted > 0 {
            // The runner evicts only on window overflow, so once anything
            // has been evicted the retained suffix fills the window
            // exactly; a shorter suffix is unreachable from a real runner.
            if self.timeline.len() != self.timeline_window {
                return Err(DecodeError::Corrupt(
                    "timeline shorter than both its window and the ingest counter",
                ));
            }
        } else if self.timeline_digest != TIMELINE_DIGEST_SEED {
            // Nothing was evicted: the digest must still be the seed.
            return Err(DecodeError::Corrupt(
                "timeline digest diverged with no evicted entries",
            ));
        }
        for (i, stats) in self.timeline.iter().enumerate() {
            if stats.batch != evicted + i {
                return Err(DecodeError::Corrupt("timeline batch indices not dense"));
            }
        }
        self.state.validate()
    }
}

impl Encode for StreamCheckpoint {
    fn encode(&self, enc: &mut Encoder) {
        self.state.encode(enc);
        self.iterations_per_batch.encode(enc);
        self.record.encode(enc);
        self.log.encode(enc);
        self.timeline_window.encode(enc);
        self.batches_ingested.encode(enc);
        self.timeline_digest.encode(enc);
        self.timeline.encode(enc);
        self.tail.encode(enc);
    }
}

impl Decode for StreamCheckpoint {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let state = PartitionerState::decode(dec)?;
        let iterations_per_batch = usize::decode(dec)?;
        let record = bool::decode(dec)?;
        let log = DeltaLog::decode(dec)?;
        let timeline_window = usize::decode(dec)?;
        let batches_ingested = usize::decode(dec)?;
        let timeline_digest = u64::decode(dec)?;
        // The capacity clamp: a flipped length byte must not force a
        // multi-GB allocation (every shape invariant is re-checked by
        // `validate` below).
        let timeline_len = decode_len(dec, 14)?;
        let mut timeline = Vec::with_capacity(timeline_len.min(dec.remaining()));
        for _ in 0..timeline_len {
            timeline.push(TimelineStats::decode(dec)?);
        }
        let tail = DeltaLog::decode(dec)?;
        let checkpoint = StreamCheckpoint {
            state,
            iterations_per_batch,
            record,
            log,
            timeline_window,
            batches_ingested,
            timeline_digest,
            timeline,
            tail,
        };
        checkpoint.validate()?;
        Ok(checkpoint)
    }
}

/// A delta-encoded checkpoint: the difference between a durable base
/// [`StreamCheckpoint`] and a newer one, `O(changed-state)` on the wire
/// instead of `O(state)`.
///
/// A delta names its base by `(sequence, digest)` — the same link the
/// [`SegmentStore`] records file-to-file — and carries exactly what moved
/// since: the [`GraphDiff`] over the mutation-tracked changed slots, label
/// records for re-assigned slots, the recorded-log suffix, and the
/// timeline window's slide (dropped-entry count + new entries). Small
/// scalars (config, seed, counters, the `O(k)` size table) ride along in
/// full — they are a rounding error next to the graph. Applying a delta to
/// its base ([`CheckpointDelta::apply`]) reproduces the newer checkpoint
/// **byte-identically**, which is what lets a recovery replay
/// base-plus-chain and land exactly where a full snapshot would have.
///
/// Serialised as a framed `APGD` container
/// ([`format::MAGIC_DELTA`]); deltas are decoded from disk, so
/// `apply` validates everything — structurally via
/// [`GraphDiff::validate_against`], and end-to-end via
/// `StreamCheckpoint::validate` — before any state escapes.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointDelta {
    /// Store sequence number of the base this delta chains to.
    pub base_seq: u64,
    /// FNV-1a digest of the base's durable frame payload (must match the
    /// store's link; see [`SegmentStore::root_digest`]).
    pub base_digest: u64,
    /// Structural graph changes since the base.
    pub graph: GraphDiff,
    /// `(slot, label)` records, strictly ascending by slot: every slot
    /// whose assignment changed, plus every newborn slot (whose label the
    /// base cannot know).
    pub labels: Vec<(usize, PartitionId)>,
    /// The full live-size table of the final state (`O(k)`).
    pub sizes: Vec<usize>,
    /// Final configuration, carried in full.
    pub config: AdaptiveConfig,
    /// RNG seed (never changes mid-stream, but carried for self-containment).
    pub seed: u64,
    /// Final iteration counter.
    pub iteration: usize,
    /// Final quiet streak.
    pub quiet_streak: usize,
    /// Final fixed capacities, if any.
    pub fixed_capacities: Option<CapacityModel>,
    /// Final per-batch iteration budget.
    pub iterations_per_batch: usize,
    /// Final recording flag.
    pub record: bool,
    /// Length the base's recorded log must have — the suffix below chains
    /// at exactly this offset.
    pub base_log_len: usize,
    /// Recorded-log batches appended since the base.
    pub log_suffix: DeltaLog,
    /// How many of the base's retained timeline entries the window slid
    /// past (dropped from the front).
    pub timeline_dropped: usize,
    /// Timeline entries newer than the base's coverage.
    pub timeline_new: Vec<TimelineStats>,
    /// Final timeline window (carried verbatim).
    pub timeline_window: usize,
    /// Final stream position.
    pub batches_ingested: usize,
    /// Final evicted-entry digest. Re-derived from the base's digest and
    /// the dropped entries whenever the drop fully accounts for the
    /// eviction gap; carried verbatim otherwise (entries that were born
    /// *and* evicted between the two checkpoints exist in neither).
    pub timeline_digest: u64,
    /// Write-ahead tail (empty for store-installed deltas: the store's
    /// segments carry the tail).
    pub tail: DeltaLog,
}

impl CheckpointDelta {
    /// Encodes `current` against `base`, given the ascending changed-slot
    /// superset the mutation paths tracked (see
    /// [`AdaptivePartitioner::changed_slots`]) and the store link
    /// `(base_seq, base_digest)` of the durable base.
    ///
    /// Returns `None` when `current` is not reachable from `base` by
    /// append-only growth — the recorded log is not an extension of the
    /// base's, the timeline's retained base suffix was rewritten, or the
    /// slot space shrank. Callers fall back to a full snapshot install;
    /// `None` is a policy signal, not an error.
    pub fn between(
        base: &StreamCheckpoint,
        current: &StreamCheckpoint,
        changed: &[usize],
        base_seq: u64,
        base_digest: u64,
    ) -> Option<CheckpointDelta> {
        let base_n = base.state.graph.num_vertices();
        let cur_n = current.state.graph.num_vertices();
        if cur_n < base_n || current.batches_ingested < base.batches_ingested {
            return None;
        }
        // The recorded log only ever appends; anything else (a toggled
        // `record`, an in-memory compaction) breaks the chain.
        if base.log.len() > current.log.len()
            || base.log.batches() != &current.log.batches()[..base.log.len()]
        {
            return None;
        }
        // The timeline slides forward: entries the window still retains
        // from the base must reappear verbatim at the front of `current`.
        let base_evicted = base.batches_ingested - base.timeline.len();
        let cur_evicted = current.batches_ingested - current.timeline.len();
        if cur_evicted < base_evicted {
            return None;
        }
        let keep = base
            .batches_ingested
            .saturating_sub(cur_evicted)
            .min(base.timeline.len());
        let dropped = base.timeline.len() - keep;
        if current.timeline.len() < keep || base.timeline[dropped..] != current.timeline[..keep] {
            return None;
        }
        let graph = GraphDiff::between(&base.state.graph, &current.state.graph, changed);
        // Label records: every tracked slot whose assignment moved, plus
        // newborns (merged in exactly as `GraphDiff::between` does).
        let base_assign = base.state.partitioning.as_slice();
        let cur_assign = current.state.partitioning.as_slice();
        let mut labels = Vec::new();
        let mut push_label = |slot: usize| {
            if slot >= base_n || base_assign[slot] != cur_assign[slot] {
                labels.push((slot, cur_assign[slot]));
            }
        };
        let mut newborn = base_n..cur_n;
        let mut next_newborn = newborn.next();
        for &slot in changed {
            while let Some(nb) = next_newborn {
                if nb >= slot {
                    break;
                }
                push_label(nb);
                next_newborn = newborn.next();
            }
            if next_newborn == Some(slot) {
                next_newborn = newborn.next();
            }
            push_label(slot);
        }
        while let Some(nb) = next_newborn {
            push_label(nb);
            next_newborn = newborn.next();
        }
        Some(CheckpointDelta {
            base_seq,
            base_digest,
            graph,
            labels,
            sizes: current.state.partitioning.sizes().to_vec(),
            config: current.state.config.clone(),
            seed: current.state.seed,
            iteration: current.state.iteration,
            quiet_streak: current.state.quiet_streak,
            fixed_capacities: current.state.fixed_capacities.clone(),
            iterations_per_batch: current.iterations_per_batch,
            record: current.record,
            base_log_len: base.log.len(),
            log_suffix: DeltaLog::from(current.log.batches()[base.log.len()..].to_vec()),
            timeline_dropped: dropped,
            timeline_new: current.timeline[keep..].to_vec(),
            timeline_window: current.timeline_window,
            batches_ingested: current.batches_ingested,
            timeline_digest: current.timeline_digest,
            tail: current.tail.clone(),
        })
    }

    /// Reconstitutes the checkpoint this delta encodes, given its base.
    ///
    /// Every invariant is validated before the result escapes: the graph
    /// diff against the base graph, label/size consistency, log chaining,
    /// the timeline slide and its digest, and finally the full
    /// `StreamCheckpoint::validate` pass — a delta applied to the wrong
    /// base, or a corrupted one, yields a typed error, never a panic or a
    /// silently divergent checkpoint.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Corrupt`] naming the violated invariant.
    pub fn apply(&self, base: &StreamCheckpoint) -> Result<StreamCheckpoint, DecodeError> {
        let mut graph = base.state.graph.clone();
        self.graph.apply_to(&mut graph)?;
        let base_n = base.state.graph.num_vertices();
        // Labels: base assignment, slid under the records. Tombstones keep
        // their stale base label (the wire format persists it), so absence
        // of a record is itself meaningful.
        let mut assignment = base.state.partitioning.as_slice().to_vec();
        assignment.resize(self.graph.new_slots, 0);
        for &(slot, label) in &self.labels {
            assignment[slot] = label;
        }
        for slot in base_n..self.graph.new_slots {
            if self
                .labels
                .binary_search_by_key(&slot, |&(s, _)| s)
                .is_err()
            {
                return Err(DecodeError::Corrupt("newborn slot missing a label record"));
            }
        }
        let partitioning = Partitioning::from_labels_and_live_sizes(assignment, self.sizes.clone())
            .map_err(DecodeError::Corrupt)?;
        // Log: the suffix chains at exactly the base's recorded length.
        if self.base_log_len != base.log.len() {
            return Err(DecodeError::Corrupt(
                "delta log suffix does not chain to the base log",
            ));
        }
        let mut log = base.log.clone();
        for batch in self.log_suffix.batches() {
            log.record(batch.clone());
        }
        // Timeline: slide the base window, then append the new entries.
        if self.timeline_dropped > base.timeline.len() {
            return Err(DecodeError::Corrupt(
                "delta drops more timeline entries than the base retains",
            ));
        }
        let mut timeline = base.timeline[self.timeline_dropped..].to_vec();
        timeline.extend(self.timeline_new.iter().cloned());
        let base_evicted = base.batches_ingested - base.timeline.len();
        let cur_evicted =
            self.batches_ingested
                .checked_sub(timeline.len())
                .ok_or(DecodeError::Corrupt(
                    "timeline longer than the batches-ingested counter",
                ))?;
        if cur_evicted < base_evicted {
            return Err(DecodeError::Corrupt(
                "delta timeline evicts fewer entries than its base",
            ));
        }
        // When the dropped base entries fully account for the eviction
        // gap, the final digest is derivable — require it to match. (A
        // gap wider than the drop means entries were born and evicted
        // between the checkpoints; their stats exist in neither side, so
        // the carried digest is taken on faith and the store's frame CRC
        // plus chain digest guard its integrity.)
        if cur_evicted - base_evicted == self.timeline_dropped {
            let mut digest = base.timeline_digest;
            for stats in &base.timeline[..self.timeline_dropped] {
                digest = fold_timeline_digest(digest, stats);
            }
            if digest != self.timeline_digest {
                return Err(DecodeError::Corrupt(
                    "delta timeline digest does not extend the base's",
                ));
            }
        }
        let checkpoint = StreamCheckpoint {
            state: PartitionerState {
                graph,
                partitioning,
                config: self.config.clone(),
                seed: self.seed,
                iteration: self.iteration,
                quiet_streak: self.quiet_streak,
                fixed_capacities: self.fixed_capacities.clone(),
            },
            iterations_per_batch: self.iterations_per_batch,
            record: self.record,
            log,
            timeline_window: self.timeline_window,
            batches_ingested: self.batches_ingested,
            timeline_digest: self.timeline_digest,
            timeline,
            tail: self.tail.clone(),
        };
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Serialises as a framed, versioned delta file (`APGD` magic).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::encode_framed(format::MAGIC_DELTA, self)
    }

    /// Restores a delta written by [`CheckpointDelta::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: wrong magic, unsupported version, truncation,
    /// or a payload violating the bytes-only delta invariants (base-aware
    /// validation happens in [`CheckpointDelta::apply`]).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        format::decode_framed(format::MAGIC_DELTA, bytes)
    }
}

impl Encode for CheckpointDelta {
    fn encode(&self, enc: &mut Encoder) {
        self.base_seq.encode(enc);
        self.base_digest.encode(enc);
        self.graph.encode(enc);
        self.labels.len().encode(enc);
        for &(slot, label) in &self.labels {
            slot.encode(enc);
            label.encode(enc);
        }
        self.sizes.encode(enc);
        self.config.encode(enc);
        self.seed.encode(enc);
        self.iteration.encode(enc);
        self.quiet_streak.encode(enc);
        self.fixed_capacities.encode(enc);
        self.iterations_per_batch.encode(enc);
        self.record.encode(enc);
        self.base_log_len.encode(enc);
        self.log_suffix.encode(enc);
        self.timeline_dropped.encode(enc);
        self.timeline_new.encode(enc);
        self.timeline_window.encode(enc);
        self.batches_ingested.encode(enc);
        self.timeline_digest.encode(enc);
        self.tail.encode(enc);
    }
}

impl Decode for CheckpointDelta {
    /// Bytes-only validation (label ordering and range); everything that
    /// needs the base checkpoint lives in [`CheckpointDelta::apply`].
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let base_seq = u64::decode(dec)?;
        let base_digest = u64::decode(dec)?;
        let graph = GraphDiff::decode(dec)?;
        let labels_len = decode_len(dec, 2)?;
        let mut labels = Vec::with_capacity(labels_len.min(dec.remaining()));
        let mut prev: Option<usize> = None;
        for _ in 0..labels_len {
            let slot = usize::decode(dec)?;
            let label = PartitionId::decode(dec)?;
            if slot >= graph.new_slots {
                return Err(DecodeError::Corrupt("label record slot out of range"));
            }
            if prev.is_some_and(|p| p >= slot) {
                return Err(DecodeError::Corrupt("label records not strictly ascending"));
            }
            prev = Some(slot);
            labels.push((slot, label));
        }
        Ok(CheckpointDelta {
            base_seq,
            base_digest,
            graph,
            labels,
            sizes: Vec::decode(dec)?,
            config: AdaptiveConfig::decode(dec)?,
            seed: u64::decode(dec)?,
            iteration: usize::decode(dec)?,
            quiet_streak: usize::decode(dec)?,
            fixed_capacities: Option::decode(dec)?,
            iterations_per_batch: usize::decode(dec)?,
            record: bool::decode(dec)?,
            base_log_len: usize::decode(dec)?,
            log_suffix: DeltaLog::decode(dec)?,
            timeline_dropped: usize::decode(dec)?,
            timeline_new: Vec::decode(dec)?,
            timeline_window: usize::decode(dec)?,
            batches_ingested: usize::decode(dec)?,
            timeline_digest: u64::decode(dec)?,
            tail: DeltaLog::decode(dec)?,
        })
    }
}

impl StreamingRunner {
    /// Captures a durable snapshot of this runner at the current batch
    /// boundary, with an empty write-ahead tail.
    ///
    /// The intended loop: checkpoint rarely (O(graph)), then
    /// [`StreamCheckpoint::append`] each ingested batch (O(batch)), and
    /// occasionally [`StreamCheckpoint::compact`]. A checkpoint taken
    /// mid-stream plus the tail of later batches reproduces this runner
    /// exactly — see [`StreamingRunner::resume`].
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            state: self.partitioner().snapshot_state(),
            iterations_per_batch: self.iterations_budget(),
            record: self.records_log(),
            log: self.log().clone(),
            timeline_window: self.timeline_window_len(),
            batches_ingested: self.batches_ingested(),
            timeline_digest: self.timeline_digest(),
            timeline: self.timeline().to_vec(),
            tail: DeltaLog::new(),
        }
    }

    /// Rebuilds a runner from a checkpoint: restores the snapshot state,
    /// then re-ingests the write-ahead tail through the normal
    /// deterministic path.
    ///
    /// The result is byte-identical (timeline, partitioning, cut, graph —
    /// everything but `wall_ms`) to the runner that produced the
    /// checkpoint, and its future behaviour is byte-identical to an
    /// uninterrupted run's. To continue pulling from a stream, reconstruct
    /// the source with its original arguments and fast-forward it to
    /// [`StreamCheckpoint::cursor`].
    pub fn resume(checkpoint: StreamCheckpoint) -> StreamingRunner {
        let StreamCheckpoint {
            state,
            iterations_per_batch,
            record,
            log,
            timeline_window,
            batches_ingested,
            timeline_digest,
            timeline,
            tail,
        } = checkpoint;
        let mut runner = StreamingRunner::from_checkpoint_parts(
            AdaptivePartitioner::restore(state),
            iterations_per_batch,
            record,
            log,
            timeline,
            timeline_window,
            batches_ingested,
            timeline_digest,
        );
        // Restore saturates the changed-slot set (its base is unknown in
        // general), but here the base is exact: the restored state *is*
        // the checkpoint's snapshot, so nothing has changed relative to it
        // yet. Clear before the tail replay re-marks the tail's churn.
        runner.partitioner_mut().clear_changed();
        for batch in tail.into_batches() {
            runner.ingest(&batch);
        }
        runner
    }
}

/// A [`StreamCheckpoint`] recovered from disk by [`CheckpointStore::open`].
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// The durable checkpoint — the manifest-named snapshot with every
    /// durable write-ahead batch re-appended to its tail. `None` when the
    /// directory held no durable snapshot (fresh store).
    pub checkpoint: Option<StreamCheckpoint>,
    /// Write-ahead frames dropped by torn-tail repair (see
    /// [`apg_persist::store::Recovery::torn_frames_dropped`]). The
    /// recovered checkpoint's [`cursor`](StreamCheckpoint::cursor) already
    /// accounts for them: re-drive the source from there.
    pub torn_frames_dropped: usize,
}

/// What one [`CheckpointStore::install`] durably wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstallReport {
    /// Whether the checkpoint was encoded incrementally — a
    /// [`CheckpointDelta`] chained onto the previous root — rather than as
    /// a full snapshot (the first install, a rebase, or a fallback when
    /// the runner's history was not an append-only extension of the base).
    pub incremental: bool,
    /// Serialised payload size in bytes (of the delta or full snapshot).
    pub bytes: usize,
}

/// File-backed durability for a [`StreamingRunner`]: the
/// [`SegmentStore`] with the checkpoint codec wired on top, so the
/// operating loop works with a *directory path* instead of in-memory byte
/// blobs.
///
/// The loop: [`CheckpointStore::install`] rarely, [`CheckpointStore::append`]
/// after every ingested batch (one O(batch) durable frame). Installs are
/// **incremental** whenever possible: the store keeps the chain-head
/// checkpoint in memory as the diff base, drains the runner's changed-slot
/// tracking, and writes an `O(changed-state)` [`CheckpointDelta`] chained
/// onto the previous root — falling back to a full snapshot on the first
/// install, when the chain reaches
/// [`StoreConfig::max_chain_len`] (the rebase, which also
/// garbage-collects the superseded chain), or when the runner's history
/// is not an append-only extension of the base. Each install starts a
/// fresh write-ahead segment — the file-backed analogue of
/// [`StreamCheckpoint::compact`]'s bounding of recovery time. After a
/// crash, [`CheckpointStore::open`] replays base plus chain and rebuilds
/// the exact `(snapshot, tail)` checkpoint that was durable at the kill
/// point.
#[derive(Debug)]
pub struct CheckpointStore {
    store: SegmentStore,
    /// The decoded chain-head checkpoint (tail-free) — what the next
    /// incremental install diffs against. `None` only on a fresh store
    /// before its first install.
    base: Option<StreamCheckpoint>,
}

impl CheckpointStore {
    /// Opens (or creates) the store in `dir`, recovering whatever was
    /// durable: the root snapshot, every chained delta applied in order,
    /// then the write-ahead tail re-appended.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// for damaged sealed artefacts (including broken chain links),
    /// [`StoreError::Decode`] when a frame is intact at the store layer
    /// but its payload violates the checkpoint/delta/batch codecs — a
    /// delta that does not apply cleanly to its recovered base lands
    /// here. Never panics on any byte pattern.
    pub fn open(
        dir: &std::path::Path,
        config: StoreConfig,
    ) -> Result<(CheckpointStore, RecoveredCheckpoint), StoreError> {
        let (store, recovery) = SegmentStore::open(dir, config)?;
        let mut head = match recovery.snapshot {
            None => None,
            Some(bytes) => Some(StreamCheckpoint::from_bytes(&bytes)?),
        };
        for payload in &recovery.deltas {
            let delta = CheckpointDelta::from_bytes(payload)?;
            let base = head.ok_or(StoreError::Corrupt(
                "delta chain recovered without a base snapshot",
            ))?;
            head = Some(delta.apply(&base)?);
        }
        let checkpoint = match &head {
            None => None,
            Some(head) => {
                let mut ckpt = head.clone();
                for payload in &recovery.tail {
                    ckpt.append(UpdateBatch::from_bytes(payload)?);
                }
                Some(ckpt)
            }
        };
        Ok((
            CheckpointStore { store, base: head },
            RecoveredCheckpoint {
                checkpoint,
                torn_frames_dropped: recovery.torn_frames_dropped,
            },
        ))
    }

    /// Captures `runner`'s state and makes it the durable recovery root.
    ///
    /// Writes a chained [`CheckpointDelta`] (`O(changed-state)`) when a
    /// base exists, the chain is below
    /// [`StoreConfig::max_chain_len`], and the runner's
    /// history extends the base append-only; otherwise a full snapshot —
    /// which is also the **rebase**: installing it folds the chain away
    /// and garbage-collects the stale files. Either way the manifest flip
    /// is atomic, a fresh write-ahead segment starts, and the runner's
    /// changed-slot tracking is drained so the next install diffs against
    /// exactly this state.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on error the previous root stays durable and
    /// the changed-slot tracking is left intact (the failed install never
    /// becomes a diff base).
    pub fn install(&mut self, runner: &mut StreamingRunner) -> Result<InstallReport, StoreError> {
        let full = runner.checkpoint();
        let full_bytes = full.to_bytes();
        if !self.store.needs_rebase() {
            if let (Some(base), Some(seq), Some(digest)) = (
                self.base.as_ref(),
                self.store.snapshot_seq(),
                self.store.root_digest(),
            ) {
                let changed = runner.partitioner().changed_slots();
                if let Some(delta) = CheckpointDelta::between(base, &full, &changed, seq, digest) {
                    let bytes = delta.to_bytes();
                    // A delta only earns its chain link by being smaller:
                    // when most of the state churned since the base, the
                    // per-slot framing makes the delta *larger* than the
                    // snapshot it stands in for — install full instead,
                    // which also resets the chain for free.
                    if bytes.len() < full_bytes.len() {
                        self.store.install_delta(&bytes)?;
                        runner.partitioner_mut().clear_changed();
                        self.base = Some(full);
                        return Ok(InstallReport {
                            incremental: true,
                            bytes: bytes.len(),
                        });
                    }
                }
            }
        }
        self.store.install_snapshot(&full_bytes)?;
        runner.partitioner_mut().clear_changed();
        self.base = Some(full);
        Ok(InstallReport {
            incremental: false,
            bytes: full_bytes.len(),
        })
    }

    /// Write-aheads one ingested batch (call with exactly the batches the
    /// runner ingests, in ingestion order — the disk mirror of
    /// [`StreamCheckpoint::append`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<(), StoreError> {
        self.store.append(&batch.to_bytes())
    }

    /// The underlying payload-agnostic store (sequence numbers, live byte
    /// accounting, the directory path).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_partition::InitialStrategy;
    use apg_streams::{RestartableSource, StreamSource};

    fn growth_runner(parallelism: usize) -> (StreamingRunner, apg_streams::PowerLawGrowth) {
        let base = DynGraph::with_vertices(200);
        let cfg = AdaptiveConfig::new(4).parallelism(parallelism);
        let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 11);
        let runner = StreamingRunner::new(p)
            .iterations_per_batch(2)
            .record_log(true);
        let source = apg_streams::PowerLawGrowth::new(&base, 3, 40, 11);
        (runner, source)
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 3);
        let mut ckpt = runner.checkpoint();
        let batch = source.next_batch().unwrap();
        runner.ingest(&batch);
        ckpt.append(batch);
        let back = StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.cursor(), apg_streams::SourceCursor::at(4));
    }

    #[test]
    fn resume_reproduces_the_runner_exactly() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 2);
        let mut ckpt = runner.checkpoint();
        for _ in 0..3 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let mut resumed =
            StreamingRunner::resume(StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap());
        assert_eq!(resumed.timeline(), runner.timeline());
        assert_eq!(resumed.log(), runner.log());
        assert_eq!(resumed.partitioner().graph(), runner.partitioner().graph());
        assert_eq!(
            resumed.partitioner().partitioning(),
            runner.partitioner().partitioning()
        );
        assert_eq!(
            resumed.partitioner().cut_edges(),
            runner.partitioner().cut_edges()
        );
        assert_eq!(
            resumed.partitioner().iteration(),
            runner.partitioner().iteration()
        );
        resumed.partitioner().audit();

        // The futures agree too.
        let mut source2 = {
            let base = DynGraph::with_vertices(200);
            apg_streams::PowerLawGrowth::new(&base, 3, 40, 11)
        };
        source2.fast_forward(ckpt_cursor_of(&resumed));
        let batch = source.next_batch().unwrap();
        assert_eq!(source2.next_batch().unwrap(), batch);
        assert_eq!(resumed.ingest(&batch), runner.ingest(&batch));
    }

    fn ckpt_cursor_of(runner: &StreamingRunner) -> apg_streams::SourceCursor {
        // `batches_ingested`, not `timeline().len()`: with a bounded window
        // the retained timeline is shorter than the stream position.
        apg_streams::SourceCursor::at(runner.batches_ingested() as u64)
    }

    #[test]
    fn compaction_preserves_the_resumed_runner() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 1);
        let mut ckpt = runner.checkpoint();
        for _ in 0..5 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let full = ckpt.clone();
        ckpt.compact(3);
        assert_eq!(ckpt.tail.len(), 2, "three segments folded away");
        assert_eq!(ckpt.timeline.len(), 4, "snapshot advanced to batch 4");
        assert_eq!(ckpt.cursor(), full.cursor(), "coverage unchanged");

        let a = StreamingRunner::resume(full);
        let b = StreamingRunner::resume(ckpt);
        assert_eq!(a.timeline(), b.timeline());
        assert_eq!(a.partitioner().graph(), b.partitioner().graph());
        assert_eq!(
            a.partitioner().partitioning(),
            b.partitioner().partitioning()
        );
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn compact_everything_and_nothing() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 1);
        let mut ckpt = runner.checkpoint();
        for _ in 0..2 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let before = ckpt.clone();
        ckpt.compact(0);
        assert_eq!(ckpt, before, "compact(0) is a no-op");
        ckpt.compact(usize::MAX);
        assert!(ckpt.tail.is_empty(), "over-asking folds the whole tail");
        assert_eq!(
            StreamingRunner::resume(ckpt).timeline(),
            StreamingRunner::resume(before).timeline(),
        );
    }

    #[test]
    fn config_and_state_decoders_reject_corruption() {
        let cfg = AdaptiveConfig::new(3);
        // Willingness out of range.
        let mut bad = cfg.clone();
        bad.willingness = 7.5;
        assert!(matches!(
            AdaptiveConfig::from_bytes(&bad.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("willingness outside [0, 1]")
        ));
        // Drain floor out of range.
        let mut bad = cfg.clone();
        bad.drain_floor = 1.5;
        assert!(matches!(
            AdaptiveConfig::from_bytes(&bad.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("drain floor outside [0, 1)")
        ));
        // Partitioner state whose assignment is too short for the graph.
        let graph = DynGraph::with_vertices(5);
        let p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 1);
        let mut state = p.snapshot_state();
        state.partitioning = Partitioning::new(3, 3);
        assert!(matches!(
            PartitionerState::from_bytes(&state.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("assignment does not cover the graph's slots")
        ));
    }

    #[test]
    fn fixed_capacities_survive_the_trip() {
        let graph = DynGraph::with_vertices(60);
        let cfg = AdaptiveConfig::new(3);
        let mut p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 5);
        let caps = CapacityModel::vertex_balanced(60, 3, 1.5);
        p.set_fixed_capacities(caps.clone());
        let state = PartitionerState::from_bytes(&p.snapshot_state().to_bytes()).unwrap();
        assert_eq!(state.fixed_capacities.as_ref(), Some(&caps));
        let restored = AdaptivePartitioner::restore(state);
        assert_eq!(restored.capacities(), caps);
    }

    #[test]
    fn timeline_decode_requires_dense_batch_indices() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 2);
        let mut ckpt = runner.checkpoint();
        ckpt.timeline[1].batch = 7;
        assert!(matches!(
            StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("timeline batch indices not dense")
        ));
    }
}
