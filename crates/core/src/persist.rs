//! Restartable streams: checkpoints as `(snapshot, delta-log tail)` with
//! log compaction.
//!
//! This is the top of the workspace's durable-state stack (`apg-persist`
//! holds the codec, `apg-graph`/`apg-partition` the substrate codecs). The
//! unit of durability is the [`StreamCheckpoint`]:
//!
//! * a **snapshot** — the full logical state of a [`StreamingRunner`] at
//!   some batch boundary ([`PartitionerState`] + runner settings + the
//!   timeline and recorded log so far), and
//! * a **tail** — the [`DeltaLog`] of batches ingested *after* the
//!   snapshot was taken (the write-ahead segment).
//!
//! The operating loop writes the snapshot rarely and appends each ingested
//! batch to the tail (O(batch)). A snapshot is O(state): graph plus
//! assignment plus the *retained* [`TimelineStats`] suffix. With a bounded
//! [`StreamingRunner::timeline_window`] the suffix is O(window) — evicted
//! entries are folded into a rolling FNV-1a digest
//! ([`fold_timeline_digest`](crate::streaming::fold_timeline_digest)), and
//! the checkpoint carries `(window, batches_ingested, digest)` so the full
//! history stays pinned byte-for-byte without being stored. With the
//! default unbounded window the whole history is retained, exactly as
//! before format v3. After a crash,
//! [`StreamingRunner::resume`] rebuilds the runner from the snapshot and
//! re-ingests the tail; because ingestion and the decision sweep are
//! deterministic, the resumed runner's [`TimelineStats`] timeline — and
//! every future batch it processes — is byte-identical to an uninterrupted
//! run's (`wall_ms` aside). [`StreamCheckpoint::compact`] folds a prefix
//! of the tail into a fresh snapshot by exactly that replay, then truncates
//! the segments, bounding recovery time on long streams.
//!
//! The stream *source* is not persisted: every `apg-streams` source is a
//! pure function of its constructor arguments, so the checkpoint only
//! records the [`SourceCursor`] — reconstruct the source with the same
//! arguments and [`RestartableSource::fast_forward`] to the cursor.
//!
//! [`RestartableSource::fast_forward`]: apg_streams::RestartableSource::fast_forward
//!
//! # Example
//!
//! ```
//! use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
//! use apg_core::persist::StreamCheckpoint;
//! use apg_graph::DynGraph;
//! use apg_partition::InitialStrategy;
//! use apg_streams::{PowerLawGrowth, RestartableSource, StreamSource};
//!
//! let base = DynGraph::with_vertices(100);
//! let cfg = AdaptiveConfig::new(4).parallelism(1);
//! let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 7);
//! let mut runner = StreamingRunner::new(p).iterations_per_batch(2);
//! let mut source = PowerLawGrowth::new(&base, 3, 25, 7);
//!
//! // Process four batches, checkpointing after two.
//! let mut ckpt = None;
//! for i in 0..4 {
//!     let batch = source.next_batch().unwrap();
//!     runner.ingest(&batch);
//!     match &mut ckpt {
//!         None if i == 1 => ckpt = Some(runner.checkpoint()),
//!         Some(c) => c.append(batch), // write-ahead the tail
//!         None => {}
//!     }
//! }
//! let bytes = ckpt.unwrap().to_bytes(); // what would hit disk
//!
//! // "Crash": rebuild everything from the bytes.
//! let ckpt = StreamCheckpoint::from_bytes(&bytes).unwrap();
//! let mut source2 = PowerLawGrowth::new(&base, 3, 25, 7);
//! source2.fast_forward(ckpt.cursor());
//! let mut resumed = StreamingRunner::resume(ckpt);
//! assert_eq!(resumed.timeline(), runner.timeline());
//!
//! // Both runs continue identically.
//! let next = source.next_batch().unwrap();
//! assert_eq!(source2.next_batch().unwrap(), next);
//! assert_eq!(resumed.ingest(&next), runner.ingest(&next));
//! ```

use apg_graph::{DeltaLog, DynGraph, Graph, UpdateBatch};
use apg_partition::{CapacityModel, Partitioning};
use apg_persist::store::{SegmentStore, StoreConfig, StoreError};
use apg_persist::{decode_len, format, Decode, DecodeError, Decoder, Encode, Encoder};
use apg_streams::SourceCursor;

use crate::config::{AdaptiveConfig, Anneal, PlacementPolicy, QuotaRule};
use crate::partitioner::AdaptivePartitioner;
use crate::streaming::{StreamingRunner, TimelineStats, TIMELINE_DIGEST_SEED};

/// The complete logical state of an [`AdaptivePartitioner`], as captured
/// by [`AdaptivePartitioner::snapshot_state`].
///
/// Holds exactly the fields the determinism contract needs (the iteration
/// counter keys the per-shard RNG streams) and none of the derived
/// accounting (cut, degree mass), which restore recomputes.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionerState {
    /// The graph, tombstone slots included (ids stay dense on restore).
    pub graph: DynGraph,
    /// Assignment and live sizes.
    pub partitioning: Partitioning,
    /// Full configuration, `parallelism` included (results are identical
    /// at every parallelism level, so restoring it is a wall-clock choice,
    /// not a correctness one).
    pub config: AdaptiveConfig,
    /// RNG seed.
    pub seed: u64,
    /// Iterations executed so far (keys the RNG streams and the anneal
    /// schedule).
    pub iteration: usize,
    /// Consecutive migration-free iterations.
    pub quiet_streak: usize,
    /// Explicit capacity limits, if the automatic tracking was overridden.
    pub fixed_capacities: Option<CapacityModel>,
}

impl Encode for QuotaRule {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            QuotaRule::PerSourceSplit => 0,
            QuotaRule::Unbounded => 1,
        };
        tag.encode(enc);
    }
}

impl Decode for QuotaRule {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match u8::decode(dec)? {
            0 => Ok(QuotaRule::PerSourceSplit),
            1 => Ok(QuotaRule::Unbounded),
            _ => Err(DecodeError::Corrupt("unknown QuotaRule tag")),
        }
    }
}

impl Encode for PlacementPolicy {
    fn encode(&self, enc: &mut Encoder) {
        let tag: u8 = match self {
            PlacementPolicy::HashWithFallback => 0,
            PlacementPolicy::LeastLoaded => 1,
        };
        tag.encode(enc);
    }
}

impl Decode for PlacementPolicy {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match u8::decode(dec)? {
            0 => Ok(PlacementPolicy::HashWithFallback),
            1 => Ok(PlacementPolicy::LeastLoaded),
            _ => Err(DecodeError::Corrupt("unknown PlacementPolicy tag")),
        }
    }
}

impl Encode for Anneal {
    fn encode(&self, enc: &mut Encoder) {
        self.start.encode(enc);
        self.end.encode(enc);
        self.over_iterations.encode(enc);
    }
}

impl Decode for Anneal {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let anneal = Anneal {
            start: f64::decode(dec)?,
            end: f64::decode(dec)?,
            over_iterations: usize::decode(dec)?,
        };
        if !(0.0..=1.0).contains(&anneal.start) || !(0.0..=1.0).contains(&anneal.end) {
            return Err(DecodeError::Corrupt("anneal endpoint outside [0, 1]"));
        }
        Ok(anneal)
    }
}

impl Encode for AdaptiveConfig {
    /// The diagnostic hooks (`sweep_exhaustive`, `apply_serial`,
    /// `budget_fixed`) are deliberately absent: they are transient test
    /// switches that never alter results, not logical state — persisting
    /// them would change the wire format for knobs that never alter
    /// behaviour. `drain_floor` *is* persisted (format v2): a non-default
    /// floor changes which iterations a resumed stream executes.
    fn encode(&self, enc: &mut Encoder) {
        self.num_partitions.encode(enc);
        self.willingness.encode(enc);
        self.capacity_factor.encode(enc);
        self.convergence_window.encode(enc);
        self.max_iterations.encode(enc);
        self.quota_rule.encode(enc);
        self.placement.encode(enc);
        self.anneal.encode(enc);
        self.balance_edges.encode(enc);
        self.count_self.encode(enc);
        self.parallelism.encode(enc);
        self.drain_floor.encode(enc);
    }
}

impl Decode for AdaptiveConfig {
    /// Re-validates every invariant the builder methods assert, returning
    /// errors instead of panicking.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = AdaptiveConfig {
            num_partitions: u16::decode(dec)?,
            willingness: f64::decode(dec)?,
            capacity_factor: f64::decode(dec)?,
            convergence_window: usize::decode(dec)?,
            max_iterations: usize::decode(dec)?,
            quota_rule: QuotaRule::decode(dec)?,
            placement: PlacementPolicy::decode(dec)?,
            anneal: Option::<Anneal>::decode(dec)?,
            balance_edges: bool::decode(dec)?,
            count_self: bool::decode(dec)?,
            parallelism: usize::decode(dec)?,
            drain_floor: f64::decode(dec)?,
            sweep_exhaustive: false,
            apply_serial: false,
            budget_fixed: false,
        };
        if config.num_partitions == 0 {
            return Err(DecodeError::Corrupt("config has zero partitions"));
        }
        if !(0.0..=1.0).contains(&config.willingness) {
            return Err(DecodeError::Corrupt("willingness outside [0, 1]"));
        }
        if !config.capacity_factor.is_finite() || config.capacity_factor < 1.0 {
            return Err(DecodeError::Corrupt("capacity factor below 1.0"));
        }
        if config.parallelism == 0 {
            return Err(DecodeError::Corrupt("config has zero parallelism"));
        }
        if !(0.0..1.0).contains(&config.drain_floor) {
            return Err(DecodeError::Corrupt("drain floor outside [0, 1)"));
        }
        Ok(config)
    }
}

impl Encode for TimelineStats {
    fn encode(&self, enc: &mut Encoder) {
        for field in self.deterministic_fields() {
            field.encode(enc);
        }
        // Measurement, not state — persisted for reporting, ignored by
        // equality exactly as in memory.
        self.wall_ms.encode(enc);
    }
}

impl Decode for TimelineStats {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TimelineStats {
            batch: usize::decode(dec)?,
            deltas: usize::decode(dec)?,
            vertices_added: usize::decode(dec)?,
            vertices_removed: usize::decode(dec)?,
            edges_added: usize::decode(dec)?,
            edges_removed: usize::decode(dec)?,
            cut_before: usize::decode(dec)?,
            cut_after_ingest: usize::decode(dec)?,
            cut_after: usize::decode(dec)?,
            migrations: usize::decode(dec)?,
            iterations: usize::decode(dec)?,
            live_vertices: usize::decode(dec)?,
            num_edges: usize::decode(dec)?,
            wall_ms: f64::decode(dec)?,
        })
    }
}

impl Encode for PartitionerState {
    fn encode(&self, enc: &mut Encoder) {
        self.graph.encode(enc);
        self.partitioning.encode(enc);
        self.config.encode(enc);
        self.seed.encode(enc);
        self.iteration.encode(enc);
        self.quiet_streak.encode(enc);
        self.fixed_capacities.encode(enc);
    }
}

impl Decode for PartitionerState {
    /// Validates cross-field consistency (assignment covering the graph,
    /// matching partition counts) so [`AdaptivePartitioner::restore`] can
    /// never panic on decoded state.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let state = PartitionerState {
            graph: DynGraph::decode(dec)?,
            partitioning: Partitioning::decode(dec)?,
            config: AdaptiveConfig::decode(dec)?,
            seed: u64::decode(dec)?,
            iteration: usize::decode(dec)?,
            quiet_streak: usize::decode(dec)?,
            fixed_capacities: Option::<CapacityModel>::decode(dec)?,
        };
        if state.partitioning.num_vertices() != state.graph.num_vertices() {
            return Err(DecodeError::Corrupt(
                "assignment does not cover the graph's slots",
            ));
        }
        if state.partitioning.num_partitions() != state.config.num_partitions {
            return Err(DecodeError::Corrupt(
                "assignment and config disagree on the partition count",
            ));
        }
        if let Some(caps) = &state.fixed_capacities {
            if caps.num_partitions() != state.config.num_partitions {
                return Err(DecodeError::Corrupt(
                    "capacity table and config disagree on the partition count",
                ));
            }
        }
        // The partitioning's size table must equal a recount over the live
        // vertices: [`AdaptivePartitioner::restore`]'s audit asserts this,
        // so a decoder that skipped it would turn corrupt (but individually
        // well-formed) fields into a downstream panic.
        let mut live_sizes = vec![0usize; usize::from(state.config.num_partitions)];
        for v in state.graph.vertices() {
            live_sizes[usize::from(state.partitioning.partition_of(v))] += 1;
        }
        if state.partitioning.sizes() != live_sizes.as_slice() {
            return Err(DecodeError::Corrupt(
                "partition size table disagrees with the live assignment",
            ));
        }
        Ok(state)
    }
}

/// A durable `(snapshot, log tail)` pair for a [`StreamingRunner`].
///
/// Created by [`StreamingRunner::checkpoint`]; grown batch-by-batch with
/// [`StreamCheckpoint::append`]; bounded with [`StreamCheckpoint::compact`];
/// turned back into a live runner with [`StreamingRunner::resume`];
/// serialised with [`StreamCheckpoint::to_bytes`] /
/// [`StreamCheckpoint::from_bytes`] (framed `APGC` container).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamCheckpoint {
    /// Partitioner state at the snapshot boundary.
    pub state: PartitionerState,
    /// The runner's per-batch iteration budget.
    pub iterations_per_batch: usize,
    /// Whether the runner records its ingested batches into a replay log.
    pub record: bool,
    /// The runner's recorded replay log at the snapshot boundary (empty
    /// unless recording was enabled).
    pub log: DeltaLog,
    /// The runner's timeline retention cap (`usize::MAX` = unbounded).
    pub timeline_window: usize,
    /// Batches the runner had ingested at the snapshot boundary — the
    /// authoritative stream position ([`StreamCheckpoint::cursor`] derives
    /// from this, *not* from `timeline.len()`, which under-counts once the
    /// window evicts entries).
    pub batches_ingested: usize,
    /// Rolling FNV-1a digest over the timeline entries evicted before the
    /// snapshot ([`TIMELINE_DIGEST_SEED`] when nothing was evicted).
    ///
    /// [`TIMELINE_DIGEST_SEED`]: crate::streaming::TIMELINE_DIGEST_SEED
    pub timeline_digest: u64,
    /// The retained timeline suffix up to the snapshot boundary (the whole
    /// timeline when the window is unbounded).
    pub timeline: Vec<TimelineStats>,
    /// Batches ingested after the snapshot — the write-ahead segment that
    /// resume replays.
    pub tail: DeltaLog,
}

impl StreamCheckpoint {
    /// Appends a batch the runner has ingested since the snapshot — the
    /// O(batch) write-ahead step of the operating loop. The batch must be
    /// appended exactly once, in ingestion order.
    pub fn append(&mut self, batch: UpdateBatch) {
        self.tail.record(batch);
    }

    /// Source position this checkpoint corresponds to: every batch covered
    /// by the snapshot plus every appended tail batch. Fast-forward a
    /// freshly reconstructed source here before pulling new batches.
    ///
    /// Derived from the explicit [`batches_ingested`] counter: with a
    /// bounded timeline window, `timeline.len()` only counts the retained
    /// suffix and would silently reposition the source too early.
    ///
    /// [`batches_ingested`]: StreamCheckpoint::batches_ingested
    pub fn cursor(&self) -> SourceCursor {
        SourceCursor::at((self.batches_ingested + self.tail.len()) as u64)
    }

    /// Folds the oldest `batches` tail segments into a fresh snapshot and
    /// truncates them, keeping recovery O(tail) instead of O(stream).
    ///
    /// Replay is deterministic, so compaction is observationally lossless:
    /// resuming the compacted checkpoint yields exactly the runner that
    /// resuming the uncompacted one would (pinned by the
    /// compaction-equals-full-replay property tests).
    pub fn compact(&mut self, batches: usize) {
        let n = batches.min(self.tail.len());
        if n == 0 {
            return;
        }
        let mut tail = std::mem::take(&mut self.tail);
        let prefix = DeltaLog::from(tail.split_front(n));
        // Move the expensive parts (graph, assignment, log, timeline) into
        // the replay instead of deep-cloning them — `*self` is rebuilt from
        // the folded runner right after, so only cheap stand-ins are left
        // behind transiently.
        let state = PartitionerState {
            graph: std::mem::replace(&mut self.state.graph, DynGraph::new()),
            partitioning: std::mem::replace(&mut self.state.partitioning, Partitioning::new(0, 1)),
            config: self.state.config.clone(),
            seed: self.state.seed,
            iteration: self.state.iteration,
            quiet_streak: self.state.quiet_streak,
            fixed_capacities: self.state.fixed_capacities.take(),
        };
        let folded = StreamingRunner::resume(StreamCheckpoint {
            state,
            iterations_per_batch: self.iterations_per_batch,
            record: self.record,
            log: std::mem::take(&mut self.log),
            timeline_window: self.timeline_window,
            batches_ingested: self.batches_ingested,
            timeline_digest: self.timeline_digest,
            timeline: std::mem::take(&mut self.timeline),
            tail: prefix,
        });
        *self = folded.checkpoint();
        self.tail = tail;
    }

    /// Serialises as a framed, versioned checkpoint file (`APGC` magic).
    pub fn to_bytes(&self) -> Vec<u8> {
        format::encode_framed(format::MAGIC_CHECKPOINT, self)
    }

    /// Restores a checkpoint written by [`StreamCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`DecodeError`]: wrong magic, unsupported version, truncation,
    /// or a payload violating the checkpoint invariants.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        format::decode_framed(format::MAGIC_CHECKPOINT, bytes)
    }
}

impl Encode for StreamCheckpoint {
    fn encode(&self, enc: &mut Encoder) {
        self.state.encode(enc);
        self.iterations_per_batch.encode(enc);
        self.record.encode(enc);
        self.log.encode(enc);
        self.timeline_window.encode(enc);
        self.batches_ingested.encode(enc);
        self.timeline_digest.encode(enc);
        self.timeline.encode(enc);
        self.tail.encode(enc);
    }
}

impl Decode for StreamCheckpoint {
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let state = PartitionerState::decode(dec)?;
        let iterations_per_batch = usize::decode(dec)?;
        let record = bool::decode(dec)?;
        let log = DeltaLog::decode(dec)?;
        let timeline_window = usize::decode(dec)?;
        if timeline_window == 0 {
            return Err(DecodeError::Corrupt("timeline window is zero"));
        }
        let batches_ingested = usize::decode(dec)?;
        let timeline_digest = u64::decode(dec)?;
        let timeline_len = decode_len(dec, 14)?;
        // The retained suffix can never exceed the window, the global
        // counter, or the remaining payload (the capacity clamp: a flipped
        // length byte must not force a multi-GB allocation).
        if timeline_len > batches_ingested {
            return Err(DecodeError::Corrupt(
                "timeline longer than the batches-ingested counter",
            ));
        }
        if timeline_len > timeline_window {
            return Err(DecodeError::Corrupt("timeline overflows its window"));
        }
        let evicted = batches_ingested - timeline_len;
        if evicted > 0 {
            // The runner evicts only on window overflow, so once anything
            // has been evicted the retained suffix fills the window
            // exactly; a shorter suffix is unreachable from a real runner.
            if timeline_len != timeline_window {
                return Err(DecodeError::Corrupt(
                    "timeline shorter than both its window and the ingest counter",
                ));
            }
        } else if timeline_digest != TIMELINE_DIGEST_SEED {
            // Nothing was evicted: the digest must still be the seed.
            return Err(DecodeError::Corrupt(
                "timeline digest diverged with no evicted entries",
            ));
        }
        let mut timeline = Vec::with_capacity(timeline_len.min(dec.remaining()));
        for i in 0..timeline_len {
            let stats = TimelineStats::decode(dec)?;
            if stats.batch != evicted + i {
                return Err(DecodeError::Corrupt("timeline batch indices not dense"));
            }
            timeline.push(stats);
        }
        let tail = DeltaLog::decode(dec)?;
        Ok(StreamCheckpoint {
            state,
            iterations_per_batch,
            record,
            log,
            timeline_window,
            batches_ingested,
            timeline_digest,
            timeline,
            tail,
        })
    }
}

impl StreamingRunner {
    /// Captures a durable snapshot of this runner at the current batch
    /// boundary, with an empty write-ahead tail.
    ///
    /// The intended loop: checkpoint rarely (O(graph)), then
    /// [`StreamCheckpoint::append`] each ingested batch (O(batch)), and
    /// occasionally [`StreamCheckpoint::compact`]. A checkpoint taken
    /// mid-stream plus the tail of later batches reproduces this runner
    /// exactly — see [`StreamingRunner::resume`].
    pub fn checkpoint(&self) -> StreamCheckpoint {
        StreamCheckpoint {
            state: self.partitioner().snapshot_state(),
            iterations_per_batch: self.iterations_budget(),
            record: self.records_log(),
            log: self.log().clone(),
            timeline_window: self.timeline_window_len(),
            batches_ingested: self.batches_ingested(),
            timeline_digest: self.timeline_digest(),
            timeline: self.timeline().to_vec(),
            tail: DeltaLog::new(),
        }
    }

    /// Rebuilds a runner from a checkpoint: restores the snapshot state,
    /// then re-ingests the write-ahead tail through the normal
    /// deterministic path.
    ///
    /// The result is byte-identical (timeline, partitioning, cut, graph —
    /// everything but `wall_ms`) to the runner that produced the
    /// checkpoint, and its future behaviour is byte-identical to an
    /// uninterrupted run's. To continue pulling from a stream, reconstruct
    /// the source with its original arguments and fast-forward it to
    /// [`StreamCheckpoint::cursor`].
    pub fn resume(checkpoint: StreamCheckpoint) -> StreamingRunner {
        let StreamCheckpoint {
            state,
            iterations_per_batch,
            record,
            log,
            timeline_window,
            batches_ingested,
            timeline_digest,
            timeline,
            tail,
        } = checkpoint;
        let mut runner = StreamingRunner::from_checkpoint_parts(
            AdaptivePartitioner::restore(state),
            iterations_per_batch,
            record,
            log,
            timeline,
            timeline_window,
            batches_ingested,
            timeline_digest,
        );
        for batch in tail.into_batches() {
            runner.ingest(&batch);
        }
        runner
    }
}

/// A [`StreamCheckpoint`] recovered from disk by [`CheckpointStore::open`].
#[derive(Debug)]
pub struct RecoveredCheckpoint {
    /// The durable checkpoint — the manifest-named snapshot with every
    /// durable write-ahead batch re-appended to its tail. `None` when the
    /// directory held no durable snapshot (fresh store).
    pub checkpoint: Option<StreamCheckpoint>,
    /// Write-ahead frames dropped by torn-tail repair (see
    /// [`apg_persist::store::Recovery::torn_frames_dropped`]). The
    /// recovered checkpoint's [`cursor`](StreamCheckpoint::cursor) already
    /// accounts for them: re-drive the source from there.
    pub torn_frames_dropped: usize,
}

/// File-backed durability for a [`StreamingRunner`]: the
/// [`SegmentStore`] with the checkpoint codec wired on top, so the
/// operating loop works with a *directory path* instead of in-memory byte
/// blobs.
///
/// The loop: [`CheckpointStore::install`] rarely (writes the full
/// snapshot and flips the manifest), [`CheckpointStore::append`] after
/// every ingested batch (one O(batch) durable frame). Each `install`
/// starts a fresh write-ahead segment and garbage-collects everything
/// before it — the file-backed analogue of
/// [`StreamCheckpoint::compact`]'s bounding of recovery time. After a
/// crash, [`CheckpointStore::open`] rebuilds the exact
/// `(snapshot, tail)` checkpoint that was durable at the kill point.
#[derive(Debug)]
pub struct CheckpointStore {
    store: SegmentStore,
}

impl CheckpointStore {
    /// Opens (or creates) the store in `dir`, recovering whatever was
    /// durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, [`StoreError::Corrupt`]
    /// for damaged sealed artefacts, [`StoreError::Decode`] when a frame
    /// is intact at the store layer but its payload violates the
    /// checkpoint/batch codecs. Never panics on any byte pattern.
    pub fn open(
        dir: &std::path::Path,
        config: StoreConfig,
    ) -> Result<(CheckpointStore, RecoveredCheckpoint), StoreError> {
        let (store, recovery) = SegmentStore::open(dir, config)?;
        let checkpoint = match recovery.snapshot {
            None => None,
            Some(bytes) => {
                let mut ckpt = StreamCheckpoint::from_bytes(&bytes)?;
                for payload in &recovery.tail {
                    ckpt.append(UpdateBatch::from_bytes(payload)?);
                }
                Some(ckpt)
            }
        };
        Ok((
            CheckpointStore { store },
            RecoveredCheckpoint {
                checkpoint,
                torn_frames_dropped: recovery.torn_frames_dropped,
            },
        ))
    }

    /// Captures `runner`'s state and makes it the durable recovery root
    /// (snapshot file + manifest flip + fresh write-ahead segment).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`]; on error the previous root stays durable.
    pub fn install(&mut self, runner: &StreamingRunner) -> Result<(), StoreError> {
        self.store.install_snapshot(&runner.checkpoint().to_bytes())
    }

    /// Write-aheads one ingested batch (call with exactly the batches the
    /// runner ingests, in ingestion order — the disk mirror of
    /// [`StreamCheckpoint::append`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`].
    pub fn append(&mut self, batch: &UpdateBatch) -> Result<(), StoreError> {
        self.store.append(&batch.to_bytes())
    }

    /// The underlying payload-agnostic store (sequence numbers, live byte
    /// accounting, the directory path).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_partition::InitialStrategy;
    use apg_streams::{RestartableSource, StreamSource};

    fn growth_runner(parallelism: usize) -> (StreamingRunner, apg_streams::PowerLawGrowth) {
        let base = DynGraph::with_vertices(200);
        let cfg = AdaptiveConfig::new(4).parallelism(parallelism);
        let p = AdaptivePartitioner::with_strategy(&base, InitialStrategy::Hash, &cfg, 11);
        let runner = StreamingRunner::new(p)
            .iterations_per_batch(2)
            .record_log(true);
        let source = apg_streams::PowerLawGrowth::new(&base, 3, 40, 11);
        (runner, source)
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 3);
        let mut ckpt = runner.checkpoint();
        let batch = source.next_batch().unwrap();
        runner.ingest(&batch);
        ckpt.append(batch);
        let back = StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.cursor(), apg_streams::SourceCursor::at(4));
    }

    #[test]
    fn resume_reproduces_the_runner_exactly() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 2);
        let mut ckpt = runner.checkpoint();
        for _ in 0..3 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let mut resumed =
            StreamingRunner::resume(StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap());
        assert_eq!(resumed.timeline(), runner.timeline());
        assert_eq!(resumed.log(), runner.log());
        assert_eq!(resumed.partitioner().graph(), runner.partitioner().graph());
        assert_eq!(
            resumed.partitioner().partitioning(),
            runner.partitioner().partitioning()
        );
        assert_eq!(
            resumed.partitioner().cut_edges(),
            runner.partitioner().cut_edges()
        );
        assert_eq!(
            resumed.partitioner().iteration(),
            runner.partitioner().iteration()
        );
        resumed.partitioner().audit();

        // The futures agree too.
        let mut source2 = {
            let base = DynGraph::with_vertices(200);
            apg_streams::PowerLawGrowth::new(&base, 3, 40, 11)
        };
        source2.fast_forward(ckpt_cursor_of(&resumed));
        let batch = source.next_batch().unwrap();
        assert_eq!(source2.next_batch().unwrap(), batch);
        assert_eq!(resumed.ingest(&batch), runner.ingest(&batch));
    }

    fn ckpt_cursor_of(runner: &StreamingRunner) -> apg_streams::SourceCursor {
        // `batches_ingested`, not `timeline().len()`: with a bounded window
        // the retained timeline is shorter than the stream position.
        apg_streams::SourceCursor::at(runner.batches_ingested() as u64)
    }

    #[test]
    fn compaction_preserves_the_resumed_runner() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 1);
        let mut ckpt = runner.checkpoint();
        for _ in 0..5 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let full = ckpt.clone();
        ckpt.compact(3);
        assert_eq!(ckpt.tail.len(), 2, "three segments folded away");
        assert_eq!(ckpt.timeline.len(), 4, "snapshot advanced to batch 4");
        assert_eq!(ckpt.cursor(), full.cursor(), "coverage unchanged");

        let a = StreamingRunner::resume(full);
        let b = StreamingRunner::resume(ckpt);
        assert_eq!(a.timeline(), b.timeline());
        assert_eq!(a.partitioner().graph(), b.partitioner().graph());
        assert_eq!(
            a.partitioner().partitioning(),
            b.partitioner().partitioning()
        );
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn compact_everything_and_nothing() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 1);
        let mut ckpt = runner.checkpoint();
        for _ in 0..2 {
            let batch = source.next_batch().unwrap();
            runner.ingest(&batch);
            ckpt.append(batch);
        }
        let before = ckpt.clone();
        ckpt.compact(0);
        assert_eq!(ckpt, before, "compact(0) is a no-op");
        ckpt.compact(usize::MAX);
        assert!(ckpt.tail.is_empty(), "over-asking folds the whole tail");
        assert_eq!(
            StreamingRunner::resume(ckpt).timeline(),
            StreamingRunner::resume(before).timeline(),
        );
    }

    #[test]
    fn config_and_state_decoders_reject_corruption() {
        let cfg = AdaptiveConfig::new(3);
        // Willingness out of range.
        let mut bad = cfg.clone();
        bad.willingness = 7.5;
        assert!(matches!(
            AdaptiveConfig::from_bytes(&bad.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("willingness outside [0, 1]")
        ));
        // Drain floor out of range.
        let mut bad = cfg.clone();
        bad.drain_floor = 1.5;
        assert!(matches!(
            AdaptiveConfig::from_bytes(&bad.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("drain floor outside [0, 1)")
        ));
        // Partitioner state whose assignment is too short for the graph.
        let graph = DynGraph::with_vertices(5);
        let p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 1);
        let mut state = p.snapshot_state();
        state.partitioning = Partitioning::new(3, 3);
        assert!(matches!(
            PartitionerState::from_bytes(&state.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("assignment does not cover the graph's slots")
        ));
    }

    #[test]
    fn fixed_capacities_survive_the_trip() {
        let graph = DynGraph::with_vertices(60);
        let cfg = AdaptiveConfig::new(3);
        let mut p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, 5);
        let caps = CapacityModel::vertex_balanced(60, 3, 1.5);
        p.set_fixed_capacities(caps.clone());
        let state = PartitionerState::from_bytes(&p.snapshot_state().to_bytes()).unwrap();
        assert_eq!(state.fixed_capacities.as_ref(), Some(&caps));
        let restored = AdaptivePartitioner::restore(state);
        assert_eq!(restored.capacities(), caps);
    }

    #[test]
    fn timeline_decode_requires_dense_batch_indices() {
        let (mut runner, mut source) = growth_runner(1);
        runner.drive(&mut source, 2);
        let mut ckpt = runner.checkpoint();
        ckpt.timeline[1].batch = 7;
        assert!(matches!(
            StreamCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap_err(),
            DecodeError::Corrupt("timeline batch indices not dense")
        ));
    }
}
