//! Regenerates Figure 1 (willingness-to-move sweep).

use apg_bench::experiments::{fig1, headline_graphs};
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    for (name, graph) in headline_graphs(args.scale, args.seed) {
        let points = fig1::sweep(&graph, &fig1::S_VALUES, args.reps(), args.seed);
        fig1::print(name, &points);
        println!();
    }
}
