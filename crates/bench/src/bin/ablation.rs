//! Quality ablations over the design choices DESIGN.md calls out:
//!
//! * quota rule `C/(k-1)` vs unbounded migration (node densification);
//! * counting the vertex itself in `Γ(v,t)` (stickiness) vs neighbours only;
//! * constant willingness values (the paper's recommendation is s = 0.5);
//! * vertex-balanced vs edge-balanced capacities (the paper's §6 future
//!   work) on a skewed power-law graph;
//! * constant vs annealed willingness schedules;
//! * hot-spot capacity scaling (paper §6's runtime-statistics hook).

use apg_bench::scale::RunArgs;
use apg_core::{AdaptiveConfig, AdaptivePartitioner, QuotaRule};
use apg_graph::gen;
use apg_partition::{edge_imbalance, vertex_imbalance, InitialStrategy};

fn main() {
    let args = RunArgs::from_env();
    let mesh = gen::mesh3d(16, 16, 16);
    let plaw = gen::holme_kim(5000, 8, 0.1, args.seed);

    println!("Ablation 1: capacity quota rule (mesh 16^3, k=9, 120 iterations)");
    println!(
        "{:>18} {:>10} {:>12} {:>12}",
        "rule", "cut", "imbalance", "max part"
    );
    for (name, rule) in [
        ("C/(k-1) split", QuotaRule::PerSourceSplit),
        ("unbounded", QuotaRule::Unbounded),
    ] {
        let cfg = AdaptiveConfig::new(9).quota_rule(rule);
        let mut p =
            AdaptivePartitioner::with_strategy(&mesh, InitialStrategy::Hash, &cfg, args.seed);
        p.run_for(120);
        println!(
            "{:>18} {:>10.4} {:>12.3} {:>12}",
            name,
            p.cut_ratio(),
            vertex_imbalance(p.partitioning()),
            p.partitioning().sizes().iter().max().unwrap()
        );
    }

    println!("\nAblation 2: candidate set includes self (mesh 16^3, k=9, to convergence)");
    println!("{:>18} {:>10} {:>14}", "variant", "cut", "conv (iters)");
    for (name, count_self) in [("neighbours only", false), ("self included", true)] {
        let cfg = AdaptiveConfig::new(9)
            .count_self(count_self)
            .max_iterations(600);
        let mut p =
            AdaptivePartitioner::with_strategy(&mesh, InitialStrategy::Hash, &cfg, args.seed);
        let report = p.run_to_convergence();
        println!(
            "{:>18} {:>10.4} {:>14}",
            name,
            report.final_cut_ratio(),
            report.convergence_time()
        );
    }

    println!("\nAblation 3: willingness to move (mesh 16^3, k=9, to convergence)");
    println!("{:>18} {:>10} {:>14}", "s", "cut", "conv (iters)");
    for s in [0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let cfg = AdaptiveConfig::new(9).willingness(s).max_iterations(400);
        let mut p =
            AdaptivePartitioner::with_strategy(&mesh, InitialStrategy::Hash, &cfg, args.seed);
        let report = p.run_to_convergence();
        println!(
            "{:>18.1} {:>10.4} {:>14}",
            s,
            report.final_cut_ratio(),
            if report.converged() {
                report.convergence_time().to_string()
            } else {
                "no convergence".to_string()
            }
        );
    }

    println!("\nAblation 4: balance objective on a power-law graph (k=9, 150 iterations)");
    println!(
        "{:>18} {:>10} {:>12} {:>12}",
        "objective", "cut", "vertex imb", "edge imb"
    );
    for (name, edges) in [("vertices (paper)", false), ("edges (paper s6)", true)] {
        let cfg = AdaptiveConfig::new(9).balance_on_edges(edges);
        let mut p =
            AdaptivePartitioner::with_strategy(&plaw, InitialStrategy::Hash, &cfg, args.seed);
        p.run_for(150);
        println!(
            "{:>18} {:>10.4} {:>12.3} {:>12.3}",
            name,
            p.cut_ratio(),
            vertex_imbalance(p.partitioning()),
            edge_imbalance(&plaw, p.partitioning())
        );
    }

    println!("\nAblation 5: willingness schedule (mesh 16^3, k=9, to convergence)");
    println!("{:>24} {:>10} {:>14}", "schedule", "cut", "conv (iters)");
    let schedules: [(&str, AdaptiveConfig); 3] = [
        ("constant 0.5", AdaptiveConfig::new(9)),
        (
            "anneal 0.9 -> 0.3/60",
            AdaptiveConfig::new(9).anneal_willingness(0.9, 0.3, 60),
        ),
        (
            "anneal 0.9 -> 0.1/40",
            AdaptiveConfig::new(9).anneal_willingness(0.9, 0.1, 40),
        ),
    ];
    for (name, cfg) in schedules {
        let cfg = cfg.max_iterations(600);
        let mut p =
            AdaptivePartitioner::with_strategy(&mesh, InitialStrategy::Hash, &cfg, args.seed);
        let report = p.run_to_convergence();
        println!(
            "{:>24} {:>10.4} {:>14}",
            name,
            report.final_cut_ratio(),
            report.convergence_time()
        );
    }

    println!("\nAblation 6: hot-spot capacity scaling on the busiest partition");
    println!("{:>18} {:>10} {:>14}", "variant", "cut", "hot-part mass");
    for (name, scale) in [("uniform caps", 1.0f64), ("hot spot +30%", 1.3)] {
        let cfg = AdaptiveConfig::new(9);
        let mut p =
            AdaptivePartitioner::with_strategy(&plaw, InitialStrategy::Hash, &cfg, args.seed);
        p.run_for(40);
        if scale > 1.0 {
            // Grant the partition with the highest degree mass extra room,
            // as the paper's runtime-statistics hook would.
            let hot = (0..9u16)
                .max_by_key(|&q| p.degree_mass()[q as usize])
                .unwrap();
            let mut caps = p.capacities();
            caps.scale_partition(hot, scale);
            p.set_fixed_capacities(caps);
        }
        p.run_for(110);
        let hot_mass = *p.degree_mass().iter().max().unwrap();
        println!("{:>18} {:>10.4} {:>14}", name, p.cut_ratio(), hot_mass);
    }
}
