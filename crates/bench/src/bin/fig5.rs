//! Regenerates Figure 5 (cut ratio across the dataset zoo).

use apg_bench::experiments::fig5;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let rows = fig5::run(args.scale, args.reps(), args.seed);
    fig5::print(&rows);
}
