//! Runs every table and figure in sequence (the full evaluation).

use apg_bench::experiments::*;
use apg_bench::scale::RunArgs;
use apg_bench::Scale;

fn main() {
    let args = RunArgs::from_env();
    let banner = |s: &str| println!("\n=== {s} ===\n");

    banner("Table 1");
    table1::print(&table1::run(args.scale, args.seed));

    banner("Figure 1");
    for (name, graph) in headline_graphs(args.scale, args.seed) {
        fig1::print(
            name,
            &fig1::sweep(&graph, &fig1::S_VALUES, args.reps(), args.seed),
        );
    }

    banner("Figure 4");
    for (name, graph) in headline_graphs(args.scale, args.seed) {
        let rows = fig4::run(&graph, args.reps(), args.seed);
        fig4::print(name, &rows, fig4::metis_baseline(&graph, args.seed));
    }

    banner("Figure 5");
    fig5::print(&fig5::run(args.scale, args.reps(), args.seed));

    banner("Figure 6");
    fig6::print(
        &fig6::run_mesh(args.scale, args.reps(), args.seed),
        &fig6::run_powerlaw(args.scale, args.reps(), args.seed),
    );

    banner("Figure 7");
    let stride = if args.scale == Scale::Paper { 10 } else { 5 };
    fig7::print(&fig7::run(args.scale, args.seed), stride);

    banner("Figure 8");
    fig8::print(&fig8::run(args.scale, args.seed));

    banner("Figure 9");
    fig9::print(&fig9::run(args.scale, args.seed));

    banner("Thread scaling");
    scaling::print(&scaling::run(args.scale, args.reps(), args.seed));

    banner("Active-set sweep");
    sweep::print(&sweep::run(args.scale, args.seed));

    banner("Streaming ingestion");
    streaming::print(&streaming::run(args.scale, args.reps(), args.seed));

    banner("Serving locality");
    serve::print(&serve::run(args.scale, args.seed));

    banner("Checkpoint overhead");
    persist::print(&persist::run(args.scale, args.reps(), args.seed));
}
