//! Regenerates Figure 7 (biomedical mesh: re-arrangement + burst).

use apg_bench::experiments::fig7;
use apg_bench::scale::RunArgs;
use apg_bench::Scale;

fn main() {
    let args = RunArgs::from_env();
    let result = fig7::run(args.scale, args.seed);
    let stride = match args.scale {
        Scale::Paper | Scale::Xl => 10,
        Scale::Quick => 5,
        Scale::Tiny => 2,
    };
    fig7::print(&result, stride);
}
