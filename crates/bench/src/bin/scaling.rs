//! Thread-scaling benchmark for the sharded decision sweep; writes
//! `BENCH_scaling.json` next to the working directory.
//!
//! Default (quick) scale already runs the ≥100k-vertex power-law
//! configuration; `--scale paper` raises it to 250k vertices.

use apg_bench::experiments::scaling;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let result = scaling::run(args.scale, args.reps(), args.seed);
    scaling::print(&result);

    let path = "BENCH_scaling.json";
    match std::fs::write(path, scaling::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
