//! Thread-scaling benchmark for the sharded decision sweep, parallel
//! apply, and sharded cut recount; writes `BENCH_scaling.json` next to the
//! working directory.
//!
//! Default (quick) scale already runs the ≥100k-vertex power-law
//! configuration; `--scale paper` raises it to one million vertices and
//! `--scale xl` to ten million (single repetition). The
//! `APG_SCALING_SCALE` environment variable overrides the flag (CI uses
//! `APG_SCALING_SCALE=tiny` as a smoke cap so the binary cannot rot
//! without slowing the pipeline; `APG_SCALING_SCALE=xl` opts into the
//! stress run).

use apg_bench::experiments::scaling;
use apg_bench::scale::RunArgs;
use apg_bench::Scale;

fn main() {
    let mut args = RunArgs::from_env();
    if let Some(scale) = std::env::var("APG_SCALING_SCALE")
        .ok()
        .as_deref()
        .and_then(Scale::parse)
    {
        args.scale = scale;
    }
    let result = scaling::run(args.scale, args.reps(), args.seed);
    scaling::print(&result);

    // Determinism and apply-equivalence are the contracts this bench
    // exists to witness: divergence is a bug, not a data point, so fail
    // loudly instead of shipping a JSON a CI grep might misread.
    if !result.deterministic_across_threads() {
        eprintln!("FATAL: iteration history varies across thread counts");
        std::process::exit(1);
    }
    if !result.apply_parallel_equals_serial {
        eprintln!("FATAL: sharded apply diverged from the serial apply");
        std::process::exit(1);
    }
    if !result.layout_equals_reference {
        eprintln!("FATAL: slab adjacency diverged from the boxed reference layout");
        std::process::exit(1);
    }

    let path = "BENCH_scaling.json";
    match std::fs::write(path, scaling::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
