//! Regenerates Figure 4 (initial vs iterative cut ratio vs METIS).

use apg_bench::experiments::{fig4, headline_graphs};
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    for (name, graph) in headline_graphs(args.scale, args.seed) {
        let rows = fig4::run(&graph, args.reps(), args.seed);
        let metis = fig4::metis_baseline(&graph, args.seed);
        fig4::print(name, &rows, metis);
        println!();
    }
}
