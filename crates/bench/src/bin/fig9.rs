//! Regenerates Figure 9 (CDR cliques, dynamic vs static over four weeks).

use apg_bench::experiments::fig9;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let weeks = fig9::run(args.scale, args.seed);
    fig9::print(&weeks);
}
