//! Regenerates Table 1 (dataset inventory).

use apg_bench::experiments::table1;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let rows = table1::run(args.scale, args.seed);
    table1::print(&rows);
}
