//! Regenerates Figure 8 (Twitter stream, hash vs adaptive superstep time).

use apg_bench::experiments::fig8;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let points = fig8::run(args.scale, args.seed);
    fig8::print(&points);
}
