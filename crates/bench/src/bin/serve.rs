//! Serving-locality benchmark (query mix × churn rate × partitioner arm on
//! the CDR churn stream); writes `BENCH_serve.json` next to the working
//! directory.
//!
//! `--scale tiny|quick|paper` sizes the run; the `APG_SERVE_SCALE`
//! environment variable overrides it (CI uses `APG_SERVE_SCALE=tiny` as a
//! smoke cap so the binary cannot rot without slowing the pipeline).

use apg_bench::experiments::serve;
use apg_bench::scale::RunArgs;
use apg_bench::Scale;

fn main() {
    let mut args = RunArgs::from_env();
    if let Some(scale) = std::env::var("APG_SERVE_SCALE")
        .ok()
        .as_deref()
        .and_then(Scale::parse)
    {
        args.scale = scale;
    }
    let result = serve::run(args.scale, args.seed);
    serve::print(&result);

    // Both contracts are the point of this bench: a parallelism-dependent
    // serve timeline or an adaptive arm that never beats hash is a bug, not
    // a data point, so fail loudly instead of shipping a JSON a CI grep
    // might read from a stale checkout.
    if !result.parallelism_invariant {
        eprintln!("FATAL: serve timelines diverged across parallelism levels");
        std::process::exit(1);
    }
    if !result.adaptive_beats_hash() {
        eprintln!("FATAL: adaptive partitioning never beat the hash baseline on local hops");
        std::process::exit(1);
    }

    let path = "BENCH_serve.json";
    match std::fs::write(path, serve::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
