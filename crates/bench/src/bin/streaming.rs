//! Streaming-ingestion benchmark: CDR weeks, Twitter windows and a
//! forest-fire burst, each swept over batch sizes through the canonical
//! `StreamSource` → `StreamingRunner` path; writes `BENCH_streaming.json`.

use apg_bench::experiments::streaming;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let result = streaming::run(args.scale, args.reps(), args.seed);
    streaming::print(&result);

    let path = "BENCH_streaming.json";
    match std::fs::write(path, streaming::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
