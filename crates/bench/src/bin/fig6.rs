//! Regenerates Figure 6 (scalability of cut ratio and convergence time).

use apg_bench::experiments::fig6;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let mesh = fig6::run_mesh(args.scale, args.reps(), args.seed);
    let plaw = fig6::run_powerlaw(args.scale, args.reps(), args.seed);
    fig6::print(&mesh, &plaw);
}
