//! Checkpoint-overhead benchmark: the CDR stream driven at several
//! snapshot cadences through the `apg-persist` checkpoint/compact/resume
//! loop; writes `BENCH_persist.json`.

use apg_bench::experiments::persist;
use apg_bench::scale::RunArgs;

fn main() {
    let args = RunArgs::from_env();
    let result = persist::run(args.scale, args.reps(), args.seed);
    persist::print(&result);
    assert!(
        result.all_resumes_match(),
        "a resumed checkpoint diverged from its live runner"
    );
    assert!(
        result.recovery_ok(),
        "durability contract violated: a cold file-backed recovery \
         diverged or the bounded window failed to cap checkpoint growth"
    );

    let path = "BENCH_persist.json";
    match std::fs::write(path, persist::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
