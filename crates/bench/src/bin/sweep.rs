//! Active-set sweep benchmark (full vs exhaustive decision sweep on the
//! 100k-vertex power-law scenario); writes `BENCH_sweep.json` next to the
//! working directory.
//!
//! `--scale tiny|quick|paper` sizes the run; the `APG_SWEEP_SCALE`
//! environment variable overrides it (CI uses `APG_SWEEP_SCALE=tiny` as a
//! smoke cap so the binary cannot rot without slowing the pipeline).

use apg_bench::experiments::sweep;
use apg_bench::scale::RunArgs;
use apg_bench::Scale;

fn main() {
    let mut args = RunArgs::from_env();
    if let Some(scale) = std::env::var("APG_SWEEP_SCALE")
        .ok()
        .as_deref()
        .and_then(Scale::parse)
    {
        args.scale = scale;
    }
    let result = sweep::run(args.scale, args.seed);
    sweep::print(&result);

    // The exactness contract is the point of this bench: divergence is a
    // bug, not a data point, so fail loudly instead of shipping a JSON a
    // CI grep might read from a stale checkout.
    if !result.identical_trajectories() {
        eprintln!("FATAL: active-set sweep diverged from the exhaustive sweep");
        std::process::exit(1);
    }

    let path = "BENCH_sweep.json";
    match std::fs::write(path, sweep::to_json(&result)) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
    }
}
