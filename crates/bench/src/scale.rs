//! Experiment scaling knobs.

/// How big to run an experiment.
///
/// `Paper` uses the paper's graph sizes where a single machine can hold
/// them (64kcube, epinions, the Figure 6 families) and the documented
/// scaled substitutes elsewhere (the 10^8 heart mesh runs at 10^6).
/// `Quick` shrinks everything ~8x for smoke tests and Criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Miniature inputs for Criterion sampling (sub-second per run).
    Tiny,
    /// Fast, small inputs (CI, smoke tests).
    Quick,
    /// The paper's sizes (or their documented substitutes).
    Paper,
    /// Beyond-paper stress sizes (the scaling bench runs 10M vertices).
    /// Opt-in only — e.g. `APG_SCALING_SCALE=xl` — and single-repetition,
    /// since one run is minutes of work and gigabytes of graph.
    /// Experiments without a dedicated stress configuration treat `Xl`
    /// like [`Scale::Paper`].
    Xl,
}

impl Scale {
    /// Parses from a CLI argument (`quick`/`paper`/`xl`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "tiny" | "t" => Some(Scale::Tiny),
            "quick" | "small" | "q" => Some(Scale::Quick),
            "paper" | "full" | "p" => Some(Scale::Paper),
            "xl" | "x" => Some(Scale::Xl),
            _ => None,
        }
    }

    /// Canonical lowercase name, as recorded in `BENCH_*.json` headers so
    /// every artefact is self-describing about the scale it ran at.
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
            Scale::Xl => "xl",
        }
    }

    /// Repetitions for mean ± SEM reporting (paper uses n = 10).
    pub fn reps(&self) -> usize {
        match self {
            Scale::Tiny => 1,
            Scale::Quick => 3,
            Scale::Paper => 10,
            Scale::Xl => 1,
        }
    }
}

/// Reads `--scale` and `--reps` style overrides from `std::env::args`.
///
/// Recognised: `--scale quick|paper`, `--reps N`, `--seed N`.
#[derive(Debug, Clone, Copy)]
pub struct RunArgs {
    /// Requested scale (default quick).
    pub scale: Scale,
    /// Repetition override.
    pub reps: Option<usize>,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunArgs {
    /// Parses the current process arguments, ignoring unknown flags.
    pub fn from_env() -> Self {
        let mut args = RunArgs {
            scale: Scale::Quick,
            reps: None,
            seed: 42,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    if let Some(v) = it.next().as_deref().and_then(Scale::parse) {
                        args.scale = v;
                    }
                }
                "--reps" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        args.reps = Some(v);
                    }
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        args.seed = v;
                    }
                }
                _ => {}
            }
        }
        args
    }

    /// Effective repetition count.
    pub fn reps(&self) -> usize {
        self.reps.unwrap_or_else(|| self.scale.reps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_aliases() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for scale in [Scale::Tiny, Scale::Quick, Scale::Paper, Scale::Xl] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
    }

    #[test]
    fn reps_default_by_scale() {
        assert_eq!(Scale::Quick.reps(), 3);
        assert_eq!(Scale::Paper.reps(), 10);
    }
}
