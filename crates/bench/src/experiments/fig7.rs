//! Figure 7: the biomedical use case — re-arranging a hash-partitioned
//! heart mesh (a), then absorbing a +10% forest-fire burst (b).
//!
//! The paper ran a 100 M-vertex mesh on 63 blades (3 TB in RAM); this
//! driver runs the same generator family at single-host scale and measures
//! time through the engine's cost model, normalised to a static-hash
//! baseline exactly as the paper normalises its Figure 7. The burst
//! reproduces the paper's ratios: +10% vertices, ~3 edges per new vertex.

use apg_apps::HeartSim;
use apg_core::AdaptiveConfig;
use apg_graph::{gen, DynGraph, Graph};
use apg_pregel::{CostModel, Engine, EngineBuilder, MutationBatch};

use crate::Scale;

/// One superstep's observables (the three series of Figure 7).
#[derive(Debug, Clone, Copy)]
pub struct Fig7Point {
    /// Superstep index (continuous across phases).
    pub superstep: usize,
    /// Cut edges after this superstep.
    pub cut_edges: usize,
    /// Vertex states physically moved this superstep.
    pub migrations: u64,
    /// Simulated time, normalised to the static-hash baseline.
    pub time_norm: f64,
}

/// Full two-phase result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Phase (a): optimisation of the initial hash partitioning.
    pub phase_a: Vec<Fig7Point>,
    /// Phase (b): absorption of the forest-fire burst.
    pub phase_b: Vec<Fig7Point>,
    /// Static-hash baseline simulated time per superstep (phase a graph).
    pub baseline_a: f64,
    /// Static-hash baseline after the burst (phase b graph).
    pub baseline_b: f64,
    /// Mesh vertices before the burst.
    pub vertices_before: usize,
    /// Mesh edges before the burst.
    pub edges_before: usize,
}

/// Mesh side length per scale: `Paper` uses 64³ ≈ 262 k vertices (the
/// documented single-host substitute for the paper's 100 M), `Quick` 20³.
pub fn mesh_side(scale: Scale) -> usize {
    match scale {
        Scale::Paper | Scale::Xl => 64,
        Scale::Quick => 20,
        Scale::Tiny => 10,
    }
}

const WORKERS: u16 = 9;
const QUIET_WINDOW: usize = 30;

/// Runs both phases.
pub fn run(scale: Scale, seed: u64) -> Fig7Result {
    let side = mesh_side(scale);
    let (cap_a, cap_b) = match scale {
        Scale::Paper | Scale::Xl => (450, 550),
        Scale::Quick => (150, 200),
        Scale::Tiny => (60, 80),
    };
    let mesh = gen::mesh3d(side, side, side);
    let shadow = DynGraph::from(&mesh);
    let vertices_before = shadow.num_live_vertices();
    let edges_before = shadow.num_edges();

    // Static-hash baseline engine: same program, no adaptive algorithm.
    let mut static_engine = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::heartsim())
        .cut_every(0)
        .build(&mesh, HeartSim::new());
    let baseline_a = mean_time(&mut static_engine, 5);

    let mut engine = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::heartsim())
        .adaptive(AdaptiveConfig::new(WORKERS))
        .build(&mesh, HeartSim::new());

    let phase_a = run_phase(&mut engine, baseline_a, cap_a);

    // Phase b: the paper's "huge increase in load" — inject the burst into
    // both engines and re-baseline on the grown graph.
    let batch = burst_batch(&shadow, seed ^ 0xF1FE);
    let batch_static = batch.clone();
    engine.apply_mutations(batch);
    static_engine.apply_mutations(batch_static);
    let baseline_b = mean_time(&mut static_engine, 5);
    let phase_b = run_phase(&mut engine, baseline_b, cap_b);

    Fig7Result {
        phase_a,
        phase_b,
        baseline_a,
        baseline_b,
        vertices_before,
        edges_before,
    }
}

/// Builds the +10% forest-fire burst as a mutation batch via the shared
/// delta model. The base graph is borrowed, not advanced; engine vertex
/// ids and the batch's ids stay aligned because both allocate
/// sequentially.
pub fn burst_batch(base: &DynGraph, seed: u64) -> MutationBatch {
    let burst = base.num_live_vertices() / 10;
    let batch =
        apg_streams::forest_fire_delta(base, &apg_streams::ForestFireConfig::burst(burst, seed));
    MutationBatch::from(batch)
}

fn run_phase(engine: &mut Engine<HeartSim>, baseline: f64, cap: usize) -> Vec<Fig7Point> {
    let mut points = Vec::new();
    let mut quiet = 0usize;
    for _ in 0..cap {
        let r = engine.superstep();
        points.push(Fig7Point {
            superstep: r.superstep,
            cut_edges: r.cut_edges.unwrap_or_else(|| engine.cut_edges()),
            migrations: r.migrations_completed,
            time_norm: r.sim_time / baseline,
        });
        if r.migrations_started == 0 && r.migrations_completed == 0 {
            quiet += 1;
            if quiet >= QUIET_WINDOW {
                break;
            }
        } else {
            quiet = 0;
        }
    }
    points
}

fn mean_time(engine: &mut Engine<HeartSim>, supersteps: usize) -> f64 {
    let reports = engine.run(supersteps);
    reports.iter().map(|r| r.sim_time).sum::<f64>() / supersteps as f64
}

/// Prints the two phases, thinned to every `stride`th superstep.
pub fn print(result: &Fig7Result, stride: usize) {
    println!(
        "Figure 7: biomedical mesh ({} vertices, {} edges), 9 workers",
        result.vertices_before, result.edges_before
    );
    for (phase, series, baseline) in [
        (
            "(a) hash re-arrangement",
            &result.phase_a,
            result.baseline_a,
        ),
        (
            "(b) forest-fire absorption",
            &result.phase_b,
            result.baseline_b,
        ),
    ] {
        println!("--- {phase} (baseline sim-time {baseline:.0}) ---");
        println!(
            "{:>9} {:>12} {:>12} {:>10}",
            "superstep", "cuts", "migrations", "time/hash"
        );
        for p in series.iter().step_by(stride.max(1)) {
            println!(
                "{:>9} {:>12} {:>12} {:>10.2}",
                p.superstep, p.cut_edges, p.migrations, p.time_norm
            );
        }
        if let (Some(first), Some(last)) = (series.first(), series.last()) {
            println!(
                "summary: cuts {} -> {} ({:.0}% kept), peak time x{:.1}, final time x{:.2}",
                first.cut_edges,
                last.cut_edges,
                100.0 * last.cut_edges as f64 / first.cut_edges as f64,
                series.iter().map(|p| p.time_norm).fold(0.0f64, f64::max),
                last.time_norm
            );
        }
    }
}
