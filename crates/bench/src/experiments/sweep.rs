//! Active-set sweep benchmark: what skipping stay-stable vertices buys.
//!
//! Not a figure from the paper: it measures the PR 5 hot-path win. On a
//! ≥100k-vertex power-law graph the adaptive partitioner runs the same
//! scenario twice — once with the active-set sweep (the default) and once
//! with the sweep forced exhaustive (`AdaptiveConfig::sweep_exhaustive`,
//! identical results by construction) — through three phases:
//!
//! 1. **refine**: a fixed iteration budget from a hash assignment, long
//!    enough to go quiet (time-to-quiet is reported);
//! 2. **converged**: extra iterations against the now-quiet partitioning —
//!    the phase where the active-set sweep should be ≥ 10x faster, since
//!    the active set has decayed to a handful of quota-starved proposers;
//! 3. **churn**: small power-law growth batches against the converged
//!    partitioning, a few iterations each — per-batch cost should track
//!    the dirtied region, not the graph.
//!
//! Per phase and mode: decide / merge / apply wall-clock and visited-slot
//! counts. The cut trajectories of the two modes must be identical — the
//! exactness contract — and the JSON records that the check ran.
//!
//! The `sweep` binary prints the table and writes `BENCH_sweep.json`.

use std::time::Instant;

use apg_core::{AdaptiveConfig, AdaptivePartitioner, SweepProfile};
use apg_graph::{gen, CsrGraph, Graph, UpdateBatch};
use apg_partition::InitialStrategy;
use apg_streams::{PowerLawGrowth, StreamSource};

use crate::Scale;

/// Partitions (k) used throughout (matches the thread-scaling bench).
const K: u16 = 8;

/// Iterations run after the refine budget, against the quiet partitioning.
const CONVERGED_ITERS: usize = 20;

/// Repartitioning iterations after each churn batch.
const CHURN_ITERS_PER_BATCH: usize = 3;

/// Power-law vertex count per scale. `Quick` (the default) runs the
/// ≥100k-vertex configuration the acceptance claim is about; `Tiny` is the
/// CI smoke size.
pub fn vertices(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8_000,
        Scale::Quick => 100_000,
        Scale::Paper | Scale::Xl => 1_000_000,
    }
}

/// Refine budget: enough for the scenario to go quiet (migrations reach
/// zero well before this on every scale; see the `quiet_at` output).
fn refine_iterations(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 40,
        Scale::Quick | Scale::Paper | Scale::Xl => 60,
    }
}

/// Churn batches (each `batch_size` new power-law vertices).
fn churn_batches(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 5,
        Scale::Quick | Scale::Paper | Scale::Xl => 15,
    }
}

fn churn_batch_size(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 16,
        Scale::Quick | Scale::Paper | Scale::Xl => 64,
    }
}

/// Aggregated phase cost for one mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseCost {
    /// Iterations (or batches, for churn) the phase ran.
    pub units: usize,
    /// Total wall-clock, milliseconds.
    pub total_ms: f64,
    /// Decide-phase share of `total_ms`.
    pub decide_ms: f64,
    /// Merge-phase share of `total_ms`.
    pub merge_ms: f64,
    /// Apply-phase share of `total_ms`.
    pub apply_ms: f64,
    /// Mean slots visited per iteration.
    pub mean_visited: f64,
    /// Migrations over the phase.
    pub migrations: usize,
}

impl PhaseCost {
    /// Mean wall-clock per unit, milliseconds.
    pub fn per_unit_ms(&self) -> f64 {
        if self.units == 0 {
            0.0
        } else {
            self.total_ms / self.units as f64
        }
    }

    fn absorb(&mut self, wall_ms: f64, profile: &SweepProfile, migrations: usize) {
        self.total_ms += wall_ms;
        self.decide_ms += profile.decide_ms;
        self.merge_ms += profile.merge_ms;
        self.apply_ms += profile.apply_ms;
        self.mean_visited += profile.visited as f64; // normalised in finish()
        self.migrations += migrations;
    }

    fn finish(&mut self, units: usize, iterations: usize) {
        self.units = units;
        if iterations > 0 {
            self.mean_visited /= iterations as f64;
        }
    }
}

/// One mode's full scenario measurement.
#[derive(Debug, Clone)]
pub struct ModeResult {
    /// `"active-set"` or `"exhaustive"`.
    pub mode: &'static str,
    /// Refine phase (fixed iteration budget from a hash assignment).
    pub refine: PhaseCost,
    /// Converged phase (`CONVERGED_ITERS` iterations, quiet partitioning).
    pub converged: PhaseCost,
    /// Churn phase (small batches + `CHURN_ITERS_PER_BATCH` each).
    pub churn: PhaseCost,
    /// First refine iteration with zero migrations (`None` if never quiet).
    pub quiet_at: Option<usize>,
    /// Active vertices when the refine budget ended.
    pub active_after_refine: usize,
    /// Cut-edge count after every iteration of every phase, in order —
    /// must be identical across modes (the exactness contract).
    pub cut_trajectory: Vec<usize>,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// Vertices in the base power-law graph.
    pub vertices: usize,
    /// Edges in the base power-law graph.
    pub edges: usize,
    /// Refine iteration budget.
    pub refine_iterations: usize,
    /// Churn batches applied.
    pub churn_batches: usize,
    /// New vertices per churn batch.
    pub churn_batch_size: usize,
    /// Decision-sweep threads used ([`AdaptiveConfig::parallelism`]).
    pub parallelism: usize,
    /// One entry per sweep mode.
    pub modes: Vec<ModeResult>,
}

impl SweepResult {
    fn mode(&self, name: &str) -> &ModeResult {
        self.modes
            .iter()
            .find(|m| m.mode == name)
            .expect("both modes always run")
    }

    /// Exhaustive-over-active wall-clock ratio for converged iterations —
    /// the headline number (acceptance: ≥ 10x at the 100k scale). The
    /// denominator is floored at 1 µs so a coarse clock reporting 0.0 for
    /// near-free iterations yields a large *finite* ratio (the JSON must
    /// stay parseable — `inf` is not a JSON value).
    pub fn converged_speedup(&self) -> f64 {
        let active = self.mode("active-set").converged.per_unit_ms();
        let full = self.mode("exhaustive").converged.per_unit_ms();
        full / active.max(1e-3)
    }

    /// Exhaustive-over-active wall-clock ratio for churn batches (same
    /// 1 µs denominator floor as [`SweepResult::converged_speedup`]).
    pub fn churn_speedup(&self) -> f64 {
        let active = self.mode("active-set").churn.per_unit_ms();
        let full = self.mode("exhaustive").churn.per_unit_ms();
        full / active.max(1e-3)
    }

    /// Whether both modes produced byte-identical cut trajectories — the
    /// exactness contract of the active-set sweep.
    pub fn identical_trajectories(&self) -> bool {
        let first = &self.modes[0].cut_trajectory;
        self.modes.iter().all(|m| &m.cut_trajectory == first)
    }
}

/// Runs the three-phase scenario in one sweep mode.
fn run_mode(
    graph: &CsrGraph,
    churn: &[UpdateBatch],
    scale: Scale,
    seed: u64,
    exhaustive: bool,
) -> ModeResult {
    let cfg = AdaptiveConfig::new(K).sweep_exhaustive(exhaustive);
    let mut p = AdaptivePartitioner::with_strategy(graph, InitialStrategy::Hash, &cfg, seed);
    let mut trajectory = Vec::new();

    let mut refine = PhaseCost::default();
    let mut quiet_at = None;
    let refine_iters = refine_iterations(scale);
    for i in 0..refine_iters {
        let start = Instant::now();
        let (stats, profile) = p.iterate_profiled();
        refine.absorb(
            start.elapsed().as_secs_f64() * 1e3,
            &profile,
            stats.migrations,
        );
        if stats.migrations == 0 && quiet_at.is_none() {
            quiet_at = Some(i);
        }
        trajectory.push(stats.cut_edges);
    }
    refine.finish(refine_iters, refine_iters);
    let active_after_refine = p.num_active_vertices();

    let mut converged = PhaseCost::default();
    for _ in 0..CONVERGED_ITERS {
        let start = Instant::now();
        let (stats, profile) = p.iterate_profiled();
        converged.absorb(
            start.elapsed().as_secs_f64() * 1e3,
            &profile,
            stats.migrations,
        );
        trajectory.push(stats.cut_edges);
    }
    converged.finish(CONVERGED_ITERS, CONVERGED_ITERS);

    let mut churn_cost = PhaseCost::default();
    for batch in churn {
        let start = Instant::now();
        p.apply_batch(batch);
        let mut wall = start.elapsed().as_secs_f64() * 1e3;
        for _ in 0..CHURN_ITERS_PER_BATCH {
            let start = Instant::now();
            let (stats, profile) = p.iterate_profiled();
            wall += start.elapsed().as_secs_f64() * 1e3;
            churn_cost.absorb(0.0, &profile, stats.migrations);
            trajectory.push(stats.cut_edges);
        }
        churn_cost.total_ms += wall;
    }
    churn_cost.finish(churn.len(), churn.len() * CHURN_ITERS_PER_BATCH);
    p.audit();

    ModeResult {
        mode: if exhaustive {
            "exhaustive"
        } else {
            "active-set"
        },
        refine,
        converged,
        churn: churn_cost,
        quiet_at,
        active_after_refine,
        cut_trajectory: trajectory,
    }
}

/// Runs the full experiment (both modes over the same graph and batches).
pub fn run(scale: Scale, seed: u64) -> SweepResult {
    let n = vertices(scale);
    let graph = gen::holme_kim(n, 8, 0.1, seed);
    // Both modes must see the *same* churn, so the batches are pulled once
    // up front. Iterations never change topology, so the batches stay
    // valid regardless of where each mode's refinement ends up.
    let shadow = apg_graph::DynGraph::from(&graph);
    let mut source = PowerLawGrowth::new(&shadow, 4, churn_batch_size(scale), seed ^ 0x5EEB);
    let churn: Vec<UpdateBatch> = (0..churn_batches(scale))
        .map(|_| source.next_batch().expect("growth streams never end"))
        .collect();

    let modes = vec![
        run_mode(&graph, &churn, scale, seed, false),
        run_mode(&graph, &churn, scale, seed, true),
    ];
    SweepResult {
        scale: scale.name(),
        threads_available: apg_exec::available_parallelism(),
        vertices: n,
        edges: graph.num_edges(),
        refine_iterations: refine_iterations(scale),
        churn_batches: churn.len(),
        churn_batch_size: churn_batch_size(scale),
        parallelism: AdaptiveConfig::new(K).parallelism,
        modes,
    }
}

fn phase_json(cost: &PhaseCost) -> String {
    format!(
        "{{\"units\": {}, \"total_ms\": {:.3}, \"per_unit_ms\": {:.4}, \
         \"decide_ms\": {:.3}, \"merge_ms\": {:.3}, \"apply_ms\": {:.3}, \
         \"mean_visited\": {:.1}, \"migrations\": {}}}",
        cost.units,
        cost.total_ms,
        cost.per_unit_ms(),
        cost.decide_ms,
        cost.merge_ms,
        cost.apply_ms,
        cost.mean_visited,
        cost.migrations,
    )
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde` carries
/// no data model).
pub fn to_json(result: &SweepResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"active-set-sweep\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"threads_available\": {},\n",
        result.scale, result.threads_available
    ));
    out.push_str(&format!(
        "  \"graph\": {{\"family\": \"holme-kim-powerlaw\", \"vertices\": {}, \"edges\": {}}},\n",
        result.vertices, result.edges
    ));
    out.push_str(&format!(
        "  \"refine_iterations\": {}, \"converged_iterations\": {CONVERGED_ITERS}, \
         \"churn_batches\": {}, \"churn_batch_size\": {}, \
         \"churn_iterations_per_batch\": {CHURN_ITERS_PER_BATCH}, \"parallelism\": {},\n",
        result.refine_iterations, result.churn_batches, result.churn_batch_size, result.parallelism
    ));
    out.push_str(&format!(
        "  \"identical_cut_trajectories\": {},\n",
        result.identical_trajectories()
    ));
    out.push_str(&format!(
        "  \"converged_speedup\": {:.1}, \"churn_speedup\": {:.1},\n",
        result.converged_speedup(),
        result.churn_speedup()
    ));
    out.push_str("  \"modes\": [\n");
    for (i, mode) in result.modes.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"quiet_at\": {}, \"active_after_refine\": {},\n",
            mode.mode,
            mode.quiet_at
                .map(|q| q.to_string())
                .unwrap_or_else(|| "null".into()),
            mode.active_after_refine
        ));
        out.push_str(&format!("     \"refine\": {},\n", phase_json(&mode.refine)));
        out.push_str(&format!(
            "     \"converged\": {},\n",
            phase_json(&mode.converged)
        ));
        out.push_str(&format!(
            "     \"churn\": {}}}{}\n",
            phase_json(&mode.churn),
            if i + 1 < result.modes.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the comparison table.
pub fn print(result: &SweepResult) {
    println!(
        "Active-set sweep: {}-vertex / {}-edge power-law, k = {K}, {} refine + \
         {CONVERGED_ITERS} converged iterations, {} churn batches x {} vertices \
         ({} threads)",
        result.vertices,
        result.edges,
        result.refine_iterations,
        result.churn_batches,
        result.churn_batch_size,
        result.parallelism
    );
    println!(
        "{:>12} {:>10} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "mode", "quiet at", "refine ms/it", "quiet ms/it", "churn ms/b", "visited/it", "active end"
    );
    for mode in &result.modes {
        println!(
            "{:>12} {:>10} {:>13.3} {:>13.4} {:>13.3} {:>13.1} {:>13}",
            mode.mode,
            mode.quiet_at
                .map(|q| q.to_string())
                .unwrap_or_else(|| "never".into()),
            mode.refine.per_unit_ms(),
            mode.converged.per_unit_ms(),
            mode.churn.per_unit_ms(),
            mode.converged.mean_visited,
            mode.active_after_refine,
        );
    }
    println!(
        "converged-phase speedup: {:.1}x, churn speedup: {:.1}x, identical cut trajectories: {}",
        result.converged_speedup(),
        result.churn_speedup(),
        if result.identical_trajectories() {
            "yes (exactness contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_active_set_wins() {
        let result = run(Scale::Tiny, 11);
        assert_eq!(result.modes.len(), 2);
        assert!(
            result.identical_trajectories(),
            "active-set sweep diverged from the exhaustive sweep"
        );
        // Both modes go quiet at the same iteration (same histories), and
        // the active set has decayed well below the live population.
        assert_eq!(
            result.mode("active-set").quiet_at,
            result.mode("exhaustive").quiet_at
        );
        let active = result.mode("active-set");
        assert!(
            active.active_after_refine < result.vertices / 4,
            "active set barely decayed: {} of {}",
            active.active_after_refine,
            result.vertices
        );
        // Converged iterations visit far fewer slots than the exhaustive
        // sweep (wall-clock speedups are asserted at the bench scale, not
        // here — tiny debug runs are too noisy).
        let full = result.mode("exhaustive");
        assert!(active.converged.mean_visited * 4.0 < full.converged.mean_visited);
        assert!(full.converged.mean_visited as usize >= result.vertices / 2);
    }

    #[test]
    fn json_is_balanced_and_carries_both_modes() {
        let result = run(Scale::Tiny, 7);
        let json = to_json(&result);
        assert_eq!(json.matches("\"mode\":").count(), 2);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON:\n{json}"
        );
        assert!(json.contains("\"identical_cut_trajectories\": true"));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"threads_available\""));
    }
}
