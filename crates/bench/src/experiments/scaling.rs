//! Thread-scaling experiment for the parallel decision sweep.
//!
//! Not a figure from the paper: it measures what the `apg-exec` layer buys.
//! On a ≥100k-vertex power-law graph (and the same graph under a +10%
//! forest-fire burst), the adaptive partitioner runs a fixed iteration
//! budget at 1, 2, 4 and 8 decision-sweep threads. Reported per
//! configuration: wall-clock (min / median / mean over repetitions, so
//! warm-up outliers don't skew the curve), the cut-ratio trajectory, and a
//! fingerprint of the full [`IterationStats`] history — which must be
//! identical across thread counts, the determinism contract of the sharded
//! sweep.
//!
//! The `scaling` binary prints the table and writes `BENCH_scaling.json`.

use std::time::Instant;

use apg_core::{AdaptiveConfig, AdaptivePartitioner, IterationStats};
use apg_graph::{gen, CsrGraph, DynGraph, Graph, UpdateBatch, VertexId};
use apg_partition::{cut_edges, cut_edges_sharded, InitialStrategy};
use apg_streams::{forest_fire_delta, ForestFireConfig};

use crate::Scale;

/// Decision-sweep thread counts swept by the experiment.
pub const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Partitions (k) used throughout.
const K: u16 = 8;

/// Power-law vertex count per scale. `Quick` (the default) already runs the
/// ≥100k-vertex configuration the scaling claim is about; `Tiny` exists for
/// tests; `Paper` stresses the million-vertex regime the parallel apply and
/// sharded recount paths target; `Xl` (gate it behind
/// `APG_SCALING_SCALE=xl` — one run is minutes of work and gigabytes of
/// graph) pushes to ten million, the slab-adjacency stress regime.
pub fn vertices(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 10_000,
        Scale::Quick => 100_000,
        Scale::Paper => 1_000_000,
        Scale::Xl => 10_000_000,
    }
}

fn iterations(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 6,
        Scale::Quick | Scale::Paper => 12,
        // Halved at 10M vertices: six iterations already dwarf the 1M runs
        // and the scaling signal is per-iteration, not per-run.
        Scale::Xl => 6,
    }
}

/// Wall-clock summary over repetitions, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct WallStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Fastest repetition — the least-noise estimate on a busy host.
    pub min: f64,
    /// Median repetition.
    pub median: f64,
}

impl WallStats {
    /// Summarises repetition samples (shared with the streaming bench).
    pub fn from_samples(samples_ms: &[f64]) -> WallStats {
        assert!(!samples_ms.is_empty());
        let mut sorted = samples_ms.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN wall-clock"));
        let mid = sorted.len() / 2;
        let median = if sorted.len() % 2 == 1 {
            sorted[mid]
        } else {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        };
        WallStats {
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            min: sorted[0],
            median,
        }
    }
}

/// One (scenario, thread-count) measurement.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// `"powerlaw"` or `"forest-fire-burst"`.
    pub scenario: &'static str,
    /// Decision-sweep threads ([`AdaptiveConfig::parallelism`]).
    pub threads: usize,
    /// Wall-clock over the iteration work (graph/partitioner construction
    /// excluded), summarised over repetitions.
    pub wall_ms: WallStats,
    /// Apply-phase share of the iteration work ([`SweepProfile::apply_ms`]
    /// summed over the run's iterations), summarised over repetitions —
    /// the phase the sharded apply parallelises.
    ///
    /// [`SweepProfile::apply_ms`]: apg_core::SweepProfile::apply_ms
    pub apply_ms: WallStats,
    /// Cut ratio after each iteration (identical across thread counts).
    pub cut_trajectory: Vec<f64>,
    /// Total migrations over the run (identical across thread counts).
    pub total_migrations: usize,
    /// FNV fingerprint of the full `IterationStats` history; equal
    /// fingerprints across thread counts witness the determinism contract.
    pub fingerprint: u64,
}

/// Timing of one full-graph cut recount (`cut_edges_sharded`) at one
/// thread count — the cost `AdaptivePartitioner::from_parts` and restore
/// pay once per construction.
#[derive(Debug, Clone)]
pub struct RecountRow {
    /// Shard-fanout threads.
    pub threads: usize,
    /// Wall-clock per recount, summarised over repetitions.
    pub wall_ms: WallStats,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct ScalingResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Vertices in the base power-law graph.
    pub vertices: usize,
    /// Edges in the base power-law graph.
    pub edges: usize,
    /// Repetitions per (scenario, threads) cell.
    pub reps: usize,
    /// Iterations per repetition.
    pub iterations: usize,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// One row per (scenario, thread count).
    pub rows: Vec<ScalingRow>,
    /// Sharded cut-recount timing, one row per thread count; every
    /// recount's result is checked against the serial `cut_edges`.
    pub recount: Vec<RecountRow>,
    /// Whether the sharded apply reproduced the serial `apply_move`
    /// timeline exactly (histories compared per scenario) — the
    /// equivalence contract of the parallel apply path.
    pub apply_parallel_equals_serial: bool,
    /// Whether the slab-backed `DynGraph` matched a boxed-per-vertex
    /// reference adjacency slot-for-slot after replaying identical churn
    /// (growth burst, deletions, compaction) — the layout-invariance
    /// contract of the `AdjPool` memory layout.
    pub layout_equals_reference: bool,
}

impl ScalingResult {
    /// Whether every scenario's history fingerprint agrees across thread
    /// counts — the determinism contract of the sharded sweep. The scenario
    /// set is derived from the rows themselves, so a rename in [`run`]
    /// cannot make the check vacuous.
    pub fn deterministic_across_threads(&self) -> bool {
        let mut scenarios: Vec<&str> = self.rows.iter().map(|r| r.scenario).collect();
        scenarios.sort_unstable();
        scenarios.dedup();
        for scenario in scenarios {
            let mut prints = self
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .map(|r| r.fingerprint);
            if let Some(first) = prints.next() {
                if prints.any(|p| p != first) {
                    return false;
                }
            }
        }
        true
    }
}

fn fingerprint(history: &[IterationStats]) -> u64 {
    super::fnv1a(history.iter().flat_map(|s| {
        [
            s.iteration as u64,
            s.migrations as u64,
            s.cut_edges as u64,
            s.live_vertices as u64,
            s.num_edges as u64,
            s.max_partition as u64,
        ]
    }))
}

fn config(threads: usize, serial_apply: bool) -> AdaptiveConfig {
    AdaptiveConfig::new(K)
        .parallelism(threads)
        .apply_serial(serial_apply)
}

/// One measured run: `(history, wall_ms, apply_ms)` where `apply_ms` is
/// the apply-phase share summed over the run's iterations.
type Measured = (Vec<IterationStats>, f64, f64);

/// Profiled `run_for`: drives `iters` iterations, accumulating the
/// apply-phase wall-clock alongside the history.
fn run_profiled(
    p: &mut AdaptivePartitioner,
    iters: usize,
    apply_ms: &mut f64,
) -> Vec<IterationStats> {
    (0..iters)
        .map(|_| {
            let (stats, profile) = p.iterate_profiled();
            *apply_ms += profile.apply_ms;
            stats
        })
        .collect()
}

/// Static power-law refinement: `iters` iterations from a hash assignment.
fn run_powerlaw(
    graph: &CsrGraph,
    _burst: &UpdateBatch,
    threads: usize,
    serial_apply: bool,
    seed: u64,
    iters: usize,
) -> Measured {
    let cfg = config(threads, serial_apply);
    let mut p = AdaptivePartitioner::with_strategy(graph, InitialStrategy::Hash, &cfg, seed);
    let mut apply_ms = 0.0;
    let start = Instant::now();
    let history = run_profiled(&mut p, iters, &mut apply_ms);
    (history, start.elapsed().as_secs_f64() * 1e3, apply_ms)
}

/// Dynamic absorption: refine briefly, replay the precomputed +10%
/// forest-fire burst through the shared delta model
/// (`AdaptivePartitioner::apply_batch`), keep iterating. The timed window
/// covers the sweeps and the batch replay — the scenario work — but not
/// the burst *generation*, which is identical serial work at every thread
/// count and would only dilute the measured scaling.
fn run_burst(
    graph: &CsrGraph,
    burst: &UpdateBatch,
    threads: usize,
    serial_apply: bool,
    seed: u64,
    iters: usize,
) -> Measured {
    let warm = iters / 3;
    let cfg = config(threads, serial_apply);
    let mut p = AdaptivePartitioner::with_strategy(graph, InitialStrategy::Hash, &cfg, seed);
    let mut apply_ms = 0.0;
    let start = Instant::now();
    let mut history = run_profiled(&mut p, warm, &mut apply_ms);
    p.apply_batch(burst);
    history.extend(run_profiled(&mut p, iters - warm, &mut apply_ms));
    (history, start.elapsed().as_secs_f64() * 1e3, apply_ms)
}

/// Precomputes the +10% forest-fire burst over the base graph as one
/// [`UpdateBatch`]. Iterations never change topology, so the same batch is
/// valid at any warm-up point.
fn burst_update_batch(graph: &CsrGraph, seed: u64) -> UpdateBatch {
    let shadow = DynGraph::from(graph);
    let burst = shadow.num_live_vertices() / 10;
    forest_fire_delta(&shadow, &ForestFireConfig::burst(burst, seed ^ 0xF1FE))
}

/// The pre-slab adjacency shape — one boxed, sorted `Vec` per vertex —
/// kept alive here as the reference the slab layout is checked against.
/// Implements [`apg_graph::DeltaTarget`] with exactly `DynGraph`'s
/// documented mutation semantics (sorted lists, tombstones strip
/// adjacency, ids never reused, self-loops/dead endpoints/duplicates
/// rejected), so replaying one batch into both must yield identical
/// per-slot lists.
struct BoxedAdjacency {
    adj: Vec<Vec<VertexId>>,
    alive: Vec<bool>,
    num_edges: usize,
}

impl BoxedAdjacency {
    fn from_csr(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        BoxedAdjacency {
            adj: (0..n as VertexId)
                .map(|v| g.neighbors(v).to_vec())
                .collect(),
            alive: vec![true; n],
            num_edges: g.num_edges(),
        }
    }

    fn is_live(&self, v: VertexId) -> bool {
        (v as usize) < self.alive.len() && self.alive[v as usize]
    }
}

impl apg_graph::delta::DeltaTarget for BoxedAdjacency {
    fn delta_add_vertex(&mut self) -> VertexId {
        self.adj.push(Vec::new());
        self.alive.push(true);
        (self.adj.len() - 1) as VertexId
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => return false,
            Err(pos) => self.adj[u as usize].insert(pos, v),
        }
        let pos = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pos, u);
        self.num_edges += 1;
        true
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Ok(pos) => self.adj[u as usize].remove(pos),
            Err(_) => return false,
        };
        let pos = self.adj[v as usize]
            .binary_search(&u)
            .expect("asymmetric adjacency");
        self.adj[v as usize].remove(pos);
        self.num_edges -= 1;
        true
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.is_live(v) {
            return None;
        }
        let neighbors = std::mem::take(&mut self.adj[v as usize]);
        for &w in &neighbors {
            let list = &mut self.adj[w as usize];
            if let Ok(pos) = list.binary_search(&v) {
                list.remove(pos);
            }
        }
        self.num_edges -= neighbors.len();
        self.alive[v as usize] = false;
        Some(neighbors.len())
    }
}

/// Replays identical churn — a forest-fire growth burst, then a deletion
/// wave heavy enough to trigger arena compaction — into the slab-backed
/// [`DynGraph`] and into [`BoxedAdjacency`], then compares every slot:
/// liveness, neighbour list, and edge count. Runs at a fixed small size
/// (the contract is about layout correctness, not scale), so an `xl`
/// invocation doesn't pay for it twice.
fn layout_equals_reference(seed: u64) -> bool {
    let base = gen::holme_kim(10_000, 8, 0.1, seed ^ 0x51AB);
    let mut slab = DynGraph::from(&base);
    let mut boxed = BoxedAdjacency::from_csr(&base);

    let replay = |batch: &UpdateBatch, slab: &mut DynGraph, boxed: &mut BoxedAdjacency| {
        batch.apply_to(slab);
        batch.apply_to(boxed);
    };
    replay(&burst_update_batch(&base, seed), &mut slab, &mut boxed);

    // Deletion wave: tombstone a spread of vertices (freeing their spans)
    // and strip edges off others, then add fresh vertices into the holes'
    // id space — tombstoned ids must stay retired.
    let mut churn = UpdateBatch::new();
    for v in (0..base.num_vertices() as VertexId).step_by(3) {
        churn.remove_vertex(v);
    }
    for v in (1..base.num_vertices() as VertexId).step_by(5) {
        if let Some(&w) = base.neighbors(v).first() {
            churn.remove_edge(v, w);
        }
    }
    let a = churn.add_vertex(vec![1, 4]);
    let b = churn.add_vertex(vec![7]);
    churn.connect_new(a, b);
    replay(&churn, &mut slab, &mut boxed);

    // Compaction is layout-only; comparing after forcing one proves it.
    slab.compact_adjacency();

    slab.num_vertices() == boxed.adj.len()
        && slab.num_edges() == boxed.num_edges
        && (0..slab.num_vertices() as VertexId).all(|v| {
            slab.is_vertex(v) == boxed.is_live(v)
                && slab.neighbors(v) == boxed.adj[v as usize].as_slice()
        })
}

/// Runs the full sweep.
pub fn run(scale: Scale, reps: usize, seed: u64) -> ScalingResult {
    let n = vertices(scale);
    let iters = iterations(scale);
    let graph = gen::holme_kim(n, 8, 0.1, seed);
    let edges = graph.num_edges();
    let burst = burst_update_batch(&graph, seed);
    let reps = reps.max(1);

    type Scenario = fn(&CsrGraph, &UpdateBatch, usize, bool, u64, usize) -> Measured;
    let scenarios: [(&'static str, Scenario); 2] =
        [("powerlaw", run_powerlaw), ("forest-fire-burst", run_burst)];

    let mut rows = Vec::new();
    let mut apply_parallel_equals_serial = true;
    for (name, scenario) in scenarios {
        for &threads in &THREADS {
            let mut samples = Vec::with_capacity(reps);
            let mut apply_samples = Vec::with_capacity(reps);
            let mut history = Vec::new();
            for _ in 0..reps {
                let (h, ms, apply) = scenario(&graph, &burst, threads, false, seed, iters);
                samples.push(ms);
                apply_samples.push(apply);
                history = h;
            }
            rows.push(ScalingRow {
                scenario: name,
                threads,
                wall_ms: WallStats::from_samples(&samples),
                apply_ms: WallStats::from_samples(&apply_samples),
                cut_trajectory: history.iter().map(|s| s.cut_ratio()).collect(),
                total_migrations: history.iter().map(|s| s.migrations).sum(),
                fingerprint: fingerprint(&history),
            });
        }
        // Equivalence arm: one serial-apply run at the widest fan-out must
        // reproduce the parallel rows' history bit-for-bit.
        let widest = *THREADS.last().expect("THREADS is non-empty");
        let (serial_history, _, _) = scenario(&graph, &burst, widest, true, seed, iters);
        let serial_print = fingerprint(&serial_history);
        apply_parallel_equals_serial &= rows
            .iter()
            .filter(|r| r.scenario == name)
            .all(|r| r.fingerprint == serial_print);
    }

    // Sharded recount timing: the one-shot cost `from_parts`/restore pays.
    // Every timed recount is also checked against the serial count, so a
    // wrong-but-fast recount cannot post a good number.
    let assignment =
        AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config(1, false), seed);
    let partitioning = assignment.partitioning().clone();
    let serial_cut = cut_edges(&graph, &partitioning);
    let mut recount = Vec::new();
    for &threads in &THREADS {
        let mut samples = Vec::with_capacity(reps);
        for _ in 0..reps {
            let start = Instant::now();
            let sharded = cut_edges_sharded(&graph, &partitioning, threads);
            samples.push(start.elapsed().as_secs_f64() * 1e3);
            assert_eq!(sharded, serial_cut, "sharded recount diverged");
        }
        recount.push(RecountRow {
            threads,
            wall_ms: WallStats::from_samples(&samples),
        });
    }

    ScalingResult {
        scale: scale.name(),
        vertices: n,
        edges,
        reps,
        iterations: iters,
        threads_available: apg_exec::available_parallelism(),
        rows,
        recount,
        apply_parallel_equals_serial,
        layout_equals_reference: layout_equals_reference(seed),
    }
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde` carries
/// no data model).
pub fn to_json(result: &ScalingResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"thread-scaling\",\n");
    out.push_str("  \"graph\": {\"family\": \"holme-kim-powerlaw\", ");
    out.push_str(&format!(
        "\"vertices\": {}, \"edges\": {}}},\n",
        result.vertices, result.edges
    ));
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"reps\": {}, \"iterations\": {}, \"threads_available\": {},\n",
        result.scale, result.reps, result.iterations, result.threads_available
    ));
    out.push_str(&format!(
        "  \"deterministic_across_threads\": {},\n",
        result.deterministic_across_threads()
    ));
    out.push_str(&format!(
        "  \"apply_parallel_equals_serial\": {},\n",
        result.apply_parallel_equals_serial
    ));
    out.push_str(&format!(
        "  \"layout_equals_reference\": {},\n",
        result.layout_equals_reference
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        let trajectory = row
            .cut_trajectory
            .iter()
            .map(|c| format!("{c:.6}"))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"threads\": {}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"apply_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"total_migrations\": {}, \"history_fingerprint\": \"{:016x}\", \
             \"cut_trajectory\": [{}]}}{}\n",
            row.scenario,
            row.threads,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            row.apply_ms.mean,
            row.apply_ms.min,
            row.apply_ms.median,
            row.total_migrations,
            row.fingerprint,
            trajectory,
            if i + 1 < result.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"recount\": [\n");
    for (i, row) in result.recount.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"threads\": {}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}}}{}\n",
            row.threads,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            if i + 1 < result.recount.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the scaling table with speedups relative to one thread.
pub fn print(result: &ScalingResult) {
    println!(
        "Thread scaling ({} scale): {}-vertex / {}-edge power-law, {} iterations, k = {K}, {} reps (host has {} hardware threads)",
        result.scale, result.vertices, result.edges, result.iterations, result.reps, result.threads_available
    );
    println!(
        "{:>18} {:>8} {:>11} {:>11} {:>11} {:>9} {:>11} {:>10}",
        "scenario", "threads", "min ms", "median ms", "mean ms", "speedup", "apply ms", "final cut"
    );
    let mut base_min = 0.0f64;
    for row in &result.rows {
        if row.threads == 1 {
            base_min = row.wall_ms.min;
        }
        println!(
            "{:>18} {:>8} {:>11.1} {:>11.1} {:>11.1} {:>8.2}x {:>11.2} {:>10.4}",
            row.scenario,
            row.threads,
            row.wall_ms.min,
            row.wall_ms.median,
            row.wall_ms.mean,
            base_min / row.wall_ms.min,
            row.apply_ms.min,
            row.cut_trajectory.last().copied().unwrap_or(0.0),
        );
    }
    println!("full-graph cut recount (from_parts / restore cost):");
    let mut recount_base = 0.0f64;
    for row in &result.recount {
        if row.threads == 1 {
            recount_base = row.wall_ms.min;
        }
        println!(
            "{:>18} {:>8} {:>11.2} {:>11.2} {:>11.2} {:>8.2}x",
            "recount",
            row.threads,
            row.wall_ms.min,
            row.wall_ms.median,
            row.wall_ms.mean,
            recount_base / row.wall_ms.min.max(1e-3),
        );
    }
    println!(
        "history identical across thread counts: {}",
        if result.deterministic_across_threads() {
            "yes (determinism contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
    println!(
        "parallel apply matches serial apply: {}",
        if result.apply_parallel_equals_serial {
            "yes (equivalence contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
    println!(
        "slab adjacency matches boxed reference: {}",
        if result.layout_equals_reference {
            "yes (layout contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histories_identical_across_thread_counts() {
        let result = run(Scale::Tiny, 1, 5);
        assert_eq!(result.rows.len(), 2 * THREADS.len());
        assert!(result.deterministic_across_threads());
        assert!(
            result.apply_parallel_equals_serial,
            "sharded apply diverged from the serial apply"
        );
        assert_eq!(result.recount.len(), THREADS.len());
        // The trajectories, not just the fingerprints, must agree.
        for scenario in ["powerlaw", "forest-fire-burst"] {
            let rows: Vec<_> = result
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .collect();
            for r in &rows[1..] {
                assert_eq!(r.cut_trajectory, rows[0].cut_trajectory, "{scenario}");
                assert_eq!(r.total_migrations, rows[0].total_migrations);
            }
            // The sweep must actually do something worth timing.
            assert!(rows[0].total_migrations > 0);
        }
    }

    #[test]
    fn json_has_all_rows_and_balanced_braces() {
        let result = run(Scale::Tiny, 1, 7);
        let json = to_json(&result);
        assert_eq!(json.matches("\"scenario\"").count(), result.rows.len());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON:\n{json}"
        );
        assert!(json.contains("\"deterministic_across_threads\": true"));
        assert!(json.contains("\"apply_parallel_equals_serial\": true"));
        assert!(json.contains("\"layout_equals_reference\": true"));
        assert!(json.contains("\"scale\": \"tiny\""));
        assert!(json.contains("\"threads_available\""));
        assert_eq!(json.matches("\"apply_ms\"").count(), result.rows.len());
        assert_eq!(
            json.matches("\"recount\"").count(),
            1,
            "recount section missing"
        );
    }
}
