//! One module per table/figure of the paper's evaluation.

pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod persist;
pub mod scaling;
pub mod serve;
pub mod streaming;
pub mod sweep;
pub mod table1;

use apg_graph::CsrGraph;

use crate::Scale;

/// The two graphs the paper uses for Figures 1 and 4: `64kcube` (FEM) and
/// `epinions` (power law) — shrunk at quick scale.
pub fn headline_graphs(scale: Scale, seed: u64) -> Vec<(&'static str, CsrGraph)> {
    match scale {
        Scale::Paper | Scale::Xl => vec![
            ("64kcube", apg_graph::gen::mesh3d(40, 40, 40)),
            (
                "epinions",
                apg_graph::gen::preferential_attachment(75_879, 7, seed),
            ),
        ],
        Scale::Quick => vec![
            ("64kcube@quick", apg_graph::gen::mesh3d(16, 16, 16)),
            (
                "epinions@quick",
                apg_graph::gen::preferential_attachment(8_000, 7, seed),
            ),
        ],
        Scale::Tiny => vec![
            ("64kcube@tiny", apg_graph::gen::mesh3d(8, 8, 8)),
            (
                "epinions@tiny",
                apg_graph::gen::preferential_attachment(1_500, 7, seed),
            ),
        ],
    }
}

/// FNV-1a fold over a stream of fields — the fingerprint the scaling and
/// streaming benches use to witness the determinism contract.
pub fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for v in values {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Formats a float with a fixed number of decimals, right-aligned.
pub fn fmt(v: f64, decimals: usize, width: usize) -> String {
    format!(
        "{:>width$.decimals$}",
        v,
        width = width,
        decimals = decimals
    )
}
