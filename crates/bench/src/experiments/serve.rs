//! Serving-locality benchmark: what adaptive partitioning buys a query
//! router.
//!
//! Not a figure from the paper: it measures the PR 6 serving layer. A CDR
//! churn stream (the paper's final use case: community-structured calls,
//! weekly subscriber turnover) drives a [`StreamingRunner`] with an
//! interleaved serve phase, and the same deterministic query stream is
//! served under three partitioner arms:
//!
//! * **adaptive** — hash-initialised, pre-converged, then the paper's
//!   heuristic keeps adapting between batches;
//! * **hash** — the `H(v) mod k` baseline most systems default to, never
//!   adapted;
//! * **static-range** — contiguous vertex ranges, never adapted (the
//!   "partition once, then let it rot" strawman).
//!
//! Because query generation reads only `(graph, seed, round)` — never the
//! assignment — all three arms answer the *identical* queries; the only
//! thing that moves is how many traversal hops stay inside the anchor's
//! partition. The sweep covers query mix × churn rate, and one scenario is
//! re-served at parallelism 1/2/8 to witness that the serve timeline is
//! byte-identical at any thread count.
//!
//! The `serve` binary prints the table and writes `BENCH_serve.json`.

use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
use apg_graph::{DynGraph, Graph};
use apg_partition::{InitialStrategy, PartitionId, Partitioning};
use apg_serve::{QueryMix, QueryWorkload, ServeStats};
use apg_streams::{CdrConfig, CdrStream};

use crate::Scale;

/// Partitions (k) used throughout (matches the other benches).
const K: PartitionId = 8;

/// Traversal depth of generated k-hop queries.
const KHOP_DEPTH: usize = 2;

/// Repartitioning iterations per batch on the adaptive arm.
const ADAPTIVE_ITERS_PER_BATCH: usize = 5;

/// Subscribers at stream start per scale.
pub fn subscribers(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2_000,
        Scale::Quick => 8_000,
        Scale::Paper | Scale::Xl => 20_000,
    }
}

/// Queries served per batch.
fn queries_per_round(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 64,
        Scale::Quick => 256,
        Scale::Paper | Scale::Xl => 512,
    }
}

/// Batches streamed (and therefore serve rounds) per arm.
fn batches(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Quick => 14,             // one CDR week
        Scale::Paper | Scale::Xl => 28, // two weeks
    }
}

/// The three serving-domain assignments under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Arm {
    Adaptive,
    Hash,
    StaticRange,
}

impl Arm {
    const ALL: [Arm; 3] = [Arm::Adaptive, Arm::Hash, Arm::StaticRange];

    fn label(self) -> &'static str {
        match self {
            Arm::Adaptive => "adaptive",
            Arm::Hash => "hash",
            Arm::StaticRange => "static-range",
        }
    }
}

/// The two churn intensities swept (weekly addition/removal rates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Churn {
    /// The paper's measured turnover: 8% additions, 4% removals per week.
    Paper,
    /// Triple turnover — the partitioning decays faster than the paper's
    /// trace, stressing the adaptive arm's ability to keep up.
    Hot,
}

impl Churn {
    const ALL: [Churn; 2] = [Churn::Paper, Churn::Hot];

    /// Label used in the report and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Churn::Paper => "paper",
            Churn::Hot => "hot",
        }
    }

    fn apply(self, mut config: CdrConfig) -> CdrConfig {
        if self == Churn::Hot {
            config.weekly_addition_rate *= 3.0;
            config.weekly_removal_rate *= 3.0;
            config.dormancy_rate *= 3.0;
        }
        config
    }
}

/// One arm's aggregate over a full scenario run.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// `"adaptive"`, `"hash"`, or `"static-range"`.
    pub partitioner: &'static str,
    /// Serve rounds run (= batches ingested).
    pub rounds: usize,
    /// Queries served across all rounds.
    pub queries: usize,
    /// Traversal hops performed across all rounds.
    pub hops: usize,
    /// Hops that stayed in the anchor's partition.
    pub local_hops: usize,
    /// Total serve wall-clock, milliseconds (measurement, not contract).
    pub wall_ms: f64,
    /// Cut ratio of the arm's assignment after the final batch.
    pub final_cut_ratio: f64,
}

impl ArmResult {
    /// Percentage of hops that stayed local — the headline metric.
    pub fn local_hop_pct(&self) -> f64 {
        if self.hops == 0 {
            100.0
        } else {
            100.0 * self.local_hops as f64 / self.hops as f64
        }
    }

    /// Mean traversal hops per query.
    pub fn hops_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.hops as f64 / self.queries as f64
        }
    }

    /// Mean query latency in microseconds (wall-clock; varies run to run).
    pub fn mean_query_us(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.wall_ms * 1e3 / self.queries as f64
        }
    }
}

/// All three arms over one query-mix × churn scenario.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Anchor distribution of the query stream.
    pub mix: QueryMix,
    /// Churn intensity.
    pub churn: Churn,
    /// One entry per arm: adaptive, hash, static-range.
    pub arms: Vec<ArmResult>,
}

impl ScenarioResult {
    fn arm(&self, name: &str) -> &ArmResult {
        self.arms
            .iter()
            .find(|a| a.partitioner == name)
            .expect("all arms always run")
    }

    /// Local-hop advantage of the adaptive arm over the hash baseline, in
    /// percentage points.
    pub fn adaptive_advantage_pts(&self) -> f64 {
        self.arm("adaptive").local_hop_pct() - self.arm("hash").local_hop_pct()
    }
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct ServeResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// Subscribers at stream start.
    pub subscribers: usize,
    /// Queries served per round.
    pub queries_per_round: usize,
    /// Batches (= serve rounds) per arm.
    pub batches: usize,
    /// One entry per query-mix × churn combination.
    pub scenarios: Vec<ScenarioResult>,
    /// Whether the witness scenario produced byte-identical serve
    /// timelines at parallelism 1, 2 and 8 — the determinism contract.
    pub parallelism_invariant: bool,
}

impl ServeResult {
    /// Whether the adaptive arm beats the hash baseline on % local hops in
    /// at least one scenario — the experiment's acceptance claim.
    pub fn adaptive_beats_hash(&self) -> bool {
        self.scenarios
            .iter()
            .any(|s| s.adaptive_advantage_pts() > 0.0)
    }
}

/// Runs one arm over one scenario, returning the per-round timeline and
/// the aggregate.
fn run_arm(
    arm: Arm,
    cdr: CdrConfig,
    mix: QueryMix,
    scale: Scale,
    seed: u64,
    parallelism: usize,
) -> (Vec<ServeStats>, ArmResult) {
    let graph = DynGraph::with_vertices(cdr.initial_subscribers);
    // Bounded convergence run for the adaptive warm-up; the non-adapting
    // arms share the config so all three place streamed-in vertices the
    // same way.
    let config = AdaptiveConfig::builder(K)
        .parallelism(parallelism)
        .max_iterations(120)
        .build()
        .expect("static bench configuration is valid");
    let mut partitioner = match arm {
        Arm::Adaptive | Arm::Hash => {
            AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &config, seed)
        }
        Arm::StaticRange => {
            // Contiguous slot ranges: slot v goes to partition v*k/n.
            let n = graph.num_vertices();
            let assignment = (0..n)
                .map(|v| (v * K as usize / n) as PartitionId)
                .collect();
            AdaptivePartitioner::from_partitioning(
                &graph,
                Partitioning::from_assignment(assignment, K),
                &config,
                seed,
            )
        }
    };
    let iters_per_batch = if arm == Arm::Adaptive {
        // Warm start: converge on the initial graph, then keep adapting.
        partitioner.run_to_convergence();
        ADAPTIVE_ITERS_PER_BATCH
    } else {
        0
    };

    let workload =
        QueryWorkload::new(mix, queries_per_round(scale), seed ^ 0x5e7e).khop_depth(KHOP_DEPTH);
    let mut runner = StreamingRunner::new(partitioner)
        .iterations_per_batch(iters_per_batch)
        .serve_workload(workload);
    let mut stream = CdrStream::new(cdr, seed);
    let consumed = runner.drive(&mut stream, batches(scale));
    assert_eq!(consumed, batches(scale), "CDR streams never end");

    let timeline = runner.serve_timeline().to_vec();
    let partitioner = runner.into_partitioner();
    let edges = partitioner.graph().num_edges();
    let aggregate = ArmResult {
        partitioner: arm.label(),
        rounds: timeline.len(),
        queries: timeline.iter().map(|s| s.queries).sum(),
        hops: timeline.iter().map(|s| s.hops).sum(),
        local_hops: timeline.iter().map(|s| s.local_hops).sum(),
        wall_ms: timeline.iter().map(|s| s.wall_ms).sum(),
        final_cut_ratio: if edges == 0 {
            0.0
        } else {
            partitioner.cut_edges() as f64 / edges as f64
        },
    };
    (timeline, aggregate)
}

/// Runs the full sweep: query mix × churn × arm, plus the parallelism
/// witness on the community-biased / paper-churn scenario.
pub fn run(scale: Scale, seed: u64) -> ServeResult {
    let base = CdrConfig {
        initial_subscribers: subscribers(scale),
        ..CdrConfig::default()
    };
    let mixes = [
        QueryMix::Uniform,
        QueryMix::DegreeBiased,
        QueryMix::CommunityBiased,
    ];

    let mut scenarios = Vec::new();
    for mix in mixes {
        for churn in Churn::ALL {
            let cdr = churn.apply(base);
            let arms = Arm::ALL
                .iter()
                .map(|&arm| run_arm(arm, cdr, mix, scale, seed, config_parallelism()).1)
                .collect();
            scenarios.push(ScenarioResult { mix, churn, arms });
        }
    }

    // Determinism witness: the adaptive arm of one scenario, re-served at
    // parallelism 1/2/8 — all three timelines must be byte-identical
    // (ServeStats equality already ignores wall-clock).
    let witness = |threads: usize| {
        run_arm(
            Arm::Adaptive,
            base,
            QueryMix::CommunityBiased,
            scale,
            seed,
            threads,
        )
        .0
    };
    let t1 = witness(1);
    let parallelism_invariant = t1 == witness(2) && t1 == witness(8);

    ServeResult {
        scale: scale.name(),
        threads_available: apg_exec::available_parallelism(),
        subscribers: base.initial_subscribers,
        queries_per_round: queries_per_round(scale),
        batches: batches(scale),
        scenarios,
        parallelism_invariant,
    }
}

/// Decision-sweep/serve thread count for the main sweep (the witness
/// re-runs pin 1/2/8 explicitly).
fn config_parallelism() -> usize {
    apg_exec::available_parallelism().min(8)
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde`
/// carries no data model).
pub fn to_json(result: &ServeResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"serving-locality\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"threads_available\": {},\n",
        result.scale, result.threads_available
    ));
    out.push_str(&format!(
        "  \"stream\": {{\"family\": \"cdr\", \"subscribers\": {}, \"batches\": {}}},\n",
        result.subscribers, result.batches
    ));
    out.push_str(&format!(
        "  \"queries_per_round\": {}, \"khop_depth\": {KHOP_DEPTH}, \"k\": {K},\n",
        result.queries_per_round
    ));
    out.push_str(&format!(
        "  \"serve_timelines_parallelism_invariant\": {},\n",
        result.parallelism_invariant
    ));
    out.push_str(&format!(
        "  \"adaptive_beats_hash\": {},\n",
        result.adaptive_beats_hash()
    ));
    out.push_str("  \"scenarios\": [\n");
    for (i, s) in result.scenarios.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mix\": \"{}\", \"churn\": \"{}\", \"adaptive_advantage_pts\": {:.2}, \"arms\": [\n",
            s.mix.label(),
            s.churn.label(),
            s.adaptive_advantage_pts()
        ));
        for (j, a) in s.arms.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"partitioner\": \"{}\", \"local_hop_pct\": {:.2}, \
                 \"hops_per_query\": {:.2}, \"mean_query_us\": {:.2}, \
                 \"queries\": {}, \"hops\": {}, \"local_hops\": {}, \
                 \"final_cut_ratio\": {:.4}}}{}\n",
                a.partitioner,
                a.local_hop_pct(),
                a.hops_per_query(),
                a.mean_query_us(),
                a.queries,
                a.hops,
                a.local_hops,
                a.final_cut_ratio,
                if j + 1 < s.arms.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < result.scenarios.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the comparison table.
pub fn print(result: &ServeResult) {
    println!(
        "Serving locality: {} CDR subscribers, k = {K}, {} batches x {} queries \
         (k-hop depth {KHOP_DEPTH})",
        result.subscribers, result.batches, result.queries_per_round
    );
    println!(
        "{:>18} {:>7} {:>14} {:>12} {:>12} {:>12} {:>10}",
        "mix", "churn", "partitioner", "local hops", "hops/query", "query us", "cut ratio"
    );
    for s in &result.scenarios {
        for a in &s.arms {
            println!(
                "{:>18} {:>7} {:>14} {:>11.1}% {:>12.2} {:>12.2} {:>10.4}",
                s.mix.label(),
                s.churn.label(),
                a.partitioner,
                a.local_hop_pct(),
                a.hops_per_query(),
                a.mean_query_us(),
                a.final_cut_ratio,
            );
        }
    }
    println!(
        "adaptive beats hash in {}/{} scenarios; serve timelines parallelism-invariant: {}",
        result
            .scenarios
            .iter()
            .filter(|s| s.adaptive_advantage_pts() > 0.0)
            .count(),
        result.scenarios.len(),
        if result.parallelism_invariant {
            "yes (determinism contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_hash_and_serving_is_deterministic() {
        let result = run(Scale::Tiny, 42);
        assert_eq!(result.scenarios.len(), 6);
        assert!(
            result.parallelism_invariant,
            "serve timeline diverged across parallelism levels"
        );
        assert!(
            result.adaptive_beats_hash(),
            "adaptive never beat the hash baseline on local hops"
        );
        // On the community-structured CDR graph the converged adaptive
        // assignment should hold a clear lead over hash (~1/k local) in the
        // community-biased scenario, not squeak by.
        let s = result
            .scenarios
            .iter()
            .find(|s| s.mix == QueryMix::CommunityBiased && s.churn == Churn::Paper)
            .unwrap();
        assert!(
            s.adaptive_advantage_pts() > 10.0,
            "advantage only {:.1} pts",
            s.adaptive_advantage_pts()
        );
        for scenario in &result.scenarios {
            for arm in &scenario.arms {
                assert_eq!(arm.rounds, result.batches);
                assert_eq!(arm.queries, result.batches * result.queries_per_round);
                assert!(arm.hops > 0, "{} served no hops", arm.partitioner);
            }
        }
    }

    #[test]
    fn json_is_balanced_and_carries_all_arms() {
        let result = run(Scale::Tiny, 7);
        let json = to_json(&result);
        assert_eq!(json.matches("\"partitioner\": \"adaptive\"").count(), 6);
        assert_eq!(json.matches("\"partitioner\": \"hash\"").count(), 6);
        assert_eq!(json.matches("\"partitioner\": \"static-range\"").count(), 6);
        assert_eq!(json.matches("\"local_hop_pct\"").count(), 18);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON:\n{json}"
        );
        assert!(json.contains("\"serve_timelines_parallelism_invariant\": true"));
    }
}
