//! Figure 5: final cut ratio of the iterative heuristic across the dataset
//! zoo, for each of the four initial strategies.

use apg_core::{mean_and_sem, AdaptiveConfig, AdaptivePartitioner, Summary};
use apg_graph::{datasets, CsrGraph};
use apg_partition::InitialStrategy;

use crate::Scale;

/// All strategy results for one graph.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Dataset name.
    pub graph: String,
    /// Final cut ratio per strategy, in [`InitialStrategy::ALL`] order.
    pub cuts: Vec<(InitialStrategy, Summary)>,
}

/// The paper's Figure 5 graph list (quick scale trims the biggest two).
pub fn graphs(scale: Scale, seed: u64) -> Vec<(String, CsrGraph)> {
    let names: &[&str] = match scale {
        Scale::Paper | Scale::Xl => &[
            "1e4", "3elt", "4elt", "64kcube", "plc1000", "plc10000", "epinion", "wikivote",
        ],
        Scale::Quick => &["1e4", "3elt", "plc1000", "wikivote"],
        Scale::Tiny => &["3elt", "plc1000"],
    };
    names
        .iter()
        .map(|n| {
            let d = datasets::by_name(n).expect("known dataset");
            (n.to_string(), d.build(seed))
        })
        .collect()
}

/// Runs the full grid.
pub fn run(scale: Scale, reps: usize, seed: u64) -> Vec<Fig5Row> {
    graphs(scale, seed)
        .into_iter()
        .map(|(name, graph)| {
            let cuts = InitialStrategy::ALL
                .iter()
                .map(|&strategy| {
                    let mut vals = Vec::with_capacity(reps);
                    for rep in 0..reps {
                        let cfg = AdaptiveConfig::new(9).max_iterations(600);
                        let mut p = AdaptivePartitioner::with_strategy(
                            &graph,
                            strategy,
                            &cfg,
                            seed.wrapping_add(rep as u64 * 31 + 7),
                        );
                        let report = p.run_to_convergence();
                        vals.push(report.final_cut_ratio());
                    }
                    (strategy, mean_and_sem(&vals))
                })
                .collect();
            Fig5Row { graph: name, cuts }
        })
        .collect()
}

/// Prints the grid in the paper's grouped-bar layout.
pub fn print(rows: &[Fig5Row]) {
    println!("Figure 5: iterative-algorithm cut ratio per graph and initial strategy");
    print!("{:<10}", "graph");
    for s in InitialStrategy::ALL {
        print!(" {:>16}", s.label());
    }
    println!();
    for r in rows {
        print!("{:<10}", r.graph);
        for (_, summary) in &r.cuts {
            print!(" {:>9.4} ±{:<5.4}", summary.mean, summary.sem);
        }
        println!();
    }
}
