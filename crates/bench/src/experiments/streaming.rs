//! Streaming-ingestion experiment: every dynamic workload through the one
//! canonical path.
//!
//! Not a figure from the paper: it measures what the `GraphDelta` /
//! [`StreamingRunner`] layer buys. The three dynamic scenarios — CDR weeks,
//! Twitter windows, a forest-fire burst — are each swept over batch sizes
//! (finer batching = fresher partitioning but more repartitioning rounds;
//! coarser batching = bigger cut spikes per batch), with the per-batch
//! [`TimelineStats`] fingerprinted to witness the determinism contract:
//! the timeline is identical at every `parallelism` level.
//!
//! The `streaming` binary prints the table and writes
//! `BENCH_streaming.json`.

use std::time::Instant;

use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner, TimelineStats};
use apg_graph::{gen, DynGraph, Graph};
use apg_partition::InitialStrategy;
use apg_streams::{
    CdrConfig, CdrStream, ForestFireConfig, ForestFireSource, StreamSource, TwitterConfig,
    TwitterStream,
};

use super::scaling::WallStats;
use crate::Scale;

/// Partitions (k) used throughout.
const K: u16 = 8;

/// Repartitioning iterations per ingested batch.
pub const ITERS_PER_BATCH: usize = 4;

/// CDR subscribers at stream start, per scale.
pub fn cdr_subscribers(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 400,
        Scale::Quick => 2_000,
        Scale::Paper | Scale::Xl => 20_000,
    }
}

/// Twitter users at stream start, per scale.
pub fn twitter_users(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 300,
        Scale::Quick => 1_500,
        Scale::Paper | Scale::Xl => 4_000,
    }
}

/// Power-law base-graph vertices for the burst scenario, per scale.
pub fn burst_base_vertices(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 2_000,
        Scale::Quick => 20_000,
        Scale::Paper | Scale::Xl => 100_000,
    }
}

/// Simulated hours of Twitter traffic, per scale.
fn twitter_hours(scale: Scale) -> f64 {
    match scale {
        Scale::Tiny => 1.0,
        Scale::Quick => 6.0,
        Scale::Paper | Scale::Xl => 12.0,
    }
}

/// One (scenario, batch-size) measurement.
#[derive(Debug, Clone)]
pub struct StreamingRow {
    /// `"cdr"`, `"twitter"` or `"forest-fire"`.
    pub scenario: &'static str,
    /// The scenario's batch-granularity knob, spelled out (`"bpw=14"`,
    /// `"window=900s"`, `"chunk=250"`).
    pub knob: String,
    /// Batches ingested.
    pub batches: usize,
    /// Total deltas across all batches.
    pub deltas: usize,
    /// Mean deltas per batch.
    pub mean_batch_deltas: f64,
    /// Cut ratio after the final batch's iterations.
    pub final_cut_ratio: f64,
    /// Worst cut ratio observed right after an ingest, before the
    /// repartitioning rounds caught up (the "spike" coarse batches pay).
    pub peak_ingest_cut_ratio: f64,
    /// Total vertex migrations across the run.
    pub migrations: usize,
    /// Live vertices at the end.
    pub final_vertices: usize,
    /// Edges at the end.
    pub final_edges: usize,
    /// Wall-clock over ingest + iterations, summarised over repetitions.
    pub wall_ms: WallStats,
    /// FNV fingerprint of the timeline's deterministic fields; equal
    /// fingerprints across parallelism levels witness the determinism
    /// contract.
    pub fingerprint: u64,
    /// Whether a `parallelism = 1` re-run produced the identical timeline.
    pub deterministic_vs_single_thread: bool,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct StreamingResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// Repetitions per row.
    pub reps: usize,
    /// Repartitioning iterations per batch.
    pub iterations_per_batch: usize,
    /// Partitions.
    pub k: u16,
    /// Threads used for the timed runs.
    pub threads: usize,
    /// One row per (scenario, batch-size knob).
    pub rows: Vec<StreamingRow>,
}

impl StreamingResult {
    /// Whether every row's timeline matched its single-threaded re-run.
    pub fn deterministic_across_threads(&self) -> bool {
        self.rows.iter().all(|r| r.deterministic_vs_single_thread)
    }
}

fn fingerprint(timeline: &[TimelineStats]) -> u64 {
    super::fnv1a(
        timeline
            .iter()
            .flat_map(|s| s.deterministic_fields().map(|f| f as u64)),
    )
}

/// A scenario cell: how to build the source and the base graph, and how
/// many batches to pull.
struct Cell {
    scenario: &'static str,
    knob: String,
    graph: DynGraph,
    make_source: Box<dyn Fn() -> Box<dyn StreamSource>>,
    batches: usize,
}

fn cells(scale: Scale, seed: u64) -> Vec<Cell> {
    let mut out = Vec::new();

    // CDR: the batches-per-week knob trades batch size for batch count at
    // constant traffic (2 simulated weeks).
    for bpw in [4usize, 14, 28] {
        let config = CdrConfig {
            initial_subscribers: cdr_subscribers(scale),
            batches_per_week: bpw,
            ..CdrConfig::default()
        };
        out.push(Cell {
            scenario: "cdr",
            knob: format!("bpw={bpw}"),
            graph: DynGraph::with_vertices(config.initial_subscribers),
            make_source: Box::new(move || Box::new(CdrStream::new(config, seed))),
            batches: 2 * bpw,
        });
    }

    // Twitter: the window-length knob, over a fixed span of the evening
    // ramp (constant simulated traffic per row).
    let hours = twitter_hours(scale);
    for window_secs in [450.0f64, 900.0, 1800.0] {
        let config = TwitterConfig {
            initial_users: twitter_users(scale),
            ..TwitterConfig::default()
        };
        out.push(Cell {
            scenario: "twitter",
            knob: format!("window={}s", window_secs as usize),
            graph: DynGraph::with_vertices(config.initial_users),
            make_source: Box::new(move || {
                Box::new(TwitterStream::new(config, seed).with_clock(17.0, window_secs))
            }),
            batches: (hours * 3600.0 / window_secs).round() as usize,
        });
    }

    // Forest fire: one +10% burst, chunked finer and finer.
    let base = DynGraph::from(&gen::holme_kim(burst_base_vertices(scale), 6, 0.1, seed));
    let burst = base.num_live_vertices() / 10;
    for divisor in [8usize, 4, 1] {
        let chunk = (burst / divisor).max(1);
        let cfg = ForestFireConfig::burst(burst, seed ^ 0xF1FE);
        let graph = base.clone();
        let source_graph = base.clone();
        out.push(Cell {
            scenario: "forest-fire",
            knob: format!("chunk={chunk}"),
            graph,
            make_source: Box::new(move || {
                Box::new(ForestFireSource::new(&source_graph, &cfg, chunk))
            }),
            batches: burst.div_ceil(chunk),
        });
    }

    out
}

fn run_cell(cell: &Cell, threads: usize, seed: u64) -> (Vec<TimelineStats>, f64) {
    let cfg = AdaptiveConfig::new(K).parallelism(threads);
    let partitioner =
        AdaptivePartitioner::with_strategy(&cell.graph, InitialStrategy::Hash, &cfg, seed);
    let mut runner = StreamingRunner::new(partitioner).iterations_per_batch(ITERS_PER_BATCH);
    let mut source = (cell.make_source)();
    let start = Instant::now();
    runner.drive(&mut source, cell.batches);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (runner.timeline().to_vec(), wall_ms)
}

/// Runs the full sweep at the host's available parallelism, re-checking
/// every cell single-threaded for the determinism contract.
pub fn run(scale: Scale, reps: usize, seed: u64) -> StreamingResult {
    let threads = apg_exec::available_parallelism();
    let reps = reps.max(1);
    let mut rows = Vec::new();
    for cell in cells(scale, seed) {
        let mut samples = Vec::with_capacity(reps);
        let mut timeline = Vec::new();
        for _ in 0..reps {
            let (t, ms) = run_cell(&cell, threads, seed);
            samples.push(ms);
            timeline = t;
        }
        let (single, _) = run_cell(&cell, 1, seed);
        let last = timeline.last().expect("at least one batch");
        rows.push(StreamingRow {
            scenario: cell.scenario,
            knob: cell.knob.clone(),
            batches: timeline.len(),
            deltas: timeline.iter().map(|s| s.deltas).sum(),
            mean_batch_deltas: timeline.iter().map(|s| s.deltas).sum::<usize>() as f64
                / timeline.len() as f64,
            final_cut_ratio: last.cut_ratio_after(),
            peak_ingest_cut_ratio: timeline
                .iter()
                .map(TimelineStats::cut_ratio_after_ingest)
                .fold(0.0f64, f64::max),
            migrations: timeline.iter().map(|s| s.migrations).sum(),
            final_vertices: last.live_vertices,
            final_edges: last.num_edges,
            wall_ms: WallStats::from_samples(&samples),
            fingerprint: fingerprint(&timeline),
            deterministic_vs_single_thread: single == timeline,
        });
    }
    StreamingResult {
        scale: scale.name(),
        threads_available: threads,
        reps,
        iterations_per_batch: ITERS_PER_BATCH,
        k: K,
        threads,
        rows,
    }
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde` carries
/// no data model).
pub fn to_json(result: &StreamingResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"streaming-ingestion\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"threads_available\": {},\n",
        result.scale, result.threads_available
    ));
    out.push_str(&format!(
        "  \"reps\": {}, \"iterations_per_batch\": {}, \"k\": {}, \"threads\": {},\n",
        result.reps, result.iterations_per_batch, result.k, result.threads
    ));
    out.push_str(&format!(
        "  \"deterministic_across_threads\": {},\n",
        result.deterministic_across_threads()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"knob\": \"{}\", \"batches\": {}, \
             \"deltas\": {}, \"mean_batch_deltas\": {:.1}, \
             \"final_cut_ratio\": {:.6}, \"peak_ingest_cut_ratio\": {:.6}, \
             \"migrations\": {}, \"final_vertices\": {}, \"final_edges\": {}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"timeline_fingerprint\": \"{:016x}\", \"deterministic_vs_single_thread\": {}}}{}\n",
            row.scenario,
            row.knob,
            row.batches,
            row.deltas,
            row.mean_batch_deltas,
            row.final_cut_ratio,
            row.peak_ingest_cut_ratio,
            row.migrations,
            row.final_vertices,
            row.final_edges,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            row.fingerprint,
            row.deterministic_vs_single_thread,
            if i + 1 < result.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the sweep table.
pub fn print(result: &StreamingResult) {
    println!(
        "Streaming ingestion: {} iterations/batch, k = {}, {} reps, {} threads",
        result.iterations_per_batch, result.k, result.reps, result.threads
    );
    println!(
        "{:>12} {:>14} {:>8} {:>9} {:>10} {:>10} {:>10} {:>11}",
        "scenario",
        "knob",
        "batches",
        "deltas/b",
        "peak cut",
        "final cut",
        "migrations",
        "median ms"
    );
    for row in &result.rows {
        println!(
            "{:>12} {:>14} {:>8} {:>9.0} {:>10.4} {:>10.4} {:>10} {:>11.1}",
            row.scenario,
            row.knob,
            row.batches,
            row.mean_batch_deltas,
            row.peak_ingest_cut_ratio,
            row.final_cut_ratio,
            row.migrations,
            row.wall_ms.median,
        );
    }
    println!(
        "timeline identical across thread counts: {}",
        if result.deterministic_across_threads() {
            "yes (determinism contract holds)"
        } else {
            "NO — INVESTIGATE"
        }
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_all_scenarios_and_is_deterministic() {
        let result = run(Scale::Tiny, 1, 5);
        assert_eq!(result.rows.len(), 9);
        assert!(result.deterministic_across_threads());
        for scenario in ["cdr", "twitter", "forest-fire"] {
            let rows: Vec<_> = result
                .rows
                .iter()
                .filter(|r| r.scenario == scenario)
                .collect();
            assert_eq!(rows.len(), 3, "{scenario} knob sweep incomplete");
            // The sweep must do real work in every cell.
            for r in &rows {
                assert!(r.deltas > 0, "{scenario}/{} ingested nothing", r.knob);
            }
        }
        // The forest-fire burst is precomputed once per knob from the same
        // seed, so chunking must not change what ultimately lands.
        let fire: Vec<_> = result
            .rows
            .iter()
            .filter(|r| r.scenario == "forest-fire")
            .collect();
        for r in &fire[1..] {
            assert_eq!(r.final_vertices, fire[0].final_vertices);
            assert_eq!(r.final_edges, fire[0].final_edges);
        }
    }

    #[test]
    fn json_has_all_rows_and_balanced_braces() {
        let result = run(Scale::Tiny, 1, 7);
        let json = to_json(&result);
        assert_eq!(json.matches("\"scenario\"").count(), result.rows.len());
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON:\n{json}"
        );
        assert!(json.contains("\"deterministic_across_threads\": true"));
    }
}
