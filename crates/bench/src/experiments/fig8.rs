//! Figure 8: the online-social-network use case — TunkRank over a live
//! mention stream, adaptive vs static hash, across a 24-hour London day
//! (including the mid-afternoon worker failure the paper's caption notes).
//!
//! Mention edges expire after a freshness window (2 simulated hours):
//! influence analytics are only meaningful over recent attention, and the
//! paper's flat superstep-time traces over four days of continuous
//! operation imply bounded state, not an ever-growing multigraph.

use apg_apps::TunkRank;
use apg_core::AdaptiveConfig;
use apg_graph::DynGraph;
use apg_pregel::{CostModel, Engine, EngineBuilder, FaultPlan, MutationBatch};
use apg_streams::{TwitterConfig, TwitterStream};

use crate::Scale;

/// One plotted window of Figure 8.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Point {
    /// Hour of day at window start.
    pub hour: f64,
    /// Average tweets/second in the window.
    pub tweets_per_sec: f64,
    /// Mean superstep sim-time, static hash cluster.
    pub hash_time: f64,
    /// Mean superstep sim-time, adaptive cluster.
    pub adaptive_time: f64,
}

const WORKERS: u16 = 9;
const SUPERSTEPS_PER_WINDOW: usize = 3;
/// Mention-edge freshness horizon, in hours.
const EDGE_TTL_HOURS: f64 = 2.0;

/// Windows across the day per scale.
pub fn windows(scale: Scale) -> usize {
    match scale {
        Scale::Paper | Scale::Xl => 144, // 10-minute windows
        Scale::Quick => 48,              // 30-minute windows
        Scale::Tiny => 12,               // 2-hour windows
    }
}

/// Runs the paired-cluster day.
pub fn run(scale: Scale, seed: u64) -> Vec<Fig8Point> {
    let num_windows = windows(scale);
    let window_secs = 24.0 * 3600.0 / num_windows as f64;
    let config = TwitterConfig {
        initial_users: match scale {
            Scale::Paper | Scale::Xl => 4000,
            Scale::Quick => 1500,
            Scale::Tiny => 500,
        },
        ..TwitterConfig::default()
    };
    let mut stream = TwitterStream::new(config, seed);

    // The failure event: one worker crashes in the mid-afternoon, as in the
    // paper's trace. Same schedule on both clusters.
    let crash_superstep = (num_windows * 15 / 24) * SUPERSTEPS_PER_WINDOW;
    let plan = || FaultPlan::crash(crash_superstep, 3);

    let initial = DynGraph::with_vertices(config.initial_users);
    // The stream runs for days in the paper; TunkRank simply never stops.
    let program = TunkRank::new(usize::MAX);
    let mut adaptive: Engine<TunkRank> = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::lan_10gbe())
        .fault_plan(plan())
        .adaptive(AdaptiveConfig::new(WORKERS))
        .cut_every(0)
        .build(&initial, program);
    let mut hash: Engine<TunkRank> = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::lan_10gbe())
        .fault_plan(plan())
        .cut_every(0)
        .build(&initial, program);

    let mut points = Vec::with_capacity(num_windows);
    let ttl_windows = (EDGE_TTL_HOURS / (24.0 / num_windows as f64))
        .round()
        .max(1.0) as usize;
    let mut last_seen: std::collections::HashMap<(u32, u32), usize> =
        std::collections::HashMap::new();
    for w in 0..num_windows {
        let hour = w as f64 * 24.0 / num_windows as f64;
        // Ingestion stalls while the failed worker recovers.
        let in_recovery = {
            let s = adaptive.superstep_index();
            s >= crash_superstep && s < crash_superstep + 5
        };
        let effective_secs = if in_recovery {
            window_secs * 0.15
        } else {
            window_secs
        };
        let batch = stream.window(hour, effective_secs);

        let mut mutation = batch_to_mutations(&batch, adaptive.num_total_slots());
        for &(a, b) in &batch.edges {
            let key = ((a as u32).min(b as u32), (a as u32).max(b as u32));
            last_seen.insert(key, w);
        }
        // Age out mentions older than the freshness horizon.
        let mut expired = Vec::new();
        last_seen.retain(|&(a, b), &mut seen| {
            if w.saturating_sub(seen) >= ttl_windows {
                expired.push((a, b));
                false
            } else {
                true
            }
        });
        expired.sort_unstable();
        for (a, b) in expired {
            mutation.remove_edge(a, b);
        }
        adaptive.apply_mutations(mutation.clone());
        hash.apply_mutations(mutation);

        let ra = adaptive.run(SUPERSTEPS_PER_WINDOW);
        let rh = hash.run(SUPERSTEPS_PER_WINDOW);
        let mean = |rs: &[apg_pregel::SuperstepReport]| {
            rs.iter().map(|r| r.sim_time).sum::<f64>() / rs.len() as f64
        };
        points.push(Fig8Point {
            hour,
            tweets_per_sec: batch.tweets as f64 / window_secs,
            hash_time: mean(&rh),
            adaptive_time: mean(&ra),
        });
        if std::env::var_os("APG_FIG8_DIAG").is_some() && w % 8 == 0 {
            eprintln!(
                "diag w={w} users={} edges={} cut_adaptive={:.3} cut_hash={:.3} mig={} remote_a={} remote_h={} compute_a={} local_a={} local_h={}",
                adaptive.num_live_vertices(),
                adaptive.num_edges(),
                adaptive.cut_ratio(),
                hash.cut_ratio(),
                ra.iter().map(|r| r.migrations_completed).sum::<u64>(),
                ra.last().unwrap().messages_remote,
                rh.last().unwrap().messages_remote,
                ra.last().unwrap().compute_units,
                ra.last().unwrap().messages_local,
                rh.last().unwrap().messages_local,
            );
            let wt = &ra.last().unwrap().worker_times;
            let wh = &rh.last().unwrap().worker_times;
            eprintln!(
                "  worker_times adaptive: {:?}",
                wt.iter().map(|t| (t / 1000.0).round()).collect::<Vec<_>>()
            );
            eprintln!(
                "  worker_times hash:     {:?}",
                wh.iter().map(|t| (t / 1000.0).round()).collect::<Vec<_>>()
            );
        }
    }
    points
}

/// Converts a mention batch into engine mutations via the shared delta
/// model; user indices beyond the engine's current slots become new
/// vertices (ids align because both sides allocate sequentially).
pub fn batch_to_mutations(
    batch: &apg_streams::MentionBatch,
    current_slots: usize,
) -> MutationBatch {
    MutationBatch::from(batch.to_update_batch(current_slots))
}

/// Prints the three series of Figure 8.
pub fn print(points: &[Fig8Point]) {
    println!("Figure 8: London tweet stream, superstep time hash vs adaptive");
    println!(
        "{:>6} {:>12} {:>14} {:>14} {:>8}",
        "hour", "tweets/s", "hash time", "adaptive time", "speedup"
    );
    for p in points {
        println!(
            "{:>6.1} {:>12.1} {:>14.0} {:>14.0} {:>8.2}",
            p.hour,
            p.tweets_per_sec,
            p.hash_time,
            p.adaptive_time,
            p.hash_time / p.adaptive_time.max(1e-9)
        );
    }
    let mean_speedup: f64 = points
        .iter()
        .map(|p| p.hash_time / p.adaptive_time.max(1e-9))
        .sum::<f64>()
        / points.len() as f64;
    println!("mean speedup: x{mean_speedup:.2} (paper reports ~5x: 2.5 s -> 0.5 s)");
}
