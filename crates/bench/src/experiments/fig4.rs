//! Figure 4: cut ratio of the four initial strategies, before and after the
//! iterative algorithm, against the METIS benchmark (9 partitions, capacity
//! 110%).

use apg_core::{mean_and_sem, AdaptiveConfig, AdaptivePartitioner, Summary};
use apg_graph::CsrGraph;
use apg_partition::{cut_ratio, InitialStrategy};

/// Result for one initial strategy on one graph.
#[derive(Debug, Clone)]
pub struct Fig4Row {
    /// The strategy (DGR / HSH / MNN / RND).
    pub strategy: InitialStrategy,
    /// Cut ratio straight after initial partitioning.
    pub initial: Summary,
    /// Cut ratio after running the iterative algorithm to convergence.
    pub iterative: Summary,
}

/// Runs all four strategies on `graph` with `k = 9`.
pub fn run(graph: &CsrGraph, reps: usize, seed: u64) -> Vec<Fig4Row> {
    InitialStrategy::ALL
        .iter()
        .map(|&strategy| {
            let mut initial = Vec::with_capacity(reps);
            let mut iterative = Vec::with_capacity(reps);
            for rep in 0..reps {
                let rep_seed = seed.wrapping_add(rep as u64 * 104_729);
                let cfg = AdaptiveConfig::new(9).max_iterations(800);
                let mut p = AdaptivePartitioner::with_strategy(graph, strategy, &cfg, rep_seed);
                initial.push(p.cut_ratio());
                let report = p.run_to_convergence();
                iterative.push(report.final_cut_ratio());
            }
            Fig4Row {
                strategy,
                initial: mean_and_sem(&initial),
                iterative: mean_and_sem(&iterative),
            }
        })
        .collect()
}

/// The centralised METIS-style benchmark line (dashed in the paper).
pub fn metis_baseline(graph: &CsrGraph, seed: u64) -> f64 {
    let p = apg_metis::partition(graph, 9, 1.10, seed);
    cut_ratio(graph, &p)
}

/// Prints one graph's bars plus the METIS line.
pub fn print(name: &str, rows: &[Fig4Row], metis: f64) {
    println!("Figure 4 ({name}): cut ratio by initial strategy (9 partitions, cap 110%)");
    println!(
        "{:>6} {:>20} {:>20}",
        "init", "initial cut", "iterative cut"
    );
    for r in rows {
        println!(
            "{:>6} {:>12.4} ± {:<5.4} {:>12.4} ± {:<5.4}",
            r.strategy.label(),
            r.initial.mean,
            r.initial.sem,
            r.iterative.mean,
            r.iterative.sem
        );
    }
    println!("{:>6} {:>20.4} (centralised benchmark)", "METIS", metis);
}
