//! Figure 9: the mobile-network use case — maximal cliques over a month of
//! calls with weekly churn, dynamic (adaptive) vs static partitioning.
//!
//! The topology freezes during each clique round; graph changes buffer
//! between rounds (the paper's batching), and the 15x replay speed-up shows
//! up as sizeable per-round batches.

use apg_apps::MaxClique;
use apg_core::{mean_and_sem, AdaptiveConfig, Summary};
use apg_graph::DynGraph;
use apg_pregel::{CostModel, Engine, EngineBuilder, MutationBatch};
use apg_streams::{CdrConfig, CdrStream, StreamSource};

use crate::Scale;

/// One week of Figure 9 (both panels).
#[derive(Debug, Clone)]
pub struct Fig9Week {
    /// Week number (1-based, as in the paper's x axis).
    pub week: usize,
    /// Cut ratio at week end, adaptive cluster.
    pub dynamic_cut: f64,
    /// Cut ratio at week end, static cluster.
    pub static_cut: f64,
    /// Per-round sim time, adaptive cluster (mean ± SEM over rounds).
    pub dynamic_time: Summary,
    /// Per-round sim time, static cluster.
    pub static_time: Summary,
}

const WORKERS: u16 = 5; // the paper's CDR cluster had 5 workers
const WEEKS: usize = 4;

/// Population per scale.
pub fn subscribers(scale: Scale) -> usize {
    match scale {
        Scale::Paper | Scale::Xl => 20_000,
        Scale::Quick => 3_000,
        Scale::Tiny => 600,
    }
}

/// Runs the four weeks on paired clusters.
pub fn run(scale: Scale, seed: u64) -> Vec<Fig9Week> {
    let config = CdrConfig {
        initial_subscribers: subscribers(scale),
        ..CdrConfig::default()
    };
    let mut stream = CdrStream::new(config, seed);
    let initial = DynGraph::with_vertices(config.initial_subscribers);

    let mut dynamic: Engine<MaxClique> = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::lan_10gbe())
        .adaptive(AdaptiveConfig::new(WORKERS))
        .cut_every(0)
        .build(&initial, MaxClique::new());
    let mut static_engine: Engine<MaxClique> = EngineBuilder::new(WORKERS)
        .seed(seed)
        .cost_model(CostModel::lan_10gbe())
        .cut_every(0)
        .build(&initial, MaxClique::new());

    let mut weeks = Vec::with_capacity(WEEKS);
    let batches_per_week = config.batches_per_week;
    for week in 1..=WEEKS {
        let mut dyn_times = Vec::new();
        let mut stat_times = Vec::new();

        // The canonical ingestion path: one UpdateBatch per buffered call
        // batch (the frozen-topology discipline — mutations land between
        // rounds only), with the week's joiners opening its first batch and
        // the week-end departures closing its last. NOTE: departures
        // therefore land just before the week's final round (they used to
        // land after it), so per-round times differ slightly from the
        // pre-delta-model series; week-end cut ratios are unaffected.
        for _ in 0..batches_per_week {
            let batch = stream.next_batch().expect("CDR stream is open-ended");
            let m = MutationBatch::from(batch);
            dynamic.apply_mutations(m.clone());
            static_engine.apply_mutations(m);

            dyn_times.push(clique_round(&mut dynamic));
            stat_times.push(clique_round(&mut static_engine));
        }

        weeks.push(Fig9Week {
            week,
            dynamic_cut: dynamic.cut_ratio(),
            static_cut: static_engine.cut_ratio(),
            dynamic_time: mean_and_sem(&dyn_times),
            static_time: mean_and_sem(&stat_times),
        });
    }
    weeks
}

/// One freeze-compute round: wake everything, exchange lists, detect.
fn clique_round(engine: &mut Engine<MaxClique>) -> f64 {
    engine.wake_all();
    let reports = engine.run(2);
    reports.iter().map(|r| r.sim_time).sum()
}

/// Prints both panels of Figure 9.
pub fn print(weeks: &[Fig9Week]) {
    println!("Figure 9: CDR clique workload, dynamic vs static ({WORKERS} workers)");
    println!(
        "{:>6} | {:>12} {:>12} | {:>20} {:>20}",
        "week", "dyn cut", "stat cut", "dyn time/round", "stat time/round"
    );
    for w in weeks {
        println!(
            "{:>6} | {:>12.4} {:>12.4} | {:>12.0} ±{:<6.0} {:>12.0} ±{:<6.0}",
            w.week,
            w.dynamic_cut,
            w.static_cut,
            w.dynamic_time.mean,
            w.dynamic_time.sem,
            w.static_time.mean,
            w.static_time.sem
        );
    }
    if let Some(last) = weeks.last() {
        println!(
            "week-{} time ratio dynamic/static: {:.2} (paper: < 0.5)",
            last.week,
            last.dynamic_time.mean / last.static_time.mean.max(1e-9)
        );
    }
}
