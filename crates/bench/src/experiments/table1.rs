//! Table 1: the dataset inventory.

use apg_graph::datasets::{Dataset, TABLE1};
use apg_graph::{algo, Graph};

use crate::Scale;

/// One reproduced row of Table 1.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Dataset name as in the paper.
    pub name: &'static str,
    /// Family ("FEM"/"pwlaw").
    pub kind: String,
    /// |V| the paper lists.
    pub paper_v: usize,
    /// |E| the paper lists.
    pub paper_e: usize,
    /// |V| of the graph we actually build.
    pub built_v: usize,
    /// |E| of the graph we actually build.
    pub built_e: usize,
    /// Mean degree of the built graph.
    pub mean_degree: f64,
    /// Substitution note, if the original is not reproducible offline.
    pub substitution: Option<&'static str>,
}

/// Datasets to materialise at the given scale. At quick scale the two
/// largest (1e8-class) datasets are skipped.
pub fn selected(scale: Scale) -> Vec<&'static Dataset> {
    TABLE1
        .iter()
        .filter(|d| match scale {
            Scale::Paper | Scale::Xl => true,
            Scale::Quick => d.default_vertices() <= 200_000,
            Scale::Tiny => d.default_vertices() <= 20_000,
        })
        .collect()
}

/// Builds every selected dataset and measures it.
pub fn run(scale: Scale, seed: u64) -> Vec<Table1Row> {
    selected(scale)
        .into_iter()
        .map(|d| {
            let g = d.build(seed);
            let stats = algo::degree_stats(&g);
            Table1Row {
                name: d.name,
                kind: d.kind.to_string(),
                paper_v: d.paper_vertices,
                paper_e: d.paper_edges,
                built_v: g.num_vertices(),
                built_e: g.num_edges(),
                mean_degree: stats.mean,
                substitution: d.substitution,
            }
        })
        .collect()
}

/// Prints the table like the paper's Table 1, with built columns appended.
pub fn print(rows: &[Table1Row]) {
    println!("Table 1: datasets (paper listing vs built graph)");
    println!(
        "{:<14} {:>12} {:>12} {:>6} | {:>12} {:>12} {:>8}  substitution",
        "name", "paper |V|", "paper |E|", "type", "built |V|", "built |E|", "deg"
    );
    for r in rows {
        println!(
            "{:<14} {:>12} {:>12} {:>6} | {:>12} {:>12} {:>8.2}  {}",
            r.name,
            r.paper_v,
            r.paper_e,
            r.kind,
            r.built_v,
            r.built_e,
            r.mean_degree,
            r.substitution.unwrap_or("-")
        );
    }
}
