//! Checkpoint-overhead sweep: what durable state costs on the streaming
//! hot path.
//!
//! Not a figure from the paper: it prices the `apg-persist` layer. A CDR
//! churn stream (the heaviest mutation mix: joins, calls, departures) is
//! driven through the [`StreamingRunner`] at several checkpoint cadences —
//! from "never" to "every batch" — taking a fresh snapshot from the live
//! runner at each cadence (which empties the write-ahead tail), exactly
//! the operating loop the README walkthrough documents. Reported per
//! cadence: ingest wall-clock (overhead vs the
//! no-checkpoint baseline), serialised checkpoint size, encode / decode /
//! resume costs, and a resume-equivalence check (the decoded checkpoint's
//! resumed timeline must equal the live runner's).
//!
//! The `persist` binary prints the table and writes `BENCH_persist.json`.

use std::time::Instant;

use apg_core::persist::StreamCheckpoint;
use apg_core::{AdaptiveConfig, AdaptivePartitioner, StreamingRunner};
use apg_graph::DynGraph;
use apg_partition::InitialStrategy;
use apg_streams::{CdrConfig, CdrStream, StreamSource};

use super::scaling::WallStats;
use super::streaming::cdr_subscribers;
use crate::Scale;

/// Partitions (k) used throughout.
const K: u16 = 8;

/// Repartitioning iterations per ingested batch.
const ITERS_PER_BATCH: usize = 4;

/// One cadence measurement.
#[derive(Debug, Clone)]
pub struct PersistRow {
    /// Batches between snapshots (`None` = checkpointing disabled).
    pub snapshot_every: Option<usize>,
    /// Batches ingested.
    pub batches: usize,
    /// Snapshots taken (each a fresh checkpoint off the live runner,
    /// emptying the write-ahead tail).
    pub snapshots: usize,
    /// Wall-clock for the full run, ingest + checkpointing, over reps.
    pub wall_ms: WallStats,
    /// Overhead over the no-checkpoint baseline, percent of baseline mean.
    pub overhead_pct: f64,
    /// Serialised size of the final checkpoint, bytes.
    pub checkpoint_bytes: usize,
    /// Tail segments left in the final checkpoint.
    pub tail_batches: usize,
    /// Encoding the final checkpoint, milliseconds.
    pub encode_ms: f64,
    /// Decoding it back, milliseconds.
    pub decode_ms: f64,
    /// Resuming a runner from it (tail replay included), milliseconds.
    pub resume_ms: f64,
    /// Whether the resumed runner's timeline equals the live one's.
    pub resume_matches: bool,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct PersistResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// Repetitions per row.
    pub reps: usize,
    /// Subscribers at stream start.
    pub subscribers: usize,
    /// Batches ingested per run.
    pub batches: usize,
    /// One row per checkpoint cadence.
    pub rows: Vec<PersistRow>,
}

impl PersistResult {
    /// Whether every cadence's resumed runner matched the live runner.
    pub fn all_resumes_match(&self) -> bool {
        self.rows.iter().all(|r| r.resume_matches)
    }
}

fn batches_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Quick => 28,
        Scale::Paper | Scale::Xl => 56,
    }
}

/// Drives the stream with the given cadence; returns the wall time and the
/// final checkpoint (when checkpointing is on).
fn run_once(
    subscribers: usize,
    batches: usize,
    snapshot_every: Option<usize>,
    seed: u64,
) -> (f64, Option<StreamCheckpoint>, StreamingRunner) {
    let config = CdrConfig {
        initial_subscribers: subscribers,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(subscribers);
    let cfg = AdaptiveConfig::new(K);
    let partitioner = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, seed);
    let mut runner = StreamingRunner::new(partitioner).iterations_per_batch(ITERS_PER_BATCH);
    let mut source = CdrStream::new(config, seed);

    let start = Instant::now();
    let mut ckpt = snapshot_every.map(|_| runner.checkpoint());
    for i in 0..batches {
        let batch = source.next_batch().expect("CDR stream is open-ended");
        runner.ingest(&batch);
        if let (Some(ckpt), Some(every)) = (&mut ckpt, snapshot_every) {
            ckpt.append(batch);
            if (i + 1) % every == 0 {
                // With the live runner in hand, a fresh snapshot is a
                // straight state clone; `compact` (which re-executes the
                // tail's partitioner work) is for when only the checkpoint
                // bytes survive.
                *ckpt = runner.checkpoint();
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (wall_ms, ckpt, runner)
}

/// Runs the cadence sweep.
pub fn run(scale: Scale, reps: usize, seed: u64) -> PersistResult {
    let subscribers = cdr_subscribers(scale);
    let batches = batches_for(scale);
    let reps = reps.max(1);
    let cadences: [Option<usize>; 4] = [None, Some(8), Some(4), Some(1)];

    let mut rows = Vec::new();
    let mut baseline_mean = None;
    for snapshot_every in cadences {
        let mut samples = Vec::with_capacity(reps);
        let mut last: Option<(Option<StreamCheckpoint>, StreamingRunner)> = None;
        for _ in 0..reps {
            let (ms, ckpt, runner) = run_once(subscribers, batches, snapshot_every, seed);
            samples.push(ms);
            last = Some((ckpt, runner));
        }
        let wall = WallStats::from_samples(&samples);
        if baseline_mean.is_none() {
            baseline_mean = Some(wall.mean);
        }
        let base = baseline_mean.expect("baseline runs first");
        let overhead_pct = if base > 0.0 {
            100.0 * (wall.mean - base) / base
        } else {
            0.0
        };

        let (ckpt, runner) = last.expect("reps >= 1");
        let row = match ckpt {
            None => PersistRow {
                snapshot_every,
                batches,
                snapshots: 0,
                wall_ms: wall,
                overhead_pct,
                checkpoint_bytes: 0,
                tail_batches: 0,
                encode_ms: 0.0,
                decode_ms: 0.0,
                resume_ms: 0.0,
                resume_matches: true,
            },
            Some(ckpt) => {
                let every = snapshot_every.expect("checkpoint implies cadence");
                let t = Instant::now();
                let bytes = ckpt.to_bytes();
                let encode_ms = t.elapsed().as_secs_f64() * 1e3;
                let t = Instant::now();
                let decoded = StreamCheckpoint::from_bytes(&bytes).expect("self-written bytes");
                let decode_ms = t.elapsed().as_secs_f64() * 1e3;
                let t = Instant::now();
                let resumed = StreamingRunner::resume(decoded);
                let resume_ms = t.elapsed().as_secs_f64() * 1e3;
                PersistRow {
                    snapshot_every,
                    batches,
                    snapshots: batches / every,
                    wall_ms: wall,
                    overhead_pct,
                    checkpoint_bytes: bytes.len(),
                    tail_batches: ckpt.tail.len(),
                    encode_ms,
                    decode_ms,
                    resume_ms,
                    resume_matches: resumed.timeline() == runner.timeline()
                        && resumed.partitioner().graph() == runner.partitioner().graph()
                        && resumed.partitioner().partitioning()
                            == runner.partitioner().partitioning(),
                }
            }
        };
        rows.push(row);
    }

    PersistResult {
        scale: scale.name(),
        threads_available: apg_exec::available_parallelism(),
        reps,
        subscribers,
        batches,
        rows,
    }
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde`
/// carries no data model — the real codec in this workspace is binary, and
/// lives in `apg-persist`).
pub fn to_json(result: &PersistResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"checkpoint-overhead\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"threads_available\": {},\n",
        result.scale, result.threads_available
    ));
    out.push_str(&format!(
        "  \"reps\": {}, \"subscribers\": {}, \"batches\": {}, \"k\": {}, \
         \"iterations_per_batch\": {},\n",
        result.reps, result.subscribers, result.batches, K, ITERS_PER_BATCH
    ));
    out.push_str(&format!(
        "  \"all_resumes_match\": {},\n",
        result.all_resumes_match()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        let cadence = match row.snapshot_every {
            None => "null".to_string(),
            Some(n) => n.to_string(),
        };
        out.push_str(&format!(
            "    {{\"snapshot_every\": {}, \"snapshots\": {}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"overhead_pct\": {:.2}, \"checkpoint_bytes\": {}, \
             \"tail_batches\": {}, \"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \
             \"resume_ms\": {:.3}, \"resume_matches\": {}}}{}\n",
            cadence,
            row.snapshots,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            row.overhead_pct,
            row.checkpoint_bytes,
            row.tail_batches,
            row.encode_ms,
            row.decode_ms,
            row.resume_ms,
            row.resume_matches,
            if i + 1 < result.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the cadence table.
pub fn print(result: &PersistResult) {
    println!(
        "Checkpoint overhead: CDR stream, {} subscribers, {} batches, {} reps",
        result.subscribers, result.batches, result.reps
    );
    println!(
        "{:>14} {:>10} {:>11} {:>9} {:>11} {:>10} {:>10} {:>10} {:>7}",
        "cadence",
        "snapshots",
        "median ms",
        "over %",
        "ckpt bytes",
        "encode ms",
        "decode ms",
        "resume ms",
        "match"
    );
    for row in &result.rows {
        let cadence = match row.snapshot_every {
            None => "off".to_string(),
            Some(n) => format!("every {n}"),
        };
        println!(
            "{:>14} {:>10} {:>11.1} {:>9.2} {:>11} {:>10.3} {:>10.3} {:>10.3} {:>7}",
            cadence,
            row.snapshots,
            row.wall_ms.median,
            row.overhead_pct,
            row.checkpoint_bytes,
            row.encode_ms,
            row.decode_ms,
            row.resume_ms,
            row.resume_matches,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_resumes_match() {
        let result = run(Scale::Tiny, 1, 5);
        assert_eq!(result.rows.len(), 4);
        assert!(result.all_resumes_match());
        assert!(
            result.rows[0].checkpoint_bytes == 0,
            "baseline writes nothing"
        );
        assert!(
            result.rows.iter().skip(1).all(|r| r.checkpoint_bytes > 0),
            "checkpointing rows must serialise something"
        );
        // A fresh snapshot at each cadence empties the tail, so what is
        // left at the end is exactly the batches since the last snapshot.
        for row in result.rows.iter().skip(1) {
            assert_eq!(
                row.tail_batches,
                result.batches % row.snapshot_every.unwrap()
            );
        }
        let json = to_json(&result);
        assert!(json.contains("\"experiment\": \"checkpoint-overhead\""));
        assert!(json.contains("\"all_resumes_match\": true"));
    }
}
