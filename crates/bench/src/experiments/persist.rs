//! Checkpoint-overhead sweep: what durable state costs on the streaming
//! hot path.
//!
//! Not a figure from the paper: it prices the `apg-persist` layer. A CDR
//! churn stream (the heaviest mutation mix: joins, calls, departures) is
//! driven through the [`StreamingRunner`] at several checkpoint cadences —
//! from "never" to "every batch" — taking a fresh snapshot from the live
//! runner at each cadence (which empties the write-ahead tail), exactly
//! the operating loop the README walkthrough documents. Reported per
//! cadence: ingest wall-clock (overhead vs the
//! no-checkpoint baseline), serialised checkpoint size, encode / decode /
//! resume costs, and a resume-equivalence check (the decoded checkpoint's
//! resumed timeline must equal the live runner's).
//!
//! The `persist` binary prints the table and writes `BENCH_persist.json`.

use std::path::PathBuf;
use std::time::Instant;

use apg_core::persist::StreamCheckpoint;
use apg_core::{
    AdaptiveConfig, AdaptivePartitioner, CheckpointStore, StoreConfig, StreamingRunner,
};
use apg_graph::DynGraph;
use apg_partition::InitialStrategy;
use apg_streams::{CdrConfig, CdrStream, StreamSource};

use super::scaling::WallStats;
use super::streaming::cdr_subscribers;
use crate::Scale;

/// Partitions (k) used throughout.
const K: u16 = 8;

/// Repartitioning iterations per ingested batch.
const ITERS_PER_BATCH: usize = 4;

/// One cadence measurement.
#[derive(Debug, Clone)]
pub struct PersistRow {
    /// Batches between snapshots (`None` = checkpointing disabled).
    pub snapshot_every: Option<usize>,
    /// Batches ingested.
    pub batches: usize,
    /// Snapshots taken (each a fresh checkpoint off the live runner,
    /// emptying the write-ahead tail).
    pub snapshots: usize,
    /// Wall-clock for the full run, ingest + checkpointing, over reps.
    pub wall_ms: WallStats,
    /// Overhead over the no-checkpoint baseline: the **median of per-rep
    /// paired deltas**, each cadence rep timed back-to-back with its own
    /// fresh baseline rep. Pairing removes the drift between a baseline
    /// measured once up front and cadences measured later — the unpaired
    /// scheme reported negative overhead whenever the machine warmed up
    /// between the two.
    pub overhead_pct: f64,
    /// Serialised size of the final checkpoint, bytes.
    pub checkpoint_bytes: usize,
    /// Tail segments left in the final checkpoint.
    pub tail_batches: usize,
    /// Encoding the final checkpoint, milliseconds.
    pub encode_ms: f64,
    /// Decoding it back, milliseconds.
    pub decode_ms: f64,
    /// Resuming a runner from it (tail replay included), milliseconds.
    pub resume_ms: f64,
    /// Whether the resumed runner's timeline equals the live one's.
    pub resume_matches: bool,
}

/// One file-backed cadence measurement: the same stream written through
/// [`CheckpointStore`] — fsync'd write-ahead appends plus atomic
/// (incremental where possible) snapshot installs — then recovered cold
/// from disk by replaying base + delta chain + tail.
#[derive(Debug, Clone)]
pub struct DurableRow {
    /// Batches between durable snapshot installs.
    pub snapshot_every: usize,
    /// Snapshot installs performed (each: segment fsync, snapshot write +
    /// fsync, manifest rename + directory fsync).
    pub installs: usize,
    /// How many installs were delta-encoded onto the previous root rather
    /// than full snapshots (the first install and every rebase are full).
    pub incremental_installs: usize,
    /// Median of per-install `delta bytes / full snapshot bytes at the
    /// same point` over the incremental installs — the steady-state
    /// O(changed-state) payoff (the median shrugs off the warm-up
    /// installs taken while the partitioner is still converging).
    /// 0 when no install was incremental.
    pub delta_bytes_ratio: f64,
    /// Wall-clock for the full run, ingest + appends + installs.
    pub wall_ms: WallStats,
    /// Mean cost of one durable snapshot install, milliseconds. This is
    /// the price of the fsync discipline at this cadence.
    pub install_ms_mean: f64,
    /// Mean cost of one fsync'd write-ahead append, milliseconds.
    pub append_ms_mean: f64,
    /// Bytes of live on-disk state (snapshot + undiscarded segments).
    pub live_bytes: u64,
    /// Batches the cold recovery landed on (snapshot + replayed tail).
    pub recovered_batches: usize,
    /// Whether the cold-recovered runner matches the live one exactly.
    pub recovery_matches: bool,
}

/// Full experiment output.
#[derive(Debug, Clone)]
pub struct PersistResult {
    /// Scale name (`tiny` / `quick` / `paper`) the run was sized by.
    pub scale: &'static str,
    /// Hardware threads the host reports.
    pub threads_available: usize,
    /// Repetitions per row.
    pub reps: usize,
    /// Subscribers at stream start.
    pub subscribers: usize,
    /// Batches ingested per run.
    pub batches: usize,
    /// Whether the file-backed rows fsync'd every write (always true here;
    /// recorded so the JSON is self-describing).
    pub fsync: bool,
    /// Segment rotation threshold the file-backed rows used, bytes.
    pub segment_rotate_bytes: u64,
    /// One row per in-memory checkpoint cadence.
    pub rows: Vec<PersistRow>,
    /// One row per file-backed (fsync'd) cadence.
    pub durable_rows: Vec<DurableRow>,
    /// Whether a bounded `timeline_window` held the checkpoint's growth
    /// strictly below the unbounded run's at the same stream position
    /// (the O(window) vs O(stream) contract).
    pub window_growth_ok: bool,
    /// Whether a cold recovery through the delta chain reproduced the live
    /// runner exactly — timeline, digest, graph, partitioning — at
    /// parallelism 1, 2, and 8, with at least one genuinely incremental
    /// install in every run. CI greps for this flag in the JSON.
    pub incremental_equals_full: bool,
}

impl PersistResult {
    /// Whether every cadence's resumed runner matched the live runner.
    pub fn all_resumes_match(&self) -> bool {
        self.rows.iter().all(|r| r.resume_matches)
    }

    /// The durability contract this benchmark doubles as a check for: every
    /// in-memory resume AND every cold file-backed recovery reproduced the
    /// live runner, and the bounded window kept checkpoint growth flat.
    /// CI greps for this flag in the JSON.
    pub fn recovery_ok(&self) -> bool {
        self.all_resumes_match()
            && !self.durable_rows.is_empty()
            && self.durable_rows.iter().all(|r| r.recovery_matches)
            && self.window_growth_ok
            && self.incremental_equals_full
    }
}

fn batches_for(scale: Scale) -> usize {
    match scale {
        Scale::Tiny => 8,
        Scale::Quick => 28,
        Scale::Paper | Scale::Xl => 56,
    }
}

/// Drives the stream with the given cadence; returns the wall time and the
/// final checkpoint (when checkpointing is on).
fn run_once(
    subscribers: usize,
    batches: usize,
    snapshot_every: Option<usize>,
    seed: u64,
) -> (f64, Option<StreamCheckpoint>, StreamingRunner) {
    let config = CdrConfig {
        initial_subscribers: subscribers,
        ..CdrConfig::default()
    };
    let graph = DynGraph::with_vertices(subscribers);
    let cfg = AdaptiveConfig::new(K);
    let partitioner = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, seed);
    let mut runner = StreamingRunner::new(partitioner).iterations_per_batch(ITERS_PER_BATCH);
    let mut source = CdrStream::new(config, seed);

    let start = Instant::now();
    let mut ckpt = snapshot_every.map(|_| runner.checkpoint());
    for i in 0..batches {
        let batch = source.next_batch().expect("CDR stream is open-ended");
        runner.ingest(&batch);
        if let (Some(ckpt), Some(every)) = (&mut ckpt, snapshot_every) {
            ckpt.append(batch);
            if (i + 1) % every == 0 {
                // With the live runner in hand, a fresh snapshot is a
                // straight state clone; `compact` (which re-executes the
                // tail's partitioner work) is for when only the checkpoint
                // bytes survive.
                *ckpt = runner.checkpoint();
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (wall_ms, ckpt, runner)
}

/// Rotation threshold for the file-backed rows: small enough that every
/// scale's tail spans several segments, so the bench exercises rotation
/// and sealed-segment recovery, not just the single-file path.
const SEGMENT_ROTATE_BYTES: u64 = 64 << 10;

/// A scratch directory for one durable run, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir =
            std::env::temp_dir().join(format!("apg-bench-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Everything one file-backed run yields.
struct DurableOnce {
    wall_ms: f64,
    install_ms_mean: f64,
    append_ms_mean: f64,
    live_bytes: u64,
    incremental_installs: usize,
    delta_bytes_ratio: f64,
    runner: StreamingRunner,
}

/// Drives the stream once through a file-backed [`CheckpointStore`] with
/// fsync on: every batch is appended to the write-ahead log, a checkpoint
/// (delta-encoded whenever the chain policy allows) is installed every
/// `every` batches.
fn run_durable_once(
    dir: &PathBuf,
    subscribers: usize,
    batches: usize,
    every: usize,
    parallelism: Option<usize>,
    seed: u64,
) -> DurableOnce {
    let _ = std::fs::remove_dir_all(dir);
    let config = CdrConfig {
        initial_subscribers: subscribers,
        ..CdrConfig::default()
    };
    let store_config = StoreConfig {
        segment_rotate_bytes: SEGMENT_ROTATE_BYTES,
        fsync: true,
        ..StoreConfig::default()
    };
    let graph = DynGraph::with_vertices(subscribers);
    let mut cfg = AdaptiveConfig::new(K);
    if let Some(p) = parallelism {
        cfg = cfg.parallelism(p);
    }
    let partitioner = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, seed);
    let mut runner = StreamingRunner::new(partitioner).iterations_per_batch(ITERS_PER_BATCH);
    let mut source = CdrStream::new(config, seed);
    let (mut store, recovered) =
        CheckpointStore::open(dir, store_config).expect("scratch dir opens clean");
    assert!(
        recovered.checkpoint.is_none(),
        "scratch dir must start empty"
    );

    let start = Instant::now();
    let mut install_ms = Vec::new();
    let mut append_ms = Vec::new();
    let mut incremental_installs = 0usize;
    let mut delta_ratios = Vec::new();
    for i in 0..batches {
        let batch = source.next_batch().expect("CDR stream is open-ended");
        runner.ingest(&batch);
        let t = Instant::now();
        store.append(&batch).expect("append to scratch store");
        append_ms.push(t.elapsed().as_secs_f64() * 1e3);
        if (i + 1) % every == 0 {
            let t = Instant::now();
            let report = store
                .install(&mut runner)
                .expect("install to scratch store");
            install_ms.push(t.elapsed().as_secs_f64() * 1e3);
            if report.incremental {
                incremental_installs += 1;
                // Price the delta against the full snapshot it displaced
                // (encoded outside the timed window).
                let full_bytes = runner.checkpoint().to_bytes().len();
                delta_ratios.push(report.bytes as f64 / full_bytes as f64);
            }
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    DurableOnce {
        wall_ms,
        install_ms_mean: mean(&install_ms),
        append_ms_mean: mean(&append_ms),
        live_bytes: store.store().live_bytes(),
        incremental_installs,
        // Median, not mean: the first chained installs land while the
        // partitioner is still converging (near-total churn), and the
        // ratio the row should advertise is the steady-state one.
        delta_bytes_ratio: median(&delta_ratios),
        runner,
    }
}

/// Runs the file-backed cadence sweep and cold-recovery checks.
fn run_durable(subscribers: usize, batches: usize, reps: usize, seed: u64) -> Vec<DurableRow> {
    let mut rows = Vec::new();
    for every in [8usize, 4, 2, 1] {
        let store_config = StoreConfig {
            segment_rotate_bytes: SEGMENT_ROTATE_BYTES,
            fsync: true,
            ..StoreConfig::default()
        };
        let scratch = ScratchDir::new(&format!("every{every}"));
        let mut samples = Vec::with_capacity(reps);
        let mut last: Option<DurableOnce> = None;
        for _ in 0..reps {
            let once = run_durable_once(&scratch.0, subscribers, batches, every, None, seed);
            samples.push(once.wall_ms);
            last = Some(once);
        }
        let last = last.expect("reps >= 1");

        // Cold recovery: reopen the directory as a crashed process would —
        // replaying snapshot + delta chain + tail — and check the
        // recovered state replays to exactly the live run.
        let (_store, recovered) =
            CheckpointStore::open(&scratch.0, store_config).expect("reopen scratch store");
        let checkpoint = recovered.checkpoint.expect("a snapshot was installed");
        let resumed = StreamingRunner::resume(checkpoint);
        let recovered_batches = resumed.batches_ingested();
        let live = &last.runner;
        let recovery_matches = recovered.torn_frames_dropped == 0
            && recovered_batches == batches
            && resumed.timeline() == live.timeline()
            && resumed.timeline_digest() == live.timeline_digest()
            && resumed.partitioner().graph() == live.partitioner().graph()
            && resumed.partitioner().partitioning() == live.partitioner().partitioning();

        rows.push(DurableRow {
            snapshot_every: every,
            installs: batches / every,
            incremental_installs: last.incremental_installs,
            delta_bytes_ratio: last.delta_bytes_ratio,
            wall_ms: WallStats::from_samples(&samples),
            install_ms_mean: last.install_ms_mean,
            append_ms_mean: last.append_ms_mean,
            live_bytes: last.live_bytes,
            recovered_batches,
            recovery_matches,
        });
    }
    rows
}

/// Checks the incremental-install contract at parallelism 1, 2 and 8:
/// drive a CDR stream through a delta-chaining [`CheckpointStore`], kill
/// it cold, and require the base-plus-chain recovery to reproduce the
/// live runner exactly — with at least one genuinely incremental install,
/// so the check can never pass vacuously on the full-snapshot path.
fn check_incremental_equals_full(subscribers: usize, batches: usize, seed: u64) -> bool {
    // Install every 2 batches: the first install is full, the rest chain
    // as deltas (the default `max_chain_len` of 8 is not reached). The
    // store only chains a delta when it is smaller than the full snapshot,
    // so the check needs a graph large enough that per-batch churn is a
    // small fraction of the state — the Tiny subscriber count churns
    // wall-to-wall and would never leave the full-snapshot path.
    let every = 2;
    let subscribers = subscribers.max(2_000);
    let batches = batches.clamp(6, 12);
    [1usize, 2, 8].into_iter().all(|parallelism| {
        let scratch = ScratchDir::new(&format!("ieq-p{parallelism}"));
        let once = run_durable_once(
            &scratch.0,
            subscribers,
            batches,
            every,
            Some(parallelism),
            seed,
        );
        if once.incremental_installs == 0 {
            return false;
        }
        let store_config = StoreConfig {
            segment_rotate_bytes: SEGMENT_ROTATE_BYTES,
            fsync: true,
            ..StoreConfig::default()
        };
        let (_store, recovered) =
            CheckpointStore::open(&scratch.0, store_config).expect("reopen scratch store");
        let resumed = StreamingRunner::resume(recovered.checkpoint.expect("installed"));
        let live = &once.runner;
        resumed.batches_ingested() == batches
            && resumed.timeline() == live.timeline()
            && resumed.timeline_digest() == live.timeline_digest()
            && resumed.partitioner().graph() == live.partitioner().graph()
            && resumed.partitioner().partitioning() == live.partitioner().partitioning()
    })
}

/// Checks the O(window) size contract: at the same stream position a
/// window-bounded checkpoint must be strictly smaller than the unbounded
/// one, and the saving must widen as the stream (and with it the evicted
/// prefix) grows.
fn check_window_growth(subscribers: usize, batches: usize, seed: u64) -> bool {
    let window = 2usize;
    let short = batches / 2;
    let size_at = |window: usize, upto: usize| -> usize {
        let config = CdrConfig {
            initial_subscribers: subscribers,
            ..CdrConfig::default()
        };
        let graph = DynGraph::with_vertices(subscribers);
        let cfg = AdaptiveConfig::new(K);
        let partitioner =
            AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, &cfg, seed);
        let mut runner = StreamingRunner::new(partitioner)
            .iterations_per_batch(ITERS_PER_BATCH)
            .timeline_window(window);
        let mut source = CdrStream::new(config, seed);
        for _ in 0..upto {
            let batch = source.next_batch().expect("CDR stream is open-ended");
            runner.ingest(&batch);
        }
        runner.checkpoint().to_bytes().len()
    };
    let win_short = size_at(window, short);
    let win_long = size_at(window, batches);
    let unb_short = size_at(usize::MAX, short);
    let unb_long = size_at(usize::MAX, batches);
    // Graph bytes cancel between same-position pairs, so the comparisons
    // isolate the timeline term: bounded is smaller, and grows slower.
    win_short < unb_short
        && win_long < unb_long
        && (unb_long - win_long) > (unb_short - win_short)
        && (win_long.saturating_sub(win_short)) < (unb_long - unb_short)
}

/// Median of a sample set; 0 when empty (the baseline row has no paired
/// deltas).
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Runs the cadence sweep.
pub fn run(scale: Scale, reps: usize, seed: u64) -> PersistResult {
    let subscribers = cdr_subscribers(scale);
    let batches = batches_for(scale);
    let reps = reps.max(1);
    let cadences: [Option<usize>; 4] = [None, Some(8), Some(4), Some(1)];

    let mut rows = Vec::new();
    for snapshot_every in cadences {
        let mut samples = Vec::with_capacity(reps);
        let mut paired_deltas = Vec::with_capacity(reps);
        let mut last: Option<(Option<StreamCheckpoint>, StreamingRunner)> = None;
        for _ in 0..reps {
            // Each cadence rep is paired with its own baseline rep run
            // back-to-back, so the overhead delta sees the same machine
            // state on both sides. Comparing against a single baseline
            // measured minutes earlier reported *negative* overhead
            // whenever the host warmed up in between.
            if snapshot_every.is_some() {
                let (base_ms, _, _) = run_once(subscribers, batches, None, seed);
                let (ms, ckpt, runner) = run_once(subscribers, batches, snapshot_every, seed);
                if base_ms > 0.0 {
                    paired_deltas.push(100.0 * (ms - base_ms) / base_ms);
                }
                samples.push(ms);
                last = Some((ckpt, runner));
            } else {
                let (ms, ckpt, runner) = run_once(subscribers, batches, None, seed);
                samples.push(ms);
                last = Some((ckpt, runner));
            }
        }
        let wall = WallStats::from_samples(&samples);
        let overhead_pct = median(&paired_deltas);

        let (ckpt, runner) = last.expect("reps >= 1");
        let row = match ckpt {
            None => PersistRow {
                snapshot_every,
                batches,
                snapshots: 0,
                wall_ms: wall,
                overhead_pct,
                checkpoint_bytes: 0,
                tail_batches: 0,
                encode_ms: 0.0,
                decode_ms: 0.0,
                resume_ms: 0.0,
                resume_matches: true,
            },
            Some(ckpt) => {
                let every = snapshot_every.expect("checkpoint implies cadence");
                let t = Instant::now();
                let bytes = ckpt.to_bytes();
                let encode_ms = t.elapsed().as_secs_f64() * 1e3;
                let t = Instant::now();
                let decoded = StreamCheckpoint::from_bytes(&bytes).expect("self-written bytes");
                let decode_ms = t.elapsed().as_secs_f64() * 1e3;
                let t = Instant::now();
                let resumed = StreamingRunner::resume(decoded);
                let resume_ms = t.elapsed().as_secs_f64() * 1e3;
                PersistRow {
                    snapshot_every,
                    batches,
                    snapshots: batches / every,
                    wall_ms: wall,
                    overhead_pct,
                    checkpoint_bytes: bytes.len(),
                    tail_batches: ckpt.tail.len(),
                    encode_ms,
                    decode_ms,
                    resume_ms,
                    resume_matches: resumed.timeline() == runner.timeline()
                        && resumed.partitioner().graph() == runner.partitioner().graph()
                        && resumed.partitioner().partitioning()
                            == runner.partitioner().partitioning(),
                }
            }
        };
        rows.push(row);
    }

    let durable_rows = run_durable(subscribers, batches, reps, seed);
    let window_growth_ok = check_window_growth(subscribers, batches, seed);
    let incremental_equals_full = check_incremental_equals_full(subscribers, batches, seed);

    PersistResult {
        scale: scale.name(),
        threads_available: apg_exec::available_parallelism(),
        reps,
        subscribers,
        batches,
        fsync: true,
        segment_rotate_bytes: SEGMENT_ROTATE_BYTES,
        rows,
        durable_rows,
        window_growth_ok,
        incremental_equals_full,
    }
}

/// Serialises the result as JSON (hand-rolled: the vendored `serde`
/// carries no data model — the real codec in this workspace is binary, and
/// lives in `apg-persist`).
pub fn to_json(result: &PersistResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"experiment\": \"checkpoint-overhead\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\", \"threads_available\": {},\n",
        result.scale, result.threads_available
    ));
    out.push_str(&format!(
        "  \"reps\": {}, \"subscribers\": {}, \"batches\": {}, \"k\": {}, \
         \"iterations_per_batch\": {},\n",
        result.reps, result.subscribers, result.batches, K, ITERS_PER_BATCH
    ));
    out.push_str(&format!(
        "  \"fsync\": {}, \"segment_rotate_bytes\": {},\n",
        result.fsync, result.segment_rotate_bytes
    ));
    out.push_str(&format!(
        "  \"all_resumes_match\": {}, \"window_growth_ok\": {}, \
         \"incremental_equals_full\": {}, \"recovery_ok\": {},\n",
        result.all_resumes_match(),
        result.window_growth_ok,
        result.incremental_equals_full,
        result.recovery_ok()
    ));
    out.push_str("  \"rows\": [\n");
    for (i, row) in result.rows.iter().enumerate() {
        let cadence = match row.snapshot_every {
            None => "null".to_string(),
            Some(n) => n.to_string(),
        };
        out.push_str(&format!(
            "    {{\"snapshot_every\": {}, \"snapshots\": {}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"overhead_pct\": {:.2}, \"checkpoint_bytes\": {}, \
             \"tail_batches\": {}, \"encode_ms\": {:.3}, \"decode_ms\": {:.3}, \
             \"resume_ms\": {:.3}, \"resume_matches\": {}}}{}\n",
            cadence,
            row.snapshots,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            row.overhead_pct,
            row.checkpoint_bytes,
            row.tail_batches,
            row.encode_ms,
            row.decode_ms,
            row.resume_ms,
            row.resume_matches,
            if i + 1 < result.rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"durable_rows\": [\n");
    for (i, row) in result.durable_rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"snapshot_every\": {}, \"installs\": {}, \
             \"incremental_installs\": {}, \"delta_bytes_ratio\": {:.4}, \
             \"wall_ms\": {{\"mean\": {:.3}, \"min\": {:.3}, \"median\": {:.3}}}, \
             \"install_ms_mean\": {:.3}, \"append_ms_mean\": {:.3}, \
             \"live_bytes\": {}, \"recovered_batches\": {}, \
             \"recovery_matches\": {}}}{}\n",
            row.snapshot_every,
            row.installs,
            row.incremental_installs,
            row.delta_bytes_ratio,
            row.wall_ms.mean,
            row.wall_ms.min,
            row.wall_ms.median,
            row.install_ms_mean,
            row.append_ms_mean,
            row.live_bytes,
            row.recovered_batches,
            row.recovery_matches,
            if i + 1 < result.durable_rows.len() {
                ","
            } else {
                ""
            },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Prints the cadence table.
pub fn print(result: &PersistResult) {
    println!(
        "Checkpoint overhead: CDR stream, {} subscribers, {} batches, {} reps",
        result.subscribers, result.batches, result.reps
    );
    println!(
        "{:>14} {:>10} {:>11} {:>9} {:>11} {:>10} {:>10} {:>10} {:>7}",
        "cadence",
        "snapshots",
        "median ms",
        "over %",
        "ckpt bytes",
        "encode ms",
        "decode ms",
        "resume ms",
        "match"
    );
    for row in &result.rows {
        let cadence = match row.snapshot_every {
            None => "off".to_string(),
            Some(n) => format!("every {n}"),
        };
        println!(
            "{:>14} {:>10} {:>11.1} {:>9.2} {:>11} {:>10.3} {:>10.3} {:>10.3} {:>7}",
            cadence,
            row.snapshots,
            row.wall_ms.median,
            row.overhead_pct,
            row.checkpoint_bytes,
            row.encode_ms,
            row.decode_ms,
            row.resume_ms,
            row.resume_matches,
        );
    }
    println!(
        "File-backed (fsync on, {} KiB rotation):",
        result.segment_rotate_bytes >> 10
    );
    println!(
        "{:>14} {:>9} {:>6} {:>7} {:>11} {:>11} {:>11} {:>11} {:>10} {:>7}",
        "cadence",
        "installs",
        "incr",
        "ratio",
        "median ms",
        "install ms",
        "append ms",
        "live bytes",
        "recovered",
        "match"
    );
    for row in &result.durable_rows {
        println!(
            "{:>14} {:>9} {:>6} {:>7.3} {:>11.1} {:>11.3} {:>11.3} {:>11} {:>10} {:>7}",
            format!("every {}", row.snapshot_every),
            row.installs,
            row.incremental_installs,
            row.delta_bytes_ratio,
            row.wall_ms.median,
            row.install_ms_mean,
            row.append_ms_mean,
            row.live_bytes,
            row.recovered_batches,
            row.recovery_matches,
        );
    }
    println!("window_growth_ok={}", result.window_growth_ok);
    println!("incremental_equals_full={}", result.incremental_equals_full);
    println!("recovery_ok={}", result.recovery_ok());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_resumes_match() {
        let result = run(Scale::Tiny, 1, 5);
        assert_eq!(result.rows.len(), 4);
        assert!(result.all_resumes_match());
        assert!(
            result.rows[0].checkpoint_bytes == 0,
            "baseline writes nothing"
        );
        assert!(
            result.rows.iter().skip(1).all(|r| r.checkpoint_bytes > 0),
            "checkpointing rows must serialise something"
        );
        // A fresh snapshot at each cadence empties the tail, so what is
        // left at the end is exactly the batches since the last snapshot.
        for row in result.rows.iter().skip(1) {
            assert_eq!(
                row.tail_batches,
                result.batches % row.snapshot_every.unwrap()
            );
        }
        assert_eq!(result.durable_rows.len(), 4);
        for row in &result.durable_rows {
            assert!(row.recovery_matches, "cold recovery diverged");
            assert_eq!(row.recovered_batches, result.batches);
            assert!(row.live_bytes > 0);
            assert!(row.installs >= 1);
            assert!(
                row.incremental_installs < row.installs,
                "the first install can never be incremental"
            );
            if row.incremental_installs > 0 {
                assert!(
                    row.delta_bytes_ratio > 0.0 && row.delta_bytes_ratio < 1.0,
                    "deltas must be strictly smaller than full snapshots, got ratio {}",
                    row.delta_bytes_ratio
                );
            }
        }
        assert!(
            result
                .durable_rows
                .iter()
                .any(|r| r.incremental_installs > 0),
            "at least one cadence must exercise the delta chain"
        );
        assert!(result.window_growth_ok, "O(window) size contract broken");
        assert!(
            result.incremental_equals_full,
            "delta-chain recovery diverged from the full-snapshot path"
        );
        assert!(result.recovery_ok());
        let json = to_json(&result);
        assert!(json.contains("\"experiment\": \"checkpoint-overhead\""));
        assert!(json.contains("\"all_resumes_match\": true"));
        assert!(json.contains("\"incremental_equals_full\": true"));
        assert!(json.contains("\"delta_bytes_ratio\""));
        assert!(json.contains("\"recovery_ok\": true"));
        assert!(json.contains("\"durable_rows\""));
    }
}
