//! Figure 6: scalability — cut ratio and convergence time as graphs grow
//! (mesh and power-law families, 9 partitions, s = 0.5).

use apg_core::{mean_and_sem, AdaptiveConfig, AdaptivePartitioner, Summary};
use apg_graph::gen;
use apg_partition::InitialStrategy;

use crate::Scale;

/// Measurements for one family at one size.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Vertex count.
    pub n: usize,
    /// Final cut ratio.
    pub cut_ratio: Summary,
    /// Convergence time in iterations.
    pub convergence_time: Summary,
}

/// The paper's Figure 6 sizes.
pub fn sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Paper | Scale::Xl => &[1000, 3000, 9900, 29700, 99000, 300_000],
        Scale::Quick => &[1000, 3000, 9900],
        Scale::Tiny => &[1000, 3000],
    }
}

/// Runs the mesh family (rectangular 3-D grids at each size).
pub fn run_mesh(scale: Scale, reps: usize, seed: u64) -> Vec<ScalePoint> {
    sizes(scale)
        .iter()
        .map(|&n| {
            let (a, b, c) = gen::rect_mesh_dims(n);
            let graph = gen::mesh3d(a, b, c);
            measure(&graph, n, reps, seed)
        })
        .collect()
}

/// Runs the power-law family (`m = log2-ish` for the paper's
/// `D = log |V|` average degree, triad probability 0.1).
pub fn run_powerlaw(scale: Scale, reps: usize, seed: u64) -> Vec<ScalePoint> {
    sizes(scale)
        .iter()
        .map(|&n| {
            // Average degree D = ln(n) => m = D / 2.
            let m = (((n as f64).ln()) / 2.0).round().max(2.0) as usize;
            let graph = gen::holme_kim(n, m, 0.1, seed);
            measure(&graph, n, reps, seed)
        })
        .collect()
}

fn measure(graph: &apg_graph::CsrGraph, n: usize, reps: usize, seed: u64) -> ScalePoint {
    let mut cuts = Vec::with_capacity(reps);
    let mut conv = Vec::with_capacity(reps);
    for rep in 0..reps {
        let cfg = AdaptiveConfig::new(9).willingness(0.5).max_iterations(800);
        let mut p = AdaptivePartitioner::with_strategy(
            graph,
            InitialStrategy::Hash,
            &cfg,
            seed.wrapping_add(rep as u64 * 613),
        );
        let report = p.run_to_convergence();
        cuts.push(report.final_cut_ratio());
        conv.push(report.convergence_time() as f64);
    }
    ScalePoint {
        n,
        cut_ratio: mean_and_sem(&cuts),
        convergence_time: mean_and_sem(&conv),
    }
}

/// Prints both families side by side, as in the paper's dual-axis plot.
pub fn print(mesh: &[ScalePoint], plaw: &[ScalePoint]) {
    println!("Figure 6: scalability (9 partitions, s = 0.5)");
    println!(
        "{:>8} | {:>18} {:>18} | {:>18} {:>18}",
        "|V|", "mesh cut", "mesh conv", "plaw cut", "plaw conv"
    );
    for (m, p) in mesh.iter().zip(plaw) {
        println!(
            "{:>8} | {:>10.4} ±{:<5.4} {:>12.1} ±{:<4.1} | {:>10.4} ±{:<5.4} {:>12.1} ±{:<4.1}",
            m.n,
            m.cut_ratio.mean,
            m.cut_ratio.sem,
            m.convergence_time.mean,
            m.convergence_time.sem,
            p.cut_ratio.mean,
            p.cut_ratio.sem,
            p.convergence_time.mean,
            p.convergence_time.sem,
        );
    }
}
