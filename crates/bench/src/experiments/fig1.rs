//! Figure 1: effect of the willingness-to-move `s` on convergence time and
//! cut ratio (64kcube and epinions, 9 partitions, 10 repetitions).

use apg_core::{mean_and_sem, AdaptiveConfig, AdaptivePartitioner, Summary};
use apg_graph::CsrGraph;
use apg_partition::InitialStrategy;

/// One point of the Figure 1 series.
#[derive(Debug, Clone)]
pub struct SPoint {
    /// Willingness to move.
    pub s: f64,
    /// Convergence time in iterations (mean ± SEM over reps).
    pub convergence_time: Summary,
    /// Final cut ratio (mean ± SEM over reps).
    pub cut_ratio: Summary,
}

/// The s values the paper sweeps (0 would never migrate; 1 has no damping).
pub const S_VALUES: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Sweeps `s` on one graph with `k = 9` partitions.
pub fn sweep(graph: &CsrGraph, s_values: &[f64], reps: usize, seed: u64) -> Vec<SPoint> {
    s_values
        .iter()
        .map(|&s| {
            let mut conv = Vec::with_capacity(reps);
            let mut cuts = Vec::with_capacity(reps);
            for rep in 0..reps {
                let cfg = AdaptiveConfig::new(9).willingness(s).max_iterations(800);
                let mut p = AdaptivePartitioner::with_strategy(
                    graph,
                    InitialStrategy::Hash,
                    &cfg,
                    seed.wrapping_add(rep as u64 * 7919),
                );
                let report = p.run_to_convergence();
                conv.push(report.convergence_time() as f64);
                cuts.push(report.final_cut_ratio());
            }
            SPoint {
                s,
                convergence_time: mean_and_sem(&conv),
                cut_ratio: mean_and_sem(&cuts),
            }
        })
        .collect()
}

/// Prints one graph's series in the paper's two-axis layout.
pub fn print(name: &str, points: &[SPoint]) {
    println!("Figure 1 ({name}): willingness to move vs convergence time / cut ratio");
    println!(
        "{:>5} {:>22} {:>22}",
        "s", "convergence (iters)", "cut ratio"
    );
    for p in points {
        println!(
            "{:>5.1} {:>14.1} ± {:<5.1} {:>14.4} ± {:<6.4}",
            p.s, p.convergence_time.mean, p.convergence_time.sem, p.cut_ratio.mean, p.cut_ratio.sem
        );
    }
}
