//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§4).
//!
//! Each experiment lives in [`experiments`] as a pure function from
//! parameters to result rows, shared by three consumers:
//!
//! * the `fig*`/`table1` binaries (`cargo run -p apg-bench --release --bin fig1`),
//!   which print the series the paper plots;
//! * the Criterion benches (`cargo bench`), which run scaled-down versions;
//! * the integration tests, which assert the paper's *qualitative* claims
//!   (who wins, by roughly what factor).
//!
//! Absolute numbers differ from the paper — their substrate was a 63-blade
//! cluster, ours is a simulator with an explicit cost model — but the shape
//! of every curve is expected to hold. `EXPERIMENTS.md` records
//! paper-vs-measured for each figure.

pub mod experiments;
pub mod scale;

pub use scale::Scale;
