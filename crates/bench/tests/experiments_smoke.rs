//! Tiny-scale runs of every experiment driver, asserting the paper's
//! qualitative outcomes end-to-end (generator -> engine -> metrics).

use apg_bench::experiments::{fig1, fig4, fig5, fig6, fig7, fig8, fig9, table1};
use apg_bench::Scale;

#[test]
fn table1_rows_match_paper_inventory() {
    let rows = table1::run(Scale::Tiny, 1);
    assert!(!rows.is_empty());
    for r in &rows {
        let dv = (r.built_v as f64 - r.paper_v as f64).abs() / r.paper_v as f64;
        assert!(dv < 0.01, "{}: |V| off by {dv}", r.name);
        assert!(r.built_e > 0);
    }
}

#[test]
fn fig1_sweep_produces_monotone_series_ends() {
    let graph = apg_graph::gen::mesh3d(12, 12, 12);
    let points = fig1::sweep(&graph, &[0.1, 0.8], 3, 3);
    assert_eq!(points.len(), 2);
    assert!(
        points[0].convergence_time.mean > 1.5 * points[1].convergence_time.mean,
        "s = 0.1 ({} iters) must converge much more slowly than s = 0.8 ({} iters)",
        points[0].convergence_time.mean,
        points[1].convergence_time.mean
    );
}

#[test]
fn fig4_iterative_improves_hash_and_metis_wins_meshes() {
    let graph = apg_graph::gen::mesh3d(8, 8, 8);
    let rows = fig4::run(&graph, 1, 3);
    let hash = rows
        .iter()
        .find(|r| r.strategy.label() == "HSH")
        .expect("HSH row");
    assert!(hash.initial.mean - hash.iterative.mean > 0.2);
    let metis = fig4::metis_baseline(&graph, 3);
    assert!(metis < hash.iterative.mean);
}

#[test]
fn fig5_covers_both_graph_families() {
    let rows = fig5::run(Scale::Tiny, 1, 5);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.cuts.len(), 4);
        for (s, summary) in &row.cuts {
            assert!(
                summary.mean > 0.0 && summary.mean <= 1.0,
                "{}/{s}: cut {}",
                row.graph,
                summary.mean
            );
        }
    }
}

#[test]
fn fig6_mesh_cut_stays_flat() {
    let mesh = fig6::run_mesh(Scale::Tiny, 1, 7);
    assert_eq!(mesh.len(), 2);
    assert!(
        (mesh[0].cut_ratio.mean - mesh[1].cut_ratio.mean).abs() < 0.1,
        "mesh cut ratio should be roughly size-independent"
    );
}

#[test]
fn fig7_phases_have_the_papers_shape() {
    let result = fig7::run(Scale::Tiny, 5);
    let a = &result.phase_a;
    assert!(a.len() > 10);
    // Cuts drop markedly from the hash start.
    let first = a.first().unwrap().cut_edges as f64;
    let last = a.last().unwrap().cut_edges as f64;
    assert!(last < 0.65 * first, "phase a cuts {first} -> {last}");
    // Migration activity decays to zero (convergence).
    assert_eq!(a.last().unwrap().migrations, 0);
    // Time spikes early (migration burst) then lands below the hash baseline.
    let peak = a.iter().map(|p| p.time_norm).fold(0.0f64, f64::max);
    assert!(peak > 1.5, "no migration spike: peak x{peak}");
    assert!(
        a.last().unwrap().time_norm < 1.0,
        "no speedup at convergence"
    );
    // Phase b: the burst is absorbed back to similar cut levels.
    let b = &result.phase_b;
    assert!(b.last().unwrap().cut_edges as f64 <= b.first().unwrap().cut_edges as f64);
}

#[test]
fn fig8_adaptive_beats_hash_by_the_evening() {
    let points = fig8::run(Scale::Tiny, 5);
    let evening = points.last().unwrap();
    assert!(
        evening.hash_time > 1.3 * evening.adaptive_time,
        "adaptive should clearly win by day end: hash {} vs adaptive {}",
        evening.hash_time,
        evening.adaptive_time
    );
}

#[test]
fn fig9_dynamic_dominates_static() {
    let weeks = fig9::run(Scale::Tiny, 5);
    assert_eq!(weeks.len(), 4);
    for w in &weeks {
        assert!(
            w.dynamic_cut < 0.7 * w.static_cut,
            "week {}: dynamic cut {} vs static {}",
            w.week,
            w.dynamic_cut,
            w.static_cut
        );
    }
    let last = weeks.last().unwrap();
    assert!(
        last.dynamic_time.mean < 0.8 * last.static_time.mean,
        "dynamic {} should beat static {} on time",
        last.dynamic_time.mean,
        last.static_time.mean
    );
}
