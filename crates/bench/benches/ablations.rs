//! Ablations over the design choices DESIGN.md calls out: the capacity
//! quota rule, the stay-preference/self-count tie handling, the willingness
//! constant, and the edge-balanced capacity extension. Criterion measures
//! the runtime cost of each variant; the quality comparison table comes
//! from `cargo run -p apg-bench --bin ablation`.

use criterion::{criterion_group, criterion_main, Criterion};

use apg_core::{AdaptiveConfig, AdaptivePartitioner, QuotaRule};
use apg_graph::gen;
use apg_partition::InitialStrategy;

fn run_40(cfg: &AdaptiveConfig, seed: u64) -> f64 {
    let graph = gen::mesh3d(12, 12, 12);
    let mut p = AdaptivePartitioner::with_strategy(&graph, InitialStrategy::Hash, cfg, seed);
    p.run_for(40);
    p.cut_ratio()
}

fn bench_quota_rule(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_quota_rule");
    g.sample_size(10);
    g.bench_function("per_source_split", |b| {
        let cfg = AdaptiveConfig::new(9).quota_rule(QuotaRule::PerSourceSplit);
        b.iter(|| run_40(&cfg, 1));
    });
    g.bench_function("unbounded", |b| {
        let cfg = AdaptiveConfig::new(9).quota_rule(QuotaRule::Unbounded);
        b.iter(|| run_40(&cfg, 1));
    });
    g.finish();
}

fn bench_count_self(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_count_self");
    g.sample_size(10);
    g.bench_function("neighbours_only", |b| {
        let cfg = AdaptiveConfig::new(9).count_self(false);
        b.iter(|| run_40(&cfg, 2));
    });
    g.bench_function("gamma_includes_self", |b| {
        let cfg = AdaptiveConfig::new(9).count_self(true);
        b.iter(|| run_40(&cfg, 2));
    });
    g.finish();
}

fn bench_willingness(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_willingness");
    g.sample_size(10);
    for s in [0.2, 0.5, 0.9] {
        g.bench_function(format!("s_{s}"), |b| {
            let cfg = AdaptiveConfig::new(9).willingness(s);
            b.iter(|| run_40(&cfg, 3));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_quota_rule,
    bench_count_self,
    bench_willingness
);
criterion_main!(benches);
