//! One Criterion bench per table/figure: scaled-down versions of the exact
//! pipelines the `fig*` binaries run, so regressions in any experiment's
//! end-to-end cost are caught.

use criterion::{criterion_group, criterion_main, Criterion};

use apg_bench::experiments::{fig1, fig4, fig6, fig7, fig8, fig9, table1};
use apg_bench::Scale;
use apg_graph::gen;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("build_and_measure_tiny", |b| {
        b.iter(|| table1::run(Scale::Tiny, 1));
    });
    g.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    let graph = gen::mesh3d(10, 10, 10);
    g.bench_function("sweep_one_s", |b| {
        b.iter(|| fig1::sweep(&graph, &[0.5], 1, 3));
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let graph = gen::mesh3d(10, 10, 10);
    g.bench_function("all_strategies_one_rep", |b| {
        b.iter(|| fig4::run(&graph, 1, 3));
    });
    g.bench_function("metis_baseline", |b| {
        b.iter(|| fig4::metis_baseline(&graph, 3));
    });
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("smallest_graph_grid", |b| {
        // One small dataset, one rep, across the four strategies.
        let graph = gen::mesh2d_tri(30, 40);
        b.iter(|| fig4::run(&graph, 1, 5));
    });
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("mesh_1000_point", |b| {
        b.iter(|| fig6::run_mesh(Scale::Tiny, 1, 7));
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    g.bench_function("tiny_phases", |b| {
        b.iter(|| fig7::run(Scale::Tiny, 5));
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("tiny_day", |b| {
        b.iter(|| fig8::run(Scale::Tiny, 5));
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("tiny_month", |b| {
        b.iter(|| fig9::run(Scale::Tiny, 5));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig1,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9
);
criterion_main!(benches);
