//! Micro-benchmarks of the hot paths: the per-vertex decision kernel, quota
//! accounting, whole iterations of the logical partitioner, the METIS-like
//! baseline, and graph construction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use apg_core::{AdaptiveConfig, AdaptivePartitioner, DecisionKernel, QuotaRule, QuotaTable};
use apg_graph::gen;
use apg_graph::{DynGraph, Graph, VertexId};
use apg_partition::{CapacityModel, InitialStrategy};

fn bench_decision_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("decision_kernel");
    for degree in [6usize, 32, 256] {
        let neighbors: Vec<u16> = (0..degree).map(|i| (i % 9) as u16).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(degree),
            &neighbors,
            |b, nbrs| {
                let mut kernel = DecisionKernel::new(9, false);
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| kernel.decide(black_box(0), nbrs.iter().copied(), &mut rng));
            },
        );
    }
    group.finish();
}

fn bench_quota_table(c: &mut Criterion) {
    let remaining: Vec<usize> = (0..64).map(|i| 100 + i).collect();
    c.bench_function("quota_table_build_k64", |b| {
        b.iter(|| QuotaTable::new(QuotaRule::PerSourceSplit, black_box(&remaining)));
    });
    c.bench_function("quota_consume", |b| {
        let mut q = QuotaTable::new(QuotaRule::PerSourceSplit, &remaining);
        b.iter(|| q.try_consume(black_box(3), black_box(7)));
    });
}

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner_iterate");
    group.sample_size(10);
    for side in [10usize, 20] {
        let graph = gen::mesh3d(side, side, side);
        group.bench_with_input(
            BenchmarkId::new("mesh", side * side * side),
            &graph,
            |b, g| {
                let cfg = AdaptiveConfig::new(9);
                let mut p = AdaptivePartitioner::with_strategy(g, InitialStrategy::Hash, &cfg, 1);
                b.iter(|| p.iterate());
            },
        );
    }
    group.finish();
}

fn bench_metis(c: &mut Criterion) {
    let mut group = c.benchmark_group("metis_partition");
    group.sample_size(10);
    let graph = gen::mesh3d(12, 12, 12);
    group.bench_function("mesh_1728_k9", |b| {
        b.iter(|| apg_metis::partition(black_box(&graph), 9, 1.10, 3));
    });
    group.finish();
}

fn bench_graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    group.sample_size(10);
    group.bench_function("mesh3d_27k", |b| b.iter(|| gen::mesh3d(30, 30, 30)));
    group.bench_function("holme_kim_10k", |b| {
        b.iter(|| gen::holme_kim(10_000, 5, 0.1, 7))
    });
    group.finish();
}

fn bench_cut_metrics(c: &mut Criterion) {
    let graph = gen::mesh3d(20, 20, 20);
    let caps = CapacityModel::vertex_balanced(8000, 9, 1.10);
    let p = InitialStrategy::Hash.assign(&graph, &caps, 1);
    c.bench_function("cut_edges_8k_mesh", |b| {
        b.iter(|| apg_partition::cut_edges(black_box(&graph), black_box(&p)));
    });
}

fn bench_initial_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("initial_strategies");
    group.sample_size(10);
    let graph = gen::mesh3d(16, 16, 16);
    let caps = CapacityModel::vertex_balanced(4096, 9, 1.10);
    for s in InitialStrategy::ALL {
        group.bench_function(s.label(), |b| {
            b.iter(|| s.assign(black_box(&graph), &caps, 5));
        });
    }
    group.finish();
}

/// Neighbor-scan throughput: the slab-backed `DynGraph` adjacency versus
/// the boxed `Vec<Vec<_>>` layout it replaced. Sequential sweeps measure
/// the decision-sweep access pattern (every list, ascending slot order);
/// random-access sweeps measure the serving/apply pattern where vertex
/// order is unpredictable and per-list pointer chasing dominates.
fn bench_neighbor_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighbor_scan");
    group.sample_size(10);
    let n = 100_000usize;
    let csr = gen::holme_kim(n, 8, 0.1, 11);
    let boxed: Vec<Vec<VertexId>> = (0..n)
        .map(|v| csr.neighbors(v as VertexId).to_vec())
        .collect();
    let slab = DynGraph::from(&csr);
    // A fixed pseudo-random visit order: stride 48271 is coprime to n, so
    // the sequence is a permutation of 0..n with no cache-friendly runs.
    let shuffled: Vec<usize> = (0..n).map(|i| (i * 48271) % n).collect();

    group.bench_function("sequential_boxed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for list in &boxed {
                for &w in list {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("sequential_slab", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for v in 0..n as VertexId {
                for &w in slab.neighbors(v) {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("random_boxed", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &shuffled {
                for &w in &boxed[v] {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("random_slab", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &shuffled {
                for &w in slab.neighbors(v as VertexId) {
                    acc = acc.wrapping_add(u64::from(w));
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_neighbor_scan,
    bench_decision_kernel,
    bench_quota_table,
    bench_iterate,
    bench_metis,
    bench_graph_construction,
    bench_cut_metrics,
    bench_initial_strategies
);
criterion_main!(benches);
