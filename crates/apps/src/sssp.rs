//! Single-source shortest paths (hop distance), with a min-combiner.
//!
//! Not part of the paper's evaluation, but the canonical Pregel workload —
//! used here to exercise the engine's combiner support and as a fourth
//! example application.

use apg_graph::VertexId;
use apg_pregel::{Context, VertexProgram};

/// Distance from the source; `UNREACHED` until a path arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Distance(pub u32);

impl Distance {
    /// No path known yet.
    pub const UNREACHED: Distance = Distance(u32::MAX);
}

impl Default for Distance {
    fn default() -> Self {
        Distance::UNREACHED
    }
}

/// Breadth-first shortest paths from a fixed source vertex.
///
/// Messages carry candidate distances; the min-combiner collapses them at
/// the sending worker, which on high-degree graphs removes most traffic.
#[derive(Debug, Clone, Copy)]
pub struct Sssp {
    source: VertexId,
}

impl Sssp {
    /// Shortest paths from `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }
}

impl VertexProgram for Sssp {
    type Value = Distance;
    type Message = u32;

    fn compute(&self, ctx: &mut Context<'_, '_, Distance, u32>, messages: &[u32]) {
        let mut best = ctx.value().0;
        if ctx.superstep() == 0 && ctx.id() == self.source {
            best = 0;
        }
        for &m in messages {
            best = best.min(m);
        }
        if best < ctx.value().0 {
            *ctx.value_mut() = Distance(best);
            ctx.send_to_neighbors(best.saturating_add(1));
        } else if ctx.superstep() == 0 && ctx.id() == self.source {
            // Source with distance already 0 (restart case): re-announce.
            ctx.send_to_neighbors(1);
        }
        ctx.vote_to_halt();
    }

    fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
        Some(*a.min(b))
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{algo, gen, Graph};
    use apg_pregel::EngineBuilder;

    #[test]
    fn distances_match_bfs() {
        let g = gen::mesh3d(5, 5, 5);
        let mut e = EngineBuilder::new(4).build(&g, Sssp::new(0));
        e.run_until_halt(40);
        let reference = algo::bfs_distances(&g, 0);
        for v in g.vertices() {
            assert_eq!(
                e.vertex_value(v).unwrap().0,
                reference[v as usize],
                "vertex {v}"
            );
        }
    }

    #[test]
    fn unreachable_stays_unreached() {
        let g = apg_graph::CsrGraph::from_edges(4, &[(0, 1)]);
        let mut e = EngineBuilder::new(2).build(&g, Sssp::new(0));
        e.run_until_halt(10);
        assert_eq!(e.vertex_value(3), Some(&Distance::UNREACHED));
    }

    #[test]
    fn combiner_cuts_message_volume() {
        // Star graph: many frontier vertices message the same hub.
        let hub_edges: Vec<(u32, u32)> = (1..200u32).map(|v| (0, v)).collect();
        let g = apg_graph::CsrGraph::from_edges(200, &hub_edges);
        let mut e = EngineBuilder::new(2).build(&g, Sssp::new(1));
        let reports = e.run_until_halt(10);
        // Superstep 1: the hub (distance 1) floods 199 leaves; superstep 2:
        // 198 leaves all message the hub back with candidate 3 — combined,
        // the hub-bound traffic collapses to at most one message per worker.
        let step2 = &reports[2];
        assert!(
            step2.messages_local + step2.messages_remote <= 4,
            "combiner failed: {} messages",
            step2.messages_local + step2.messages_remote
        );
    }

    #[test]
    fn works_under_adaptive_migration() {
        use apg_core::AdaptiveConfig;
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4)
            .adaptive(AdaptiveConfig::new(4).willingness(1.0))
            .seed(9)
            .build(&g, Sssp::new(0));
        e.run_until_halt(40);
        let reference = algo::bfs_distances(&g, 0);
        for v in g.vertices() {
            assert_eq!(e.vertex_value(v).unwrap().0, reference[v as usize]);
        }
    }
}
