//! Synchronous label propagation (Raghavan et al.), the community-detection
//! family the paper's related work contrasts with (§5: community detection
//! "does not focus on finding balanced partitions" and is highly sensitive
//! to graph changes — claims the tests below make observable).

use apg_graph::VertexId;
use apg_pregel::{Context, VertexProgram};

/// A community label; starts as the vertex's own id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Community(pub VertexId);

impl Community {
    /// Not yet initialised.
    pub const UNSET: Community = Community(VertexId::MAX);
}

impl Default for Community {
    fn default() -> Self {
        Community::UNSET
    }
}

/// Synchronous label propagation: every round, each vertex adopts the most
/// frequent label among its neighbours (lowest label id breaking ties, for
/// determinism), for a fixed number of rounds.
///
/// Unlike the adaptive partitioner this produces *communities* — groups
/// denser inside than outside — with no balance guarantee whatsoever,
/// which is exactly the contrast the paper draws in §5.
#[derive(Debug, Clone, Copy)]
pub struct LabelPropagation {
    rounds: usize,
}

impl LabelPropagation {
    /// Label propagation for `rounds` synchronous rounds.
    pub fn new(rounds: usize) -> Self {
        LabelPropagation { rounds }
    }
}

impl VertexProgram for LabelPropagation {
    type Value = Community;
    type Message = VertexId;

    fn compute(&self, ctx: &mut Context<'_, '_, Community, VertexId>, messages: &[VertexId]) {
        if *ctx.value() == Community::UNSET {
            *ctx.value_mut() = Community(ctx.id());
        }
        if ctx.superstep() > 0 && !messages.is_empty() {
            // Most frequent incoming label; ties -> smallest label.
            let mut sorted = messages.to_vec();
            sorted.sort_unstable();
            let (mut best_label, mut best_count) = (sorted[0], 0usize);
            let mut i = 0;
            while i < sorted.len() {
                let mut j = i;
                while j < sorted.len() && sorted[j] == sorted[i] {
                    j += 1;
                }
                if j - i > best_count {
                    best_count = j - i;
                    best_label = sorted[i];
                }
                i = j;
            }
            *ctx.value_mut() = Community(best_label);
        }
        if ctx.superstep() < self.rounds {
            ctx.send_to_neighbors(ctx.value().0);
        } else {
            ctx.vote_to_halt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::CsrGraph;
    use apg_pregel::EngineBuilder;

    /// Two 5-cliques joined by a single bridge edge.
    fn two_cliques() -> CsrGraph {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                edges.push((a, b));
                edges.push((a + 5, b + 5));
            }
        }
        edges.push((4, 5)); // bridge
        CsrGraph::from_edges(10, &edges)
    }

    #[test]
    fn cliques_form_distinct_communities() {
        let g = two_cliques();
        let mut e = EngineBuilder::new(2).build(&g, LabelPropagation::new(8));
        e.run_until_halt(12);
        let left = *e.vertex_value(0).unwrap();
        let right = *e.vertex_value(9).unwrap();
        for v in 0..5 {
            assert_eq!(*e.vertex_value(v).unwrap(), left, "vertex {v}");
        }
        for v in 6..10 {
            assert_eq!(*e.vertex_value(v).unwrap(), right, "vertex {v}");
        }
        assert_ne!(left, right, "the bridge must not merge the cliques");
    }

    #[test]
    fn communities_are_unbalanced_partitions() {
        // The paper's §5 point: community detection ignores balance. On a
        // star, 39 of 40 vertices collapse into one community — useless as
        // a k-way partitioning. (The centre itself oscillates: synchronous
        // LPA's well-known bipartite-graph pathology, another §5 concern —
        // "small changes ... can lead to very different partitions".)
        let star: Vec<(u32, u32)> = (1..40u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(40, &star);
        let mut e = EngineBuilder::new(2).build(&g, LabelPropagation::new(6));
        e.run_until_halt(10);
        let first_leaf = *e.vertex_value(1).unwrap();
        let leaves_same = (2..40u32).all(|v| *e.vertex_value(v).unwrap() == first_leaf);
        assert!(leaves_same, "leaves should share one community");
    }

    #[test]
    fn deterministic_tie_breaking() {
        let g = two_cliques();
        let run = || {
            let mut e = EngineBuilder::new(2).build(&g, LabelPropagation::new(8));
            e.run_until_halt(12);
            (0..10u32)
                .map(|v| e.vertex_value(v).unwrap().0)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
