//! The paper's maximal-clique workload (Figure 9, the CDR use case).
//!
//! "In the first iteration, each vertex sends its lists of neighbours to
//! all its neighbours. On the next iteration, given a vertex i and each of
//! its neighbours j, i creates j lists containing the neighbours of j that
//! are also neighbours with i. Lists containing the same elements reveal a
//! clique. As these lists can get large, this algorithm produces heavy
//! messaging overhead for large graphs."
//!
//! The heavy `Vec<VertexId>` messages are the point: this workload's
//! superstep time is dominated by (remote) message volume, which is exactly
//! what adaptive partitioning reduces.

use apg_graph::VertexId;
use apg_pregel::{Context, VertexProgram};

/// Two-superstep maximal-clique detection by neighbour-list exchange.
///
/// After superstep 1 each vertex's value holds the size of the largest
/// clique containing it that it could verify from its neighbours' adjacency
/// lists; [`global_max_clique`] extracts the graph-wide maximum.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxClique;

impl MaxClique {
    /// Creates the program.
    pub fn new() -> Self {
        MaxClique
    }
}

impl VertexProgram for MaxClique {
    type Value = u32;
    type Message = (VertexId, Vec<VertexId>);

    fn compute(
        &self,
        ctx: &mut Context<'_, '_, u32, (VertexId, Vec<VertexId>)>,
        messages: &[(VertexId, Vec<VertexId>)],
    ) {
        // Rounds of two supersteps (exchange, then detect), so the driver
        // can re-run detection after each buffered mutation batch by waking
        // the graph — the paper's freeze-compute-unfreeze loop.
        match ctx.superstep() % 2 {
            0 => {
                let list = ctx.neighbors().to_vec();
                // One (potentially large) list per neighbour — the paper's
                // deliberate messaging stress.
                ctx.send_to_neighbors((ctx.id(), list));
            }
            _ => {
                if !messages.is_empty() {
                    let me = ctx.id();
                    let my_neighbors = ctx.neighbors();
                    // Adjacency oracle over everything we received.
                    let adjacency: std::collections::HashMap<VertexId, &[VertexId]> = messages
                        .iter()
                        .map(|(j, list)| (*j, list.as_slice()))
                        .collect();
                    let connected = |a: VertexId, b: VertexId| -> bool {
                        adjacency
                            .get(&a)
                            .map(|l| l.binary_search(&b).is_ok())
                            .unwrap_or(false)
                    };
                    let mut best = 1 + u32::from(!my_neighbors.is_empty());
                    for (j, j_list) in messages {
                        // Common neighbours of me and j.
                        let mut clique: Vec<VertexId> = vec![me, *j];
                        for &w in my_neighbors {
                            if w == *j || j_list.binary_search(&w).is_err() {
                                continue;
                            }
                            // Greedily extend while staying a clique; we can
                            // verify because we hold every neighbour's list.
                            if clique[2..].iter().all(|&c| connected(w, c)) {
                                clique.push(w);
                            }
                        }
                        best = best.max(clique.len() as u32);
                    }
                    *ctx.value_mut() = best;
                }
                ctx.vote_to_halt();
            }
        }
    }
}

/// Extracts the global maximum clique size after the program has halted.
pub fn global_max_clique<PV>(engine: &apg_pregel::Engine<PV>) -> u32
where
    PV: VertexProgram<Value = u32>,
{
    let mut best = 0;
    for v in 0..engine.num_total_slots() as VertexId {
        if let Some(&size) = engine.vertex_value(v) {
            best = best.max(size);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::CsrGraph;
    use apg_pregel::EngineBuilder;

    fn run(graph: &CsrGraph) -> apg_pregel::Engine<MaxClique> {
        let mut e = EngineBuilder::new(2).build(graph, MaxClique::new());
        e.run_until_halt(5);
        e
    }

    #[test]
    fn triangle_is_a_three_clique() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        let e = run(&g);
        assert_eq!(global_max_clique(&e), 3);
    }

    #[test]
    fn k4_detected() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let e = run(&g);
        assert_eq!(global_max_clique(&e), 4);
        // The pendant vertex only sees a 2-clique.
        assert_eq!(e.vertex_value(4), Some(&2));
    }

    #[test]
    fn path_has_only_edges() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let e = run(&g);
        assert_eq!(global_max_clique(&e), 2);
    }

    #[test]
    fn heavy_messages_counted() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let mut e = EngineBuilder::new(2).build(&g, MaxClique::new());
        let r0 = e.superstep();
        // Superstep 0 sends one list per edge direction: 2|E| messages.
        assert_eq!(r0.messages_local + r0.messages_remote, 8);
    }
}
