//! Connected components by min-label propagation.

use apg_graph::VertexId;
use apg_pregel::{Context, VertexProgram};

/// A component label; `UNSET` marks a vertex that has not computed yet
/// (needed because vertices can be streamed in at any superstep, where the
/// usual "superstep 0 means fresh" trick no longer works).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CcLabel(pub VertexId);

impl CcLabel {
    /// Label of a vertex that has never computed.
    pub const UNSET: CcLabel = CcLabel(VertexId::MAX);
}

impl Default for CcLabel {
    fn default() -> Self {
        CcLabel::UNSET
    }
}

/// Dynamic connected components: every vertex repeatedly adopts the
/// smallest vertex id it has heard of; at quiescence each component is
/// labelled by its minimum live id.
///
/// Works on *mutating* graphs: a vertex woken without messages (which only
/// happens at superstep 0, after a topology change touching it, or after
/// crash recovery) re-broadcasts its label so new edges learn it. A vertex
/// woken by messages that do not improve its label halts silently, which is
/// what lets the computation quiesce.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponents;

impl ConnectedComponents {
    /// Creates the program.
    pub fn new() -> Self {
        ConnectedComponents
    }
}

impl VertexProgram for ConnectedComponents {
    type Value = CcLabel;
    type Message = VertexId;

    fn compute(&self, ctx: &mut Context<'_, '_, CcLabel, VertexId>, messages: &[VertexId]) {
        let current = if *ctx.value() == CcLabel::UNSET {
            ctx.id()
        } else {
            ctx.value().0
        };
        let mut label = current;
        for &m in messages {
            label = label.min(m);
        }
        let improved = *ctx.value() == CcLabel::UNSET || label < ctx.value().0;
        let woken_by_topology = messages.is_empty() && ctx.superstep() > 0;
        *ctx.value_mut() = CcLabel(label);
        if ctx.superstep() == 0 || improved || woken_by_topology {
            ctx.send_to_neighbors(label);
        }
        ctx.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{algo, gen, CsrGraph, Graph};
    use apg_pregel::{EngineBuilder, MutationBatch};

    fn label<P: VertexProgram<Value = CcLabel>>(
        e: &apg_pregel::Engine<P>,
        v: VertexId,
    ) -> VertexId {
        e.vertex_value(v).expect("live vertex").0
    }

    #[test]
    fn labels_two_components() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let mut e = EngineBuilder::new(2).build(&g, ConnectedComponents::new());
        e.run_until_halt(20);
        assert_eq!(label(&e, 2), 0);
        assert_eq!(label(&e, 4), 3);
        assert_eq!(label(&e, 5), 5);
    }

    #[test]
    fn agrees_with_union_find() {
        let g = gen::erdos_renyi(200, 0.008, 9);
        let mut e = EngineBuilder::new(4).build(&g, ConnectedComponents::new());
        e.run_until_halt(100);
        let reference = algo::connected_components(&g);
        for u in g.vertices() {
            for v in g.vertices() {
                let same_ref = reference.labels[u as usize] == reference.labels[v as usize];
                let same_bsp = label(&e, u) == label(&e, v);
                assert_eq!(same_ref, same_bsp, "vertices {u}, {v} disagree");
            }
        }
    }

    #[test]
    fn halts_quickly_on_connected_mesh() {
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4).build(&g, ConnectedComponents::new());
        let reports = e.run_until_halt(50);
        assert!(reports.len() <= 15, "took {} supersteps", reports.len());
        for v in 0..64 {
            assert_eq!(label(&e, v), 0);
        }
    }

    #[test]
    fn works_under_adaptive_migration() {
        use apg_core::AdaptiveConfig;
        let g = gen::mesh3d(5, 5, 5);
        let mut e = EngineBuilder::new(5)
            .adaptive(AdaptiveConfig::new(5).willingness(1.0))
            .seed(3)
            .build(&g, ConnectedComponents::new());
        e.run_until_halt(60);
        for v in 0..125 {
            assert_eq!(label(&e, v), 0, "vertex {v} mislabelled");
        }
    }

    #[test]
    fn merging_components_relabels() {
        // Two components; then a bridge edge merges them.
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut e = EngineBuilder::new(2).build(&g, ConnectedComponents::new());
        e.run_until_halt(20);
        assert_eq!(label(&e, 5), 3);
        let mut batch = MutationBatch::new();
        batch.add_edge(2, 3);
        e.apply_mutations(batch);
        e.run_until_halt(20);
        for v in 0..6 {
            assert_eq!(label(&e, v), 0, "vertex {v} not merged");
        }
    }

    #[test]
    fn late_vertices_join_components() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut e = EngineBuilder::new(2).build(&g, ConnectedComponents::new());
        e.run_until_halt(10);
        let mut batch = MutationBatch::new();
        batch.add_vertex(vec![1, 2]); // bridges both components
        e.apply_mutations(batch);
        e.run_until_halt(10);
        for v in 0..4 {
            assert_eq!(label(&e, v), 0, "vertex {v} not merged");
        }
    }
}
