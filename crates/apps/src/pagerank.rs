//! PageRank over undirected adjacency.

use apg_pregel::{Context, VertexProgram};

/// Classic Pregel PageRank with damping 0.85.
///
/// Runs a fixed number of power iterations, then halts. Over an undirected
/// graph each vertex distributes its rank equally to all neighbours.
///
/// # Example
///
/// ```
/// use apg_apps::PageRank;
/// use apg_pregel::EngineBuilder;
/// use apg_graph::gen;
///
/// let g = gen::mesh3d(4, 4, 4);
/// let mut engine = EngineBuilder::new(4).build(&g, PageRank::new(20));
/// engine.run_until_halt(25);
/// let total: f64 = (0..64).map(|v| engine.vertex_value(v).unwrap()).sum();
/// assert!((total - 1.0).abs() < 1e-6); // ranks stay a distribution
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PageRank {
    iterations: usize,
    damping: f64,
}

impl PageRank {
    /// PageRank for the given number of power iterations (damping 0.85).
    pub fn new(iterations: usize) -> Self {
        PageRank {
            iterations,
            damping: 0.85,
        }
    }

    /// Overrides the damping factor.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < damping < 1`.
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!(damping > 0.0 && damping < 1.0, "damping must be in (0, 1)");
        self.damping = damping;
        self
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Message = f64;

    fn compute(&self, ctx: &mut Context<'_, '_, f64, f64>, messages: &[f64]) {
        let n = ctx.num_vertices() as f64;
        if ctx.superstep() == 0 {
            *ctx.value_mut() = 1.0 / n;
        } else {
            let incoming: f64 = messages.iter().sum();
            // Dangling mass (degree-0 vertices hold their rank) is ignored;
            // meshes and social graphs here have no isolated vertices.
            *ctx.value_mut() = (1.0 - self.damping) / n + self.damping * incoming;
        }
        if ctx.superstep() < self.iterations {
            let share = *ctx.value() / ctx.degree().max(1) as f64;
            ctx.send_to_neighbors(share);
        } else {
            ctx.vote_to_halt();
        }
    }

    /// Rank contributions sum at the receiver, so they can be pre-summed at
    /// the sender — the textbook Pregel combiner.
    fn combine(&self, a: &f64, b: &f64) -> Option<f64> {
        Some(a + b)
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::CsrGraph;
    use apg_pregel::EngineBuilder;

    #[test]
    fn ranks_sum_to_one_on_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e = EngineBuilder::new(2).build(&g, PageRank::new(30));
        e.run_until_halt(40);
        let total: f64 = (0..4).map(|v| e.vertex_value(v).unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn symmetric_vertices_get_equal_rank() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut e = EngineBuilder::new(2).build(&g, PageRank::new(30));
        e.run_until_halt(40);
        let r0 = e.vertex_value(0).unwrap();
        let r3 = e.vertex_value(3).unwrap();
        assert!((r0 - r3).abs() < 1e-9);
        let r1 = e.vertex_value(1).unwrap();
        assert!(r1 > r0, "middle of a path outranks the ends");
    }

    #[test]
    fn star_centre_dominates() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut e = EngineBuilder::new(2).build(&g, PageRank::new(25));
        e.run_until_halt(30);
        let centre = *e.vertex_value(0).unwrap();
        for leaf in 1..5 {
            assert!(centre > *e.vertex_value(leaf).unwrap() * 2.0);
        }
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn rejects_bad_damping() {
        let _ = PageRank::new(5).with_damping(1.5);
    }

    #[test]
    fn combiner_preserves_results_and_reduces_traffic() {
        use apg_pregel::VertexProgram;
        // A multigraph-ish case: vertex 0 neighbours everything, so several
        // messages share destinations within one worker's outbox.
        let g = apg_graph::gen::mesh3d(4, 4, 4);
        let with = {
            let mut e = EngineBuilder::new(2).build(&g, PageRank::new(20));
            let reports = e.run_until_halt(25);
            let traffic: u64 = reports
                .iter()
                .map(|r| r.messages_local + r.messages_remote)
                .sum();
            (
                traffic,
                (0..64)
                    .map(|v| *e.vertex_value(v).unwrap())
                    .collect::<Vec<f64>>(),
            )
        };
        // Sanity: the combiner is declared.
        assert!(PageRank::new(20).has_combiner());
        assert_eq!(PageRank::new(20).combine(&0.25, &0.5), Some(0.75));
        // Ranks still sum to 1.
        let total: f64 = with.1.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
