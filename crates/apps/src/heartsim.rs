//! The biomedical FEM workload (Figure 7): excitable cardiac tissue on a
//! 3-D mesh.
//!
//! The paper's heart simulation solves the ten Tusscher ventricular model —
//! "each vertex computes more than 32 differential equations on one hundred
//! variables". Reimplementing the full ionic model would add nothing to the
//! partitioning evaluation, so this program integrates the classic
//! two-variable FitzHugh–Nagumo excitable-cell abstraction (a standard
//! stand-in for cardiac electrophysiology) and *charges* the cost model 32
//! compute units per vertex per superstep, preserving the paper's
//! compute/communication ratio ("CPU time is not negligible, more than
//! 17%").

use apg_pregel::{Context, VertexProgram};

/// Electrical state of one cardiac cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellState {
    /// Membrane potential `v`.
    pub voltage: f64,
    /// Recovery variable `w`.
    pub recovery: f64,
}

impl Default for CellState {
    fn default() -> Self {
        // Near the FitzHugh–Nagumo nullcline intersection; with the
        // oscillatory parameters used here the tissue self-excites from
        // this state, like pacemaker-dense cardiac tissue.
        CellState {
            voltage: -1.2,
            recovery: -0.62,
        }
    }
}

/// FitzHugh–Nagumo reaction–diffusion on the mesh graph.
///
/// Each superstep integrates one time step:
/// `dv = v - v³/3 - w + I + D · Σ_n (v_n - v)` and
/// `dw = ε (v + a - b w)`, where the diffusion sum runs over mesh
/// neighbours' membrane potentials received as messages.
///
/// Cells with `id % pacemaker_every == 0` receive a periodic stimulus
/// current, keeping the tissue active forever — matching the paper's
/// continuously-running deployment.
#[derive(Debug, Clone, Copy)]
pub struct HeartSim {
    /// Integration step.
    pub dt: f64,
    /// Diffusion (gap-junction) coupling strength.
    pub coupling: f64,
    /// Stimulus period in supersteps.
    pub stimulus_period: usize,
    /// One cell in this many is a pacemaker.
    pub pacemaker_every: u32,
    /// Compute units charged per vertex per superstep (the paper's ionic
    /// model costs ~32 ODE evaluations).
    pub ode_cost: u64,
}

impl Default for HeartSim {
    fn default() -> Self {
        HeartSim {
            dt: 0.1,
            coupling: 0.3,
            stimulus_period: 40,
            pacemaker_every: 1000,
            ode_cost: 32,
        }
    }
}

impl HeartSim {
    /// Default parameters.
    pub fn new() -> Self {
        Self::default()
    }
}

impl VertexProgram for HeartSim {
    type Value = CellState;
    type Message = f64;

    fn compute(&self, ctx: &mut Context<'_, '_, CellState, f64>, messages: &[f64]) {
        const A: f64 = 0.3;
        const B: f64 = 0.8;
        const EPS: f64 = 0.08;

        let state = *ctx.value();
        let v = state.voltage;
        // Diffusion from neighbours' potentials delivered as messages.
        let diffusion: f64 = messages.iter().map(|&vn| vn - v).sum::<f64>() * self.coupling;
        let stimulus = if ctx.id().is_multiple_of(self.pacemaker_every)
            && ctx.superstep() % self.stimulus_period < 8
        {
            3.0
        } else {
            0.0
        };
        let dv = v - v.powi(3) / 3.0 - state.recovery + stimulus + diffusion;
        let dw = EPS * (v + A - B * state.recovery);
        let next = CellState {
            voltage: v + self.dt * dv,
            recovery: state.recovery + self.dt * dw,
        };
        *ctx.value_mut() = next;
        ctx.charge(self.ode_cost);
        ctx.send_to_neighbors(next.voltage);
        // Never halts: the simulation runs continuously, as in the paper.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;
    use apg_pregel::EngineBuilder;

    #[test]
    fn voltages_stay_bounded() {
        let g = gen::mesh3d(3, 3, 3);
        let mut e = EngineBuilder::new(2).build(&g, HeartSim::new());
        for _ in 0..300 {
            e.superstep();
            for v in 0..27 {
                let s = e.vertex_value(v).unwrap();
                assert!(
                    s.voltage.abs() < 3.0 && s.recovery.abs() < 3.0,
                    "numerical blow-up at vertex {v}: {s:?}"
                );
            }
        }
    }

    #[test]
    fn pacemaker_excites_and_wave_propagates() {
        let sim = HeartSim {
            pacemaker_every: 1_000_000, // only vertex 0 paces
            ..HeartSim::default()
        };
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(2).build(&g, sim);
        let mut far_max = f64::NEG_INFINITY;
        for _ in 0..400 {
            e.superstep();
            far_max = far_max.max(e.vertex_value(63).unwrap().voltage);
        }
        // The action potential reaches the far corner: voltage rises far
        // above rest at some point.
        assert!(far_max > 0.5, "wave never arrived: max {far_max}");
    }

    #[test]
    fn ode_cost_charged_to_cost_model() {
        let g = gen::mesh3d(3, 3, 3);
        let mut e = EngineBuilder::new(2).build(&g, HeartSim::new());
        let r = e.superstep();
        // 27 vertices * (1 base + 32 charged).
        assert_eq!(r.compute_units, 27 * 33);
    }

    #[test]
    fn simulation_never_halts() {
        let g = gen::mesh3d(3, 3, 3);
        let mut e = EngineBuilder::new(2).build(&g, HeartSim::new());
        let reports = e.run(10);
        assert!(reports.iter().all(|r| r.active_vertices == 27));
    }
}
