//! TunkRank — "a Twitter analog to PageRank" (Tunkelang, 2009), the
//! influence measure the paper runs continuously over its live mention
//! graph (Figure 8).

use apg_pregel::{Context, VertexProgram};

/// Iterative TunkRank over the (undirected) mention graph.
///
/// The influence of a user is the expected number of people who read a
/// tweet they post, directly or via retweets:
/// `influence(v) = Σ_{w ∈ followers(v)} (1 + p · influence(w)) / |friends(w)|`,
/// with retweet probability `p`. On the mention graph, edges are treated
/// symmetrically (a mention implies attention in both directions).
///
/// Runs a fixed number of iterations; in the paper's deployment it simply
/// never stops, recomputing as the graph changes — call
/// [`apg_pregel::Engine::run`] repeatedly for the same effect.
#[derive(Debug, Clone, Copy)]
pub struct TunkRank {
    iterations: usize,
    retweet_prob: f64,
}

impl TunkRank {
    /// TunkRank for a fixed number of iterations with retweet probability
    /// `p = 0.05` (a common literature choice).
    pub fn new(iterations: usize) -> Self {
        TunkRank {
            iterations,
            retweet_prob: 0.05,
        }
    }

    /// Overrides the retweet probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn with_retweet_prob(mut self, p: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "retweet probability must be in [0, 1)"
        );
        self.retweet_prob = p;
        self
    }
}

impl VertexProgram for TunkRank {
    type Value = f64;
    type Message = f64;

    fn compute(&self, ctx: &mut Context<'_, '_, f64, f64>, messages: &[f64]) {
        if ctx.superstep() > 0 {
            *ctx.value_mut() = messages.iter().sum();
        }
        if ctx.superstep() < self.iterations {
            let contribution =
                (1.0 + self.retweet_prob * *ctx.value()) / ctx.degree().max(1) as f64;
            ctx.send_to_neighbors(contribution);
        } else {
            ctx.vote_to_halt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::{gen, CsrGraph};
    use apg_pregel::EngineBuilder;

    #[test]
    fn hub_is_most_influential() {
        // Star: the centre is mentioned by everyone.
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let mut e = EngineBuilder::new(2).build(&g, TunkRank::new(15));
        e.run_until_halt(20);
        let centre = *e.vertex_value(0).unwrap();
        for leaf in 1..6 {
            assert!(centre > *e.vertex_value(leaf).unwrap());
        }
    }

    #[test]
    fn influence_grows_with_degree_on_powerlaw() {
        let g = gen::preferential_attachment(300, 3, 5);
        let mut e = EngineBuilder::new(3).build(&g, TunkRank::new(12));
        e.run_until_halt(15);
        // Vertex 0 is in the seed clique of a BA graph: highest degree tier.
        let hub = *e.vertex_value(0).unwrap();
        let tail = *e.vertex_value(299).unwrap();
        assert!(hub > tail, "hub {hub} vs tail {tail}");
    }

    #[test]
    fn converges_to_fixed_point_on_regular_graph() {
        // On a cycle every vertex is symmetric: influence must be equal.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let mut e = EngineBuilder::new(2).build(&g, TunkRank::new(25));
        e.run_until_halt(30);
        let v0 = *e.vertex_value(0).unwrap();
        for v in 1..5 {
            assert!((*e.vertex_value(v).unwrap() - v0).abs() < 1e-9);
        }
        // Fixed point of x = (1 + p x) for degree-2 cycle: each neighbour
        // contributes (1 + p x)/2, two neighbours -> x = 1 + p x.
        let expected = 1.0 / (1.0 - 0.05);
        assert!(
            (v0 - expected).abs() < 1e-6,
            "got {v0}, expected {expected}"
        );
    }
}
