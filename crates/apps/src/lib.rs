//! Vertex programs for the paper's evaluation workloads.
//!
//! Each use case of §4.3 maps to one program:
//!
//! * [`HeartSim`] — the biomedical FEM simulation (Figure 7): a
//!   FitzHugh–Nagumo excitable-cell model on the 3-D heart mesh, with the
//!   compute cost of the paper's ">32 differential equations on one hundred
//!   variables" charged to the cost model.
//! * [`TunkRank`] — Twitter influence over the mention graph (Figure 8).
//! * [`MaxClique`] — the neighbour-list-exchange clique heuristic the paper
//!   runs on the CDR call graph (Figure 9), with its deliberately heavy
//!   messaging.
//! * [`PageRank`] — the classic ranking workload the paper's motivation
//!   cites (content ranking converging faster under good partitioning).
//! * [`ConnectedComponents`] — min-label propagation, used by tests and the
//!   quickstart example.

pub mod components;
pub mod heartsim;
pub mod labelprop;
pub mod maxclique;
pub mod pagerank;
pub mod sssp;
pub mod tunkrank;

pub use components::ConnectedComponents;
pub use heartsim::{CellState, HeartSim};
pub use labelprop::{Community, LabelPropagation};
pub use maxclique::MaxClique;
pub use pagerank::PageRank;
pub use sssp::{Distance, Sssp};
pub use tunkrank::TunkRank;
