//! The adaptive-partitioning extension: migration decisions, deferred
//! movement and capacity prediction (paper §3).
//!
//! The controller reuses the decision kernel and quota table from
//! `apg-core`, so the distributed realisation cannot diverge from the
//! logical-level algorithm. What this module adds is the *protocol*:
//!
//! * Decisions taken at superstep `t` are **published** (location table
//!   update) at the end of `t`, so messages produced during `t + 1` are
//!   routed to the new destination.
//! * The vertex state **physically moves** at the end of `t + 1` — the
//!   "migrating" state of Figure 3 — after it has received the messages
//!   that were addressed to its old location.
//! * Quotas are drawn against **predicted capacities**
//!   `C^{t+1}(i) = C^t(i) − V_out^{t+1}(i) + V_in^{t+1}(i)`: in-flight
//!   vertices count at their destination from the moment the migration is
//!   decided, which is exactly the information the paper shows each worker
//!   can assemble locally from the one-superstep-delayed capacity
//!   broadcasts.

use rand::rngs::StdRng;
use rand::Rng;

use apg_core::{AdaptiveConfig, DecisionKernel, MigrationDecision, QuotaTable};
use apg_graph::VertexId;
use apg_partition::CapacityModel;

use crate::worker::WorkerId;

/// A migration decided in superstep `t`, awaiting physical movement at the
/// end of `t + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InFlight {
    /// The migrating vertex.
    pub vertex: VertexId,
    /// Worker it is leaving.
    pub from: WorkerId,
    /// Worker it is joining.
    pub to: WorkerId,
}

/// Engine-side state of the background partitioning algorithm.
#[derive(Debug)]
pub struct MigrationController {
    config: AdaptiveConfig,
    /// Decisions published this superstep; they move at the next boundary.
    in_flight: Vec<InFlight>,
    /// Predicted partition loads (physical + in-flight deltas).
    predicted_sizes: Vec<usize>,
    seed: u64,
}

impl MigrationController {
    /// Creates a controller for `config.num_partitions` workers.
    pub fn new(config: AdaptiveConfig, seed: u64) -> Self {
        let k = config.num_partitions as usize;
        MigrationController {
            config,
            in_flight: Vec::new(),
            predicted_sizes: vec![0; k],
            seed,
        }
    }

    /// The adaptive configuration in force.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Migrations currently in flight (decided, not yet moved).
    pub fn in_flight(&self) -> &[InFlight] {
        &self.in_flight
    }

    /// Synchronises predicted loads from physical vertex counts, then adds
    /// the in-flight deltas. Call at the start of each superstep.
    pub fn refresh_predictions(&mut self, physical_sizes: &[usize]) {
        self.predicted_sizes.clear();
        self.predicted_sizes.extend_from_slice(physical_sizes);
        for mig in &self.in_flight {
            self.predicted_sizes[mig.from as usize] -= 1;
            self.predicted_sizes[mig.to as usize] += 1;
        }
    }

    /// Builds this superstep's quota rows from predicted remaining
    /// capacities. Returns one [`QuotaTable`] per worker — each worker only
    /// consumes its own row `Q(i, ·)`, which is why no coordination is
    /// needed (paper §2.2).
    pub fn quotas(&self, caps: &CapacityModel) -> QuotaTable {
        let remaining: Vec<usize> = (0..self.config.num_partitions)
            .map(|p| caps.remaining(p, self.predicted_sizes[p as usize]))
            .collect();
        QuotaTable::new(self.config.quota_rule, &remaining)
    }

    /// Deterministic per-worker RNG for superstep `t` — independent of
    /// thread scheduling. Derived through the shared `apg-exec` stream
    /// derivation (worker id as the stream, superstep as the round), the
    /// same scheme the logical-level partitioner keys its shards with.
    pub fn worker_rng(&self, worker: WorkerId, superstep: usize) -> StdRng {
        apg_exec::stream_rng(self.seed, worker as u64, superstep as u64)
    }

    /// Fresh decision kernel for a worker thread.
    pub fn kernel(&self) -> DecisionKernel {
        DecisionKernel::new(self.config.num_partitions, self.config.count_self)
    }

    /// Evaluates one vertex's migration inside a worker thread.
    ///
    /// Returns the destination if the vertex decides to migrate *and* its
    /// quota row admits the move.
    pub fn evaluate_vertex<'n>(
        &self,
        kernel: &mut DecisionKernel,
        quota_row: &mut QuotaTable,
        rng: &mut StdRng,
        current: WorkerId,
        neighbor_locations: impl Iterator<Item = &'n VertexId>,
        locations: &[WorkerId],
    ) -> Option<WorkerId> {
        if self.config.willingness < 1.0 && !rng.gen_bool(self.config.willingness) {
            return None;
        }
        let neighbor_parts = neighbor_locations
            .map(|&w| locations[w as usize])
            .filter(|&w| w != WorkerId::MAX);
        match kernel.decide(current, neighbor_parts, rng) {
            MigrationDecision::Stay => None,
            MigrationDecision::Migrate(to) => {
                if quota_row.try_consume(current, to) {
                    Some(to)
                } else {
                    None
                }
            }
        }
    }

    /// Publishes a batch of decisions made during superstep `t`: the caller
    /// must update the location table so that superstep `t + 1` routes
    /// messages to the new destinations. Returns the batch that must
    /// *physically move* at the end of `t + 1` — i.e. the previously
    /// published batch.
    pub fn publish(&mut self, decided: Vec<InFlight>) -> Vec<InFlight> {
        std::mem::replace(&mut self.in_flight, decided)
    }

    /// Drops any in-flight migration of `vertex` (used when the vertex is
    /// removed from the graph while migrating).
    pub fn forget(&mut self, vertex: VertexId) {
        self.in_flight.retain(|m| m.vertex != vertex);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(k: u16) -> MigrationController {
        MigrationController::new(AdaptiveConfig::new(k).willingness(1.0), 3)
    }

    #[test]
    fn predictions_count_in_flight_at_destination() {
        let mut c = controller(3);
        c.publish(vec![InFlight {
            vertex: 7,
            from: 0,
            to: 2,
        }]);
        c.refresh_predictions(&[10, 10, 10]);
        assert_eq!(c.predicted_sizes, vec![9, 10, 11]);
    }

    #[test]
    fn publish_swaps_batches() {
        let mut c = controller(2);
        let first = vec![InFlight {
            vertex: 1,
            from: 0,
            to: 1,
        }];
        assert!(c.publish(first.clone()).is_empty());
        let moved = c.publish(vec![]);
        assert_eq!(moved, first);
    }

    #[test]
    fn evaluate_vertex_respects_quota() {
        let c = controller(2);
        let caps = CapacityModel::vertex_balanced(4, 2, 1.0);
        let mut ctrl = controller(2);
        ctrl.refresh_predictions(&[4, 0]);
        let mut quota = ctrl.quotas(&caps);
        let mut kernel = c.kernel();
        let mut rng = c.worker_rng(0, 0);
        let locations = vec![0 as WorkerId, 0, 0, 0];
        // Vertex at worker 0, all neighbours at worker 1... but locations
        // say worker 0; craft neighbours at worker 1 via a location table.
        let locations_remote = vec![1 as WorkerId, 1, 1, 1];
        let neighbors: Vec<VertexId> = vec![1, 2, 3];
        // Quota from 0 -> 1 is C_rem(1)/(k-1) = 2/1 = 2: two admits, then deny.
        let mut admitted = 0;
        for _ in 0..5 {
            if c.evaluate_vertex(
                &mut kernel,
                &mut quota,
                &mut rng,
                0,
                neighbors.iter(),
                &locations_remote,
            )
            .is_some()
            {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 2);
        let _ = locations;
    }

    #[test]
    fn worker_rng_differs_across_workers_and_steps() {
        let c = controller(2);
        let a: u64 = c.worker_rng(0, 0).gen();
        let b: u64 = c.worker_rng(1, 0).gen();
        let d: u64 = c.worker_rng(0, 1).gen();
        assert_ne!(a, b);
        assert_ne!(a, d);
        let a2: u64 = c.worker_rng(0, 0).gen();
        assert_eq!(a, a2, "same (worker, superstep) must reproduce");
    }

    #[test]
    fn tombstoned_neighbours_are_ignored() {
        let c = controller(2);
        let mut kernel = c.kernel();
        let mut rng = c.worker_rng(0, 1);
        let caps = CapacityModel::vertex_balanced(2, 2, 2.0);
        let mut ctrl = controller(2);
        ctrl.refresh_predictions(&[1, 1]);
        let mut quota = ctrl.quotas(&caps);
        let locations = vec![WorkerId::MAX, 0];
        let neighbors: Vec<VertexId> = vec![0];
        // The only neighbour is tombstoned -> isolated -> stays.
        let dec = c.evaluate_vertex(
            &mut kernel,
            &mut quota,
            &mut rng,
            0,
            neighbors.iter(),
            &locations,
        );
        assert_eq!(dec, None);
    }
}
