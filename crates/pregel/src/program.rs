//! The vertex-program abstraction (the "Pregel API" layer of Figure 2).

use std::collections::HashMap;

use apg_graph::VertexId;

use crate::worker::{WorkerCounters, WorkerId};

/// A user computation in the vertex-centric BSP model.
///
/// Implementations must be stateless (per-vertex state lives in
/// `Self::Value`); the same program instance is shared by every worker
/// thread.
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex state.
    type Value: Clone + Default + Send + 'static;
    /// Message type exchanged between vertices.
    type Message: Clone + Send + 'static;

    /// Called once per active vertex per superstep with the messages sent
    /// to it in the previous superstep.
    fn compute(
        &self,
        ctx: &mut Context<'_, '_, Self::Value, Self::Message>,
        messages: &[Self::Message],
    );

    /// Optional Pregel *combiner*: merges two messages bound for the same
    /// vertex at the sending worker, before they cross the network. Only
    /// valid for commutative, associative reductions where the receiver
    /// needs the combined value only (e.g. summing PageRank contributions).
    ///
    /// Return `None` (the default) to disable combining.
    fn combine(&self, _a: &Self::Message, _b: &Self::Message) -> Option<Self::Message> {
        None
    }

    /// Whether this program defines a combiner. The engine asks once per
    /// superstep; the default probes [`VertexProgram::combine`] lazily, so
    /// implementors only override `combine`.
    fn has_combiner(&self) -> bool {
        false
    }
}

/// Aggregated values shared across workers with a one-superstep delay
/// (Pregel's aggregator mechanism). Values written during superstep `t` are
/// readable by every vertex during `t + 1`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Aggregates {
    values: HashMap<&'static str, f64>,
}

impl Aggregates {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` into the named sum.
    pub fn add(&mut self, name: &'static str, v: f64) {
        *self.values.entry(name).or_insert(0.0) += v;
    }

    /// Reads a named sum (from the previous superstep when accessed through
    /// [`Context::read_aggregate`]).
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Merges another partial aggregate into this one.
    pub fn merge(&mut self, other: &Aggregates) {
        for (k, v) in &other.values {
            *self.values.entry(k).or_insert(0.0) += v;
        }
    }

    /// Clears all sums.
    pub fn clear(&mut self) {
        self.values.clear();
    }
}

/// Per-vertex view handed to [`VertexProgram::compute`].
///
/// The context routes messages through the engine's location table, which is
/// how migrated vertices keep receiving their mail (paper §3): senders always
/// consult the freshest location published at the last superstep boundary.
pub struct Context<'a, 'b, V, M> {
    pub(crate) vertex: VertexId,
    pub(crate) superstep: usize,
    pub(crate) home: WorkerId,
    pub(crate) value: &'a mut V,
    pub(crate) neighbors: &'a [VertexId],
    pub(crate) halted: &'a mut bool,
    pub(crate) outboxes: &'a mut Vec<Vec<(VertexId, M)>>,
    pub(crate) locations: &'b [WorkerId],
    pub(crate) counters: &'a mut WorkerCounters,
    pub(crate) agg_prev: &'b Aggregates,
    pub(crate) agg_next: &'a mut Aggregates,
    pub(crate) num_vertices: usize,
}

impl<V, M> Context<'_, '_, V, M> {
    /// Id of the vertex being computed.
    pub fn id(&self) -> VertexId {
        self.vertex
    }

    /// Current superstep (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// Number of live vertices in the whole graph at this superstep.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// This vertex's neighbours (undirected adjacency), ascending.
    pub fn neighbors(&self) -> &[VertexId] {
        self.neighbors
    }

    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Immutable access to the vertex value.
    pub fn value(&self) -> &V {
        self.value
    }

    /// Mutable access to the vertex value.
    pub fn value_mut(&mut self) -> &mut V {
        self.value
    }

    /// Sends a message for delivery at the next superstep.
    ///
    /// Messages to removed vertices are dropped, matching Pregel semantics
    /// for dangling edges after mutations.
    pub fn send(&mut self, to: VertexId, msg: M) {
        let dest = match self.locations.get(to as usize) {
            Some(&w) if w != WorkerId::MAX => w,
            _ => {
                self.counters.messages_dropped += 1;
                return;
            }
        };
        if dest == self.home {
            self.counters.messages_local += 1;
        } else {
            self.counters.messages_remote += 1;
        }
        self.outboxes[dest as usize].push((to, msg));
    }

    /// Sends `msg` to every neighbour.
    pub fn send_to_neighbors(&mut self, msg: M)
    where
        M: Clone,
    {
        for i in 0..self.neighbors.len() {
            let w = self.neighbors[i];
            self.send(w, msg.clone());
        }
    }

    /// Halts this vertex; it stays dormant until a message re-activates it.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }

    /// Adds `v` into a named global aggregate, readable next superstep.
    pub fn aggregate(&mut self, name: &'static str, v: f64) {
        self.agg_next.add(name, v);
    }

    /// Reads a named aggregate as of the end of the previous superstep.
    pub fn read_aggregate(&self, name: &str) -> Option<f64> {
        self.agg_prev.get(name)
    }

    /// Charges extra compute cost to the cost model (beyond the default one
    /// unit per active vertex). The cardiac FEM kernel uses this to model
    /// its "more than 32 differential equations on one hundred variables".
    pub fn charge(&mut self, units: u64) {
        self.counters.compute_units += units;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_sum_and_merge() {
        let mut a = Aggregates::new();
        a.add("x", 1.5);
        a.add("x", 2.5);
        let mut b = Aggregates::new();
        b.add("x", 1.0);
        b.add("y", 7.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(5.0));
        assert_eq!(a.get("y"), Some(7.0));
        assert_eq!(a.get("z"), None);
        a.clear();
        assert_eq!(a.get("x"), None);
    }

    #[test]
    fn context_routes_and_counts() {
        let mut value = 0u32;
        let mut halted = false;
        let mut outboxes: Vec<Vec<(VertexId, u8)>> = vec![Vec::new(), Vec::new()];
        let locations = vec![0 as WorkerId, 1, WorkerId::MAX];
        let mut counters = WorkerCounters::default();
        let agg_prev = Aggregates::new();
        let mut agg_next = Aggregates::new();
        {
            let mut ctx = Context {
                vertex: 0,
                superstep: 3,
                home: 0,
                value: &mut value,
                neighbors: &[1, 2],
                halted: &mut halted,
                outboxes: &mut outboxes,
                locations: &locations,
                counters: &mut counters,
                agg_prev: &agg_prev,
                agg_next: &mut agg_next,
                num_vertices: 3,
            };
            ctx.send(0, 1); // local
            ctx.send(1, 2); // remote
            ctx.send(2, 3); // tombstone -> dropped
            ctx.vote_to_halt();
        }
        assert_eq!(counters.messages_local, 1);
        assert_eq!(counters.messages_remote, 1);
        assert_eq!(counters.messages_dropped, 1);
        assert_eq!(outboxes[0], vec![(0, 1)]);
        assert_eq!(outboxes[1], vec![(1, 2)]);
        assert!(halted);
    }
}
