//! Worker-local state: the vertices a worker hosts and its per-superstep
//! traffic counters.

use std::collections::BTreeMap;

use apg_graph::VertexId;

/// Identifier of a worker (= partition in this engine: one worker hosts one
/// partition, the usual Pregel deployment).
pub type WorkerId = u16;

/// A vertex's complete state, owned by exactly one worker and transferred
/// wholesale when the vertex migrates.
#[derive(Debug, Clone)]
pub struct VertexState<V> {
    /// Application value.
    pub value: V,
    /// Undirected adjacency, sorted ascending.
    pub neighbors: Vec<VertexId>,
    /// Whether the vertex has voted to halt.
    pub halted: bool,
}

impl<V: Default> VertexState<V> {
    /// Fresh state with the given adjacency.
    pub fn new(neighbors: Vec<VertexId>) -> Self {
        VertexState {
            value: V::default(),
            neighbors,
            halted: false,
        }
    }
}

/// Traffic and compute counters for one worker in one superstep — the raw
/// inputs of the [`crate::CostModel`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Vertices that executed `compute`.
    pub active_vertices: u64,
    /// Compute units consumed (1 per active vertex + explicit charges).
    pub compute_units: u64,
    /// Messages sent to vertices on the same worker.
    pub messages_local: u64,
    /// Messages sent to vertices on other workers.
    pub messages_remote: u64,
    /// Messages dropped because the target vertex is gone.
    pub messages_dropped: u64,
}

impl WorkerCounters {
    /// Sums another counter set into this one.
    pub fn merge(&mut self, other: &WorkerCounters) {
        self.active_vertices += other.active_vertices;
        self.compute_units += other.compute_units;
        self.messages_local += other.messages_local;
        self.messages_remote += other.messages_remote;
        self.messages_dropped += other.messages_dropped;
    }
}

/// The vertices hosted by one worker.
///
/// A `BTreeMap` keeps per-worker iteration order deterministic, which makes
/// whole-engine runs reproducible for a fixed seed regardless of thread
/// scheduling.
#[derive(Debug, Clone, Default)]
pub struct WorkerState<V> {
    /// Hosted vertices.
    pub vertices: BTreeMap<VertexId, VertexState<V>>,
}

impl<V> WorkerState<V> {
    /// Creates an empty worker.
    pub fn new() -> Self {
        WorkerState {
            vertices: BTreeMap::new(),
        }
    }

    /// Number of vertices hosted.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether this worker hosts no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge() {
        let mut a = WorkerCounters {
            active_vertices: 1,
            compute_units: 2,
            messages_local: 3,
            messages_remote: 4,
            messages_dropped: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.active_vertices, 2);
        assert_eq!(a.messages_dropped, 10);
    }

    #[test]
    fn vertex_state_defaults() {
        let s: VertexState<u32> = VertexState::new(vec![1, 2]);
        assert_eq!(s.value, 0);
        assert!(!s.halted);
        assert_eq!(s.neighbors, vec![1, 2]);
    }

    #[test]
    fn worker_state_len() {
        let mut w: WorkerState<u8> = WorkerState::new();
        assert!(w.is_empty());
        w.vertices.insert(3, VertexState::new(vec![]));
        assert_eq!(w.len(), 1);
    }
}
