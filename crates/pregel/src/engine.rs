//! The BSP engine: superstep orchestration, message routing, deferred
//! migration and mutation application.

use std::collections::HashSet;

use apg_core::AdaptiveConfig;
use apg_graph::delta::DeltaTarget;
use apg_graph::{Graph, UpdateBatch, VertexId};
use apg_partition::{
    initial::hash_vertex, CapacityModel, InitialStrategy, PartitionId, Partitioning,
};

use crate::cost::{CostModel, SuperstepReport};
use crate::fault::FaultPlan;
use crate::migrate::{InFlight, MigrationController};
use crate::mutation::MutationBatch;
use crate::program::{Aggregates, Context, VertexProgram};
use crate::worker::{VertexState, WorkerCounters, WorkerId, WorkerState};

/// Builder for [`Engine`]; start from [`EngineBuilder::new`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    k: WorkerId,
    seed: u64,
    cost_model: CostModel,
    fault_plan: FaultPlan,
    initial: InitialStrategy,
    adaptive: Option<AdaptiveConfig>,
    cut_every: usize,
    checkpoint_every: usize,
}

impl EngineBuilder {
    /// Starts building an engine with `k` workers (= partitions).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: WorkerId) -> EngineBuilder {
        assert!(k > 0, "need at least one worker");
        EngineBuilder {
            k,
            seed: 0,
            cost_model: CostModel::default(),
            fault_plan: FaultPlan::none(),
            initial: InitialStrategy::Hash,
            adaptive: None,
            cut_every: 1,
            checkpoint_every: 0,
        }
    }

    /// Sets the RNG seed (initial partitioning, migration tie-breaks).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the cluster cost model (default [`CostModel::lan_10gbe`]).
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Schedules worker failures.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Sets the initial partitioning strategy (default hash, as in most
    /// large-scale systems — paper §2).
    pub fn initial_strategy(mut self, s: InitialStrategy) -> Self {
        self.initial = s;
        self
    }

    /// Enables the background adaptive partitioning algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.num_partitions` differs from the engine's worker count.
    pub fn adaptive(mut self, cfg: AdaptiveConfig) -> Self {
        assert_eq!(cfg.num_partitions, self.k, "partitions must equal workers");
        self.adaptive = Some(cfg);
        self
    }

    /// Computes cut edges every `n` supersteps (0 = never, 1 = always;
    /// default 1). Cut tracking costs `O(|E|)` per measured superstep.
    pub fn cut_every(mut self, n: usize) -> Self {
        self.cut_every = n;
        self
    }

    /// Takes a recovery checkpoint every `n` supersteps (0 = never, the
    /// default). Crashed workers then restore values from the latest
    /// checkpoint instead of from zeroed state.
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Builds an engine over `graph` running `program`, partitioned by the
    /// configured initial strategy.
    pub fn build<G: Graph, P: VertexProgram>(self, graph: &G, program: P) -> Engine<P> {
        let caps = CapacityModel::vertex_balanced(graph.num_live_vertices(), self.k, 1.10);
        let partitioning = self.initial.assign(graph, &caps, self.seed);
        self.build_with_partitioning(graph, program, &partitioning)
    }

    /// Builds an engine with an explicit initial assignment.
    ///
    /// # Panics
    ///
    /// Panics if the assignment's `k` differs from the worker count or it
    /// does not cover the graph.
    pub fn build_with_partitioning<G: Graph, P: VertexProgram>(
        self,
        graph: &G,
        program: P,
        partitioning: &Partitioning,
    ) -> Engine<P> {
        assert_eq!(partitioning.num_partitions(), self.k, "k mismatch");
        assert_eq!(
            partitioning.num_vertices(),
            graph.num_vertices(),
            "coverage mismatch"
        );
        let k = self.k as usize;
        let mut workers: Vec<WorkerState<P::Value>> = (0..k).map(|_| WorkerState::new()).collect();
        let mut locations = vec![WorkerId::MAX; graph.num_vertices()];
        let mut logical_sizes = vec![0usize; k];
        for v in graph.vertices() {
            let w = partitioning.partition_of(v);
            locations[v as usize] = w;
            logical_sizes[w as usize] += 1;
            workers[w as usize]
                .vertices
                .insert(v, VertexState::new(graph.neighbors(v).to_vec()));
        }
        let controller = self
            .adaptive
            .map(|cfg| MigrationController::new(cfg, self.seed ^ 0xADA0_0517));
        Engine {
            program,
            workers,
            locations: locations.clone(),
            state_at: locations,
            logical_sizes,
            inboxes: (0..k).map(|_| Vec::new()).collect(),
            controller,
            in_flight_set: HashSet::new(),
            cost_model: self.cost_model,
            fault_plan: self.fault_plan,
            agg: Aggregates::new(),
            superstep: 0,
            num_edges: graph.num_edges(),
            num_live: graph.num_live_vertices(),
            cut_every: self.cut_every,
            checkpoint_every: self.checkpoint_every,
            checkpoint: None,
            total_sim_time: 0.0,
        }
    }
}

/// The Pregel-like engine. See the crate docs for the model.
pub struct Engine<P: VertexProgram> {
    program: P,
    workers: Vec<WorkerState<P::Value>>,
    /// Routing table: vertex -> logical worker (updated at decision time).
    locations: Vec<WorkerId>,
    /// Physical table: vertex -> worker holding its state (lags `locations`
    /// by one superstep for in-flight vertices).
    state_at: Vec<WorkerId>,
    /// Logical partition sizes (follow `locations`).
    logical_sizes: Vec<usize>,
    /// Messages awaiting delivery at the next superstep, per worker.
    inboxes: Vec<Vec<(VertexId, P::Message)>>,
    controller: Option<MigrationController>,
    in_flight_set: HashSet<VertexId>,
    cost_model: CostModel,
    fault_plan: FaultPlan,
    agg: Aggregates,
    superstep: usize,
    num_edges: usize,
    num_live: usize,
    cut_every: usize,
    checkpoint_every: usize,
    checkpoint: Option<Checkpoint<P::Value>>,
    total_sim_time: f64,
}

/// A recovery checkpoint: every live vertex's value at some superstep.
/// Restoring a crashed worker replays from here instead of from zeroed
/// state (classic Pregel checkpoint recovery).
#[derive(Debug, Clone)]
pub struct Checkpoint<V> {
    /// Superstep at which the checkpoint was taken.
    pub superstep: usize,
    values: Vec<Option<V>>,
}

struct WorkerOutput<M> {
    outboxes: Vec<Vec<(VertexId, M)>>,
    counters: WorkerCounters,
    agg: Aggregates,
    decided: Vec<InFlight>,
}

impl<P: VertexProgram> Engine<P> {
    /// Executes one superstep and reports what happened.
    pub fn superstep(&mut self) -> SuperstepReport {
        let t = self.superstep;
        let k = self.workers.len();

        // Periodic recovery checkpoint (values only; topology is durable).
        if self.checkpoint_every > 0 && t.is_multiple_of(self.checkpoint_every) {
            self.take_checkpoint();
        }

        // Scheduled worker crashes: in-memory values and undelivered
        // messages are lost; values restore from the latest checkpoint when
        // one exists, otherwise from zeroed state.
        let crashes: Vec<WorkerId> = self.fault_plan.crashes_at(t).map(|e| e.worker).collect();
        for w in crashes {
            for (&v, state) in self.workers[w as usize].vertices.iter_mut() {
                state.value = self
                    .checkpoint
                    .as_ref()
                    .and_then(|c| c.values.get(v as usize).cloned().flatten())
                    .unwrap_or_default();
                state.halted = false;
            }
            self.inboxes[w as usize].clear();
        }

        // Adaptive prep: predicted capacities for this superstep's quotas —
        // physical loads plus in-flight deltas, i.e. the paper's
        // C^{t+1}(i) = C^t(i) - V_out + V_in.
        let caps = self.capacities();
        let physical: Vec<usize> = self.workers.iter().map(|w| w.len()).collect();
        if let Some(ctrl) = &mut self.controller {
            ctrl.refresh_predictions(&physical);
        }

        let inboxes: Vec<Vec<(VertexId, P::Message)>> =
            self.inboxes.iter_mut().map(std::mem::take).collect();

        let program = &self.program;
        let locations = &self.locations;
        let in_flight = &self.in_flight_set;
        let agg_prev = &self.agg;
        let controller = self.controller.as_ref();
        let num_live = self.num_live;
        let caps_ref = &caps;

        // Worker fan-out over the shared execution layer: one scoped thread
        // per worker, outputs returned in worker order (same primitive the
        // logical-level partitioner shards its decision sweep with, so the
        // two realisations cannot drift).
        let items: Vec<_> = self.workers.iter_mut().zip(inboxes).collect();
        let outputs: Vec<WorkerOutput<P::Message>> =
            apg_exec::map_items(k, items, |w, (worker, inbox)| {
                run_worker(
                    program,
                    w as WorkerId,
                    worker,
                    inbox,
                    locations,
                    in_flight,
                    controller,
                    caps_ref,
                    agg_prev,
                    t,
                    num_live,
                    k,
                )
            });

        // ---- merge phase (single-threaded, at the barrier) ----
        let mut counters_total = WorkerCounters::default();
        let mut per_worker_counters = Vec::with_capacity(k);
        let mut agg_next = Aggregates::new();
        let mut decided_all: Vec<InFlight> = Vec::new();
        for out in &outputs {
            counters_total.merge(&out.counters);
            per_worker_counters.push(out.counters);
            agg_next.merge(&out.agg);
            decided_all.extend_from_slice(&out.decided);
        }
        // Route new messages (worker-order concatenation keeps it
        // deterministic).
        for out in outputs {
            for (dest, msgs) in out.outboxes.into_iter().enumerate() {
                self.inboxes[dest].extend(msgs);
            }
        }
        self.agg = agg_next;

        // Publish this superstep's decisions (routing changes now), move
        // last superstep's batch (states follow one superstep later).
        let migrations_started = decided_all.len() as u64;
        let mut mig_traffic = vec![0u64; k];
        let moved = if let Some(ctrl) = &mut self.controller {
            for m in &decided_all {
                self.locations[m.vertex as usize] = m.to;
                self.logical_sizes[m.from as usize] -= 1;
                self.logical_sizes[m.to as usize] += 1;
            }
            ctrl.publish(decided_all.clone())
        } else {
            Vec::new()
        };
        let mut migrations_completed = 0u64;
        for m in &moved {
            self.in_flight_set.remove(&m.vertex);
            if let Some(state) = self.workers[m.from as usize].vertices.remove(&m.vertex) {
                self.workers[m.to as usize].vertices.insert(m.vertex, state);
                self.state_at[m.vertex as usize] = m.to;
                mig_traffic[m.from as usize] += 1;
                mig_traffic[m.to as usize] += 1;
                migrations_completed += 1;
            }
        }
        for m in &decided_all {
            self.in_flight_set.insert(m.vertex);
        }

        // Simulated time: barrier = slowest worker, plus fault penalties.
        let worker_times: Vec<f64> = per_worker_counters
            .iter()
            .enumerate()
            .map(|(w, c)| self.cost_model.worker_time(c, mig_traffic[w]))
            .collect();
        let worker_max = worker_times.iter().copied().fold(0.0f64, f64::max);
        let sim_time =
            self.cost_model.superstep_overhead + worker_max + self.fault_plan.penalty_at(t);
        self.total_sim_time += sim_time;

        let cut_edges = if self.cut_every > 0 && t.is_multiple_of(self.cut_every) {
            Some(self.cut_edges())
        } else {
            None
        };

        self.superstep += 1;
        SuperstepReport {
            superstep: t,
            active_vertices: counters_total.active_vertices,
            compute_units: counters_total.compute_units,
            messages_local: counters_total.messages_local,
            messages_remote: counters_total.messages_remote,
            messages_dropped: counters_total.messages_dropped,
            migrations_started,
            migrations_completed,
            cut_edges,
            live_vertices: self.num_live,
            num_edges: self.num_edges,
            partition_sizes: self.logical_sizes.clone(),
            worker_times,
            sim_time,
        }
    }

    /// Runs exactly `n` supersteps.
    pub fn run(&mut self, n: usize) -> Vec<SuperstepReport> {
        (0..n).map(|_| self.superstep()).collect()
    }

    /// Runs until every vertex has halted and no messages are pending, or
    /// `max` supersteps have executed — the classic Pregel termination.
    pub fn run_until_halt(&mut self, max: usize) -> Vec<SuperstepReport> {
        let mut reports = Vec::new();
        for _ in 0..max {
            let r = self.superstep();
            let quiesced = r.active_vertices == 0;
            reports.push(r);
            if quiesced {
                break;
            }
        }
        reports
    }

    /// Applies a mutation batch at the superstep boundary; returns the ids
    /// assigned to the batch's new vertices.
    ///
    /// Delegates to [`Engine::apply_batch`] — the engine speaks the shared
    /// delta model directly.
    pub fn apply_mutations(&mut self, batch: MutationBatch) -> Vec<VertexId> {
        self.apply_batch(batch.as_update_batch())
    }

    /// Applies an [`UpdateBatch`] at the superstep boundary — the canonical
    /// ingestion path, sharing the literal application loop
    /// ([`UpdateBatch::apply_to`]) with the logical-level
    /// `AdaptivePartitioner::apply_batch` and bare-graph
    /// [`UpdateBatch::apply`]. Returns the ids assigned to the batch's new
    /// vertices.
    ///
    /// Deltas apply in scheduled order; edges to endpoints that do not
    /// exist (or died earlier in this batch) are skipped.
    pub fn apply_batch(&mut self, batch: &UpdateBatch) -> Vec<VertexId> {
        batch.apply_to(self).new_vertices
    }

    // ---- observers -----------------------------------------------------

    /// Number of workers (= partitions).
    pub fn num_workers(&self) -> WorkerId {
        self.workers.len() as WorkerId
    }

    /// Supersteps executed so far.
    pub fn superstep_index(&self) -> usize {
        self.superstep
    }

    /// Live vertices.
    pub fn num_live_vertices(&self) -> usize {
        self.num_live
    }

    /// Total vertex-id slots ever allocated (live + tombstoned); ids are
    /// `0..num_total_slots()`.
    pub fn num_total_slots(&self) -> usize {
        self.locations.len()
    }

    /// Takes a recovery checkpoint of every vertex value now.
    pub fn take_checkpoint(&mut self) {
        let mut values: Vec<Option<P::Value>> = vec![None; self.locations.len()];
        for worker in &self.workers {
            for (&v, state) in &worker.vertices {
                values[v as usize] = Some(state.value.clone());
            }
        }
        self.checkpoint = Some(Checkpoint {
            superstep: self.superstep,
            values,
        });
    }

    /// The latest recovery checkpoint, if any.
    pub fn checkpoint(&self) -> Option<&Checkpoint<P::Value>> {
        self.checkpoint.as_ref()
    }

    /// Re-activates every vertex. Used by round-based workloads (like the
    /// paper's clique computation) that rerun over the mutated graph after
    /// the previous round has halted.
    pub fn wake_all(&mut self) {
        for worker in &mut self.workers {
            for state in worker.vertices.values_mut() {
                state.halted = false;
            }
        }
    }

    /// Undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Total simulated time so far.
    pub fn total_sim_time(&self) -> f64 {
        self.total_sim_time
    }

    /// Current value of a vertex, if it exists.
    pub fn vertex_value(&self, v: VertexId) -> Option<&P::Value> {
        let w = *self.state_at.get(v as usize)?;
        if w == WorkerId::MAX {
            return None;
        }
        self.workers[w as usize].vertices.get(&v).map(|s| &s.value)
    }

    /// The logical partition assignment as a [`Partitioning`].
    pub fn partitioning(&self) -> Partitioning {
        let k = self.workers.len() as PartitionId;
        let assignment: Vec<PartitionId> = self
            .locations
            .iter()
            .map(|&w| if w == WorkerId::MAX { 0 } else { w })
            .collect();
        Partitioning::from_assignment(assignment, k)
    }

    /// Counts edges whose endpoints live on different workers (by the
    /// routing table, i.e. the logical partitioning).
    pub fn cut_edges(&self) -> usize {
        let mut cut = 0usize;
        for worker in &self.workers {
            for (&v, state) in &worker.vertices {
                let lv = self.locations[v as usize];
                for &n in &state.neighbors {
                    if n > v && self.locations[n as usize] != lv {
                        cut += 1;
                    }
                }
            }
        }
        cut
    }

    /// Current cut ratio.
    pub fn cut_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            0.0
        } else {
            self.cut_edges() as f64 / self.num_edges as f64
        }
    }

    /// Audits internal invariants (logical sizes, physical placement,
    /// adjacency symmetry, edge count).
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn audit(&self) {
        let mut sizes = vec![0usize; self.workers.len()];
        let mut live = 0usize;
        let mut endpoint_count = 0usize;
        for (w, worker) in self.workers.iter().enumerate() {
            for (&v, state) in &worker.vertices {
                assert_eq!(
                    self.state_at[v as usize] as usize, w,
                    "state_at drifted for {v}"
                );
                let lv = self.locations[v as usize];
                assert_ne!(lv, WorkerId::MAX, "hosted vertex {v} marked dead");
                sizes[lv as usize] += 1;
                live += 1;
                endpoint_count += state.neighbors.len();
                for &n in &state.neighbors {
                    let nw = self.state_at[n as usize];
                    assert_ne!(nw, WorkerId::MAX, "edge to dead vertex {n}");
                    let nstate = self.workers[nw as usize]
                        .vertices
                        .get(&n)
                        .expect("neighbor state");
                    assert!(
                        nstate.neighbors.binary_search(&v).is_ok(),
                        "asymmetric edge {v} -> {n}"
                    );
                }
            }
        }
        assert_eq!(live, self.num_live, "live count drifted");
        assert_eq!(endpoint_count, 2 * self.num_edges, "edge count drifted");
        assert_eq!(sizes, self.logical_sizes, "logical sizes drifted");
    }

    // ---- internals -------------------------------------------------------

    fn capacities(&self) -> CapacityModel {
        let factor = self
            .controller
            .as_ref()
            .map(|c| c.config().capacity_factor)
            .unwrap_or(1.10);
        CapacityModel::vertex_balanced(
            self.num_live.max(1),
            self.workers.len() as PartitionId,
            factor,
        )
    }

    fn place_vertex(&self, v: VertexId, caps: &CapacityModel) -> WorkerId {
        let k = self.workers.len() as u64;
        let hashed = (hash_vertex(v) % k) as WorkerId;
        if caps.remaining(hashed, self.logical_sizes[hashed as usize]) > 0 {
            hashed
        } else {
            (0..self.workers.len() as WorkerId)
                .min_by_key(|&w| self.logical_sizes[w as usize])
                .expect("k >= 1")
        }
    }

    fn is_live(&self, v: VertexId) -> bool {
        self.locations
            .get(v as usize)
            .is_some_and(|&w| w != WorkerId::MAX)
    }

    fn add_edge_internal(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        let wu = self.state_at[u as usize] as usize;
        {
            let su = self.workers[wu].vertices.get_mut(&u).expect("state for u");
            match su.neighbors.binary_search(&v) {
                Ok(_) => return false,
                Err(pos) => su.neighbors.insert(pos, v),
            }
            su.halted = false;
        }
        let wv = self.state_at[v as usize] as usize;
        let sv = self.workers[wv].vertices.get_mut(&v).expect("state for v");
        let pos = sv.neighbors.binary_search(&u).unwrap_err();
        sv.neighbors.insert(pos, u);
        sv.halted = false;
        self.num_edges += 1;
        true
    }

    fn remove_edge_internal(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.is_live(u) || !self.is_live(v) {
            return false;
        }
        let wu = self.state_at[u as usize] as usize;
        {
            let su = self.workers[wu].vertices.get_mut(&u).expect("state for u");
            match su.neighbors.binary_search(&v) {
                Ok(pos) => {
                    su.neighbors.remove(pos);
                }
                Err(_) => return false,
            }
            su.halted = false;
        }
        let wv = self.state_at[v as usize] as usize;
        let sv = self.workers[wv].vertices.get_mut(&v).expect("state for v");
        let pos = sv.neighbors.binary_search(&u).expect("asymmetric edge");
        sv.neighbors.remove(pos);
        sv.halted = false;
        self.num_edges -= 1;
        true
    }

    fn remove_vertex_internal(&mut self, v: VertexId) -> bool {
        if !self.is_live(v) {
            return false;
        }
        let w = self.state_at[v as usize] as usize;
        let state = self.workers[w].vertices.remove(&v).expect("state for v");
        for &n in &state.neighbors {
            let wn = self.state_at[n as usize] as usize;
            let sn = self.workers[wn]
                .vertices
                .get_mut(&n)
                .expect("neighbor state");
            if let Ok(pos) = sn.neighbors.binary_search(&v) {
                sn.neighbors.remove(pos);
            }
            sn.halted = false;
        }
        self.num_edges -= state.neighbors.len();
        let logical = self.locations[v as usize];
        self.logical_sizes[logical as usize] -= 1;
        self.locations[v as usize] = WorkerId::MAX;
        self.state_at[v as usize] = WorkerId::MAX;
        self.num_live -= 1;
        self.in_flight_set.remove(&v);
        if let Some(ctrl) = &mut self.controller {
            ctrl.forget(v);
        }
        true
    }
}

/// The engine as a delta target: [`UpdateBatch::apply_to`]'s single shared
/// application loop drives these hooks, so the engine's mutation semantics
/// cannot drift from a bare graph's or the logical-level partitioner's.
/// New vertices are placed by hash-with-capacity-fallback against the
/// engine's live population at the moment of insertion.
impl<P: VertexProgram> DeltaTarget for Engine<P> {
    fn delta_add_vertex(&mut self) -> VertexId {
        let caps = self.capacities();
        let v = self.locations.len() as VertexId;
        let w = self.place_vertex(v, &caps);
        self.locations.push(w);
        self.state_at.push(w);
        self.logical_sizes[w as usize] += 1;
        self.num_live += 1;
        self.workers[w as usize]
            .vertices
            .insert(v, VertexState::new(Vec::new()));
        v
    }

    fn delta_add_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.add_edge_internal(u, v)
    }

    fn delta_remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        self.remove_edge_internal(u, v)
    }

    fn delta_remove_vertex(&mut self, v: VertexId) -> Option<usize> {
        if !self.is_live(v) {
            return None;
        }
        let w = self.state_at[v as usize] as usize;
        let degree = self.workers[w].vertices[&v].neighbors.len();
        self.remove_vertex_internal(v);
        Some(degree)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_worker<P: VertexProgram>(
    program: &P,
    worker_id: WorkerId,
    worker: &mut WorkerState<P::Value>,
    mut inbox: Vec<(VertexId, P::Message)>,
    locations: &[WorkerId],
    in_flight: &HashSet<VertexId>,
    controller: Option<&MigrationController>,
    caps: &CapacityModel,
    agg_prev: &Aggregates,
    superstep: usize,
    num_live: usize,
    k: usize,
) -> WorkerOutput<P::Message> {
    inbox.sort_by_key(|&(v, _)| v);
    let (ids, msgs): (Vec<VertexId>, Vec<P::Message>) = inbox.into_iter().unzip();

    let mut outboxes: Vec<Vec<(VertexId, P::Message)>> = (0..k).map(|_| Vec::new()).collect();
    let mut counters = WorkerCounters::default();
    let mut agg_next = Aggregates::new();

    let mut cursor = 0usize;
    for (&v, state) in worker.vertices.iter_mut() {
        while cursor < ids.len() && ids[cursor] < v {
            cursor += 1;
            counters.messages_dropped += 1;
        }
        let start = cursor;
        while cursor < ids.len() && ids[cursor] == v {
            cursor += 1;
        }
        let vertex_msgs = &msgs[start..cursor];
        if state.halted && vertex_msgs.is_empty() {
            continue;
        }
        state.halted = false;
        counters.active_vertices += 1;
        counters.compute_units += 1;
        let mut ctx = Context {
            vertex: v,
            superstep,
            home: worker_id,
            value: &mut state.value,
            neighbors: &state.neighbors,
            halted: &mut state.halted,
            outboxes: &mut outboxes,
            locations,
            counters: &mut counters,
            agg_prev,
            agg_next: &mut agg_next,
            num_vertices: num_live,
        };
        program.compute(&mut ctx, vertex_msgs);
    }
    counters.messages_dropped += (ids.len() - cursor) as u64;

    // Background partitioning pass (the Partitioning API of Figure 2).
    let mut decided = Vec::new();
    if let Some(ctrl) = controller {
        let mut kernel = ctrl.kernel();
        let mut quota = ctrl.quotas(caps);
        let mut rng = ctrl.worker_rng(worker_id, superstep);
        for (&v, state) in worker.vertices.iter() {
            if in_flight.contains(&v) {
                continue; // already migrating (Figure 3's dashed state)
            }
            if let Some(to) = ctrl.evaluate_vertex(
                &mut kernel,
                &mut quota,
                &mut rng,
                worker_id,
                state.neighbors.iter(),
                locations,
            ) {
                decided.push(InFlight {
                    vertex: v,
                    from: worker_id,
                    to,
                });
            }
        }
    }

    // Sender-side combining (Pregel combiners): merge messages bound for
    // the same vertex before they cross the wire, and refund their cost.
    if program.has_combiner() {
        for (dest, outbox) in outboxes.iter_mut().enumerate() {
            let before = outbox.len();
            if before < 2 {
                continue;
            }
            outbox.sort_by_key(|&(v, _)| v);
            let mut combined: Vec<(VertexId, P::Message)> = Vec::with_capacity(before);
            for (v, m) in outbox.drain(..) {
                let merged = match combined.last_mut() {
                    Some((lv, lm)) if *lv == v => program.combine(lm, &m).map(|new| *lm = new),
                    _ => None,
                };
                if merged.is_none() {
                    combined.push((v, m));
                }
            }
            let removed = (before - combined.len()) as u64;
            if dest == worker_id as usize {
                counters.messages_local -= removed;
            } else {
                counters.messages_remote -= removed;
            }
            *outbox = combined;
        }
    }

    WorkerOutput {
        outboxes,
        counters,
        agg: agg_next,
        decided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apg_graph::gen;

    /// Every superstep each vertex sends one token to every neighbour and
    /// checks it received exactly `degree` tokens — any lost or duplicated
    /// message under migration churn trips the assertion (Figure 3's
    /// correctness property).
    struct TokenConservation;
    impl VertexProgram for TokenConservation {
        type Value = u64;
        type Message = u8;
        fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
            if ctx.superstep() > 0 {
                assert_eq!(
                    messages.len(),
                    ctx.degree(),
                    "vertex {} lost messages at superstep {}",
                    ctx.id(),
                    ctx.superstep()
                );
                *ctx.value_mut() += messages.len() as u64;
            }
            ctx.send_to_neighbors(1);
        }
    }

    /// Sends one token to every neighbour each superstep and accumulates
    /// what it receives — no assertions, usable when topology changes or
    /// crashes legitimately alter delivery counts.
    struct Gossip;
    impl VertexProgram for Gossip {
        type Value = u64;
        type Message = u8;
        fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
            *ctx.value_mut() += messages.len() as u64;
            ctx.send_to_neighbors(1);
        }
    }

    /// One round of degree counting, then halt.
    struct DegreeOnce;
    impl VertexProgram for DegreeOnce {
        type Value = u32;
        type Message = ();
        fn compute(&self, ctx: &mut Context<'_, '_, u32, ()>, messages: &[()]) {
            if ctx.superstep() == 0 {
                ctx.send_to_neighbors(());
            } else {
                *ctx.value_mut() = messages.len() as u32;
                ctx.vote_to_halt();
            }
        }
    }

    fn adaptive_cfg(k: WorkerId) -> AdaptiveConfig {
        AdaptiveConfig::new(k).willingness(1.0)
    }

    #[test]
    fn messages_survive_heavy_migration_churn() {
        let g = gen::mesh3d(6, 6, 6);
        let mut e = EngineBuilder::new(4)
            .seed(3)
            .adaptive(adaptive_cfg(4))
            .build(&g, TokenConservation);
        let reports = e.run(20);
        let migrated: u64 = reports.iter().map(|r| r.migrations_completed).sum();
        assert!(
            migrated > 50,
            "test needs churn, only {migrated} migrations"
        );
        e.audit();
    }

    #[test]
    fn degree_count_halts_and_is_correct() {
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4).build(&g, DegreeOnce);
        let reports = e.run_until_halt(10);
        assert!(reports.len() <= 3, "should halt after 2-3 supersteps");
        assert_eq!(e.vertex_value(0), Some(&3)); // corner

        // Centre vertex of a 4^3 mesh has full degree 6.
        let centre = (4 + 1) * 4 + 1;
        assert_eq!(e.vertex_value(centre), Some(&6));
    }

    #[test]
    fn adaptive_partitioning_reduces_cut() {
        let g = gen::mesh3d(8, 8, 8);
        let mut e = EngineBuilder::new(8)
            .seed(5)
            .adaptive(AdaptiveConfig::new(8))
            .build(&g, TokenConservation);
        let first = e.superstep();
        let initial_cut = first.cut_edges.unwrap();
        e.run(60);
        let final_cut = e.cut_edges();
        assert!(
            (final_cut as f64) < 0.6 * initial_cut as f64,
            "cut only went {initial_cut} -> {final_cut}"
        );
        e.audit();
    }

    #[test]
    fn migration_preserves_vertex_values() {
        let g = gen::mesh3d(5, 5, 5);
        let mut e = EngineBuilder::new(5)
            .seed(7)
            .adaptive(adaptive_cfg(5))
            .build(&g, TokenConservation);
        e.run(10);
        // Values accumulate degree per superstep (starting at superstep 1),
        // so after 10 supersteps each vertex holds 9 * degree, proving no
        // state was lost while its owner changed.
        let p = e.partitioning();
        let moved_vertices: Vec<VertexId> = (0..125u32)
            .filter(|&v| p.partition_of(v) != e.locations[v as usize].min(4))
            .collect();
        let _ = moved_vertices;
        for v in 0..125u32 {
            let degree = match e.vertex_value(v) {
                Some(_) => {
                    let w = e.state_at[v as usize] as usize;
                    e.workers[w].vertices[&v].neighbors.len() as u64
                }
                None => panic!("vertex {v} lost"),
            };
            assert_eq!(e.vertex_value(v), Some(&(9 * degree)));
        }
    }

    #[test]
    fn capacities_never_exceeded_logically() {
        let g = gen::mesh3d(6, 6, 6);
        let mut e = EngineBuilder::new(4)
            .seed(11)
            .adaptive(adaptive_cfg(4))
            .build(&g, TokenConservation);
        for _ in 0..25 {
            let r = e.superstep();
            let caps = e.capacities();
            for (w, &size) in r.partition_sizes.iter().enumerate() {
                assert!(
                    size <= caps.capacity(w as u16),
                    "worker {w} over capacity: {size}"
                );
            }
        }
    }

    #[test]
    fn mutations_apply_and_audit() {
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4)
            .seed(2)
            .adaptive(adaptive_cfg(4))
            .build(&g, Gossip);
        e.run(5);
        let mut batch = MutationBatch::new();
        let a = batch.add_vertex(vec![0, 1, 2]);
        let b = batch.add_vertex(vec![5]);
        batch.connect_new(a, b);
        batch.add_edge(10, 20);
        batch.remove_edge(0, 1);
        batch.remove_vertex(30);
        let before_live = e.num_live_vertices();
        let new_ids = e.apply_mutations(batch);
        assert_eq!(new_ids.len(), 2);
        assert_eq!(e.num_live_vertices(), before_live + 2 - 1);
        e.audit();
        e.run(5);
        e.audit();
    }

    #[test]
    fn removing_vertex_mid_flight_is_safe() {
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4)
            .seed(13)
            .adaptive(adaptive_cfg(4))
            .build(&g, Gossip);
        e.superstep();
        // Remove whatever is currently in flight.
        let flying: Vec<VertexId> = e.in_flight_set.iter().copied().collect();
        assert!(!flying.is_empty(), "need in-flight vertices for this test");
        let mut batch = MutationBatch::new();
        for v in flying.iter().take(3) {
            batch.remove_vertex(*v);
        }
        e.apply_mutations(batch);
        e.run(3);
        e.audit();
    }

    #[test]
    fn fault_injection_resets_values_and_costs_time() {
        let g = gen::mesh3d(4, 4, 4);
        let plan = FaultPlan::crash(3, 0);
        let mut baseline = EngineBuilder::new(2).seed(1).build(&g, Gossip);
        let mut faulty = EngineBuilder::new(2)
            .seed(1)
            .fault_plan(plan)
            .build(&g, Gossip);
        let base_reports = baseline.run(6);
        let fault_reports = faulty.run(6);
        assert!(
            fault_reports[3].sim_time > base_reports[3].sim_time + 1000.0,
            "crash superstep must show the recovery penalty"
        );
        // The crashed worker's values restarted: some vertex accumulated
        // less than the fault-free run.
        let lossy = (0..64u32).any(|v| faulty.vertex_value(v) < baseline.vertex_value(v));
        assert!(lossy, "crash should have reset some values");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = gen::mesh3d(5, 5, 5);
        let run = |seed: u64| {
            let mut e = EngineBuilder::new(4)
                .seed(seed)
                .adaptive(adaptive_cfg(4))
                .build(&g, TokenConservation);
            let reports = e.run(12);
            (
                reports
                    .iter()
                    .map(|r| r.migrations_completed)
                    .collect::<Vec<_>>(),
                e.cut_edges(),
            )
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn aggregates_cross_supersteps() {
        struct CountActive;
        impl VertexProgram for CountActive {
            type Value = f64;
            type Message = ();
            fn compute(&self, ctx: &mut Context<'_, '_, f64, ()>, _messages: &[()]) {
                if ctx.superstep() == 1 {
                    // Every vertex contributed 1.0 at superstep 0.
                    *ctx.value_mut() = ctx.read_aggregate("active").unwrap_or(-1.0);
                    ctx.vote_to_halt();
                } else if ctx.superstep() == 0 {
                    ctx.aggregate("active", 1.0);
                    // Stay active by messaging self-neighbours.
                    ctx.send_to_neighbors(());
                }
            }
        }
        let g = gen::mesh3d(3, 3, 3);
        let mut e = EngineBuilder::new(3).build(&g, CountActive);
        e.run(2);
        assert_eq!(e.vertex_value(0), Some(&27.0));
    }

    #[test]
    fn no_adaptive_means_no_migrations() {
        let g = gen::mesh3d(4, 4, 4);
        let mut e = EngineBuilder::new(4).seed(1).build(&g, TokenConservation);
        let reports = e.run(5);
        assert!(reports.iter().all(|r| r.migrations_started == 0));
    }
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use apg_graph::gen;

    struct Accumulate;
    impl VertexProgram for Accumulate {
        type Value = u64;
        type Message = u8;
        fn compute(&self, ctx: &mut Context<'_, '_, u64, u8>, messages: &[u8]) {
            *ctx.value_mut() += 1 + messages.len() as u64;
            ctx.send_to_neighbors(1);
        }
    }

    #[test]
    fn checkpoint_recovery_beats_zeroed_restart() {
        let g = gen::mesh3d(4, 4, 4);
        let plan = FaultPlan::crash(8, 0);
        let run = |checkpoint_every: usize| {
            let mut e = EngineBuilder::new(2)
                .seed(1)
                .fault_plan(plan.clone())
                .checkpoint_every(checkpoint_every)
                .build(&g, Accumulate);
            e.run(12);
            (0..64u32).map(|v| *e.vertex_value(v).unwrap()).sum::<u64>()
        };
        let without = run(0);
        let with = run(5); // checkpoint at supersteps 0, 5, 10 — crash at 8
        assert!(
            with > without,
            "checkpointed run ({with}) should retain more accumulated state than zeroed restart ({without})"
        );
    }

    #[test]
    fn checkpoint_records_superstep_and_values() {
        let g = gen::mesh3d(3, 3, 3);
        let mut e = EngineBuilder::new(2).seed(3).build(&g, Accumulate);
        e.run(4);
        e.take_checkpoint();
        let cp_step = e.checkpoint().unwrap().superstep;
        assert_eq!(cp_step, 4);
    }

    #[test]
    fn unaffected_workers_keep_state_through_crash() {
        let g = gen::mesh3d(4, 4, 4);
        let mut healthy = EngineBuilder::new(2).seed(2).build(&g, Accumulate);
        let mut faulty = EngineBuilder::new(2)
            .seed(2)
            .fault_plan(FaultPlan::crash(5, 1))
            .build(&g, Accumulate);
        healthy.run(10);
        faulty.run(10);
        // Vertices on worker 0 (not crashed) accumulate identically up to
        // message noise from the crashed side; at minimum they must retain
        // strictly more than a from-scratch run of 5 supersteps would.
        let p = faulty.partitioning();
        let on_w0: Vec<u32> = (0..64u32).filter(|&v| p.partition_of(v) == 0).collect();
        assert!(!on_w0.is_empty());
        for v in on_w0 {
            assert!(
                *faulty.vertex_value(v).unwrap() > 5,
                "vertex {v} on surviving worker lost state"
            );
        }
    }
}
