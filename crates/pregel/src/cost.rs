//! The cluster cost model: converts observed per-worker traffic into
//! simulated superstep time.
//!
//! The paper's evaluation reports *time per iteration normalised to static
//! hash partitioning* (Figure 7) and absolute superstep times dominated by
//! network messaging — ">80% of the time" in both the biomedical and
//! Twitter workloads. On a single machine we cannot measure a 10 GbE
//! cluster, but the *drivers* of that time are fully observable: per-worker
//! compute units, local messages, remote messages, and migration traffic.
//! The BSP barrier makes a superstep as slow as its slowest worker, hence
//! `time = overhead + max_w(cost(w))`.

use serde::{Deserialize, Serialize};

use crate::worker::WorkerCounters;

/// Weights converting worker activity into simulated time units.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per compute unit.
    pub compute: f64,
    /// Cost per message delivered within a worker (memory bandwidth).
    pub local_message: f64,
    /// Cost per message crossing workers (serialisation + network).
    pub remote_message: f64,
    /// Cost per vertex-state transfer (migration traffic).
    pub migration: f64,
    /// Fixed barrier/coordination overhead per superstep.
    pub superstep_overhead: f64,
}

impl CostModel {
    /// Weights calibrated to the paper's environments: remote messages an
    /// order of magnitude above local ones (10 GbE vs RAM), migrations a
    /// few remote messages' worth of state each, messaging >> compute for
    /// communication-bound workloads.
    pub fn lan_10gbe() -> Self {
        CostModel {
            compute: 1.0,
            local_message: 0.05,
            remote_message: 1.0,
            migration: 4.0,
            superstep_overhead: 50.0,
        }
    }

    /// A compute-heavy profile (e.g. the cardiac FEM kernel, where CPU time
    /// is "not negligible (more than 17%)").
    pub fn compute_heavy() -> Self {
        CostModel {
            compute: 5.0,
            ..Self::lan_10gbe()
        }
    }

    /// Calibrated to the paper's biomedical deployment (Figure 7): with
    /// hash partitioning, messaging is >80% of superstep time and compute
    /// above 17% (the 32-ODE kernel is charged separately via
    /// `Context::charge`), and each migration ships ~30 KB of vertex state
    /// (the paper's 3 TB / 100 M vertices), i.e. hundreds of
    /// message-equivalents — which is what produces the paper's large
    /// time-per-iteration spike while the partitioning re-arranges.
    pub fn heartsim() -> Self {
        CostModel {
            compute: 1.0,
            local_message: 0.25,
            remote_message: 15.0,
            migration: 3000.0,
            superstep_overhead: 50.0,
        }
    }

    /// Simulated time for one worker's superstep activity.
    pub fn worker_time(&self, counters: &WorkerCounters, migrations_moved: u64) -> f64 {
        self.compute * counters.compute_units as f64
            + self.local_message * counters.messages_local as f64
            + self.remote_message * counters.messages_remote as f64
            + self.migration * migrations_moved as f64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::lan_10gbe()
    }
}

/// Everything the engine observed during one superstep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuperstepReport {
    /// Superstep index (0-based).
    pub superstep: usize,
    /// Vertices that executed `compute`.
    pub active_vertices: u64,
    /// Total compute units.
    pub compute_units: u64,
    /// Messages delivered worker-locally.
    pub messages_local: u64,
    /// Messages that crossed workers.
    pub messages_remote: u64,
    /// Messages dropped (dangling targets).
    pub messages_dropped: u64,
    /// Migrations decided this superstep (enter in-flight state).
    pub migrations_started: u64,
    /// Vertex states physically moved at the end of this superstep.
    pub migrations_completed: u64,
    /// Cut edges at the end of this superstep (if tracking is enabled).
    pub cut_edges: Option<usize>,
    /// Live vertices at the end of this superstep.
    pub live_vertices: usize,
    /// Edges at the end of this superstep.
    pub num_edges: usize,
    /// Per-worker vertex counts at the end of this superstep.
    pub partition_sizes: Vec<usize>,
    /// Per-worker simulated times (the barrier takes the max; the spread
    /// quantifies load balance, the paper's second objective).
    pub worker_times: Vec<f64>,
    /// Simulated wall time of this superstep under the engine's [`CostModel`].
    pub sim_time: f64,
}

impl SuperstepReport {
    /// Cut ratio, when cut tracking is enabled.
    pub fn cut_ratio(&self) -> Option<f64> {
        self.cut_edges.map(|c| {
            if self.num_edges == 0 {
                0.0
            } else {
                c as f64 / self.num_edges as f64
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_messages_dominate() {
        let m = CostModel::lan_10gbe();
        let mut c = WorkerCounters {
            compute_units: 10,
            messages_local: 100,
            ..Default::default()
        };
        let local_time = m.worker_time(&c, 0);
        c.messages_local = 0;
        c.messages_remote = 100;
        let remote_time = m.worker_time(&c, 0);
        assert!(remote_time > 5.0 * local_time);
    }

    #[test]
    fn migrations_add_cost() {
        let m = CostModel::lan_10gbe();
        let c = WorkerCounters::default();
        assert!(m.worker_time(&c, 10) > m.worker_time(&c, 0));
    }

    #[test]
    fn cut_ratio_handles_empty() {
        let r = SuperstepReport {
            superstep: 0,
            active_vertices: 0,
            compute_units: 0,
            messages_local: 0,
            messages_remote: 0,
            messages_dropped: 0,
            migrations_started: 0,
            migrations_completed: 0,
            cut_edges: Some(0),
            live_vertices: 0,
            num_edges: 0,
            partition_sizes: vec![],
            worker_times: vec![],
            sim_time: 0.0,
        };
        assert_eq!(r.cut_ratio(), Some(0.0));
    }
}
