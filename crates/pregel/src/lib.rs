//! A Pregel-like BSP graph-processing engine with the paper's adaptive
//! partitioning extension (§3).
//!
//! The engine reproduces the architecture of Figure 2: user applications
//! are [`VertexProgram`]s running on the Pregel API; the **graph
//! partitioning algorithm runs in the background** through an extension of
//! that API, migrating vertices while user computation proceeds. Two
//! departures from classic Pregel, both taken from the paper, are
//! supported: computation can run continuously after the graph is loaded,
//! and vertices/edges can be injected or removed from a stream between
//! supersteps ([`MutationBatch`], a thin wrapper over the workspace-wide
//! [`apg_graph::UpdateBatch`] delta model — any `StreamSource` batch feeds
//! the engine directly via [`Engine::apply_batch`]).
//!
//! The implementation pitfalls of §3 are reproduced faithfully:
//!
//! * **Deferred vertex migration** — a vertex that decides to migrate in
//!   superstep `t` keeps computing in place during `t + 1` while new
//!   messages are already routed to its destination; its state moves at the
//!   `t + 1` boundary. No message is lost and no extra synchronisation is
//!   introduced (Figure 3, bottom).
//! * **Worker-to-worker capacity messaging** — migration quotas are drawn
//!   against *predicted* capacities `C^{t+1}(i) = C^t(i) − V_out + V_in`:
//!   decided-but-in-flight vertices already count at their destination.
//!
//! Workers are OS threads (one per partition). Where the paper ran on a
//! 63-blade cluster, this engine runs on one machine and converts observed
//! message locality into time through an explicit [`CostModel`] — the
//! substitution DESIGN.md documents: relative superstep times are driven by
//! remote-message volume, which depends only on the partitioning.
//!
//! # Example
//!
//! ```
//! use apg_pregel::{EngineBuilder, VertexProgram, Context};
//! use apg_graph::gen;
//!
//! /// Count each vertex's degree via one round of messages.
//! struct DegreeCount;
//! impl VertexProgram for DegreeCount {
//!     type Value = u32;
//!     type Message = ();
//!     fn compute(&self, ctx: &mut Context<'_, '_, u32, ()>, messages: &[()]) {
//!         if ctx.superstep() == 0 {
//!             ctx.send_to_neighbors(());
//!         } else {
//!             *ctx.value_mut() = messages.len() as u32;
//!             ctx.vote_to_halt();
//!         }
//!     }
//! }
//!
//! let g = gen::mesh3d(4, 4, 4);
//! let mut engine = EngineBuilder::new(4).build(&g, DegreeCount);
//! engine.run(2);
//! assert_eq!(engine.vertex_value(0), Some(&3)); // corner vertex
//! ```

pub mod cost;
pub mod engine;
pub mod fault;
pub mod migrate;
pub mod mutation;
pub mod program;
pub mod worker;

pub use cost::{CostModel, SuperstepReport};
pub use engine::{Checkpoint, Engine, EngineBuilder};
pub use fault::{FaultEvent, FaultPlan};
pub use migrate::MigrationController;
pub use mutation::MutationBatch;
pub use program::{Aggregates, Context, VertexProgram};
pub use worker::WorkerId;
